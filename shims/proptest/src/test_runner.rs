//! Deterministic property-test runner.

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum rejected cases (`prop_assume!`) before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the generated input; try another.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// Builds an input rejection.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Per-case outcome.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generator for property inputs (SplitMix64-seeded
/// xoshiro256**-style mixing; quality is ample for test generation).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Seeds deterministically from a test name, so each property test
    /// explores a fixed, reproducible input sequence.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// Seeds from a 64-bit value via SplitMix64 expansion.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit draw (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, span)`; `span` must be positive.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span.is_power_of_two() {
            return self.next_u64() & (span - 1);
        }
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs one property: draws inputs and evaluates `case` until
/// `config.cases` successes accumulate.
///
/// # Panics
///
/// Panics when a case fails (carrying its message) or when too many
/// inputs are rejected.
pub fn run_property<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut rng = TestRng::for_test(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "property '{name}': too many prop_assume! rejections \
                     ({rejected}) before reaching {} cases",
                    config.cases
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{name}' failed after {passed} passing cases: {msg}");
            }
        }
    }
}

/// Defines property tests: an optional `#![proptest_config(..)]` followed
/// by `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr) $($(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::test_runner::run_property(
                    &config,
                    stringify!($name),
                    |__proptest_rng| {
                        $(
                            let $arg = $crate::strategy::Strategy::new_value(
                                &($strat),
                                __proptest_rng,
                            );
                        )+
                        let __proptest_inputs = format!(
                            concat!($(stringify!($arg), " = {:?}; ",)+),
                            $(&$arg),+
                        );
                        let mut __proptest_case =
                            move || -> $crate::test_runner::TestCaseResult {
                                $body
                                Ok(())
                            };
                        match __proptest_case() {
                            Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                                Err($crate::test_runner::TestCaseError::Fail(format!(
                                    "{msg}\n  inputs: {}",
                                    __proptest_inputs
                                )))
                            }
                            other => other,
                        }
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` ({})\n  both: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l
        );
    }};
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject());
        }
    };
}
