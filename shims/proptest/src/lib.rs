//! Offline shim implementing the subset of the `proptest` API this
//! workspace's property tests use: the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//! range/tuple/`Just`/`vec`/one-of strategies, and the `proptest!`,
//! `prop_assert*`, `prop_assume!` macros driven by a deterministic
//! seeded runner.
//!
//! Differences from upstream proptest: no shrinking (failing inputs are
//! reported verbatim), and generation is deterministic per test name so
//! failures reproduce without a persistence file.

pub mod strategy;
pub mod test_runner;

/// The `proptest::prelude` equivalent: everything the test files import.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Top-level `prop` namespace (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy::{any, Just};
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// Strategy producing `Vec`s of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("ranges");
        for _ in 0..200 {
            let v = (1u8..=4).new_value(&mut rng);
            assert!((1..=4).contains(&v));
            let xs = prop::collection::vec(0usize..10, 2..5).new_value(&mut rng);
            assert!((2..5).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::test_runner::TestRng::for_test("map");
        let doubled = (0u32..5).prop_map(|x| x * 2).new_value(&mut rng);
        assert!(doubled % 2 == 0 && doubled < 10);
    }

    #[test]
    fn oneof_picks_each_arm() {
        let mut rng = crate::test_runner::TestRng::for_test("oneof");
        let strat = prop_oneof![Just(1u32), Just(2), Just(3)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(strat.new_value(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn string_pattern_respects_length() {
        let mut rng = crate::test_runner::TestRng::for_test("strings");
        for _ in 0..100 {
            let s = ".{0,40}".new_value(&mut rng);
            assert!(s.chars().count() <= 40);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(a in 0u64..100, b in 0u64..100) {
            prop_assume!(a != 99);
            prop_assert!(a + b < 200);
            prop_assert_eq!(a + b, b + a);
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failing_property_panics() {
        crate::test_runner::run_property(&ProptestConfig::with_cases(8), "always_fails", |rng| {
            let x = (0u8..10).new_value(rng);
            let _ = x;
            Err(crate::test_runner::TestCaseError::fail(
                "assertion failed: forced".to_string(),
            ))
        });
    }
}
