//! Value-generation strategies.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply draws a fresh value per case.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// Strategy yielding one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Type-erased strategy handle.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn DynStrategy<T>>,
}

trait DynStrategy<T> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_new_value(rng)
    }
}

/// Uniform choice between same-typed strategies (the `prop_oneof!` body).
pub struct Union<S> {
    arms: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// Builds a union; panics when `arms` is empty.
    pub fn new(arms: Vec<S>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].new_value(rng)
    }
}

/// Strategy for the "standard" distribution of `T` (`any::<T>()`).
pub struct Any<T>(PhantomData<T>);

/// Standard-distribution strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draws one full-domain value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

/// Simplified regex-pattern string strategy.
///
/// Supports the `.{lo,hi}` shape used in this workspace (random printable
/// text of bounded length); any other pattern yields printable text of
/// length 0..=64.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 64));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| {
                // Mostly printable ASCII with occasional exotic chars to
                // probe tokenizer edge cases.
                match rng.below(20) {
                    0 => '\n',
                    1 => '\t',
                    2 => char::from_u32(0x00C0 + rng.below(0x100) as u32).unwrap_or('é'),
                    _ => (0x20u8 + rng.below(0x5F) as u8) as char,
                }
            })
            .collect()
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Length specification for [`VecStrategy`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// `prop::collection::vec` strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> Self {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A);
impl_strategy_for_tuple!(A, B);
impl_strategy_for_tuple!(A, B, C);
impl_strategy_for_tuple!(A, B, C, D);
impl_strategy_for_tuple!(A, B, C, D, E);
impl_strategy_for_tuple!(A, B, C, D, E, F);
impl_strategy_for_tuple!(A, B, C, D, E, F, G);
impl_strategy_for_tuple!(A, B, C, D, E, F, G, H);
impl_strategy_for_tuple!(A, B, C, D, E, F, G, H, I);
impl_strategy_for_tuple!(A, B, C, D, E, F, G, H, I, J);

/// Homogeneous one-of choice.
///
/// All arms must have the same strategy type (every use in this workspace
/// does); for mixed arm types box them first.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($arm),+])
    };
}
