//! Offline shim implementing the subset of the `criterion` API the bench
//! harnesses use: `Criterion::default().sample_size(..).configure_from_args()`,
//! `bench_function`, `Bencher::iter`, `black_box`, `final_summary`.
//!
//! Each benchmark runs a short warm-up then `sample_size` timed samples
//! and prints min/mean per-iteration wall time. In `--test` mode (what CI
//! passes) every closure executes once, unmeasured, for smoke coverage.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            test_mode: false,
            ran: 0,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Applies command-line configuration (`--test` runs each bench once).
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Times `f` under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.ran += 1;
        let mut b = Bencher {
            iters: if self.test_mode {
                1
            } else {
                self.sample_size as u64
            },
            elapsed: Duration::ZERO,
            min: Duration::MAX,
        };
        f(&mut b);
        if self.test_mode {
            println!("bench {name}: ok (test mode)");
        } else if b.elapsed.is_zero() {
            println!("bench {name}: no iterations recorded");
        } else {
            let mean = b.elapsed / b.iters.max(1) as u32;
            println!(
                "bench {name}: mean {:.3?}/iter, fastest {:.3?} ({} iters)",
                mean, b.min, b.iters
            );
        }
        self
    }

    /// Prints the closing summary line.
    pub fn final_summary(&self) {
        println!("criterion-shim: {} benchmark(s) completed", self.ran);
    }
}

/// Per-benchmark timing context.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    min: Duration,
}

impl Bencher {
    /// Runs `routine` the configured number of times, timing each call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            self.elapsed += dt;
            self.min = self.min.min(dt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("count", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 5);
        c.final_summary();
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
