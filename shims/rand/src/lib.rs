//! Offline shim implementing the subset of the `rand` 0.8 API this
//! workspace uses. The build environment has no access to crates.io, so
//! the workspace vendors a minimal, deterministic replacement: the trait
//! surface (`RngCore`, `SeedableRng`, `Rng`) plus uniform sampling for the
//! integer/float ranges the simulator draws from.
//!
//! The stream produced by a given generator is *not* bit-compatible with
//! upstream `rand`; every consumer in this workspace only relies on
//! determinism (same seed ⇒ same stream), which this shim guarantees.

use std::ops::{Range, RangeInclusive};

/// Core random source: raw 32/64-bit draws.
pub trait RngCore {
    /// Next raw 32-bit draw.
    fn next_u32(&mut self) -> u32;

    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array in upstream rand).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed into a full seed via SplitMix64 (the same
    /// expansion upstream rand uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience sampling on top of [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Ranges uniform sampling is defined for.
pub trait SampleRange {
    /// Sampled value type.
    type Output;

    /// Draws one value uniformly from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw in `[0, span)` without modulo bias (rejection sampling).
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// `rand::rngs` namespace placeholder (unused, present for API shape).
pub mod rngs {}

/// `rand::prelude` re-exports.
pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = Lcg(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = Lcg(2);
        for _ in 0..1000 {
            assert!((3..7).contains(&rng.gen_range(3usize..7)));
            assert!((2..=4).contains(&rng.gen_range(2u64..=4)));
        }
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = Lcg(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..500 {
            match rng.gen_range(0u8..=1) {
                0 => lo = true,
                1 => hi = true,
                _ => unreachable!(),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Lcg(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
