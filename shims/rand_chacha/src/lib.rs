//! Offline shim providing [`ChaCha8Rng`]: a real ChaCha-8 keystream
//! generator with the `rand_chacha` 0.3 API surface this workspace uses
//! (`seed_from_u64`, `set_stream`, `RngCore`). Output is deterministic and
//! platform-independent, but not bit-compatible with upstream
//! `rand_chacha` (nothing in this workspace depends on the exact stream).

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const BUF_WORDS: usize = 16;

/// Deterministic ChaCha with 8 rounds.
///
/// The 64-bit `stream` occupies the nonce words, so generators with the
/// same key but distinct streams produce independent sequences — the
/// property `SimRng::child` relies on.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buf: [u32; BUF_WORDS],
    /// Next unread word in `buf`; `BUF_WORDS` means the buffer is spent.
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Selects the keystream `stream`, restarting block generation so the
    /// new stream takes effect immediately.
    pub fn set_stream(&mut self, stream: u64) {
        if self.stream != stream {
            self.stream = stream;
            self.counter = 0;
            self.idx = BUF_WORDS;
        }
    }

    /// Current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    /// Exports the generator position as `(key, stream, counter, idx)`:
    /// the 256-bit key, the selected keystream, the next block counter,
    /// and the next unread word of the current block (`BUF_WORDS` when
    /// the buffer is spent). Together with [`from_state`](Self::from_state)
    /// this gives exact save/restore of the keystream position — the
    /// buffer contents themselves are a pure function of
    /// `(key, stream, counter)` and are regenerated on import.
    pub fn state(&self) -> ([u32; 8], u64, u64, usize) {
        (self.key, self.stream, self.counter, self.idx)
    }

    /// Rebuilds a generator at an exact keystream position previously
    /// exported by [`state`](Self::state). The restored generator
    /// produces the same future draws as the original would have.
    pub fn from_state(key: [u32; 8], stream: u64, counter: u64, idx: usize) -> Self {
        let idx = idx.min(BUF_WORDS);
        let mut rng = ChaCha8Rng {
            key,
            counter,
            stream,
            buf: [0; BUF_WORDS],
            idx: BUF_WORDS,
        };
        if idx < BUF_WORDS {
            // The exported position is mid-block: regenerate that block
            // (refill advances the counter past it again) and reposition.
            rng.counter = counter.wrapping_sub(1);
            rng.refill();
            rng.idx = idx;
        }
        rng
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double rounds (column + diagonal).
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buf: [0; BUF_WORDS],
            idx: BUF_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= BUF_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn streams_decorrelate() {
        let base = ChaCha8Rng::seed_from_u64(7);
        let mut s1 = base.clone();
        s1.set_stream(1);
        let mut s2 = base.clone();
        s2.set_stream(2);
        let same = (0..64).filter(|_| s1.next_u64() == s2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn set_stream_mid_buffer_restarts() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let _ = rng.next_u32();
        rng.set_stream(5);
        let mut fresh = ChaCha8Rng::seed_from_u64(9);
        fresh.set_stream(5);
        assert_eq!(rng.next_u64(), fresh.next_u64());
    }

    #[test]
    fn state_roundtrip_mid_and_on_block_boundary() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        rng.set_stream(3);
        // Mid-block position.
        for _ in 0..5 {
            let _ = rng.next_u32();
        }
        let (key, stream, counter, idx) = rng.state();
        let mut restored = ChaCha8Rng::from_state(key, stream, counter, idx);
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
        // Exact block boundary (buffer spent).
        let mut fresh = ChaCha8Rng::seed_from_u64(11);
        while fresh.state().3 != BUF_WORDS {
            let _ = fresh.next_u32();
        }
        let (key, stream, counter, idx) = fresh.state();
        let mut restored = ChaCha8Rng::from_state(key, stream, counter, idx);
        for _ in 0..100 {
            assert_eq!(fresh.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn output_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64000 bits, expect ~32000 set; allow wide tolerance.
        assert!((30_000..34_000).contains(&ones), "ones={ones}");
    }
}
