//! End-to-end transactions across the whole topology library: every
//! builder (mesh, torus, ring, star, spidergon, tree) carries real OCP
//! traffic with source routing, wormhole switching and ACK/nACK intact.

use xpipes::noc::Noc;
use xpipes_ocp::Request;
use xpipes_topology::builders;
use xpipes_topology::{NiKind, NocSpec, SwitchId, Topology};

/// Attaches one initiator on the first switch and one target on the last,
/// maps a window, and runs a write + readback.
fn exercise(name: &str, mut topo: Topology) {
    let first = SwitchId(0);
    let last = SwitchId(topo.switch_count() - 1);
    let cpu = topo
        .attach_ni_auto("cpu", NiKind::Initiator, first)
        .expect("initiator attaches");
    let mem = topo
        .attach_ni_auto("mem", NiKind::Target, last)
        .expect("target attaches");
    let mut spec = NocSpec::new(name, topo);
    spec.map_address(mem, 0, 1 << 16).expect("window maps");
    spec.validate()
        .unwrap_or_else(|e| panic!("{name}: invalid spec: {e}"));

    let mut noc = Noc::new(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
    noc.submit(cpu, Request::write(0x40, vec![0xC0DE]).expect("valid"))
        .expect("mapped");
    noc.submit(cpu, Request::read(0x40, 1).expect("valid"))
        .expect("mapped");
    assert!(noc.run_until_idle(50_000), "{name}: network must drain");
    let resp = noc
        .take_response(cpu)
        .expect("initiator")
        .expect("read completed");
    assert_eq!(resp.data(), &[0xC0DE], "{name}: readback");
    assert_eq!(
        noc.memory(mem).expect("target").peek(0x40),
        0xC0DE,
        "{name}: memory"
    );
}

#[test]
fn mesh_carries_traffic() {
    exercise(
        "mesh",
        builders::mesh(3, 3).expect("builds").into_topology(),
    );
}

#[test]
fn torus_carries_traffic() {
    exercise(
        "torus",
        builders::torus(3, 3).expect("builds").into_topology(),
    );
}

#[test]
fn ring_carries_traffic() {
    exercise("ring", builders::ring(6).expect("builds"));
}

#[test]
fn star_carries_traffic() {
    exercise("star", builders::star(5).expect("builds"));
}

#[test]
fn spidergon_carries_traffic() {
    exercise("spidergon", builders::spidergon(8).expect("builds"));
}

#[test]
fn tree_carries_traffic() {
    exercise("tree", builders::tree(2, 3).expect("builds"));
}

#[test]
fn deep_line_hits_route_length_limit() {
    // A 9-switch line needs 9 hops end to end — beyond the 7-hop header
    // field. The failure must surface at validation, not as a hang.
    let mut topo = builders::mesh(9, 1).expect("builds").into_topology();
    let cpu = topo
        .attach_ni_auto("cpu", NiKind::Initiator, SwitchId(0))
        .expect("attaches");
    let mem = topo
        .attach_ni_auto("mem", NiKind::Target, SwitchId(8))
        .expect("attaches");
    let mut spec = NocSpec::new("longline", topo);
    spec.map_address(mem, 0, 64).expect("maps");
    // The spec itself validates (routes exist)…
    spec.validate().expect("routable");
    // …but header construction at submit time must reject the long route.
    let mut noc = Noc::new(&spec).expect("instantiates");
    let err = noc
        .submit(cpu, Request::read(0, 1).expect("valid"))
        .unwrap_err();
    assert!(
        matches!(err, xpipes::XpipesError::RouteTooLong { hops: 9, .. }),
        "got {err}"
    );
}
