//! The paper's quantitative claims, asserted as tests. Each test names
//! the experiment id from DESIGN.md; absolute values use wide tolerances
//! (our substrate is a calibrated model, not the authors' testbed) but
//! every *shape* claim — who wins, in which direction, by roughly what
//! factor — is enforced.

use xpipes::config::{NiConfig, SwitchConfig};
use xpipes_bench::experiments::{
    freq_area_tradeoff, mesh_case_study, ni_synthesis, pipeline_latency, switch_synthesis,
    FLIT_WIDTHS,
};
use xpipes_synth::components::{initiator_ni_netlist, switch_netlist, target_ni_netlist};
use xpipes_synth::report::{synthesize, synthesize_max_speed};

/// E1/E2: NI area & power grow with flit width; initiator > target.
#[test]
fn e1_e2_ni_synthesis_shapes() {
    let rows = ni_synthesis(&FLIT_WIDTHS).expect("synthesis");
    for pair in rows.windows(2) {
        assert!(pair[1].initiator.area_mm2 > pair[0].initiator.area_mm2);
        assert!(pair[1].target.area_mm2 > pair[0].target.area_mm2);
        assert!(pair[1].initiator.power_mw > pair[0].initiator.power_mw);
        assert!(pair[1].target.power_mw > pair[0].target.power_mw);
    }
    for r in &rows {
        assert!(r.initiator.area_mm2 > r.target.area_mm2);
        assert!(r.initiator.power_mw > r.target.power_mw);
    }
    // Absolute band: tens of thousandths of mm² at 130 nm.
    assert!(rows[1].initiator.area_mm2 > 0.01 && rows[1].initiator.area_mm2 < 0.15);
}

/// E3/E4: switch area & power grow with width and radix.
#[test]
fn e3_e4_switch_synthesis_shapes() {
    let rows = switch_synthesis(&[(4, 4), (6, 4)], &[16, 32, 64]).expect("synthesis");
    let at = |i: usize, o: usize, w: u32| {
        rows.iter()
            .find(|r| r.inputs == i && r.outputs == o && r.flit_width == w)
            .expect("row exists")
    };
    for w in [16, 32, 64] {
        assert!(at(6, 4, w).report.area_mm2 > at(4, 4, w).report.area_mm2);
        assert!(at(6, 4, w).report.power_mw > at(4, 4, w).report.power_mw);
    }
    assert!(at(4, 4, 64).report.area_mm2 > at(4, 4, 16).report.area_mm2 * 2.0);
}

/// E9 + mesh-study frequencies: 4x4 and the NIs meet 1 GHz at 130 nm;
/// the 6x4 runs at the paper's 875–980 MHz *relative* window (87.5–98%
/// of the 4x4's clock).
#[test]
fn e9_frequency_anchors() {
    let f44 = synthesize_max_speed(&switch_netlist(&SwitchConfig::new(4, 4, 32)))
        .expect("timeable")
        .fmax_mhz;
    let f64_ = synthesize_max_speed(&switch_netlist(&SwitchConfig::new(6, 4, 32)))
        .expect("timeable")
        .fmax_mhz;
    let fni = synthesize_max_speed(&initiator_ni_netlist(&NiConfig::new(32)))
        .expect("timeable")
        .fmax_mhz;
    assert!(f44 >= 1000.0, "4x4 must reach 1 GHz, got {f44}");
    assert!(fni >= 1000.0, "NI must reach 1 GHz, got {fni}");
    let ratio = f64_ / f44;
    assert!(
        (0.82..=1.00).contains(&ratio),
        "6x4/4x4 clock ratio {ratio} outside the paper's 875–980/1000 window"
    );
}

/// E5: the mesh case study — component areas ordered NI < 4x4 < 6x4 at
/// every width, and the 3x4 D26 mesh lands near the paper's ~2.6 mm².
#[test]
fn e5_mesh_case_study() {
    let study = mesh_case_study().expect("study");
    for (w, ini, tgt, s44, s64) in &study.component_rows {
        assert!(tgt < ini, "target NI smaller at w={w}");
        assert!(ini < s44, "initiator NI smaller than 4x4 at w={w}");
        assert!(s44 < s64, "4x4 smaller than 6x4 at w={w}");
    }
    // Largest series tops out in the figure's 0.3–0.55 mm² region.
    let (_, _, _, _, top) = study.component_rows.last().expect("rows");
    assert!((0.25..0.60).contains(top), "6x4 @128: {top}");
    // The headline claim: ~2.6 mm² falls between our 32- and 64-bit
    // totals, and both are within ±35% of the paper number.
    let t32 = study
        .mesh_totals_mm2
        .iter()
        .find(|(w, _)| *w == 32)
        .expect("w32")
        .1;
    let t64 = study
        .mesh_totals_mm2
        .iter()
        .find(|(w, _)| *w == 64)
        .expect("w64")
        .1;
    assert!(
        t32 < 2.6 && 2.6 < t64,
        "2.6 mm² bracketed by {t32:.2} and {t64:.2}"
    );
    assert!((1.7..3.5).contains(&t32), "w32 total {t32:.2}");
    assert!((1.7..3.6).contains(&t64), "w64 total {t64:.2}");
}

/// E6: the 5x5 banana curve — flat floor near 0.10 mm², monotone rise
/// toward fmax, with a meaningful spread (paper: 0.10 → 0.18 mm²).
#[test]
fn e6_freq_area_tradeoff() {
    let pts = freq_area_tradeoff(&[200.0, 600.0, 1000.0, 1200.0, 1400.0]).expect("sweep");
    for pair in pts.windows(2) {
        assert!(
            pair[1].1 >= pair[0].1,
            "area must not shrink with tighter clocks"
        );
    }
    let floor = pts[0].1;
    let top = pts.last().expect("points").1;
    assert!((0.07..0.14).contains(&floor), "floor {floor} vs paper 0.10");
    assert!(
        top / floor > 1.3,
        "spread {:.2}x vs paper ~1.8x",
        top / floor
    );
    assert!(
        pts.last().expect("points").2,
        "1.4 GHz must be achievable (paper plot reaches ~1.4–1.5 GHz)"
    );
}

/// E7: the custom application-specific topology needs the fewest clock
/// cycles but runs the slowest clock (its clustered switches have higher
/// radix), while meshes clock faster — the paper's 925/850 MHz meshes vs
/// the 780 MHz custom topology.
#[test]
fn e7_custom_topology_tradeoff() {
    use xpipes_bench::experiments::{e7_eval_config, topology_comparison};
    let rows = topology_comparison(&e7_eval_config()).expect("comparison");
    let custom = rows
        .iter()
        .find(|r| r.name == "custom")
        .expect("custom candidate");
    let meshes: Vec<_> = rows.iter().filter(|r| r.name.starts_with("mesh")).collect();
    assert!(!meshes.is_empty());
    // Fewest cycles of latency...
    for m in &meshes {
        assert!(
            custom.latency_cycles <= m.latency_cycles + 0.5,
            "custom {} cyc vs {} {} cyc",
            custom.latency_cycles,
            m.name,
            m.latency_cycles
        );
    }
    // ...but the slowest clock, in roughly the paper's ratio (780/925 ≈ 0.84).
    let fastest_mesh = meshes.iter().map(|m| m.fmax_mhz).fold(0.0, f64::max);
    let ratio = custom.fmax_mhz / fastest_mesh;
    assert!(
        (0.70..0.98).contains(&ratio),
        "custom/mesh clock ratio {ratio} (paper: ~0.84)"
    );
}

/// E8: 7 → 2 pipeline stages saves 5 cycles per switch traversal.
#[test]
fn e8_pipeline_stage_reduction() {
    let p = pipeline_latency().expect("measurement");
    let per_traversal = (p.legacy_cycles - p.lite_cycles) / 4.0;
    assert!(
        (4.5..5.5).contains(&per_traversal),
        "per-traversal saving {per_traversal} vs paper's 5 stages"
    );
}

/// Cross-check: the synthesis target knob works — the same netlist at a
/// relaxed clock is never bigger than at 1 GHz.
#[test]
fn relaxed_targets_never_cost_more() {
    for netlist in [
        switch_netlist(&SwitchConfig::new(4, 4, 32)),
        initiator_ni_netlist(&NiConfig::new(32)),
        target_ni_netlist(&NiConfig::new(32)),
    ] {
        let relaxed = synthesize(&netlist, 300.0).expect("easy target");
        let tight = synthesize(&netlist, 1000.0).expect("paper target");
        assert!(
            relaxed.area_mm2 <= tight.area_mm2 + 1e-12,
            "{}",
            netlist.name()
        );
    }
}
