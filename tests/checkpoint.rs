//! Restore-equivalence conformance suite for the checkpoint subsystem.
//!
//! The contract under test: a run checkpointed at cycle C and restored
//! into a freshly assembled network resumes **bit-exactly** — the final
//! report JSON (telemetry timeline, attribution report, Perfetto
//! export), the work fingerprint (cycles / flits routed / packets
//! delivered), and the VCD waveform hash are byte-identical to the
//! uninterrupted run. That holds with fault injection, the protocol
//! monitor, telemetry, and attribution all active across the
//! checkpoint boundary. On top of it: a campaign killed part-way and
//! resumed from journaled grid points assembles a report byte-identical
//! to an uninterrupted run at any worker count, and a damaged snapshot
//! container is rejected before it can poison a network.

use xpipes::monitor::MonitorConfig;
use xpipes::noc::{Noc, TelemetryConfig};
use xpipes_ocp::Request;
use xpipes_sim::{FaultPlan, SimRng, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use xpipes_traffic::faultcampaign::{
    assemble_report, campaign_spec, run_campaign, run_campaign_parallel, run_grid_point,
    CampaignConfig, CompletedPoint,
};
use xpipes_traffic::generator::{Injector, InjectorConfig};
use xpipes_traffic::pattern::Pattern;

/// FNV-1a 64-bit — tiny, dependency-free, and stable across platforms.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const SEED: u64 = 7;
const TOTAL_CYCLES: u64 = 4000;

fn reference_plan() -> FaultPlan {
    FaultPlan {
        flit_corruption_rate: 0.02,
        ack_loss_rate: 0.01,
        ..FaultPlan::none()
    }
}

/// A fully instrumented network: fault injection plus every observer the
/// simulator offers — the hardest state a checkpoint has to carry.
fn instrumented_noc() -> Noc {
    let mut noc = Noc::with_faults(&campaign_spec(), SEED, &reference_plan()).expect("assembles");
    noc.enable_trace();
    noc.enable_monitor(MonitorConfig {
        liveness_bound: 100_000,
        max_violations: 64,
    });
    noc.enable_telemetry(TelemetryConfig::full());
    noc.enable_attribution();
    noc
}

fn fresh_injector() -> Injector {
    Injector::new(
        &campaign_spec(),
        InjectorConfig::new(0.05, Pattern::Uniform),
        SEED ^ 0x5EED,
    )
    .expect("injector")
}

/// Advances the run over absolute cycles `[from, to)` with the campaign
/// drain cadence, so the schedule is identical whether or not the span
/// was split by a checkpoint.
fn run_span(noc: &mut Noc, inj: &mut Injector, from: u64, to: u64) {
    for cycle in from..to {
        inj.step(noc);
        if cycle % 512 == 511 {
            inj.drain_responses(noc);
        }
    }
}

/// Everything the acceptance criteria compare byte-for-byte.
#[derive(Debug, PartialEq)]
struct Artifacts {
    /// Work fingerprint: the simulated-work fields of [`Noc::stats`].
    cycles: u64,
    packets_delivered: u64,
    flits_routed: u64,
    retransmissions: u64,
    /// Full waveform and its golden hash.
    vcd: String,
    vcd_fnv64: u64,
    /// Report JSON from each observer.
    timeline_json: String,
    attribution_json: String,
    perfetto_json: String,
    telemetry_summary: String,
}

fn finish(mut noc: Noc, inj: &mut Injector) -> Artifacts {
    noc.run_until_idle(TOTAL_CYCLES / 2);
    inj.drain_responses(&mut noc);
    noc.flush_telemetry();
    let stats = noc.stats();
    let vcd = noc.vcd().expect("tracing enabled");
    Artifacts {
        cycles: stats.cycles,
        packets_delivered: stats.packets_delivered,
        flits_routed: stats.flits_routed,
        retransmissions: stats.retransmissions,
        vcd_fnv64: fnv64(vcd.as_bytes()),
        vcd,
        timeline_json: noc.timeline_json().expect("timeline enabled"),
        attribution_json: noc
            .attribution_report()
            .expect("attribution enabled")
            .render(),
        perfetto_json: noc.perfetto_json().expect("telemetry enabled"),
        telemetry_summary: format!("{:?}", noc.telemetry_summary()),
    }
}

/// The uninterrupted reference: inject for `TOTAL_CYCLES`, drain, report.
fn uninterrupted() -> Artifacts {
    let mut noc = instrumented_noc();
    let mut inj = fresh_injector();
    run_span(&mut noc, &mut inj, 0, TOTAL_CYCLES);
    finish(noc, &mut inj)
}

/// The same run split at cycle `c`: checkpoint network + injector into
/// bytes, rebuild both from scratch, restore, and run the remainder.
///
/// The VCD writer checkpoints its *emission state*, not the emitted
/// text — the first process keeps the document it already wrote and the
/// restored process continues the change stream, so the two halves are
/// concatenated here before comparing against the uninterrupted dump.
fn split_at(c: u64) -> Artifacts {
    let mut noc = instrumented_noc();
    let mut inj = fresh_injector();
    run_span(&mut noc, &mut inj, 0, c);
    let noc_bytes = noc.checkpoint();
    let mut w = SnapshotWriter::new();
    inj.save_state(&mut w);
    let inj_bytes = w.finish();
    let vcd_head = noc.vcd().expect("tracing enabled");
    drop((noc, inj));

    let mut noc = instrumented_noc();
    let mut inj = fresh_injector();
    noc.restore(&noc_bytes).expect("restores");
    let mut r = SnapshotReader::open(&inj_bytes).expect("opens");
    inj.load_state(&mut r).expect("loads");
    r.finish().expect("no trailing bytes");
    run_span(&mut noc, &mut inj, c, TOTAL_CYCLES);
    let mut artifacts = finish(noc, &mut inj);
    artifacts.vcd = format!("{vcd_head}{}", artifacts.vcd);
    artifacts.vcd_fnv64 = fnv64(artifacts.vcd.as_bytes());
    artifacts
}

/// The headline acceptance criterion: for several checkpoint cycles C —
/// early, mid-run, and late — the restored continuation is
/// byte-identical to the uninterrupted run in every artifact.
#[test]
fn restore_is_byte_identical_to_uninterrupted_run() {
    let reference = uninterrupted();
    assert!(
        reference.packets_delivered > 0,
        "reference run must do real work"
    );
    for c in [512, 1500, 3327] {
        let resumed = split_at(c);
        assert_eq!(
            resumed, reference,
            "run split at cycle {c} diverged from the uninterrupted run"
        );
    }
}

/// The checkpoint bytes themselves are deterministic: capturing the same
/// run state twice yields identical containers, so journal files and
/// warm-start blobs can be byte-diffed.
#[test]
fn checkpoint_bytes_are_deterministic() {
    let capture = || {
        let mut noc = instrumented_noc();
        let mut inj = fresh_injector();
        run_span(&mut noc, &mut inj, 0, 1000);
        noc.checkpoint()
    };
    assert_eq!(capture(), capture());
}

/// Damaged containers are rejected up front: a flipped payload byte
/// fails the integrity hash, a truncated container fails cleanly, and
/// a checkpoint from a differently shaped network is refused — none of
/// them may silently poison a restored run.
#[test]
fn damaged_snapshots_are_rejected() {
    let mut noc = instrumented_noc();
    let mut inj = fresh_injector();
    run_span(&mut noc, &mut inj, 0, 600);
    let good = noc.checkpoint();

    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    match noc.restore(&flipped) {
        Err(SnapshotError::IntegrityMismatch { .. }) => {}
        other => panic!("flipped byte must fail the integrity hash, got {other:?}"),
    }

    match noc.restore(&good[..good.len() / 3]) {
        Err(SnapshotError::Truncated) => {}
        other => panic!("truncated container must be rejected, got {other:?}"),
    }

    let mut b = xpipes_topology::builders::mesh(2, 2).expect("builds");
    let cpu = b.attach_initiator("cpu", (0, 0)).expect("attaches");
    let _ = cpu;
    let mem = b.attach_target("mem", (1, 1)).expect("attaches");
    let mut spec = xpipes_topology::spec::NocSpec::new("tiny", b.into_topology());
    spec.map_address(mem, 0x0, 0x10000).expect("maps");
    let mut tiny = Noc::new(&spec).expect("assembles");
    match tiny.restore(&good) {
        Err(SnapshotError::Malformed(_)) => {}
        other => panic!("wrong-shaped network must be refused, got {other:?}"),
    }

    // The original network still restores the intact container.
    noc.restore(&good).expect("intact container still restores");
}

/// Drives deterministic offered load over absolute cycles `[from, to)`
/// with the supplied kernel stepper. Unlike [`run_span`] this does not
/// go through the `Injector` (whose `step` hardwires the production
/// kernel), so the same schedule can be replayed under either kernel.
fn manual_span(noc: &mut Noc, rng: &mut SimRng, from: u64, to: u64, step: fn(&mut Noc)) {
    let spec = campaign_spec();
    let initiators: Vec<_> = spec
        .topology
        .nis_of_kind(xpipes_topology::NiKind::Initiator)
        .map(|a| a.ni)
        .collect();
    let windows: Vec<_> = spec
        .topology
        .nis_of_kind(xpipes_topology::NiKind::Target)
        .map(|a| {
            let r = spec.range_of(a.ni).expect("target mapped");
            (r.base, r.size)
        })
        .collect();
    for cycle in from..to {
        for &ni in &initiators {
            if !rng.chance(0.05) {
                continue;
            }
            let (base, size) = windows[rng.below(windows.len())];
            let addr = base + (rng.next_u64() % (size / 8).max(1)) * 8;
            let req = if rng.chance(0.5) {
                Request::read(addr, 4)
            } else {
                Request::write(addr, (0..4u64).collect())
            };
            if let Ok(r) = req {
                let _ = noc.submit(ni, r);
            }
        }
        step(noc);
        if cycle % 512 == 511 {
            for &ni in &initiators {
                while let Ok(Some(_)) = noc.take_response(ni) {}
            }
        }
    }
}

/// Cross-kernel restore: a snapshot written at cycle C by a network
/// stepped with the **reference** full-scan kernel restores into a fresh
/// network that continues under the **event-wheel** kernel, and the
/// continuation is byte-identical to an uninterrupted event-kernel run.
/// The snapshot carries only architectural state — the event schedule is
/// rebuilt from it, so kernel choice before the checkpoint must be
/// unobservable after it.
#[test]
fn reference_kernel_checkpoint_restores_into_event_kernel() {
    const SPLIT: u64 = 1700;
    let observe = |mut noc: Noc| {
        noc.flush_telemetry();
        let stats = noc.stats();
        (
            stats.cycles,
            stats.packets_delivered,
            stats.flits_routed,
            stats.retransmissions,
            noc.timeline_json().expect("timeline enabled"),
            noc.attribution_report()
                .expect("attribution enabled")
                .render(),
            fnv64(&noc.checkpoint()),
        )
    };
    let fresh = || {
        let mut noc =
            Noc::with_faults(&campaign_spec(), SEED, &reference_plan()).expect("assembles");
        noc.enable_telemetry(TelemetryConfig::full());
        noc.enable_attribution();
        noc
    };

    // Uninterrupted run, production kernel throughout.
    let mut noc = fresh();
    let mut rng = SimRng::seed(SEED ^ 0xD1FF);
    manual_span(&mut noc, &mut rng, 0, TOTAL_CYCLES, Noc::step);
    let uninterrupted = observe(noc);

    // Reference kernel to the split, snapshot both the network and the
    // load generator, then restore and continue under the event kernel.
    let mut noc = fresh();
    let mut rng = SimRng::seed(SEED ^ 0xD1FF);
    manual_span(&mut noc, &mut rng, 0, SPLIT, Noc::step_reference);
    let noc_bytes = noc.checkpoint();
    let mut w = SnapshotWriter::new();
    w.rng(&rng);
    let rng_bytes = w.finish();
    drop(noc);

    let mut noc = fresh();
    noc.restore(&noc_bytes).expect("restores");
    let mut r = SnapshotReader::open(&rng_bytes).expect("opens");
    let mut rng = r.rng().expect("loads");
    r.finish().expect("no trailing bytes");
    manual_span(&mut noc, &mut rng, SPLIT, TOTAL_CYCLES, Noc::step);
    let resumed = observe(noc);

    assert_eq!(
        resumed, uninterrupted,
        "reference-kernel snapshot diverged under event-kernel continuation"
    );
}

/// A campaign killed part-way and resumed from its journal produces a
/// report byte-identical to an uninterrupted run — regardless of how
/// many workers either half used. Grid points are journaled through the
/// binary codec (`CompletedPoint::to_bytes`), exactly as the
/// `faultcampaign --resume` journal stores them.
#[test]
fn killed_and_resumed_campaign_report_is_byte_identical_across_jobs() {
    let spec = campaign_spec();
    let faults = [
        xpipes_sim::FaultKind::FlitCorruption,
        xpipes_sim::FaultKind::AckLoss,
    ];
    let mut cfg = CampaignConfig::new(11, 3000);
    cfg.error_rates = vec![0.01, 0.03];

    let uninterrupted = run_campaign(&spec, &faults, &cfg).expect("runs").to_json();

    // "Crash" after the first three grid points: journal them to bytes,
    // decode them back (as a resume would), then finish the rest in a
    // different order and assemble.
    let grid = 1 + faults.len() as u64 * 2;
    let first: Vec<Vec<u8>> = (0..3)
        .map(|i| {
            run_grid_point(&spec, &faults, &cfg, i, None)
                .expect("runs")
                .to_bytes()
        })
        .collect();
    let mut points: Vec<CompletedPoint> = first
        .iter()
        .map(|b| CompletedPoint::from_bytes(b).expect("round-trips"))
        .collect();
    for i in (3..grid).rev() {
        points.push(run_grid_point(&spec, &faults, &cfg, i, None).expect("runs"));
    }
    let resumed = assemble_report(&spec, &faults, &cfg, points).to_json();
    assert_eq!(
        resumed, uninterrupted,
        "journal-resumed report must be byte-identical"
    );

    for jobs in [1, 2, 4] {
        let parallel = run_campaign_parallel(&spec, &faults, &cfg, jobs)
            .expect("runs")
            .to_json();
        assert_eq!(
            parallel, uninterrupted,
            "report must be byte-identical at {jobs} workers"
        );
    }
}
