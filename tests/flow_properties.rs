//! Property tests on the design-flow algorithms: routing discipline,
//! mapping feasibility, floorplan optimization and sizing monotonicity.

use proptest::prelude::*;

use xpipes_sunmap::floorplan::{floorplan, optimize};
use xpipes_sunmap::mapping::map_to_mesh;
use xpipes_topology::builders::{mesh, ring};
use xpipes_topology::route::RoutingTables;
use xpipes_topology::{CoreKind, NocSpec, TaskGraph};

fn random_graph(cores: usize, flows: &[(usize, usize, u16)]) -> TaskGraph {
    let mut g = TaskGraph::new("rand");
    let ids: Vec<_> = (0..cores)
        .map(|i| g.add_core(format!("c{i}"), CoreKind::Both))
        .collect();
    for &(a, b, bw) in flows {
        let (a, b) = (a % cores, b % cores);
        if a != b {
            let _ = g.add_flow(ids[a], ids[b], f64::from(bw) + 1.0);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every route on any mesh with any NI placement is XY-monotone.
    #[test]
    fn all_mesh_routes_are_xy(
        cols in 2usize..6,
        rows in 2usize..6,
        placements in prop::collection::vec((0usize..5, 0usize..5, any::<bool>()), 2..8),
    ) {
        let mut b = mesh(cols, rows).expect("builds");
        let mut attached = 0;
        let mut has_ini = false;
        let mut has_tgt = false;
        for (i, &(x, y, initiator)) in placements.iter().enumerate() {
            let at = (x % cols, y % rows);
            let ok = if initiator {
                b.attach_initiator(format!("i{i}"), at).is_ok()
            } else {
                b.attach_target(format!("t{i}"), at).is_ok()
            };
            if ok {
                attached += 1;
                has_ini |= initiator;
                has_tgt |= !initiator;
            }
        }
        prop_assume!(attached >= 2 && has_ini && has_tgt);
        let topo = b.into_topology();
        let tables = RoutingTables::build(&topo).expect("routable mesh");
        for ni in topo.nis() {
            for (_, route) in tables.lut_for(ni.ni) {
                let hops = route.hops();
                let transit = &hops[..hops.len().saturating_sub(1)];
                let mut seen_y = false;
                for p in transit {
                    match p.0 {
                        0 | 1 => prop_assert!(!seen_y, "route {route} violates XY"),
                        2 | 3 => seen_y = true,
                        _ => prop_assert!(false, "non-direction transit port in {route}"),
                    }
                }
            }
        }
    }

    /// Mapping always respects switch capacity, and its cost is bounded
    /// below by the total bandwidth (every flow travels at least its
    /// ejection hop).
    #[test]
    fn mapping_feasible_and_cost_bounded(
        cores in 2usize..10,
        flows in prop::collection::vec((0usize..10, 0usize..10, 1u16..500), 1..12),
        seed in 0u64..100,
    ) {
        let g = random_graph(cores, &flows);
        prop_assume!(!g.flows().is_empty());
        let cap = 2;
        let slots_needed = cores.div_ceil(cap);
        let side = (slots_needed as f64).sqrt().ceil() as usize;
        let rows = slots_needed.div_ceil(side).max(1);
        let m = map_to_mesh(&g, side.max(1), rows, cap, seed).expect("fits");
        prop_assert!(m.occupancy().iter().all(|&o| o <= cap));
        prop_assert!(m.cost(&g) >= g.total_bandwidth());
    }

    /// The floorplan optimizer never makes total wire length worse.
    #[test]
    fn floorplan_optimize_never_regresses(n in 3usize..12) {
        let spec = NocSpec::new("ring", ring(n).expect("builds"));
        let base = floorplan(&spec);
        let tuned = optimize(&spec, &base);
        prop_assert!(tuned.total_wire_mm <= base.total_wire_mm + 1e-9);
        prop_assert!(tuned.max_link_mm <= base.max_link_mm + 1e-9);
    }
}

/// Sizing monotonicity on a real component: tightening the target never
/// shrinks area, and met targets stay met when relaxed.
#[test]
fn component_sizing_is_monotone() {
    use xpipes::config::SwitchConfig;
    use xpipes_synth::components::switch_netlist;
    use xpipes_synth::report::synthesize;

    let netlist = switch_netlist(&SwitchConfig::new(3, 3, 32));
    let mut last_area = 0.0;
    for target in [300.0, 600.0, 900.0, 1050.0] {
        let r = synthesize(&netlist, target).expect("reachable targets");
        assert!(
            r.area_mm2 + 1e-12 >= last_area,
            "area shrank at {target} MHz: {} < {last_area}",
            r.area_mm2
        );
        last_area = r.area_mm2;
        assert!(r.fmax_mhz >= target);
    }
}
