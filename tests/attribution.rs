//! Conformance suite for the per-packet latency attribution subsystem.
//!
//! Pins the attribution acceptance criteria end to end: the phase
//! decomposition conserves latency exactly on the seeded reference mesh
//! with and without fault injection (`incomplete == 0` proves every
//! delivered packet summed exactly, even in release builds), attaching
//! the ledger never perturbs the simulated work, reports are
//! byte-deterministic, the run-diff explainer ranks an artificially
//! stalled link first, the Perfetto export nests attribution spans under
//! the flight-recorder trace, and campaign reports embed attribution
//! summaries without breaking parallel determinism.

use xpipes::noc::{Noc, NocStats, TelemetryConfig};
use xpipes_bench::cycle_engine::reference_spec;
use xpipes_sim::attribution::{self, Phase};
use xpipes_sim::{FaultKind, FaultPlan, Json};
use xpipes_topology::spec::NocSpec;
use xpipes_traffic::faultcampaign::{
    campaign_spec, run_campaign, run_campaign_parallel, CampaignConfig,
};
use xpipes_traffic::generator::{Injector, InjectorConfig};
use xpipes_traffic::pattern::Pattern;

/// Drives uniform-random traffic into `noc` and drains it completely.
fn drive(noc: &mut Noc, spec: &NocSpec, seed: u64, steps: u64) {
    let mut inj =
        Injector::new(spec, InjectorConfig::new(0.05, Pattern::Uniform), seed).expect("injector");
    for _ in 0..steps {
        inj.step(noc);
    }
    assert!(noc.run_until_idle(100_000), "network failed to drain");
    inj.drain_responses(noc);
}

/// Sums the canonical six-phase object from a parsed report.
fn phase_sum(phases: &Json) -> u64 {
    Phase::ALL
        .iter()
        .map(|p| {
            phases
                .get(p.name())
                .and_then(Json::as_u64)
                .expect("every phase key present")
        })
        .sum()
}

/// The tentpole acceptance criterion, fault-free half: on the seeded
/// reference 4x4 mesh every delivered packet decomposes into phases that
/// sum exactly to its end-to-end latency. `decompose` rejects inexact
/// sums, so `incomplete == 0` is the conservation proof.
#[test]
fn conservation_holds_on_reference_mesh() {
    let spec = reference_spec();
    let mut noc = Noc::with_seed(&spec, 42).expect("instantiates");
    noc.enable_attribution();
    drive(&mut noc, &spec, 42 ^ 0x5EED, 3000);

    let a = noc.attribution().expect("enabled");
    assert!(a.delivered() > 200, "delivered only {}", a.delivered());
    assert_eq!(a.incomplete(), 0, "a packet failed exact decomposition");
    assert_eq!(a.in_flight(), 0, "drained network must retire every ledger");

    let report = noc.attribution_report().expect("enabled");
    let flows = report
        .get("flows")
        .and_then(Json::as_array)
        .expect("flows array");
    assert!(!flows.is_empty());
    for f in flows {
        let worst = f.get("worst").expect("worst exemplar");
        let total = worst.get("total").and_then(Json::as_u64).expect("total");
        assert_eq!(
            phase_sum(worst.get("phases").expect("phases")),
            total,
            "exemplar phases must sum to its end-to-end latency"
        );
        let lat = f.get("latency").expect("latency");
        let p50 = lat.get("p50").and_then(Json::as_u64).unwrap();
        let p99 = lat.get("p99").and_then(Json::as_u64).unwrap();
        let max = lat.get("max").and_then(Json::as_u64).unwrap();
        assert!(p50 <= p99, "histogram percentiles out of order");
        assert!(total <= max || max < total + 32, "exemplar beyond max");
    }
    // Per-component phase totals telescope up to the global totals.
    let global = phase_sum(report.get("phase_totals").expect("phase_totals"));
    let component_sum: u64 = report
        .get("components")
        .and_then(Json::as_array)
        .expect("components")
        .iter()
        .map(|c| c.get("total").and_then(Json::as_u64).expect("total"))
        .sum();
    assert_eq!(global, component_sum);
}

/// Conservation under fault injection: corruption, ACK loss, and
/// transient stalls stretch packets with retransmissions and replays —
/// the decomposition must still sum exactly, with the extra latency
/// landing in the retransmission-penalty phase.
#[test]
fn conservation_holds_under_fault_injection() {
    let spec = reference_spec();
    let plan = FaultPlan {
        flit_corruption_rate: 0.01,
        corruption_burst_len: 2,
        ack_loss_rate: 0.01,
        ack_corruption_rate: 0.005,
        stall_rate: 0.0005,
        stall_len: 12,
    };
    let mut noc = Noc::with_faults(&spec, 97, &plan).expect("instantiates");
    noc.enable_attribution();
    drive(&mut noc, &spec, 97 ^ 0x5EED, 3000);

    let s = noc.attribution_summary().expect("enabled");
    assert!(s.packets > 200, "delivered only {}", s.packets);
    assert_eq!(s.incomplete, 0, "faults broke exact decomposition");
    assert_eq!(s.in_flight, 0);
    assert!(noc.stats().retransmissions > 0, "plan injected no faults");
    assert!(
        s.phase_totals[Phase::RetxPenalty.index()] > 0,
        "retransmissions must surface in the penalty phase"
    );
}

/// Attribution is observability, not behaviour: with the ledger attached
/// the simulated work is identical to the bare engine, packet for packet.
#[test]
fn attribution_never_perturbs_the_simulation() {
    let run = |attr: bool| -> NocStats {
        let spec = reference_spec();
        let mut noc = Noc::with_seed(&spec, 23).expect("instantiates");
        if attr {
            noc.enable_attribution();
        }
        drive(&mut noc, &spec, 23 ^ 0x5EED, 1500);
        noc.stats().clone()
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(off.packets_sent, on.packets_sent);
    assert_eq!(off.packets_delivered, on.packets_delivered);
    assert_eq!(off.flits_routed, on.flits_routed);
    assert_eq!(off.retransmissions, on.retransmissions);
    assert_eq!(off.cycles, on.cycles);
}

/// The full report renders byte-identically for a fixed seed.
#[test]
fn report_is_byte_deterministic() {
    let render = || {
        let spec = reference_spec();
        let mut noc = Noc::with_seed(&spec, 31).expect("instantiates");
        noc.enable_attribution();
        drive(&mut noc, &spec, 31 ^ 0x5EED, 1200);
        noc.attribution_report().expect("enabled").render()
    };
    assert_eq!(render(), render());
}

/// The run-diff regression explainer: a degraded link — one switch
/// output repeatedly stalling for short bursts — must rank that link's
/// channel as the top mover, in a queueing phase, with a positive delta.
///
/// The bursts are kept short (30 cycles every 250) so the network's own
/// buffering absorbs the backpressure: a single long stall is honestly
/// attributed mostly to source-queue residency at the blocked NIs, which
/// is true but points upstream of the culprit.
#[test]
fn diff_ranks_artificially_stalled_link_first() {
    let spec = reference_spec();
    let run = |stall: Option<(usize, usize)>| -> Json {
        let mut noc = Noc::with_seed(&spec, 42).expect("instantiates");
        noc.enable_attribution();
        let mut inj = Injector::new(
            &spec,
            InjectorConfig::new(0.05, Pattern::Uniform),
            42 ^ 0x5EED,
        )
        .expect("injector");
        for cycle in 0..2500u64 {
            if let Some((s, p)) = stall {
                if cycle >= 500 && (cycle - 500) % 250 == 0 {
                    noc.stall_switch_output(s, p, 30);
                }
            }
            inj.step(&mut noc);
        }
        assert!(noc.run_until_idle(100_000), "network failed to drain");
        inj.drain_responses(&mut noc);
        noc.attribution_report().expect("enabled")
    };

    let baseline = run(None);
    // Pick the busiest switch-driven channel from the baseline so the
    // stall actually sits in a traffic path.
    let (label, _) = baseline
        .get("components")
        .and_then(Json::as_array)
        .expect("components")
        .iter()
        .filter_map(|c| {
            let l = c.get("channel")?.as_str()?;
            if !l.starts_with("sw") {
                return None;
            }
            Some((l.to_string(), c.get("total")?.as_u64()?))
        })
        .max_by_key(|&(_, t)| t)
        .expect("a switch-driven channel carries traffic");
    // Parse "sw{S}.p{P}->..." back into the stall coordinates.
    let body = &label[2..label.find("->").expect("label arrow")];
    let (s, p) = body.split_once(".p").expect("switch port label");
    let current = run(Some((
        s.parse().expect("switch index"),
        p.parse().expect("port index"),
    )));

    let d = attribution::diff(&baseline, &current).expect("reports parse");
    assert!(d.current_total > d.baseline_total, "stall added no latency");
    let top = d.entries.first().expect("movers found");
    assert_eq!(top.channel, label, "stalled link must rank first");
    assert!(top.delta() > 0);
    assert!(
        top.phase == "output_queue" || top.phase == "arbitration_stall",
        "stall must surface as queueing, got {}",
        top.phase
    );
    // The rendering is itself deterministic and names the culprit first.
    let text = d.render(5);
    let culprit = text
        .lines()
        .find(|l| l.trim_start().starts_with("1."))
        .expect("ranked mover line");
    assert!(
        culprit.contains(&label),
        "render buries the culprit: {text}"
    );
}

/// Attribution spans ride in the Perfetto trace next to the flight
/// recorder's events: pid 1, complete (`X`) spans, one thread per flow.
#[test]
fn perfetto_export_nests_attribution_spans() {
    let spec = reference_spec();
    let mut noc = Noc::with_seed(&spec, 11).expect("instantiates");
    noc.enable_telemetry(TelemetryConfig {
        flight_recorder_depth: 1024,
        ..TelemetryConfig::default()
    });
    noc.enable_attribution();
    drive(&mut noc, &spec, 11 ^ 0x5EED, 1000);

    let trace = noc.perfetto_json().expect("recorder enabled");
    let doc = Json::parse(&trace).expect("trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents");
    let spans: Vec<_> = events
        .iter()
        .filter(|e| e.get("cat").and_then(Json::as_str) == Some("attribution"))
        .collect();
    assert!(!spans.is_empty(), "no attribution spans exported");
    for e in &spans {
        assert_eq!(e.get("pid").and_then(Json::as_u64), Some(1));
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        assert!(e.get("dur").and_then(Json::as_u64).is_some());
    }
    // The recorder's own events are still present on pid 0.
    assert!(events
        .iter()
        .any(|e| e.get("pid").and_then(Json::as_u64) == Some(0)));
}

/// Campaign grid points embed attribution summaries, and fanning the grid
/// across workers still reproduces the serial report byte for byte.
#[test]
fn campaign_reports_embed_attribution_deterministically() {
    let spec = campaign_spec();
    let mut cfg = CampaignConfig::new(7, 1200);
    cfg.error_rates = vec![0.02];
    let serial = run_campaign(&spec, &[FaultKind::FlitCorruption], &cfg).expect("serial campaign");
    let json = serial.to_json();
    assert!(json.contains("\"attribution\""));
    assert!(json.contains("\"phase_totals\""));
    let base = serial
        .baseline
        .attribution
        .as_ref()
        .expect("baseline embeds attribution");
    assert!(base.packets > 0);
    assert_eq!(base.incomplete, 0, "campaign baseline broke conservation");
    for run in &serial.runs {
        let a = run
            .summary
            .attribution
            .as_ref()
            .expect("grid point embeds attribution");
        assert_eq!(
            a.incomplete, 0,
            "{} @ {} broke conservation",
            run.fault, run.rate
        );
    }
    let parallel = run_campaign_parallel(&spec, &[FaultKind::FlitCorruption], &cfg, 4)
        .expect("parallel campaign");
    assert_eq!(json, parallel.to_json());
}
