//! OCP protocol compliance at the network boundary: every transaction
//! entering an initiator NI and every response returned to the core is
//! checked against the OCP beat rules by the protocol monitor.

use xpipes::noc::Noc;
use xpipes_ocp::transaction::RequestBuilder;
use xpipes_ocp::{BurstSeq, MCmd, Monitor, Request, ThreadId};
use xpipes_repro::{test_platform, window_base};

/// Runs a list of requests through the network while a monitor observes
/// the OCP-side beat streams; returns the monitor.
fn run_monitored(requests: Vec<(usize, Request)>) -> Monitor {
    let (spec, cpus, _) = test_platform(2).expect("platform");
    let mut noc = Noc::new(&spec).expect("instantiates");
    let mut monitor = Monitor::new();
    for (cpu, req) in requests {
        for beat in req.to_beats() {
            monitor.observe_request(&beat);
        }
        noc.submit(cpus[cpu], req).expect("mapped");
    }
    assert!(noc.run_until_idle(100_000), "network must drain");
    for &cpu in &cpus {
        while let Some(resp) = noc.take_response(cpu).expect("initiator") {
            for beat in resp.to_beats() {
                monitor.observe_response(&beat);
            }
        }
    }
    monitor
}

#[test]
fn mixed_traffic_is_protocol_clean() {
    let reqs = vec![
        (
            0,
            Request::write(window_base(0), vec![1, 2, 3]).expect("valid"),
        ),
        (0, Request::read(window_base(0), 3).expect("valid")),
        (
            1,
            Request::write(window_base(1) + 0x40, vec![9]).expect("valid"),
        ),
        (
            1,
            RequestBuilder::new(MCmd::WriteNonPost, window_base(1) + 0x80)
                .data(vec![5, 6])
                .tag(3)
                .build()
                .expect("valid"),
        ),
        (0, Request::read(window_base(1) + 0x40, 1).expect("valid")),
    ];
    let monitor = run_monitored(reqs);
    assert!(monitor.is_clean(), "violations: {:?}", monitor.violations());
    assert_eq!(monitor.outstanding(), 0, "all responses must have arrived");
    assert!(monitor.requests_seen() >= 5);
    assert!(
        monitor.responses_seen() >= 3,
        "read burst + read + nonposted ack"
    );
}

#[test]
fn threaded_transactions_complete_per_thread() {
    let (spec, cpus, _) = test_platform(2).expect("platform");
    let mut noc = Noc::new(&spec).expect("instantiates");
    // Two threads issue interleaved reads; the thread ids must survive
    // the round trip (the paper's "supports threading extensions").
    for t in 0..2u8 {
        for i in 0..3u64 {
            let req = RequestBuilder::new(MCmd::Read, window_base(0) + (t as u64 * 64) + i * 8)
                .burst_len(1)
                .thread(ThreadId(t))
                .tag((t * 4 + i as u8) % 16)
                .build()
                .expect("valid");
            noc.submit(cpus[0], req).expect("mapped");
        }
    }
    assert!(noc.run_until_idle(100_000));
    let mut per_thread = [0usize; 2];
    while let Some(resp) = noc.take_response(cpus[0]).expect("initiator") {
        per_thread[resp.thread().0 as usize] += 1;
    }
    assert_eq!(per_thread, [3, 3], "each thread's responses kept their id");
}

#[test]
fn wrap_burst_round_trips_through_the_network() {
    let (spec, cpus, mems) = test_platform(2).expect("platform");
    let mut noc = Noc::new(&spec).expect("instantiates");
    // Preload a wrap-aligned line in target 0.
    for i in 0..4u64 {
        noc.memory_mut(mems[0])
            .expect("target")
            .poke(0x100 + i * 8, 0x70 + i);
    }
    // Critical-word-first read starting mid-line.
    let req = RequestBuilder::new(MCmd::Read, window_base(0) + 0x110)
        .burst_len(4)
        .burst_seq(BurstSeq::Wrap)
        .build()
        .expect("valid");
    noc.submit(cpus[0], req).expect("mapped");
    assert!(noc.run_until_idle(100_000));
    let resp = noc
        .take_response(cpus[0])
        .expect("initiator")
        .expect("completed");
    assert_eq!(
        resp.data(),
        &[0x72, 0x73, 0x70, 0x71],
        "wrap order preserved end to end"
    );
}

#[test]
fn sideband_flags_travel_with_requests() {
    let (spec, cpus, mems) = test_platform(2).expect("platform");
    let mut noc = Noc::new(&spec).expect("instantiates");
    let req = RequestBuilder::new(MCmd::Write, window_base(0))
        .data(vec![1])
        .sideband(xpipes_ocp::Sideband {
            interrupt: false,
            flags: 0b1010,
        })
        .build()
        .expect("valid");
    noc.submit(cpus[0], req).expect("mapped");
    assert!(noc.run_until_idle(100_000));
    // The flags rode the header; delivery implies the codec carried them
    // (unit tests check bit-exactness; here we check the write landed).
    assert_eq!(noc.memory(mems[0]).expect("target").peek(0), 1);
}
