//! Cross-crate integration: specification text → compiler → simulation →
//! verification, spanning every workspace crate.

use xpipes::noc::Noc;
use xpipes_compiler::{emit, instantiate, parse_spec, print_spec, routing_report};
use xpipes_ocp::Request;
use xpipes_repro::{test_platform, window_base};
use xpipes_traffic::pattern::Pattern;
use xpipes_traffic::{Injector, InjectorConfig};

#[test]
fn spec_text_to_running_network() {
    let text = "
noc itest {
  flit_width 32
  switch a
  switch b
  link a.0 <-> b.0 stages 1
  initiator cpu @ a.1
  target mem @ b.1 base 0x0 size 0x10000
}";
    let spec = parse_spec(text).expect("parses");
    assert_eq!(
        print_spec(&parse_spec(&print_spec(&spec)).expect("reparses")),
        print_spec(&spec)
    );

    let mut noc = instantiate(&spec).expect("instantiates");
    let cpu = spec.topology.ni_by_name("cpu").expect("exists").ni;
    let mem = spec.topology.ni_by_name("mem").expect("exists").ni;
    noc.submit(cpu, Request::write(0x100, vec![11, 22]).expect("valid"))
        .expect("mapped");
    assert!(noc.run_until_idle(5_000));
    assert_eq!(noc.memory(mem).expect("target").peek(0x100), 11);
    assert_eq!(noc.memory(mem).expect("target").peek(0x108), 22);
}

#[test]
fn compiler_views_cover_components() {
    let (spec, _, _) = test_platform(2).expect("platform");
    let verilog = emit::verilog_top(&spec);
    let systemc = emit::systemc_top(&spec);
    let report = routing_report(&spec).expect("routable");
    // Every NI appears in all three artefacts.
    for ni in spec.topology.nis() {
        let vname = ni.name.replace('#', "_");
        assert!(verilog.contains(&vname), "verilog misses {}", ni.name);
        assert!(systemc.contains(&vname), "systemc misses {}", ni.name);
        assert!(
            report.contains(&ni.name),
            "routing report misses {}",
            ni.name
        );
    }
}

#[test]
fn open_loop_traffic_conserves_packets() {
    let (spec, _, _) = test_platform(3).expect("platform");
    let mut noc = Noc::with_seed(&spec, 5).expect("instantiates");
    let mut inj =
        Injector::new(&spec, InjectorConfig::new(0.02, Pattern::Uniform), 17).expect("injector");
    inj.run(&mut noc, 3_000);
    assert!(noc.run_until_idle(100_000), "network must drain");
    let stats = noc.stats();
    // Conservation: every injected request packet is delivered, and every
    // read got exactly one response packet.
    assert_eq!(inj.rejected(), 0);
    assert!(stats.packets_sent >= inj.injected());
    assert_eq!(stats.packets_delivered, stats.packets_sent);
}

#[test]
fn unreliable_network_still_conserves() {
    let (mut spec, _, _) = test_platform(2).expect("platform");
    spec.link_error_rate = 0.08;
    let mut noc = Noc::with_seed(&spec, 3).expect("instantiates");
    let mut inj =
        Injector::new(&spec, InjectorConfig::new(0.01, Pattern::Neighbor), 23).expect("injector");
    inj.run(&mut noc, 2_000);
    assert!(
        noc.run_until_idle(500_000),
        "must drain despite 8% flit errors"
    );
    let stats = noc.stats();
    assert_eq!(stats.packets_delivered, stats.packets_sent);
    assert!(stats.flits_corrupted > 0, "errors must actually fire");
    assert!(stats.retransmissions >= stats.flits_corrupted);
}

#[test]
fn reads_return_written_data_across_the_mesh() {
    let (spec, cpus, _) = test_platform(3).expect("platform");
    let mut noc = Noc::new(&spec).expect("instantiates");
    // Each CPU writes a signature to a different memory, then reads it
    // back through the mesh.
    for (i, &cpu) in cpus.iter().enumerate() {
        let addr = window_base((i + 1) % 3) + 0x80;
        noc.submit(
            cpu,
            Request::write(addr, vec![0x1000 + i as u64]).expect("valid"),
        )
        .expect("mapped");
    }
    assert!(noc.run_until_idle(10_000));
    for (i, &cpu) in cpus.iter().enumerate() {
        let addr = window_base((i + 1) % 3) + 0x80;
        noc.submit(cpu, Request::read(addr, 1).expect("valid"))
            .expect("mapped");
    }
    assert!(noc.run_until_idle(10_000));
    for (i, &cpu) in cpus.iter().enumerate() {
        let resp = noc
            .take_response(cpu)
            .expect("initiator")
            .expect("completed");
        assert_eq!(resp.data(), &[0x1000 + i as u64], "cpu{i} readback");
    }
}

#[test]
fn legacy_switches_slow_the_same_network() {
    let (spec, cpus, _) = test_platform(2).expect("platform");
    let run = |extra: u32| {
        let mut s = spec.clone();
        s.extra_switch_stages = extra;
        let mut noc = Noc::new(&s).expect("instantiates");
        noc.submit(cpus[0], Request::read(window_base(0), 1).expect("valid"))
            .expect("mapped");
        assert!(noc.run_until_idle(10_000));
        noc.stats().transaction_latency.mean()
    };
    let lite = run(0);
    let legacy = run(5);
    assert!(legacy > lite + 10.0, "lite {lite} legacy {legacy}");
}

#[test]
fn saturated_mesh_never_deadlocks() {
    // XY routing keeps the wormhole mesh deadlock-free: saturate a 4x4
    // mesh far past capacity, then verify the network can always drain.
    let mut b = xpipes_topology::builders::mesh(4, 4).expect("builds");
    let mut targets = Vec::new();
    for i in 0..4 {
        b.attach_initiator(format!("c{i}"), (i, 0))
            .expect("attaches");
        targets.push(
            b.attach_target(format!("m{i}"), (3 - i, 3))
                .expect("attaches"),
        );
    }
    let mut spec = xpipes_topology::NocSpec::new("saturate", b.into_topology());
    for (i, t) in targets.into_iter().enumerate() {
        spec.map_address(t, (i as u64) << 20, 1 << 20)
            .expect("maps");
    }
    let mut noc = Noc::with_seed(&spec, 99).expect("instantiates");
    let mut inj = Injector::new(
        &spec,
        InjectorConfig::new(0.5, Pattern::Transpose), // far past saturation
        1234,
    )
    .expect("injector");
    inj.run(&mut noc, 15_000);
    // Stop injecting: everything in flight must eventually complete.
    assert!(
        noc.run_until_idle(300_000),
        "saturated network failed to drain: wormhole deadlock?"
    );
    let stats = noc.stats();
    assert_eq!(stats.packets_delivered, stats.packets_sent);
}
