//! Property-based tests on the protocol codecs and data structures:
//! packetization, header encoding, source routes, ACK/nACK delivery and
//! the spec text format.

use proptest::prelude::*;

use xpipes::config::LinkConfig;
use xpipes::flow_control::{LinkRx, LinkTx};
use xpipes::header::Header;
use xpipes::link::Link;
use xpipes::packet::{depacketize, packetize, Packet};
use xpipes::{Flit, FlitKind, FlitMeta};
use xpipes_compiler::{parse_spec, print_spec};
use xpipes_ocp::{BurstSeq, MCmd, SResp, Sideband, ThreadId};
use xpipes_sim::{Cycle, SimRng};
use xpipes_topology::route::SourceRoute;
use xpipes_topology::PortId;

fn arb_route() -> impl Strategy<Value = SourceRoute> {
    prop::collection::vec(0u8..=15, 1..=7).prop_map(|hops| {
        SourceRoute::new(hops.into_iter().map(PortId).collect()).expect("valid hops")
    })
}

fn arb_request_header() -> impl Strategy<Value = Header> {
    (
        arb_route(),
        0u8..=63,
        prop_oneof![
            Just(MCmd::Write),
            Just(MCmd::Read),
            Just(MCmd::ReadEx),
            Just(MCmd::WriteNonPost)
        ],
        1u8..=255,
        0u8..=15,
        0u8..=15,
        any::<bool>(),
        0u8..=15,
        prop_oneof![
            Just(BurstSeq::Incr),
            Just(BurstSeq::Wrap),
            Just(BurstSeq::Stream)
        ],
    )
        .prop_map(
            |(route, src, cmd, burst, thread, tag, interrupt, flags, seq)| {
                Header::request(
                    &route,
                    src,
                    cmd,
                    burst,
                    ThreadId(thread),
                    tag,
                    Sideband { interrupt, flags },
                )
                .expect("fields in range")
                .with_burst_seq(seq)
            },
        )
}

fn arb_response_header() -> impl Strategy<Value = Header> {
    (
        arb_route(),
        0u8..=63,
        prop_oneof![Just(SResp::Dva), Just(SResp::Fail), Just(SResp::Err)],
        1u8..=255,
        0u8..=15,
        0u8..=15,
    )
        .prop_map(|(route, src, resp, burst, thread, tag)| {
            Header::response(
                &route,
                src,
                resp,
                burst,
                ThreadId(thread),
                tag,
                Sideband::NONE,
            )
            .expect("fields in range")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn header_encode_decode_roundtrip(h in arb_request_header()) {
        let bits = h.encode();
        prop_assert!(bits < (1u64 << Header::TOTAL_BITS));
        prop_assert_eq!(Header::decode(bits).expect("valid image"), h);
    }

    #[test]
    fn response_header_roundtrip(h in arb_response_header()) {
        prop_assert_eq!(Header::decode(h.encode()).expect("valid image"), h);
    }

    #[test]
    fn route_encode_consume_matches_hops(route in arb_route()) {
        let mut bits = route.encode();
        for hop in route.hops() {
            let (port, rest) = SourceRoute::consume(bits);
            prop_assert_eq!(port, *hop);
            bits = rest;
        }
    }

    #[test]
    fn route_decode_inverts_encode(route in arb_route()) {
        prop_assert_eq!(SourceRoute::decode(route.encode(), route.len()), route);
    }

    #[test]
    fn packetize_depacketize_roundtrip(
        h in arb_request_header(),
        addr in 0u64..(1 << 32),
        payload in prop::collection::vec(0u64..(1 << 32), 0..12),
        flit_width in prop_oneof![Just(16u32), Just(24), Just(32), Just(64), Just(128)],
    ) {
        let packet = Packet::new(7, h, Some(addr), payload);
        let flits = packetize(&packet, flit_width, 32, Cycle::ZERO).expect("encodable");
        prop_assert_eq!(flits.len(), packet.flit_count(flit_width, 32));
        let back = depacketize(&flits, flit_width, 32).expect("decodable");
        prop_assert_eq!(back, packet);
    }

    #[test]
    fn response_packets_roundtrip(
        h in arb_response_header(),
        payload in prop::collection::vec(0u64..(1 << 32), 0..12),
        flit_width in prop_oneof![Just(16u32), Just(32), Just(128)],
    ) {
        let packet = Packet::new(9, h, None, payload);
        let flits = packetize(&packet, flit_width, 32, Cycle::ZERO).expect("encodable");
        let back = depacketize(&flits, flit_width, 32).expect("decodable");
        prop_assert_eq!(back, packet);
    }

    /// The ACK/nACK protocol delivers every flit exactly once, in order,
    /// across a pipelined link with arbitrary error and stall behaviour.
    #[test]
    fn acknack_delivers_exactly_once_in_order(
        error_rate in 0.0f64..0.3,
        stall_rate in 0.0f64..0.4,
        stages in 1u32..4,
        count in 1u64..40,
        seed in 0u64..1000,
    ) {
        let mut tx = LinkTx::new((2 * stages + 2) as usize);
        let mut rx = LinkRx::new();
        let mut link = Link::new(
            LinkConfig::new(stages).with_error_rate(error_rate),
            SimRng::seed(seed),
        );
        let mut stall_rng = SimRng::seed(seed ^ 0xFACE);
        let mut delivered: Vec<u64> = Vec::new();
        let mut next = 0u64;
        let mut rev_latch = None;
        // Generous budget: go-back-N under 30% errors is chatty.
        for _ in 0..400_000 {
            let new = if tx.ready_for_new() && next < count {
                let f = Flit::new(
                    FlitKind::Single,
                    next as u128,
                    FlitMeta::new(next, Cycle::ZERO, 0),
                );
                next += 1;
                Some(f)
            } else {
                None
            };
            let (fwd, rev) = link.shift(tx.transmit(new), rev_latch.take());
            tx.process(rev);
            if let Some(arrival) = fwd {
                let can_accept = !stall_rng.chance(stall_rate);
                let (d, reply) = rx.receive(arrival, can_accept);
                rev_latch = Some(reply);
                if let Some(f) = d {
                    delivered.push(f.meta.packet_id);
                }
            }
            if delivered.len() as u64 == count {
                break;
            }
        }
        prop_assert_eq!(&delivered, &(0..count).collect::<Vec<_>>());
    }

    /// The spec text format round-trips arbitrary small line topologies.
    #[test]
    fn spec_text_roundtrip(
        switches in 2usize..6,
        flit_width in prop_oneof![Just(16u32), Just(32), Just(64)],
        stages in 1u32..4,
        queue in 2u32..10,
    ) {
        let mut text = format!("noc p {{\n  flit_width {flit_width}\n  queue_depth {queue}\n");
        for i in 0..switches {
            text.push_str(&format!("  switch s{i}\n"));
        }
        for i in 0..switches - 1 {
            text.push_str(&format!("  link s{i}.0 <-> s{}.1 stages {stages}\n", i + 1));
        }
        text.push_str("  initiator cpu @ s0.2\n");
        text.push_str(&format!(
            "  target mem @ s{}.2 base 0x0 size 0x1000\n}}\n",
            switches - 1
        ));
        let spec = parse_spec(&text).expect("generated text parses");
        prop_assert!(spec.validate().is_ok());
        let printed = print_spec(&spec);
        let reparsed = parse_spec(&printed).expect("printed text parses");
        prop_assert_eq!(print_spec(&reparsed), printed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Checkpoint correctness leans on exact RNG stream positions: a
    /// generator rebuilt from its exported state must continue the draw
    /// stream bit-exactly, from any position and for any draw mix.
    #[test]
    fn rng_state_roundtrip_resumes_the_stream(
        seed in any::<u64>(),
        warmup in 0usize..200,
        draws in 1usize..100,
    ) {
        let mut rng = SimRng::seed(seed);
        for _ in 0..warmup {
            rng.next_u64();
        }
        let state = rng.state();
        let mut resumed = SimRng::from_state(state);
        for _ in 0..draws {
            prop_assert_eq!(rng.next_u64(), resumed.next_u64());
        }
        // Exporting again from the resumed copy is stable.
        prop_assert_eq!(rng.state(), resumed.state());
    }

    /// Child streams derived from one master seed never correlate: two
    /// children with distinct stream ids produce different draw
    /// sequences, and each is independent of how far its siblings have
    /// advanced.
    #[test]
    fn rng_child_streams_are_independent(
        seed in any::<u64>(),
        stream_a in 0u64..1000,
        offset in 1u64..1000,
        sibling_draws in 0usize..100,
    ) {
        let master = SimRng::seed(seed);
        let stream_b = stream_a + offset;

        // Distinct ids → distinct streams.
        let a: Vec<u64> = {
            let mut r = master.child(stream_a);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = master.child(stream_b);
            (0..16).map(|_| r.next_u64()).collect()
        };
        prop_assert_ne!(&a, &b, "distinct child streams must not collide");

        // A child's draws do not depend on sibling activity.
        let mut sibling = master.child(stream_b);
        for _ in 0..sibling_draws {
            sibling.next_u64();
        }
        let mut again = master.child(stream_a);
        let replay: Vec<u64> = (0..16).map(|_| again.next_u64()).collect();
        prop_assert_eq!(a, replay, "child stream must be a pure function of (seed, id)");
    }
}
