//! Closing the loop between the analytical routing co-design model and
//! the cycle-accurate simulator: the link loads SunMap *predicts* from
//! the task graph must match the traversals the network *measures* when
//! the same application actually runs.

use std::collections::HashMap;

use xpipes::noc::Noc;
use xpipes_sunmap::apps;
use xpipes_sunmap::codesign::link_loads;
use xpipes_sunmap::mapping::{build_spec, map_to_mesh};
use xpipes_topology::{PortId, SwitchId};
use xpipes_traffic::appdriven::AppTraffic;

#[test]
fn predicted_link_loads_match_measured_traversals() {
    let graph = apps::vopd().expect("app builds");
    let mapping = map_to_mesh(&graph, 3, 4, 1, 7).expect("fits");
    let spec = build_spec(&graph, &mapping, 32).expect("valid spec");

    // Analytical prediction (MB/s per directed switch-to-switch link).
    let predicted = link_loads(&spec, &graph).expect("routable");

    // Simulated measurement (flit traversals per link).
    let mut noc = Noc::with_seed(&spec, 7).expect("instantiates");
    let mut traffic = AppTraffic::new(&spec, &graph, 2.0e-5, 4, 7).expect("binds");
    traffic.run(&mut noc, 30_000);
    noc.run_until_idle(100_000);
    let measured: HashMap<(SwitchId, u8), u64> = noc
        .link_traversals()
        .into_iter()
        .map(|(s, p, n)| ((s, p), n))
        .collect();

    // Compare on switch-to-switch links only (the prediction also loads
    // ejection ports, which link_traversals does not report).
    let mut pairs: Vec<(f64, u64)> = Vec::new();
    for ((sw, port), mbps) in &predicted {
        if let Some(&count) = measured.get(&(*sw, port.0)) {
            pairs.push((*mbps, count));
        }
    }
    assert!(
        pairs.len() >= 5,
        "need a meaningful set of loaded links, got {}",
        pairs.len()
    );

    // Rank correlation: the heaviest predicted links must be the busiest
    // measured links. Use Spearman-style agreement over rank order.
    let mut by_pred = pairs.clone();
    by_pred.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    let mut by_meas = pairs.clone();
    by_meas.sort_by_key(|p| std::cmp::Reverse(p.1));
    // The top-3 predicted links must sit inside the top-half measured.
    let half: Vec<u64> = by_meas[..by_meas.len().div_ceil(2)]
        .iter()
        .map(|p| p.1)
        .collect();
    for (mbps, count) in &by_pred[..3] {
        assert!(
            half.contains(count),
            "predicted-hot link ({mbps} MB/s, {count} flits) not among busy measured links"
        );
    }

    // Unloaded links must be (almost) silent: links with no predicted
    // load carry no application flits.
    for ((sw, port), count) in &measured {
        if *count > 0 {
            let loaded = predicted.contains_key(&(*sw, PortId(*port)));
            assert!(
                loaded,
                "link {sw:?}.{port} carried {count} flits but had no predicted load"
            );
        }
    }
}

#[test]
fn traversal_counts_are_zero_on_an_idle_network() {
    let graph = apps::mwd().expect("app builds");
    let mapping = map_to_mesh(&graph, 3, 4, 1, 5).expect("fits");
    let spec = build_spec(&graph, &mapping, 32).expect("valid spec");
    let mut noc = Noc::new(&spec).expect("instantiates");
    noc.run(500);
    assert!(noc.link_traversals().iter().all(|&(_, _, n)| n == 0));
}
