//! Kernel-health observer contract tests.
//!
//! `KernelHealth` counts how the engine dispatched every step (event
//! kernel vs full-scan fallback, with a reason histogram), how often
//! time jumped and how many cycles that skipped. The counters are pure
//! functions of the seeded simulation: this suite pins that they are
//! deterministic across runs, agree between the event and reference
//! kernels on everything except the dispatch mix itself (which is the
//! very thing being measured — the reason histogram is exempt from
//! cross-kernel comparison), and that the fault-campaign progress
//! journal built on top of them is byte-identical across `--jobs`
//! worker counts.

use xpipes::monitor::MonitorConfig;
use xpipes::noc::Noc;
use xpipes_ocp::Request;
use xpipes_sim::{FallbackReason, FaultKind, FaultPlan, KernelHealth, SimRng};
use xpipes_topology::spec::NocSpec;
use xpipes_topology::NiId;
use xpipes_traffic::faultcampaign::{
    campaign_spec, progress_line, run_campaign_parallel, run_campaign_streaming, CampaignConfig,
};

/// Minimal deterministic open-loop driver (kernel-agnostic: stepping is
/// the caller's job).
struct Driver {
    rng: SimRng,
    initiators: Vec<NiId>,
    windows: Vec<(u64, u64)>,
}

impl Driver {
    fn new(spec: &NocSpec, seed: u64) -> Self {
        let initiators = spec
            .topology
            .nis_of_kind(xpipes_topology::NiKind::Initiator)
            .map(|a| a.ni)
            .collect();
        let windows = spec
            .topology
            .nis_of_kind(xpipes_topology::NiKind::Target)
            .map(|a| {
                let r = spec.range_of(a.ni).expect("target mapped");
                (r.base, r.size)
            })
            .collect();
        Driver {
            rng: SimRng::seed(seed),
            initiators,
            windows,
        }
    }

    fn inject(&mut self, noc: &mut Noc) {
        for idx in 0..self.initiators.len() {
            if !self.rng.chance(0.08) {
                continue;
            }
            let (base, size) = self.windows[self.rng.below(self.windows.len())];
            let addr = base + (self.rng.next_u64() % (size / 8).max(1)) * 8;
            if let Ok(req) = Request::read(addr, 4) {
                let _ = noc.submit(self.initiators[idx], req);
            }
        }
    }

    fn drain(&self, noc: &mut Noc) {
        for &ni in &self.initiators {
            while let Ok(Some(_)) = noc.take_response(ni) {}
        }
    }
}

/// Drives one seeded run with the given stepper and returns its health.
fn run_health(heavy: bool, step: fn(&mut Noc)) -> KernelHealth {
    let spec = campaign_spec();
    let mut noc = Noc::with_faults(&spec, 23, &FaultPlan::none()).expect("assembles");
    if heavy {
        noc.enable_trace();
        noc.enable_monitor(MonitorConfig {
            liveness_bound: 100_000,
            max_violations: 64,
        });
    }
    let mut driver = Driver::new(&spec, 23 ^ 0x5EED);
    for _ in 0..500 {
        driver.inject(&mut noc);
        step(&mut noc);
    }
    for _ in 0..2000 {
        if noc.is_idle() {
            break;
        }
        step(&mut noc);
    }
    driver.drain(&mut noc);
    noc.finish_monitor();
    noc.kernel_health().clone()
}

/// The counters are a pure function of the seeded run: two identical
/// runs produce identical `KernelHealth` (full structural equality,
/// samples included).
#[test]
fn health_counters_are_deterministic() {
    assert_eq!(run_health(false, Noc::step), run_health(false, Noc::step));
    assert_eq!(run_health(true, Noc::step), run_health(true, Noc::step));
}

/// Event vs reference kernel on the same seeded run: both take the same
/// number of steps; the dispatch mix differs by construction (that is
/// what the counters measure), so only the totals are compared and the
/// reason histogram is exempt.
#[test]
fn kernels_agree_on_step_totals_with_opposite_dispatch_mix() {
    let event = run_health(false, Noc::step);
    let reference = run_health(false, Noc::step_reference);
    assert_eq!(event.steps(), reference.steps(), "step totals diverged");
    // A bare network rides the event kernel exclusively…
    assert_eq!(event.fallback_steps(), 0);
    assert!(event.event_steps() > 0);
    // …while a forced reference run is all fallback, attributed to
    // schedule invalidation (no observer armed it).
    assert_eq!(reference.event_steps(), 0);
    assert_eq!(
        reference.fallback_count(FallbackReason::ScheduleInvalidated),
        reference.fallback_steps()
    );
}

/// Tracing plus monitoring pushes every step to the full-scan kernel,
/// and the reason histogram names both observers on every step.
#[test]
fn heavy_observers_show_up_in_the_reason_histogram() {
    let health = run_health(true, Noc::step);
    assert_eq!(health.event_steps(), 0);
    assert!(health.fallback_steps() > 0);
    assert_eq!(
        health.fallback_count(FallbackReason::TraceArmed),
        health.fallback_steps()
    );
    assert_eq!(
        health.fallback_count(FallbackReason::MonitorArmed),
        health.fallback_steps()
    );
    assert_eq!(health.fallback_count(FallbackReason::StallFaultsActive), 0);
    // The rendered explanation names the armed observers.
    let text = health.render();
    assert!(text.contains("trace_armed"), "{text}");
    assert!(text.contains("monitor_armed"), "{text}");
}

/// The per-grid-point campaign progress journal is built from
/// deterministic fields only, so the stream is byte-identical across
/// worker counts — and the streamed report matches the one-shot runner.
#[test]
fn campaign_progress_journal_is_byte_identical_across_jobs() {
    let spec = campaign_spec();
    let faults = [FaultKind::ALL[0], FaultKind::ALL[1]];
    let mut cfg = CampaignConfig::new(7, 2000);
    cfg.error_rates = vec![0.02];
    cfg.flight_recorder_depth = 0;
    let journal = |workers: usize| {
        let mut lines = String::new();
        let (report, pool) =
            run_campaign_streaming(&spec, &faults, &cfg, None, workers, &mut |point| {
                lines.push_str(&progress_line(&faults, &cfg, point).render_compact());
                lines.push('\n');
            })
            .expect("campaign runs");
        assert_eq!(pool.items, 3, "pool stats cover every grid point");
        (lines, report.to_json())
    };
    let (serial_lines, serial_report) = journal(1);
    let (parallel_lines, parallel_report) = journal(3);
    assert_eq!(serial_lines, parallel_lines, "journal depends on --jobs");
    assert_eq!(serial_report, parallel_report);
    assert_eq!(serial_lines.lines().count(), 3, "baseline + 2 fault points");
    assert!(serial_lines.contains("\"fault\":\"baseline\""));
    // The streamed runner is a pure observer over the one-shot runner.
    let oneshot = run_campaign_parallel(&spec, &faults, &cfg, 2)
        .expect("campaign runs")
        .to_json();
    assert_eq!(serial_report, oneshot);
}
