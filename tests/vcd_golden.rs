//! Waveform golden test: the VCD dump of a fixed-seed fault-injection
//! run is byte-stable. Any change to simulation ordering, RNG stream
//! assignment, or trace encoding shows up here as a hash mismatch —
//! the guard that keeps fault campaigns reproducible across PRs.

use xpipes::noc::Noc;
use xpipes_sim::FaultPlan;
use xpipes_traffic::faultcampaign::campaign_spec;
use xpipes_traffic::generator::{Injector, InjectorConfig};
use xpipes_traffic::pattern::Pattern;

/// FNV-1a 64-bit — tiny, dependency-free, and stable across platforms.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The pinned waveform: seed 7, 400 injection cycles on the campaign
/// mesh under 3% flit corruption plus ACK loss. Recompute by printing
/// `fnv64` here after an intentional simulator change.
const GOLDEN_FNV64: u64 = 0xe98e_a4de_7198_f273;

fn traced_run() -> String {
    let spec = campaign_spec();
    let plan = FaultPlan {
        flit_corruption_rate: 0.03,
        ack_loss_rate: 0.02,
        ..FaultPlan::none()
    };
    let mut noc = Noc::with_faults(&spec, 7, &plan).expect("instantiates");
    noc.enable_trace();
    let mut inj =
        Injector::new(&spec, InjectorConfig::new(0.05, Pattern::Uniform), 7).expect("injector");
    for _ in 0..400 {
        inj.step(&mut noc);
    }
    noc.run_until_idle(5000);
    noc.vcd().expect("tracing enabled")
}

#[test]
fn vcd_dump_is_byte_stable_for_fixed_seed() {
    let a = traced_run();
    let b = traced_run();
    assert_eq!(a, b, "same seed must reproduce the same waveform");
    assert!(a.contains("$enddefinitions"));
    assert!(a.contains("ch0_valid"));
    assert_eq!(
        fnv64(a.as_bytes()),
        GOLDEN_FNV64,
        "waveform diverged from the pinned golden dump \
         (actual fnv64: {:#018x}, {} bytes)",
        fnv64(a.as_bytes()),
        a.len()
    );
}
