//! Every shipped specification file in `specs/` parses, validates,
//! round-trips through the printer, instantiates, and carries traffic.

use xpipes::noc::Noc;
use xpipes_compiler::{parse_spec, print_spec};
use xpipes_ocp::Request;
use xpipes_topology::NiKind;

fn spec_files() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("specs");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("specs directory exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "noc"))
        .collect();
    files.sort();
    files
}

#[test]
fn shipped_specs_exist() {
    assert!(spec_files().len() >= 3, "specs/ must ship examples");
}

#[test]
fn shipped_specs_parse_validate_and_roundtrip() {
    for path in spec_files() {
        let text = std::fs::read_to_string(&path).expect("readable");
        let spec = parse_spec(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        spec.validate()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let printed = print_spec(&spec);
        let reparsed =
            parse_spec(&printed).unwrap_or_else(|e| panic!("{}: reprint: {e}", path.display()));
        assert_eq!(print_spec(&reparsed), printed, "{}", path.display());
    }
}

#[test]
fn shipped_specs_carry_traffic() {
    for path in spec_files() {
        let text = std::fs::read_to_string(&path).expect("readable");
        let spec = parse_spec(&text).expect("parses");
        let mut noc = Noc::new(&spec).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // First initiator writes into the first target's window and reads
        // it back.
        let cpu = spec
            .topology
            .nis_of_kind(NiKind::Initiator)
            .next()
            .expect("has an initiator")
            .ni;
        let window = spec.address_map.first().expect("has a window");
        let addr = window.base + 0x10;
        noc.submit(cpu, Request::write(addr, vec![0x5EED]).expect("valid"))
            .expect("mapped");
        noc.submit(cpu, Request::read(addr, 1).expect("valid"))
            .expect("mapped");
        assert!(
            noc.run_until_idle(200_000),
            "{}: network must drain",
            path.display()
        );
        let resp = noc
            .take_response(cpu)
            .expect("initiator")
            .expect("read completes");
        assert_eq!(resp.data(), &[0x5EED], "{}", path.display());
    }
}
