//! Differential equivalence suite: event-wheel kernel vs reference kernel.
//!
//! `Noc::step` dispatches to an event-driven kernel that only visits
//! channels, switches and NIs with scheduled work, and `Noc::run` jumps
//! time across provably idle gaps. This suite pins the contract that
//! makes the optimisation safe: over a seeded matrix of mesh sizes,
//! injection rates, fault plans and observer configurations, a network
//! driven exclusively by the full-scan reference kernel
//! (`Noc::step_reference`, exposed by the `reference-kernel` feature)
//! finishes in **byte-identical architectural state** to one driven by
//! the production kernel.
//!
//! "Byte-identical" is enforced through the checkpoint container, which
//! serialises every latch, queue, memory, statistic and RNG stream
//! position — so RNG-draw parity and delivered-packet parity are
//! subsumed by one comparison — plus the explicit work fingerprint,
//! the VCD waveform hash when tracing is on, and every observer report
//! when telemetry/attribution/monitoring are on.

use xpipes::monitor::MonitorConfig;
use xpipes::noc::{Noc, TelemetryConfig};
use xpipes_ocp::Request;
use xpipes_sim::{FaultPlan, SimRng};
use xpipes_topology::builders::mesh;
use xpipes_topology::spec::NocSpec;
use xpipes_topology::NiId;
use xpipes_traffic::faultcampaign::campaign_spec;

/// FNV-1a 64-bit, for VCD hashing.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const INJECT_CYCLES: u64 = 900;
const DRAIN_CYCLES: u64 = 2000;

/// A 2x2 mesh with one initiator and two targets: the smallest network
/// with a routing decision in it.
fn demo_2x2() -> NocSpec {
    let mut b = mesh(2, 2).expect("builds");
    b.attach_initiator("cpu", (0, 0)).expect("attaches");
    let m0 = b.attach_target("m0", (1, 0)).expect("attaches");
    let m1 = b.attach_target("m1", (1, 1)).expect("attaches");
    let mut spec = NocSpec::new("kdiff-2x2", b.into_topology());
    spec.map_address(m0, 0x0000, 0x1_0000).expect("maps");
    spec.map_address(m1, 0x1_0000, 0x1_0000).expect("maps");
    spec
}

/// An 8x8 mesh with four central initiators and four spread targets,
/// placed so every route fits the 7-hop source-route field (manhattan
/// distance at most 6 plus the ejection hop).
fn spread_8x8() -> NocSpec {
    let mut b = mesh(8, 8).expect("builds");
    for (i, at) in [(3, 3), (4, 3), (3, 4), (4, 4)].into_iter().enumerate() {
        b.attach_initiator(format!("cpu{i}"), at).expect("attaches");
    }
    let mut spec_targets = Vec::new();
    for (i, at) in [(1, 1), (6, 1), (1, 6), (6, 6)].into_iter().enumerate() {
        spec_targets.push(b.attach_target(format!("m{i}"), at).expect("attaches"));
    }
    let mut spec = NocSpec::new("kdiff-8x8", b.into_topology());
    for (i, t) in spec_targets.into_iter().enumerate() {
        spec.map_address(t, (i as u64) << 20, 1 << 20)
            .expect("maps");
    }
    spec
}

/// The observer configurations in the matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Observers {
    /// Bare network: the pure fast path.
    None,
    /// Telemetry + attribution + flight recorder: the observers that
    /// legally ride the fast path and hook the event kernel directly.
    Light,
    /// VCD tracing + protocol monitor: forces the full-scan fallback,
    /// pinning the dispatch seam itself.
    Heavy,
}

/// Deterministic open-loop driver, independent of the production
/// `Injector` (whose `step` hardwires the production kernel). Each cycle
/// every initiator starts a transaction with probability `rate`;
/// interrupts are raised on a fixed cadence to exercise the target-side
/// wake wheel.
struct Driver {
    rng: SimRng,
    initiators: Vec<NiId>,
    targets: Vec<NiId>,
    windows: Vec<(u64, u64)>,
    rate: f64,
}

impl Driver {
    fn new(spec: &NocSpec, rate: f64, seed: u64) -> Self {
        let topo = &spec.topology;
        let initiators: Vec<NiId> = topo
            .nis_of_kind(xpipes_topology::NiKind::Initiator)
            .map(|a| a.ni)
            .collect();
        let targets: Vec<NiId> = topo
            .nis_of_kind(xpipes_topology::NiKind::Target)
            .map(|a| a.ni)
            .collect();
        let windows = targets
            .iter()
            .map(|t| {
                let r = spec.range_of(*t).expect("target mapped");
                (r.base, r.size)
            })
            .collect();
        Driver {
            rng: SimRng::seed(seed),
            initiators,
            targets,
            windows,
            rate,
        }
    }

    /// One cycle of offered load (submissions only — stepping is the
    /// harness's job, so either kernel can advance the clock).
    fn inject(&mut self, noc: &mut Noc, cycle: u64) {
        for idx in 0..self.initiators.len() {
            if !self.rng.chance(self.rate) {
                continue;
            }
            let dst = self.rng.below(self.windows.len());
            let (base, size) = self.windows[dst];
            let addr = base + (self.rng.next_u64() % (size / 8).max(1)) * 8;
            let req = if self.rng.chance(0.5) {
                Request::read(addr, 4)
            } else {
                Request::write(addr, (0..4u64).collect())
            };
            if let Ok(r) = req {
                let _ = noc.submit(self.initiators[idx], r);
            }
        }
        // A steady trickle of interrupts keeps the target wake wheel and
        // the reverse NI→switch channels honest.
        if cycle % 97 == 13 {
            let t = self.targets[(cycle / 97) as usize % self.targets.len()];
            let i = self.initiators[(cycle / 97) as usize % self.initiators.len()];
            let _ = noc.raise_interrupt(t, i);
        }
    }

    /// Drains response and interrupt queues identically on both sides.
    fn drain(&self, noc: &mut Noc) -> u64 {
        let mut drained = 0;
        for &ni in &self.initiators {
            while let Ok(Some(_)) = noc.take_response(ni) {
                drained += 1;
            }
            while let Ok(true) = noc.take_interrupt(ni) {
                drained += 1;
            }
        }
        drained
    }
}

/// Everything compared between the two kernels.
#[derive(Debug, PartialEq)]
struct Artifacts {
    cycles: u64,
    packets_delivered: u64,
    flits_routed: u64,
    retransmissions: u64,
    responses_drained: u64,
    /// The checkpoint container: every latch, queue, memory, statistic
    /// and RNG position in one byte string.
    checkpoint_fnv64: u64,
    vcd_fnv64: Option<u64>,
    monitor_violations: usize,
    telemetry_summary: Option<String>,
    attribution_json: Option<String>,
}

fn build(spec: &NocSpec, plan: &FaultPlan, obs: Observers, seed: u64) -> Noc {
    let mut noc = Noc::with_faults(spec, seed, plan).expect("assembles");
    match obs {
        Observers::None => {}
        Observers::Light => {
            noc.enable_telemetry(TelemetryConfig::full());
            noc.enable_attribution();
        }
        Observers::Heavy => {
            noc.enable_trace();
            noc.enable_monitor(MonitorConfig {
                liveness_bound: 100_000,
                max_violations: 64,
            });
        }
    }
    noc
}

/// Runs one matrix point to completion with the given stepper and
/// collects the comparison artifacts.
fn drive(
    spec: &NocSpec,
    rate: f64,
    plan: &FaultPlan,
    obs: Observers,
    seed: u64,
    step: fn(&mut Noc),
) -> Artifacts {
    let mut noc = build(spec, plan, obs, seed);
    let mut driver = Driver::new(spec, rate, seed ^ 0x5EED);
    let mut drained = 0;
    for cycle in 0..INJECT_CYCLES {
        driver.inject(&mut noc, cycle);
        step(&mut noc);
        if cycle % 256 == 255 {
            drained += driver.drain(&mut noc);
        }
    }
    for _ in 0..DRAIN_CYCLES {
        if noc.is_idle() {
            break;
        }
        step(&mut noc);
    }
    drained += driver.drain(&mut noc);
    noc.finish_monitor();
    noc.flush_telemetry();
    let stats = noc.stats();
    Artifacts {
        cycles: stats.cycles,
        packets_delivered: stats.packets_delivered,
        flits_routed: stats.flits_routed,
        retransmissions: stats.retransmissions,
        responses_drained: drained,
        checkpoint_fnv64: fnv64(&noc.checkpoint()),
        vcd_fnv64: noc.vcd().map(|v| fnv64(v.as_bytes())),
        monitor_violations: noc.monitor_violations().len(),
        telemetry_summary: (obs == Observers::Light)
            .then(|| format!("{:?}", noc.telemetry_summary())),
        attribution_json: noc.attribution_report().map(|r| r.render()),
    }
}

/// One matrix point: reference kernel vs production kernel.
fn assert_equivalent(spec: &NocSpec, rate: f64, plan: &FaultPlan, obs: Observers, seed: u64) {
    let reference = drive(spec, rate, plan, obs, seed, Noc::step_reference);
    let event = drive(spec, rate, plan, obs, seed, Noc::step);
    assert_eq!(
        reference, event,
        "kernels diverged: {} rate {rate} obs {obs:?} plan {plan:?}",
        spec.name
    );
}

fn matrix_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::none()),
        (
            "lossy",
            FaultPlan {
                flit_corruption_rate: 0.02,
                ack_loss_rate: 0.01,
                ..FaultPlan::none()
            },
        ),
        (
            "stall",
            FaultPlan {
                stall_rate: 0.002,
                stall_len: FaultPlan::DEFAULT_STALL_LEN,
                ..FaultPlan::none()
            },
        ),
    ]
}

/// The full seeded matrix: three meshes, two injection rates, three
/// fault plans, three observer configurations.
#[test]
fn event_kernel_matches_reference_kernel_across_the_matrix() {
    let specs = [demo_2x2(), campaign_spec(), spread_8x8()];
    let mut points = 0;
    for (si, spec) in specs.iter().enumerate() {
        for (ri, &rate) in [0.02, 0.10].iter().enumerate() {
            for (pi, (_, plan)) in matrix_plans().iter().enumerate() {
                for (oi, &obs) in [Observers::None, Observers::Light, Observers::Heavy]
                    .iter()
                    .enumerate()
                {
                    let seed = 0x9E37
                        ^ ((si as u64) << 24 | (ri as u64) << 16 | (pi as u64) << 8 | oi as u64);
                    assert_equivalent(spec, rate, plan, obs, seed);
                    points += 1;
                }
            }
        }
    }
    assert_eq!(points, 54);
}

/// The matrix does real work: the no-fault high-rate point delivers
/// packets on every mesh (a silent all-idle matrix would vacuously
/// pass).
#[test]
fn matrix_points_deliver_real_work() {
    for spec in [demo_2x2(), campaign_spec(), spread_8x8()] {
        let a = drive(
            &spec,
            0.10,
            &FaultPlan::none(),
            Observers::None,
            1,
            Noc::step,
        );
        assert!(
            a.packets_delivered > 0,
            "{} delivered no packets",
            spec.name
        );
        assert!(a.responses_drained > 0, "{} drained nothing", spec.name);
    }
}

/// Time jumping is observationally transparent: `run`, which skips
/// provably idle gaps via the event wheel, finishes in the same state as
/// single-stepping the same span — including across a drained-idle
/// stretch with a scheduled interrupt at the far end.
#[test]
fn time_jumping_matches_single_stepping() {
    let spec = campaign_spec();
    let finish = |jump: bool| {
        let mut noc = build(&spec, &FaultPlan::none(), Observers::None, 99);
        let mut driver = Driver::new(&spec, 0.05, 99 ^ 0x5EED);
        for cycle in 0..600 {
            driver.inject(&mut noc, cycle);
            noc.step();
        }
        // Quiet stretch, then one late interrupt: a jumping run leaps to
        // the wheel's next event, a stepping run walks there.
        if jump {
            noc.run(3000);
        } else {
            for _ in 0..3000 {
                noc.step();
            }
        }
        let t = Driver::new(&spec, 0.0, 0).targets[0];
        let i = Driver::new(&spec, 0.0, 0).initiators[0];
        noc.raise_interrupt(t, i).expect("raises");
        if jump {
            noc.run(200);
        } else {
            for _ in 0..200 {
                noc.step();
            }
        }
        driver.drain(&mut noc);
        (noc.now(), fnv64(&noc.checkpoint()))
    };
    assert_eq!(finish(true), finish(false));
}

/// Jump-aware telemetry: armed telemetry no longer forces cycle-by-cycle
/// stepping. A telemetry-armed `run` still time-jumps across provably
/// idle gaps, synthesizing the epoch samples the stepped run would have
/// taken — and every telemetry artifact (registry, timeline, summary)
/// plus the checkpoint renders byte-identically to single-stepping.
#[test]
fn telemetry_armed_jumps_match_stepped_sampling() {
    let spec = campaign_spec();
    let finish = |jump: bool| {
        let mut noc = build(&spec, &FaultPlan::none(), Observers::None, 7);
        noc.enable_telemetry(TelemetryConfig::full());
        let mut driver = Driver::new(&spec, 0.05, 7 ^ 0x5EED);
        for cycle in 0..600 {
            driver.inject(&mut noc, cycle);
            noc.step();
        }
        // Quiet stretch with a late interrupt, exactly the shape that
        // used to pin telemetry runs to one step per cycle.
        if jump {
            noc.run(3000);
        } else {
            for _ in 0..3000 {
                noc.step();
            }
        }
        let t = Driver::new(&spec, 0.0, 0).targets[0];
        let i = Driver::new(&spec, 0.0, 0).initiators[0];
        noc.raise_interrupt(t, i).expect("raises");
        if jump {
            noc.run(200);
        } else {
            for _ in 0..200 {
                noc.step();
            }
        }
        driver.drain(&mut noc);
        noc.flush_telemetry();
        let artifacts = (
            noc.now(),
            fnv64(&noc.checkpoint()),
            noc.telemetry_registry().map(|r| r.to_json().render()),
            noc.timeline_json(),
            format!("{:?}", noc.telemetry_summary()),
        );
        (artifacts, noc.kernel_health().clone())
    };
    let (jumped, jumped_health) = finish(true);
    let (stepped, stepped_health) = finish(false);
    assert_eq!(jumped, stepped, "jumped telemetry diverged from stepped");
    // The jumped run really jumped (and stayed on the event kernel),
    // synthesizing samples the stepped run took one cycle at a time.
    assert!(jumped_health.time_jumps() > 0, "telemetry blocked the jump");
    assert!(jumped_health.cycles_skipped() > 0);
    assert!(jumped_health.synthetic_samples() > 0);
    assert_eq!(jumped_health.fallback_steps(), 0);
    assert_eq!(stepped_health.time_jumps(), 0);
    assert!(jumped_health.steps() < stepped_health.steps());
}

/// `run_until_idle` with time jumps agrees with a manual is-idle loop.
#[test]
fn run_until_idle_matches_manual_drain() {
    let spec = spread_8x8();
    let drain = |auto: bool| {
        let mut noc = build(&spec, &FaultPlan::none(), Observers::None, 17);
        let mut driver = Driver::new(&spec, 0.10, 17 ^ 0x5EED);
        for cycle in 0..400 {
            driver.inject(&mut noc, cycle);
            noc.step();
        }
        if auto {
            assert!(noc.run_until_idle(20_000), "must drain");
        } else {
            let mut left = 20_000u64;
            while !noc.is_idle() && left > 0 {
                noc.step();
                left -= 1;
            }
            assert!(noc.is_idle(), "must drain");
        }
        driver.drain(&mut noc);
        (noc.now(), fnv64(&noc.checkpoint()))
    };
    assert_eq!(drain(true), drain(false));
}
