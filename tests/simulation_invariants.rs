//! Whole-network simulation invariants under randomized workloads:
//! conservation, memory consistency against a reference model, and
//! determinism.

use proptest::prelude::*;

use xpipes::noc::Noc;
use xpipes_ocp::Request;
use xpipes_repro::{test_platform, window_base};
use xpipes_topology::NiId;

/// A randomized write plan: (cpu index, target index, offset word, value).
fn arb_writes(k: usize) -> impl Strategy<Value = Vec<(usize, usize, u64, u64)>> {
    prop::collection::vec((0..k, 0..k, 0u64..64, 1u64..(1 << 32)), 1..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The network is a memory system: after draining, every target
    /// memory matches a reference model applying the same writes in
    /// per-(cpu,address) order. (Writes from different CPUs to the same
    /// address may race; the plan avoids such conflicts by construction:
    /// the reference keeps last-writer-per-address only when unique.)
    #[test]
    fn memory_matches_reference(plan in arb_writes(3)) {
        let (spec, cpus, mems) = test_platform(3).expect("platform");
        let mut noc = Noc::new(&spec).expect("instantiates");
        // Reference model: address -> (writer, value); conflicting
        // addresses (two different writers) are skipped at check time.
        let mut reference: std::collections::HashMap<(usize, u64), (usize, u64)> =
            std::collections::HashMap::new();
        let mut conflicted: std::collections::HashSet<(usize, u64)> =
            std::collections::HashSet::new();
        for &(cpu, tgt, word, value) in &plan {
            let addr = window_base(tgt) + word * 8;
            noc.submit(cpus[cpu], Request::write(addr, vec![value]).expect("valid"))
                .expect("mapped");
            match reference.get(&(tgt, word)) {
                Some((w, _)) if *w != cpu => {
                    conflicted.insert((tgt, word));
                }
                _ => {}
            }
            reference.insert((tgt, word), (cpu, value));
        }
        prop_assert!(noc.run_until_idle(200_000), "network must drain");
        for ((tgt, word), (_, value)) in &reference {
            if conflicted.contains(&(*tgt, *word)) {
                continue;
            }
            let got = noc.memory(mems[*tgt]).expect("target").peek(word * 8);
            prop_assert_eq!(got, *value, "target {} word {}", tgt, word);
        }
    }

    /// Conservation under mixed read/write traffic with link errors.
    #[test]
    fn packets_conserved_under_errors(
        error_rate in 0.0f64..0.06,
        seed in 0u64..500,
        n in 1usize..15,
    ) {
        let (mut spec, cpus, _) = test_platform(2).expect("platform");
        spec.link_error_rate = error_rate;
        let mut noc = Noc::with_seed(&spec, seed).expect("instantiates");
        let mut expected_responses = 0u64;
        for i in 0..n {
            let cpu = cpus[i % 2];
            let addr = window_base(i % 2) + (i as u64) * 8;
            if i % 3 == 0 {
                noc.submit(cpu, Request::read(addr, 2).expect("valid")).expect("mapped");
                expected_responses += 1;
            } else {
                noc.submit(cpu, Request::write(addr, vec![i as u64]).expect("valid"))
                    .expect("mapped");
            }
        }
        prop_assert!(noc.run_until_idle(500_000), "network must drain");
        let stats = noc.stats();
        prop_assert_eq!(stats.packets_delivered, stats.packets_sent);
        // Every read produced exactly one collectable response.
        let mut got = 0;
        for &cpu in &cpus {
            while noc.take_response(cpu).expect("initiator").is_some() {
                got += 1;
            }
        }
        prop_assert_eq!(got, expected_responses);
    }

    /// Same seed ⇒ identical simulation, flit for flit.
    #[test]
    fn simulation_is_deterministic(seed in 0u64..200) {
        let (mut spec, cpus, _) = test_platform(2).expect("platform");
        spec.link_error_rate = 0.02;
        let run = |spec: &xpipes_topology::NocSpec, cpus: &[NiId]| {
            let mut noc = Noc::with_seed(spec, seed).expect("instantiates");
            for i in 0..6u64 {
                noc.submit(cpus[(i % 2) as usize],
                    Request::write(window_base((i % 2) as usize) + i * 8, vec![i])
                        .expect("valid"))
                    .expect("mapped");
            }
            noc.run_until_idle(200_000);
            let s = noc.stats();
            (s.flits_routed, s.retransmissions, s.cycles)
        };
        prop_assert_eq!(run(&spec, &cpus), run(&spec, &cpus));
    }
}

/// Wormhole invariant at network scale: interleaved burst writes from
/// two CPUs into one target never corrupt each other's data.
#[test]
fn concurrent_bursts_do_not_interleave_corruptly() {
    let (spec, cpus, mems) = test_platform(2).expect("platform");
    let mut noc = Noc::new(&spec).expect("instantiates");
    // Both CPUs blast disjoint regions of memory 0 simultaneously.
    for round in 0..5u64 {
        let data_a: Vec<u64> = (0..8).map(|i| 0xA000 + round * 16 + i).collect();
        let data_b: Vec<u64> = (0..8).map(|i| 0xB000 + round * 16 + i).collect();
        noc.submit(
            cpus[0],
            Request::write(window_base(0) + round * 256, data_a).expect("valid"),
        )
        .expect("mapped");
        noc.submit(
            cpus[1],
            Request::write(window_base(0) + 0x8000 + round * 256, data_b).expect("valid"),
        )
        .expect("mapped");
    }
    assert!(noc.run_until_idle(100_000));
    let mem = noc.memory(mems[0]).expect("target");
    for round in 0..5u64 {
        for i in 0..8u64 {
            assert_eq!(mem.peek(round * 256 + i * 8), 0xA000 + round * 16 + i);
            assert_eq!(
                mem.peek(0x8000 + round * 256 + i * 8),
                0xB000 + round * 16 + i
            );
        }
    }
}
