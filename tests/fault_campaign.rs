//! Conformance suite for the fault-injection campaign subsystem.
//!
//! Pins the acceptance criteria of the campaign runner end to end:
//! every fault model is tolerated at the grid error rates, reports are
//! byte-deterministic, every fault model demonstrably fires, and a
//! deliberately broken flow-control implementation is caught by the
//! protocol invariant checkers.

use xpipes::flow_control::FlowSabotage;
use xpipes::monitor::{InvariantKind, MonitorConfig};
use xpipes::noc::Noc;
use xpipes_sim::{FaultKind, FaultPlan};
use xpipes_traffic::faultcampaign::{
    campaign_spec, run_campaign, run_campaign_parallel, CampaignConfig,
};
use xpipes_traffic::generator::{Injector, InjectorConfig};
use xpipes_traffic::pattern::Pattern;

/// All five fault models at every grid rate complete with zero
/// invariant violations and no end-to-end loss — the paper's claim that
/// the ACK/nACK go-back-N layer masks link faults from the transport.
#[test]
fn fault_models_tolerated_at_grid_rates() {
    let cfg = CampaignConfig::new(7, 4000);
    let report = run_campaign(&campaign_spec(), &FaultKind::ALL, &cfg).expect("campaign runs");
    assert_eq!(
        report.runs.len(),
        FaultKind::ALL.len() * cfg.error_rates.len()
    );
    for run in &report.runs {
        assert!(
            run.pass,
            "{} @ {} violated: {:?}",
            run.fault, run.rate, run.violations
        );
        assert!(run.summary.drained);
        assert_eq!(run.summary.packets_sent, run.summary.packets_delivered);
    }
    assert!(report.pass, "{}", report.to_json());
}

/// Two campaigns from the same seed render byte-identical JSON reports.
#[test]
fn report_is_deterministic() {
    let mut cfg = CampaignConfig::new(7, 1500);
    cfg.error_rates = vec![0.01, 0.05];
    let a = run_campaign(&campaign_spec(), &FaultKind::ALL, &cfg).expect("first run");
    let b = run_campaign(&campaign_spec(), &FaultKind::ALL, &cfg).expect("second run");
    assert_eq!(a.to_json(), b.to_json());
    // And a different seed actually changes the measurements.
    let mut other = cfg.clone();
    other.seed = 8;
    let c = run_campaign(&campaign_spec(), &FaultKind::ALL, &other).expect("third run");
    assert_ne!(a.to_json(), c.to_json());
}

/// Fanning the campaign grid across worker threads must not perturb the
/// report: every run derives its streams from the master seed and its
/// grid index, and the pool merges results in submission order, so the
/// JSON is byte-identical to the serial rendering at any worker count.
#[test]
fn parallel_campaign_matches_serial_byte_for_byte() {
    let mut cfg = CampaignConfig::new(7, 1200);
    cfg.error_rates = vec![0.01, 0.04];
    let serial = run_campaign(&campaign_spec(), &FaultKind::ALL, &cfg).expect("serial run");
    let auto = run_campaign_parallel(&campaign_spec(), &FaultKind::ALL, &cfg, 0)
        .expect("parallel run (auto workers)");
    assert_eq!(serial.to_json(), auto.to_json());
    let forced =
        run_campaign_parallel(&campaign_spec(), &FaultKind::ALL, &cfg, 3).expect("3 workers");
    assert_eq!(serial.to_json(), forced.to_json());
}

/// The cycle engine's activity fast path (taken when no monitor, trace,
/// or stall faults are attached) must be behaviourally invisible: a
/// monitored run and a bare run from the same seed agree on every
/// counter and on the latency distribution.
#[test]
fn fast_path_matches_monitored_slow_path() {
    let spec = campaign_spec();
    let run = |monitored: bool| {
        let mut noc = Noc::with_seed(&spec, 23).expect("instantiates");
        if monitored {
            noc.enable_monitor(MonitorConfig {
                liveness_bound: 2500,
                max_violations: 64,
            });
        }
        let mut inj = Injector::new(
            &spec,
            InjectorConfig::new(0.05, Pattern::Uniform),
            23 ^ 0x5EED,
        )
        .expect("injector");
        for _ in 0..1500 {
            inj.step(&mut noc);
        }
        assert!(noc.run_until_idle(20_000), "network drains");
        inj.drain_responses(&mut noc);
        if monitored {
            noc.finish_monitor();
            assert!(noc.monitor_violations().is_empty());
        } else if let Some((active, _total)) = noc.active_channels() {
            assert_eq!(active, 0, "idle network must report zero active channels");
        }
        noc.stats()
    };
    let fast = run(false);
    let slow = run(true);
    assert_eq!(fast.cycles, slow.cycles);
    assert_eq!(fast.packets_sent, slow.packets_sent);
    assert_eq!(fast.packets_delivered, slow.packets_delivered);
    assert_eq!(fast.flits_routed, slow.flits_routed);
    assert_eq!(fast.retransmissions, slow.retransmissions);
    assert_eq!(fast.ack_timeouts, slow.ack_timeouts);
    assert_eq!(
        fast.transaction_latency.mean(),
        slow.transaction_latency.mean()
    );
    assert_eq!(
        fast.transaction_latency.max(),
        slow.transaction_latency.max()
    );
}

/// Each fault model leaves its fingerprint in the run counters — the
/// campaign is not vacuously passing because nothing was injected.
#[test]
fn faults_actually_fire() {
    let mut cfg = CampaignConfig::new(7, 2500);
    cfg.error_rates = vec![0.05];
    let report = run_campaign(&campaign_spec(), &FaultKind::ALL, &cfg).expect("campaign runs");
    assert!(report.pass, "{}", report.to_json());
    for run in &report.runs {
        let s = &run.summary;
        match FaultKind::from_name(&run.fault).expect("known fault name") {
            FaultKind::FlitCorruption | FaultKind::BurstCorruption => {
                assert!(s.flits_corrupted > 0, "{}: no corruption", run.fault);
                assert!(s.retransmissions > 0, "{}: no recovery", run.fault);
            }
            FaultKind::AckLoss => {
                assert!(s.acks_dropped > 0, "{}: no drops", run.fault);
            }
            FaultKind::AckCorruption => {
                assert!(s.acks_corrupted > 0, "{}: no corruption", run.fault);
            }
            FaultKind::OutputStall => {
                assert!(s.stall_cycles > 0, "{}: no stalls", run.fault);
            }
        }
    }
    // The baseline run stays fault-free.
    assert_eq!(report.baseline.flits_corrupted, 0);
    assert_eq!(report.baseline.acks_dropped, 0);
    assert_eq!(report.baseline.stall_cycles, 0);
}

/// Drives a sabotaged network under forward-channel corruption and
/// returns the invariant kinds the monitor reported.
fn kinds_caught_by(mode: FlowSabotage) -> Vec<InvariantKind> {
    let spec = campaign_spec();
    let plan = FaultPlan {
        flit_corruption_rate: 0.2,
        ..FaultPlan::none()
    };
    let mut noc = Noc::with_faults(&spec, 7, &plan).expect("instantiates");
    noc.enable_monitor(MonitorConfig {
        liveness_bound: 400,
        max_violations: 64,
    });
    noc.sabotage_all_senders(mode);
    let mut inj =
        Injector::new(&spec, InjectorConfig::new(0.05, Pattern::Uniform), 7).expect("injector");
    for _ in 0..3000 {
        inj.step(&mut noc);
    }
    noc.run_until_idle(5000);
    noc.finish_monitor();
    noc.monitor_violations().iter().map(|v| v.kind).collect()
}

/// A sender that ignores nACKs and never rewinds loses corrupted flits
/// for good; the monitor must flag the stalled / incomplete channel.
#[test]
fn broken_retransmission_is_caught() {
    let kinds = kinds_caught_by(FlowSabotage::SkipRetransmission);
    assert!(!kinds.is_empty(), "sabotaged network reported clean");
    assert!(
        kinds
            .iter()
            .any(|k| matches!(k, InvariantKind::Liveness | InvariantKind::Conservation)),
        "expected a liveness or conservation violation, got {kinds:?}"
    );
}

/// A sender that stamps two in-flight flits with the same sequence
/// number aliases the go-back-N window; the monitor must flag it.
#[test]
fn seq_reuse_is_caught() {
    let kinds = kinds_caught_by(FlowSabotage::ReuseSequence);
    assert!(
        kinds.contains(&InvariantKind::SeqAliasing),
        "expected seq-aliasing, got {kinds:?}"
    );
}

/// A sender that silently discards its window on nACK destroys flits;
/// the monitor must flag the conservation break.
#[test]
fn drop_on_nack_is_caught() {
    let kinds = kinds_caught_by(FlowSabotage::DropOnNack);
    assert!(
        kinds
            .iter()
            .any(|k| matches!(k, InvariantKind::Conservation | InvariantKind::Liveness)),
        "expected a conservation or liveness violation, got {kinds:?}"
    );
}
