//! Conformance suite for the telemetry subsystem.
//!
//! Pins the observability acceptance criteria end to end: the congestion
//! timeline of the reference workload is byte-stable (golden-hashed like
//! the VCD dump), a tripped protocol-monitor invariant freezes the
//! flight recorder with the offending flit's recent event history,
//! campaign reports embed telemetry summaries without breaking parallel
//! determinism, the Perfetto export is well-formed, streaming VCD output
//! matches the buffered rendering byte for byte, and attaching telemetry
//! never perturbs the simulated work.

use xpipes::flow_control::FlowSabotage;
use xpipes::monitor::MonitorConfig;
use xpipes::noc::{Noc, TelemetryConfig};
use xpipes_bench::cycle_engine::{run_workload_instrumented, Workload};
use xpipes_sim::{FaultKind, FaultPlan, TraceEventKind};
use xpipes_traffic::faultcampaign::{
    campaign_spec, run_campaign, run_campaign_parallel, CampaignConfig,
};
use xpipes_traffic::generator::{Injector, InjectorConfig};
use xpipes_traffic::pattern::Pattern;

/// FNV-1a 64-bit — tiny, dependency-free, and stable across platforms.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The pinned congestion timeline: the reference 4x4-mesh uniform-random
/// workload at 4000 injection cycles with full telemetry. Recompute by
/// printing `fnv64` here after an intentional simulator change.
const TIMELINE_GOLDEN_FNV64: u64 = 0x8592_9c62_ab19_144e;

fn reference_timeline() -> String {
    let inst = run_workload_instrumented(Workload::UniformRandom, 4000, TelemetryConfig::full())
        .expect("workload runs");
    inst.timeline_json.expect("full config collects a timeline")
}

#[test]
fn timeline_json_is_byte_stable_for_fixed_seed() {
    let a = reference_timeline();
    let b = reference_timeline();
    assert_eq!(a, b, "same seed must reproduce the same timeline");
    assert!(a.contains("\"interval\": 64"));
    assert!(a.contains("\"windows\""));
    assert_eq!(
        fnv64(a.as_bytes()),
        TIMELINE_GOLDEN_FNV64,
        "timeline diverged from the pinned golden dump \
         (actual fnv64: {:#018x}, {} bytes)",
        fnv64(a.as_bytes()),
        a.len()
    );
}

/// The tentpole acceptance criterion: when a protocol-monitor invariant
/// trips, the flight recorder freezes and the dump holds the offending
/// flit's recent event history — the events on the violating channel in
/// the cycles leading up to the trip.
#[test]
fn monitor_trip_freezes_flight_recorder_with_event_history() {
    let spec = campaign_spec();
    let plan = FaultPlan {
        flit_corruption_rate: 0.2,
        ..FaultPlan::none()
    };
    let mut noc = Noc::with_faults(&spec, 7, &plan).expect("instantiates");
    noc.enable_monitor(MonitorConfig {
        liveness_bound: 400,
        max_violations: 64,
    });
    noc.enable_telemetry(TelemetryConfig {
        flight_recorder_depth: 1024,
        ..TelemetryConfig::default()
    });
    // A sender that aliases go-back-N sequence numbers trips the
    // monitor's SeqAliasing invariant deterministically under corruption.
    noc.sabotage_all_senders(FlowSabotage::ReuseSequence);
    let mut inj =
        Injector::new(&spec, InjectorConfig::new(0.05, Pattern::Uniform), 7).expect("injector");
    for _ in 0..3000 {
        inj.step(&mut noc);
    }
    noc.run_until_idle(5000);
    noc.finish_monitor();

    let violations = noc.monitor_violations();
    assert!(!violations.is_empty(), "sabotaged network reported clean");
    let first = &violations[0];

    let recorder = noc.flight_recorder().expect("recorder enabled");
    let dump = recorder.frozen().expect("violation must freeze the ring");
    assert!(
        dump.cycle <= first.cycle + 1,
        "freeze ({}) must capture the state at the first violation ({})",
        dump.cycle,
        first.cycle
    );
    assert!(!dump.events.is_empty());
    // Every recorded event predates the freeze, and the window covers
    // the cycles immediately before the trip.
    let newest = dump.events.iter().map(|e| e.cycle).max().unwrap();
    assert!(dump.events.iter().all(|e| e.cycle <= dump.cycle));
    assert!(newest + 2 >= dump.cycle, "ring is stale at freeze time");
    // The offending channel's history is in the dump: the violation
    // names a channel label, and events on that channel appear with
    // wire-level detail (packet ids and sequence numbers).
    let labels = noc.channel_labels();
    let offending: Vec<_> = dump
        .events
        .iter()
        .filter(|e| labels[e.channel as usize] == first.channel)
        .collect();
    assert!(
        !offending.is_empty(),
        "no events for violating channel {} in the frozen dump",
        first.channel
    );
    assert!(offending.iter().any(|e| matches!(
        e.kind,
        TraceEventKind::Transmit | TraceEventKind::Retransmit
    )));
    // The rendered dump carries the channel label for human triage.
    let rendered = noc.flight_dump_rendered();
    assert_eq!(rendered.len(), dump.events.len());
    assert!(rendered.iter().any(|l| l.contains(&first.channel)));
}

/// Campaign reports embed per-grid-point telemetry summaries, and the
/// parallel path still renders byte-identical JSON.
#[test]
fn campaign_report_embeds_telemetry_and_stays_parallel_deterministic() {
    let mut cfg = CampaignConfig::new(7, 1200);
    cfg.error_rates = vec![0.03];
    let faults = [FaultKind::FlitCorruption, FaultKind::AckLoss];
    let serial = run_campaign(&campaign_spec(), &faults, &cfg).expect("serial run");
    let json = serial.to_json();
    assert!(json.contains("\"telemetry\""));
    assert!(json.contains("\"peak_queue_depth\""));
    // Corruption at 3% forces retransmissions, which the summary
    // attributes to specific links.
    let corr = &serial.runs[0];
    let telem = corr.summary.telemetry.as_ref().expect("summary embedded");
    assert_eq!(telem.total_retransmissions, corr.summary.retransmissions);
    assert!(telem.total_retransmissions > 0);
    assert!(!telem.link_retransmissions.is_empty());
    assert!(telem.peak_queue_depth > 0);
    for workers in [1, 3] {
        let par =
            run_campaign_parallel(&campaign_spec(), &faults, &cfg, workers).expect("parallel run");
        assert_eq!(par.to_json(), json, "workers={workers}");
    }
}

/// The Perfetto export is a `trace_event` document: async begin/end span
/// pairs per packet plus instant wire events, deterministic across runs.
#[test]
fn perfetto_export_has_matched_spans() {
    let run = || {
        run_workload_instrumented(Workload::UniformRandom, 1500, TelemetryConfig::full())
            .expect("workload runs")
            .perfetto_json
            .expect("full config runs a recorder")
    };
    let a = run();
    assert_eq!(a, run(), "perfetto export must be deterministic");
    assert!(a.contains("\"traceEvents\""));
    assert!(a.contains("\"displayTimeUnit\""));
    let begins = a.matches("\"ph\": \"b\"").count();
    let ends = a.matches("\"ph\": \"e\"").count();
    let instants = a.matches("\"ph\": \"i\"").count();
    assert!(begins > 0, "no spans in {a}");
    assert_eq!(begins, ends, "unbalanced async spans");
    assert!(instants >= begins, "spans without wire events");
}

/// Streaming VCD output through `enable_trace_to` produces exactly the
/// bytes the buffered writer renders.
#[test]
fn streaming_vcd_matches_buffered_through_noc() {
    use std::sync::{Arc, Mutex};

    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    let spec = campaign_spec();
    let drive = |noc: &mut Noc| {
        let mut inj =
            Injector::new(&spec, InjectorConfig::new(0.05, Pattern::Uniform), 7).expect("injector");
        for _ in 0..300 {
            inj.step(noc);
        }
        noc.run_until_idle(4000);
    };

    let mut buffered = Noc::with_seed(&spec, 7).expect("instantiates");
    buffered.enable_trace();
    drive(&mut buffered);
    let reference = buffered.vcd().expect("buffered trace");

    let sink = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let mut streamed = Noc::with_seed(&spec, 7).expect("instantiates");
    streamed.enable_trace_to(Box::new(sink.clone()));
    drive(&mut streamed);
    streamed.flush_trace().expect("no sink errors");
    assert!(streamed.vcd().is_none(), "streaming trace has no buffer");
    let bytes = sink.0.lock().unwrap().clone();
    assert_eq!(String::from_utf8(bytes).unwrap(), reference);
}

/// Attaching the full telemetry stack must be behaviourally invisible:
/// the instrumented run performs exactly the same simulated work as the
/// bare run — counters, latency distribution, everything.
#[test]
fn telemetry_does_not_perturb_simulation() {
    let spec = campaign_spec();
    let run = |telemetry: bool| {
        let mut noc = Noc::with_seed(&spec, 23).expect("instantiates");
        if telemetry {
            noc.enable_telemetry(TelemetryConfig::full());
        }
        let mut inj = Injector::new(
            &spec,
            InjectorConfig::new(0.05, Pattern::Uniform),
            23 ^ 0x5EED,
        )
        .expect("injector");
        for _ in 0..1500 {
            inj.step(&mut noc);
        }
        assert!(noc.run_until_idle(20_000), "network drains");
        inj.drain_responses(&mut noc);
        noc.stats()
    };
    let bare = run(false);
    let instrumented = run(true);
    assert_eq!(bare.cycles, instrumented.cycles);
    assert_eq!(bare.packets_sent, instrumented.packets_sent);
    assert_eq!(bare.packets_delivered, instrumented.packets_delivered);
    assert_eq!(bare.flits_routed, instrumented.flits_routed);
    assert_eq!(bare.retransmissions, instrumented.retransmissions);
    assert_eq!(bare.ack_timeouts, instrumented.ack_timeouts);
    assert_eq!(
        bare.transaction_latency.mean(),
        instrumented.transaction_latency.mean()
    );
    assert_eq!(
        bare.transaction_latency.max(),
        instrumented.transaction_latency.max()
    );
}

/// The metric registry agrees with the engine's own statistics — the
/// cheap per-component counters are not drifting approximations.
#[test]
fn registry_counters_agree_with_engine_stats() {
    let spec = campaign_spec();
    let plan = FaultPlan {
        flit_corruption_rate: 0.03,
        ..FaultPlan::none()
    };
    let mut noc = Noc::with_faults(&spec, 7, &plan).expect("instantiates");
    noc.enable_telemetry(TelemetryConfig::default());
    let mut inj =
        Injector::new(&spec, InjectorConfig::new(0.05, Pattern::Uniform), 7).expect("injector");
    for _ in 0..2000 {
        inj.step(&mut noc);
    }
    noc.run_until_idle(10_000);
    noc.flush_telemetry();
    let stats = noc.stats();
    let registry = noc.telemetry_registry().expect("telemetry enabled");
    assert!(registry.epochs() > 0);
    let json = registry.to_json().render();
    assert!(json.contains("\"flits_forwarded\""));
    assert!(json.contains("\"retransmissions\""));
    assert!(json.contains("\"packetization_stalls\""));
    let summary = noc.telemetry_summary();
    assert_eq!(summary.total_retransmissions, stats.retransmissions);
    assert!(stats.retransmissions > 0, "corruption must force recovery");
}
