#!/usr/bin/env python3
"""CI ledger-smoke validator.

Validates a run-ledger NDJSON file written by the bench binaries'
`--ledger PATH` flag:

  * every line is a standalone well-formed JSON object;
  * every record carries schema version 1, the identifying fields
    (source, workload, seed, config), a work section with a cycle
    count, and a wall section;
  * wall-clock data lives only under the `wall` key (the determinism
    quarantine: nothing outside `wall` may carry seconds or rates).

With `--compare OTHER.ndjson` it additionally strips the `wall`
section from every record in both files and requires the remaining
deterministic views to be byte-identical line by line — the cross
`--jobs` determinism gate.

Usage: check_ledger.py LEDGER.ndjson [--compare OTHER.ndjson]
"""

import json
import sys

SCHEMA_VERSION = 1
WALL_KEYS = {"elapsed_s", "cycles_per_sec", "flits_per_sec", "speedup",
             "pool", "wall_s", "eta_s"}


def fail(msg: str) -> None:
    print(f"check_ledger: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> list:
    records = []
    with open(path, encoding="utf-8") as f:
        for n, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{n}: not valid JSON: {e}")
            if not isinstance(obj, dict):
                fail(f"{path}:{n}: line is not a JSON object")
            records.append((n, obj))
    if not records:
        fail(f"{path} holds no records")
    return records


def validate(path: str, records: list) -> None:
    for n, obj in records:
        where = f"{path}:{n}"
        if obj.get("schema") != SCHEMA_VERSION:
            fail(f"{where}: schema version {obj.get('schema')!r}, "
                 f"expected {SCHEMA_VERSION}")
        for key in ("source", "workload", "config"):
            if not isinstance(obj.get(key), str):
                fail(f"{where}: missing string field {key!r}")
        if not isinstance(obj.get("seed"), int):
            fail(f"{where}: missing integer field 'seed'")
        if not isinstance(obj.get("pass"), bool):
            fail(f"{where}: missing boolean field 'pass'")
        work = obj.get("work")
        if not isinstance(work, dict) or not isinstance(
                work.get("cycles"), int):
            fail(f"{where}: work section has no cycle count")
        if not isinstance(obj.get("wall"), dict):
            fail(f"{where}: missing wall section")
        # Quarantine: wall-clock field names must not leak outside wall.
        for section, body in obj.items():
            if section == "wall" or not isinstance(body, dict):
                continue
            leaked = WALL_KEYS & set(body)
            if leaked:
                fail(f"{where}: wall-clock fields {sorted(leaked)} "
                     f"outside the wall section ({section})")


def deterministic_lines(records: list) -> list:
    out = []
    for _, obj in records:
        view = {k: v for k, v in obj.items() if k != "wall"}
        out.append(json.dumps(view, sort_keys=False,
                              separators=(",", ":")))
    return out


def main() -> None:
    argv = sys.argv[1:]
    if not argv or len(argv) not in (1, 3) or (
            len(argv) == 3 and argv[1] != "--compare"):
        fail("usage: check_ledger.py LEDGER.ndjson "
             "[--compare OTHER.ndjson]")
    path = argv[0]
    records = load(path)
    validate(path, records)
    if len(argv) == 3:
        other_path = argv[2]
        other = load(other_path)
        validate(other_path, other)
        mine, theirs = deterministic_lines(records), deterministic_lines(other)
        if len(mine) != len(theirs):
            fail(f"{path} has {len(mine)} records, "
                 f"{other_path} has {len(theirs)}")
        for i, (a, b) in enumerate(zip(mine, theirs), 1):
            if a != b:
                fail(f"deterministic views diverge at record {i}:\n"
                     f"  {path}: {a}\n  {other_path}: {b}")
        print(f"check_ledger: ok ({len(mine)} records, deterministic "
              f"views identical across both ledgers)")
    else:
        print(f"check_ledger: ok ({len(records)} records)")


if __name__ == "__main__":
    main()
