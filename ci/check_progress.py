#!/usr/bin/env python3
"""CI progress-smoke validator.

Checks a `cycle_engine --progress` NDJSON heartbeat stream against the
JSON report the same run wrote:

  * every line is a standalone well-formed JSON object;
  * every workload ends with exactly one final line
    (`"phase": "done"`, `"final": true`);
  * each final line's deterministic totals (cycle, packets_delivered,
    event/fallback step counts) match the report's entry for that
    workload byte-for-value.

Usage: check_progress.py PROGRESS.ndjson REPORT.json
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"check_progress: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 3:
        fail("usage: check_progress.py PROGRESS.ndjson REPORT.json")
    progress_path, report_path = sys.argv[1], sys.argv[2]

    finals = {}
    lines = 0
    with open(progress_path, encoding="utf-8") as f:
        for n, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                fail(f"{progress_path}:{n}: blank line in NDJSON stream")
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{progress_path}:{n}: not valid JSON: {e}")
            if not isinstance(obj, dict):
                fail(f"{progress_path}:{n}: line is not a JSON object")
            lines += 1
            if obj.get("final"):
                if obj.get("phase") != "done":
                    fail(f"{progress_path}:{n}: final line phase is "
                         f"{obj.get('phase')!r}, expected 'done'")
                w = obj.get("workload")
                if w in finals:
                    fail(f"{progress_path}:{n}: duplicate final line for {w}")
                finals[w] = obj
    if lines == 0:
        fail(f"{progress_path} is empty")
    if not finals:
        fail(f"{progress_path} has no final line")

    with open(report_path, encoding="utf-8") as f:
        report = json.load(f)
    workloads = report.get("workloads")
    if not workloads:
        fail(f"{report_path} has no workloads")

    for entry in workloads:
        name = entry["name"]
        if name not in finals:
            fail(f"no final progress line for workload {name}")
        last = finals.pop(name)
        checks = [
            ("cycle", entry["cycles"]),
            ("packets_delivered", entry["packets_delivered"]),
            ("flits_routed", entry["flits_routed"]),
            ("event_steps", entry["kernel_health"]["event_steps"]),
            ("fallback_steps", entry["kernel_health"]["fallback_steps"]),
        ]
        for key, want in checks:
            got = last.get(key)
            if got != want:
                fail(f"{name}: final line {key}={got!r} but report says {want!r}")
    if finals:
        fail(f"progress stream has final lines for unknown workloads: "
             f"{sorted(finals)}")
    print(f"check_progress: ok ({lines} lines, "
          f"{len(workloads)} workloads matched)")


if __name__ == "__main__":
    main()
