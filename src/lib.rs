//! # xpipes-repro — workspace umbrella
//!
//! Shared helpers for the examples and cross-crate integration tests of
//! the xpipes Lite reproduction. The actual library lives in the
//! workspace crates:
//!
//! * [`xpipes`] — the NoC component library (the paper's contribution),
//! * [`xpipes_sim`] / [`xpipes_ocp`] / [`xpipes_topology`] — substrates,
//! * [`xpipes_synth`] — synthesis estimation,
//! * [`xpipes_compiler`] — the xpipesCompiler,
//! * [`xpipes_sunmap`] — the SunMap mapping/selection flow,
//! * [`xpipes_traffic`] — workloads.

use xpipes_topology::builders::mesh;
use xpipes_topology::{NiId, NocSpec, TopologyError};

/// Builds the standard test platform used across integration tests: a
/// `k`×`k` mesh with one initiator per top-row switch and one target per
/// bottom-row switch, 1 MiB address windows in target order.
///
/// Returns the spec plus the initiator and target NI ids.
///
/// # Errors
///
/// Propagates topology-construction errors for degenerate `k`.
///
/// # Examples
///
/// ```
/// let (spec, cpus, mems) = xpipes_repro::test_platform(2)?;
/// assert_eq!(cpus.len(), 2);
/// assert_eq!(mems.len(), 2);
/// assert!(spec.validate().is_ok());
/// # Ok::<(), xpipes_topology::TopologyError>(())
/// ```
pub fn test_platform(k: usize) -> Result<(NocSpec, Vec<NiId>, Vec<NiId>), TopologyError> {
    let mut b = mesh(k, k)?;
    let mut cpus = Vec::with_capacity(k);
    let mut mems = Vec::with_capacity(k);
    for i in 0..k {
        cpus.push(b.attach_initiator(format!("cpu{i}"), (i, 0))?);
        mems.push(b.attach_target(format!("mem{i}"), (i, k - 1))?);
    }
    let mut spec = NocSpec::new(format!("platform{k}x{k}"), b.into_topology());
    for (i, &m) in mems.iter().enumerate() {
        spec.map_address(m, (i as u64) << 20, 1 << 20)
            .map_err(|_| TopologyError::EmptyDimension)?;
    }
    Ok((spec, cpus, mems))
}

/// The address window base of target index `i` in a [`test_platform`].
pub fn window_base(i: usize) -> u64 {
    (i as u64) << 20
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_shapes() {
        for k in [2usize, 3, 4] {
            let (spec, cpus, mems) = test_platform(k).expect("valid k");
            assert_eq!(cpus.len(), k);
            assert_eq!(mems.len(), k);
            assert!(spec.validate().is_ok());
            assert_eq!(spec.decode_address(window_base(1)), Some(mems[1]));
        }
    }

    #[test]
    fn degenerate_platform_rejected() {
        assert!(test_platform(0).is_err());
    }
}
