//! Request trace record and replay.
//!
//! A [`Trace`] is a time-stamped script of OCP requests that can be
//! replayed deterministically against any network — the mechanism for
//! apples-to-apples topology comparisons (the same trace drives every
//! candidate in the SunMap selection stage).

use xpipes::noc::Noc;
use xpipes::XpipesError;
use xpipes_ocp::Request;
use xpipes_topology::NiId;

/// One traced submission.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Cycle at which the request is submitted.
    pub cycle: u64,
    /// Submitting initiator NI.
    pub ni: NiId,
    /// The request.
    pub request: Request,
}

/// A deterministic request script.
///
/// # Examples
///
/// ```
/// use xpipes_traffic::trace::Trace;
/// use xpipes_ocp::Request;
/// use xpipes_topology::NiId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut trace = Trace::new();
/// trace.push(0, NiId(0), Request::write(0x0, vec![1])?);
/// trace.push(10, NiId(0), Request::read(0x0, 1)?);
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.duration(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event; events may be pushed out of order and are kept
    /// sorted by cycle.
    pub fn push(&mut self, cycle: u64, ni: NiId, request: Request) {
        let event = TraceEvent { cycle, ni, request };
        let pos = self.events.partition_point(|e| e.cycle <= cycle);
        self.events.insert(pos, event);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Cycle of the last event (0 for an empty trace).
    pub fn duration(&self) -> u64 {
        self.events.last().map_or(0, |e| e.cycle)
    }

    /// Events in submission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Replays the trace on `noc`, then runs until the network drains or
    /// `max_extra_cycles` elapse after the last submission. Returns the
    /// total cycles simulated.
    ///
    /// # Errors
    ///
    /// Propagates submission failures (unknown NI, unmapped address).
    pub fn replay(&self, noc: &mut Noc, max_extra_cycles: u64) -> Result<u64, XpipesError> {
        let mut idx = 0;
        let mut cycle = 0u64;
        while idx < self.events.len() {
            while idx < self.events.len() && self.events[idx].cycle == cycle {
                let e = &self.events[idx];
                noc.submit(e.ni, e.request.clone())?;
                idx += 1;
            }
            noc.step();
            cycle += 1;
        }
        let mut extra = 0;
        while !noc.is_idle() && extra < max_extra_cycles {
            noc.step();
            extra += 1;
        }
        Ok(cycle + extra)
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        let mut t = Trace::new();
        for e in iter {
            t.push(e.cycle, e.ni, e.request);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpipes_topology::builders::mesh;
    use xpipes_topology::NocSpec;

    fn spec() -> (NocSpec, NiId, NiId) {
        let mut b = mesh(2, 1).unwrap();
        let cpu = b.attach_initiator("cpu", (0, 0)).unwrap();
        let mem = b.attach_target("mem", (1, 0)).unwrap();
        let mut s = NocSpec::new("trace", b.into_topology());
        s.map_address(mem, 0, 1 << 16).unwrap();
        (s, cpu, mem)
    }

    #[test]
    fn push_keeps_cycle_order() {
        let mut t = Trace::new();
        t.push(20, NiId(0), Request::read(0, 1).unwrap());
        t.push(5, NiId(0), Request::read(8, 1).unwrap());
        t.push(10, NiId(0), Request::read(16, 1).unwrap());
        let cycles: Vec<u64> = t.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![5, 10, 20]);
        assert_eq!(t.duration(), 20);
        assert!(!t.is_empty());
    }

    #[test]
    fn replay_executes_all_events() {
        let (spec, cpu, mem) = spec();
        let mut trace = Trace::new();
        trace.push(0, cpu, Request::write(0x10, vec![7]).unwrap());
        trace.push(3, cpu, Request::write(0x18, vec![8]).unwrap());
        let mut noc = Noc::new(&spec).unwrap();
        let cycles = trace.replay(&mut noc, 10_000).unwrap();
        assert!(cycles >= 4);
        assert!(noc.is_idle());
        assert_eq!(noc.memory(mem).unwrap().peek(0x10), 7);
        assert_eq!(noc.memory(mem).unwrap().peek(0x18), 8);
    }

    #[test]
    fn replay_is_deterministic() {
        let (spec, cpu, _) = spec();
        let mut trace = Trace::new();
        for i in 0..10u64 {
            trace.push(i * 2, cpu, Request::write(i * 8, vec![i]).unwrap());
        }
        let mut n1 = Noc::new(&spec).unwrap();
        let mut n2 = Noc::new(&spec).unwrap();
        trace.replay(&mut n1, 10_000).unwrap();
        trace.replay(&mut n2, 10_000).unwrap();
        assert_eq!(n1.stats().flits_routed, n2.stats().flits_routed);
        assert_eq!(
            n1.stats().transaction_latency.mean(),
            n2.stats().transaction_latency.mean()
        );
    }

    #[test]
    fn replay_rejects_bad_ni() {
        let (spec, _, mem) = spec();
        let mut trace = Trace::new();
        trace.push(0, mem, Request::read(0, 1).unwrap()); // target, not initiator
        let mut noc = Noc::new(&spec).unwrap();
        assert!(trace.replay(&mut noc, 100).is_err());
    }

    #[test]
    fn from_iterator_collects() {
        let events = vec![
            TraceEvent {
                cycle: 4,
                ni: NiId(0),
                request: Request::read(0, 1).unwrap(),
            },
            TraceEvent {
                cycle: 1,
                ni: NiId(0),
                request: Request::read(8, 1).unwrap(),
            },
        ];
        let t: Trace = events.into_iter().collect();
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].cycle, 1);
    }
}
