//! Request trace record and replay.
//!
//! A [`Trace`] is a time-stamped script of OCP requests that can be
//! replayed deterministically against any network — the mechanism for
//! apples-to-apples topology comparisons (the same trace drives every
//! candidate in the SunMap selection stage).

use xpipes::noc::Noc;
use xpipes::XpipesError;
use xpipes_ocp::transaction::RequestBuilder;
use xpipes_ocp::{BurstSeq, MCmd, Request, Sideband, ThreadId};
use xpipes_sim::Json;
use xpipes_topology::NiId;

/// Version tag of the trace JSON schema.
const TRACE_FORMAT: u64 = 1;

/// One traced submission.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Cycle at which the request is submitted.
    pub cycle: u64,
    /// Submitting initiator NI.
    pub ni: NiId,
    /// The request.
    pub request: Request,
}

/// A deterministic request script.
///
/// # Examples
///
/// ```
/// use xpipes_traffic::trace::Trace;
/// use xpipes_ocp::Request;
/// use xpipes_topology::NiId;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut trace = Trace::new();
/// trace.push(0, NiId(0), Request::write(0x0, vec![1])?);
/// trace.push(10, NiId(0), Request::read(0x0, 1)?);
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.duration(), 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event; events may be pushed out of order and are kept
    /// sorted by cycle.
    pub fn push(&mut self, cycle: u64, ni: NiId, request: Request) {
        let event = TraceEvent { cycle, ni, request };
        let pos = self.events.partition_point(|e| e.cycle <= cycle);
        self.events.insert(pos, event);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Cycle of the last event (0 for an empty trace).
    pub fn duration(&self) -> u64 {
        self.events.last().map_or(0, |e| e.cycle)
    }

    /// Events in submission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Renders the trace as a deterministic, versioned JSON document:
    /// the same trace always produces byte-identical text, so saved
    /// traces can be golden-tested and diffed. Decode with
    /// [`Trace::from_json`].
    pub fn to_json(&self) -> String {
        let events = self
            .events
            .iter()
            .map(|e| {
                let r = &e.request;
                Json::object()
                    .field("cycle", Json::UInt(e.cycle))
                    .field("ni", Json::UInt(e.ni.0 as u64))
                    .field("cmd", Json::UInt(u64::from(r.cmd().encode())))
                    .field("addr", Json::UInt(r.addr()))
                    .field("burst_len", Json::UInt(u64::from(r.burst_len())))
                    .field("burst_seq", Json::UInt(u64::from(r.burst_seq().encode())))
                    .field(
                        "data",
                        Json::Array(r.data().iter().map(|&d| Json::UInt(d)).collect()),
                    )
                    .field("byte_en", Json::UInt(u64::from(r.byte_en())))
                    .field("thread", Json::UInt(u64::from(r.thread().0)))
                    .field("tag", Json::UInt(u64::from(r.tag())))
                    .field("sideband", Json::UInt(u64::from(r.sideband().encode())))
                    .build()
            })
            .collect();
        Json::object()
            .field("format", Json::UInt(TRACE_FORMAT))
            .field("events", Json::Array(events))
            .build()
            .render()
    }

    /// Decodes a document produced by [`Trace::to_json`].
    ///
    /// # Errors
    ///
    /// A message describing the first problem: JSON syntax errors, an
    /// unsupported `format` version, missing or mistyped fields,
    /// reserved command/burst encodings, or requests the OCP layer
    /// rejects (e.g. a write with no payload).
    pub fn from_json(text: &str) -> Result<Self, String> {
        fn field_u64(event: &Json, idx: usize, key: &str) -> Result<u64, String> {
            event
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("event {idx}: missing or non-integer \"{key}\""))
        }
        fn narrow<T: TryFrom<u64>>(idx: usize, key: &str, v: u64) -> Result<T, String> {
            T::try_from(v).map_err(|_| format!("event {idx}: \"{key}\" value {v} out of range"))
        }

        let doc = Json::parse(text)?;
        let format = doc
            .get("format")
            .and_then(Json::as_u64)
            .ok_or("missing \"format\" field")?;
        if format != TRACE_FORMAT {
            return Err(format!(
                "unsupported trace format {format} (this build reads {TRACE_FORMAT})"
            ));
        }
        let events = doc
            .get("events")
            .and_then(Json::as_array)
            .ok_or("missing \"events\" array")?;
        let mut trace = Trace::new();
        for (idx, event) in events.iter().enumerate() {
            let cycle = field_u64(event, idx, "cycle")?;
            let ni = NiId(narrow(idx, "ni", field_u64(event, idx, "ni")?)?);
            let cmd_bits: u8 = narrow(idx, "cmd", field_u64(event, idx, "cmd")?)?;
            let cmd = MCmd::decode(cmd_bits)
                .ok_or_else(|| format!("event {idx}: reserved cmd encoding {cmd_bits}"))?;
            let seq_bits: u8 = narrow(idx, "burst_seq", field_u64(event, idx, "burst_seq")?)?;
            let burst_seq = BurstSeq::decode(seq_bits)
                .ok_or_else(|| format!("event {idx}: reserved burst_seq encoding {seq_bits}"))?;
            let burst_len: u32 = narrow(idx, "burst_len", field_u64(event, idx, "burst_len")?)?;
            let data = event
                .get("data")
                .and_then(Json::as_array)
                .ok_or_else(|| format!("event {idx}: missing \"data\" array"))?
                .iter()
                .map(|d| {
                    d.as_u64()
                        .ok_or_else(|| format!("event {idx}: non-integer data beat"))
                })
                .collect::<Result<Vec<u64>, String>>()?;
            let builder = RequestBuilder::new(cmd, field_u64(event, idx, "addr")?)
                .burst_seq(burst_seq)
                .byte_en(narrow(idx, "byte_en", field_u64(event, idx, "byte_en")?)?)
                .thread(ThreadId(narrow(
                    idx,
                    "thread",
                    field_u64(event, idx, "thread")?,
                )?))
                .tag(narrow(idx, "tag", field_u64(event, idx, "tag")?)?)
                .sideband(Sideband::decode(narrow(
                    idx,
                    "sideband",
                    field_u64(event, idx, "sideband")?,
                )?));
            let builder = if cmd.carries_data() {
                builder.data(data)
            } else {
                builder.burst_len(burst_len)
            };
            let request = builder
                .build()
                .map_err(|e| format!("event {idx}: invalid request: {e}"))?;
            trace.push(cycle, ni, request);
        }
        Ok(trace)
    }

    /// Replays the trace on `noc`, then runs until the network drains or
    /// `max_extra_cycles` elapse after the last submission. Returns the
    /// total cycles simulated.
    ///
    /// # Errors
    ///
    /// Propagates submission failures (unknown NI, unmapped address).
    pub fn replay(&self, noc: &mut Noc, max_extra_cycles: u64) -> Result<u64, XpipesError> {
        let mut idx = 0;
        let mut cycle = 0u64;
        while idx < self.events.len() {
            while idx < self.events.len() && self.events[idx].cycle == cycle {
                let e = &self.events[idx];
                noc.submit(e.ni, e.request.clone())?;
                idx += 1;
            }
            noc.step();
            cycle += 1;
        }
        let mut extra = 0;
        while !noc.is_idle() && extra < max_extra_cycles {
            noc.step();
            extra += 1;
        }
        Ok(cycle + extra)
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        let mut t = Trace::new();
        for e in iter {
            t.push(e.cycle, e.ni, e.request);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpipes_topology::builders::mesh;
    use xpipes_topology::NocSpec;

    fn spec() -> (NocSpec, NiId, NiId) {
        let mut b = mesh(2, 1).unwrap();
        let cpu = b.attach_initiator("cpu", (0, 0)).unwrap();
        let mem = b.attach_target("mem", (1, 0)).unwrap();
        let mut s = NocSpec::new("trace", b.into_topology());
        s.map_address(mem, 0, 1 << 16).unwrap();
        (s, cpu, mem)
    }

    #[test]
    fn push_keeps_cycle_order() {
        let mut t = Trace::new();
        t.push(20, NiId(0), Request::read(0, 1).unwrap());
        t.push(5, NiId(0), Request::read(8, 1).unwrap());
        t.push(10, NiId(0), Request::read(16, 1).unwrap());
        let cycles: Vec<u64> = t.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![5, 10, 20]);
        assert_eq!(t.duration(), 20);
        assert!(!t.is_empty());
    }

    #[test]
    fn replay_executes_all_events() {
        let (spec, cpu, mem) = spec();
        let mut trace = Trace::new();
        trace.push(0, cpu, Request::write(0x10, vec![7]).unwrap());
        trace.push(3, cpu, Request::write(0x18, vec![8]).unwrap());
        let mut noc = Noc::new(&spec).unwrap();
        let cycles = trace.replay(&mut noc, 10_000).unwrap();
        assert!(cycles >= 4);
        assert!(noc.is_idle());
        assert_eq!(noc.memory(mem).unwrap().peek(0x10), 7);
        assert_eq!(noc.memory(mem).unwrap().peek(0x18), 8);
    }

    #[test]
    fn replay_is_deterministic() {
        let (spec, cpu, _) = spec();
        let mut trace = Trace::new();
        for i in 0..10u64 {
            trace.push(i * 2, cpu, Request::write(i * 8, vec![i]).unwrap());
        }
        let mut n1 = Noc::new(&spec).unwrap();
        let mut n2 = Noc::new(&spec).unwrap();
        trace.replay(&mut n1, 10_000).unwrap();
        trace.replay(&mut n2, 10_000).unwrap();
        assert_eq!(n1.stats().flits_routed, n2.stats().flits_routed);
        assert_eq!(
            n1.stats().transaction_latency.mean(),
            n2.stats().transaction_latency.mean()
        );
    }

    #[test]
    fn replay_rejects_bad_ni() {
        let (spec, _, mem) = spec();
        let mut trace = Trace::new();
        trace.push(0, mem, Request::read(0, 1).unwrap()); // target, not initiator
        let mut noc = Noc::new(&spec).unwrap();
        assert!(trace.replay(&mut noc, 100).is_err());
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut trace = Trace::new();
        trace.push(0, NiId(0), Request::write(0x10, vec![7, 8, 9]).unwrap());
        trace.push(3, NiId(1), Request::read(0x40, 4).unwrap());
        let fancy = RequestBuilder::new(MCmd::WriteNonPost, 0x80)
            .data(vec![0xDEAD_BEEF])
            .burst_seq(BurstSeq::Stream)
            .byte_en(0x0F)
            .thread(ThreadId(3))
            .tag(5)
            .sideband(Sideband {
                interrupt: true,
                flags: 0b1010,
            })
            .build()
            .unwrap();
        trace.push(7, NiId(0), fancy);

        let text = trace.to_json();
        let decoded = Trace::from_json(&text).unwrap();
        assert_eq!(decoded, trace, "decode(encode(t)) == t");
        // Deterministic: re-encoding the decode is byte-identical.
        assert_eq!(decoded.to_json(), text);
    }

    #[test]
    fn from_json_rejects_bad_documents() {
        assert!(Trace::from_json("not json").is_err());
        assert!(Trace::from_json("{}").unwrap_err().contains("format"));
        assert!(Trace::from_json("{\"format\": 99, \"events\": []}")
            .unwrap_err()
            .contains("unsupported"));
        // Reserved command encoding.
        let bad = "{\"format\": 1, \"events\": [{\"cycle\": 0, \"ni\": 0, \"cmd\": 7, \
                   \"addr\": 0, \"burst_len\": 1, \"burst_seq\": 0, \"data\": [], \
                   \"byte_en\": 255, \"thread\": 0, \"tag\": 0, \"sideband\": 0}]}";
        assert!(Trace::from_json(bad).unwrap_err().contains("reserved cmd"));
        // Empty trace round-trips.
        let empty = Trace::from_json(&Trace::new().to_json()).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn json_replay_matches_original() {
        let (spec, cpu, mem) = spec();
        let mut trace = Trace::new();
        trace.push(0, cpu, Request::write(0x10, vec![7]).unwrap());
        trace.push(3, cpu, Request::write(0x18, vec![8]).unwrap());
        let decoded = Trace::from_json(&trace.to_json()).unwrap();
        let mut noc = Noc::new(&spec).unwrap();
        decoded.replay(&mut noc, 10_000).unwrap();
        assert_eq!(noc.memory(mem).unwrap().peek(0x10), 7);
        assert_eq!(noc.memory(mem).unwrap().peek(0x18), 8);
    }

    #[test]
    fn from_iterator_collects() {
        let events = vec![
            TraceEvent {
                cycle: 4,
                ni: NiId(0),
                request: Request::read(0, 1).unwrap(),
            },
            TraceEvent {
                cycle: 1,
                ni: NiId(0),
                request: Request::read(8, 1).unwrap(),
            },
        ];
        let t: Trace = events.into_iter().collect();
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].cycle, 1);
    }
}
