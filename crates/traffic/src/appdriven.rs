//! Task-graph-driven traffic.
//!
//! Converts an application [`TaskGraph`] into per-flow injection
//! processes: each flow becomes a Bernoulli stream of burst writes from
//! the source core's initiator NI into the destination core's target
//! window, with a rate proportional to the flow's bandwidth annotation.
//! This is the workload the SunMap evaluation flow replays on candidate
//! topologies.

use xpipes::noc::Noc;
use xpipes::XpipesError;
use xpipes_ocp::Request;
use xpipes_sim::SimRng;
use xpipes_topology::spec::NocSpec;
use xpipes_topology::{NiId, TaskGraph};

/// Name suffix of initiator NIs created for a core ("dsp#i").
pub const INITIATOR_SUFFIX: &str = "#i";
/// Name suffix of target NIs created for a core ("dsp#t").
pub const TARGET_SUFFIX: &str = "#t";

#[derive(Debug, Clone)]
struct FlowInjector {
    src: NiId,
    base: u64,
    window: u64,
    rate: f64,
    burst: u32,
}

/// Replays a task graph's communication on a NoC.
#[derive(Debug, Clone)]
pub struct AppTraffic {
    flows: Vec<FlowInjector>,
    rng: SimRng,
    injected: u64,
    rejected: u64,
    /// Packets injected per flow, in task-graph flow order.
    flow_injected: Vec<u64>,
}

impl AppTraffic {
    /// Builds injectors for every flow of `graph` against `spec`.
    ///
    /// `rate_per_mbps` converts a flow's MB/s annotation into packets per
    /// cycle (it folds in clock frequency and packet size); `burst` is the
    /// write burst length per packet.
    ///
    /// Core NIs are located by the naming convention
    /// `<core>{INITIATOR_SUFFIX}` / `<core>{TARGET_SUFFIX}`, falling back
    /// to the bare core name.
    ///
    /// # Errors
    ///
    /// [`XpipesError::UnknownNi`] when a flow endpoint has no NI, or
    /// [`XpipesError::UnmappedAddress`] when a destination core's target
    /// NI has no address window.
    pub fn new(
        spec: &NocSpec,
        graph: &TaskGraph,
        rate_per_mbps: f64,
        burst: u32,
        seed: u64,
    ) -> Result<Self, XpipesError> {
        let mut flows = Vec::with_capacity(graph.flows().len());
        for flow in graph.flows() {
            let src_name = graph.core_name(flow.src).unwrap_or_default();
            let dst_name = graph.core_name(flow.dst).unwrap_or_default();
            let src_ni = find_ni(spec, src_name, INITIATOR_SUFFIX)
                .ok_or(XpipesError::UnknownNi(NiId(usize::MAX)))?;
            let dst_ni = find_ni(spec, dst_name, TARGET_SUFFIX)
                .ok_or(XpipesError::UnknownNi(NiId(usize::MAX)))?;
            let window = spec
                .range_of(dst_ni)
                .ok_or(XpipesError::UnmappedAddress(0))?;
            flows.push(FlowInjector {
                src: src_ni,
                base: window.base,
                window: window.size,
                rate: (flow.bandwidth_mbps * rate_per_mbps).min(1.0),
                burst,
            });
        }
        let flow_count = flows.len();
        Ok(AppTraffic {
            flows,
            rng: SimRng::seed(seed),
            injected: 0,
            rejected: 0,
            flow_injected: vec![0; flow_count],
        })
    }

    /// Packets injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Submissions rejected by the network.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Number of flow injectors.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Packets injected per flow (task-graph flow order) — lets tests and
    /// the co-design analysis verify that traffic tracks the bandwidth
    /// annotations.
    pub fn flow_injected(&self) -> &[u64] {
        &self.flow_injected
    }

    /// Offers one cycle of traffic, then advances the network.
    pub fn step(&mut self, noc: &mut Noc) {
        for i in 0..self.flows.len() {
            let fire = self.rng.chance(self.flows[i].rate);
            if !fire {
                continue;
            }
            let f = &self.flows[i];
            let offset = (self.rng.next_u64() % (f.window / 8).max(1)) * 8;
            let data: Vec<u64> = (0..f.burst as u64).collect();
            match Request::write(f.base + offset, data) {
                Ok(req) => match noc.submit(f.src, req) {
                    Ok(()) => {
                        self.injected += 1;
                        self.flow_injected[i] += 1;
                    }
                    Err(_) => self.rejected += 1,
                },
                Err(_) => self.rejected += 1,
            }
        }
        noc.step();
    }

    /// Runs `cycles` of injection + simulation.
    pub fn run(&mut self, noc: &mut Noc, cycles: u64) {
        for _ in 0..cycles {
            self.step(noc);
        }
    }
}

fn find_ni(spec: &NocSpec, core: &str, suffix: &str) -> Option<NiId> {
    let suffixed = format!("{core}{suffix}");
    spec.topology
        .ni_by_name(&suffixed)
        .or_else(|| spec.topology.ni_by_name(core))
        .map(|a| a.ni)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpipes_topology::builders::mesh;
    use xpipes_topology::CoreKind;

    fn setup() -> (NocSpec, TaskGraph) {
        let mut g = TaskGraph::new("app");
        let cpu = g.add_core("cpu", CoreKind::Initiator);
        let dsp = g.add_core("dsp", CoreKind::Both);
        let mem = g.add_core("mem", CoreKind::Target);
        g.add_flow(cpu, dsp, 100.0).unwrap();
        g.add_flow(dsp, mem, 50.0).unwrap();

        let mut b = mesh(2, 2).unwrap();
        b.attach_initiator("cpu#i", (0, 0)).unwrap();
        b.attach_initiator("dsp#i", (1, 0)).unwrap();
        let dsp_t = b.attach_target("dsp#t", (1, 0)).unwrap();
        let mem_t = b.attach_target("mem#t", (1, 1)).unwrap();
        let mut spec = NocSpec::new("app", b.into_topology());
        spec.map_address(dsp_t, 0, 1 << 20).unwrap();
        spec.map_address(mem_t, 1 << 20, 1 << 20).unwrap();
        (spec, g)
    }

    #[test]
    fn flows_bind_to_nis() {
        let (spec, g) = setup();
        let app = AppTraffic::new(&spec, &g, 1e-4, 4, 1).unwrap();
        assert_eq!(app.flow_count(), 2);
    }

    #[test]
    fn traffic_flows_proportionally_to_bandwidth() {
        let (spec, g) = setup();
        let mut noc = Noc::new(&spec).unwrap();
        let mut app = AppTraffic::new(&spec, &g, 2e-4, 2, 3).unwrap();
        app.run(&mut noc, 5000);
        // Flow rates: 100 MB/s → 0.02, 50 MB/s → 0.01 per cycle.
        // Expected total ≈ 5000 * 0.03 = 150.
        let got = app.injected();
        assert!((100..220).contains(&got), "injected {got}");
        noc.run_until_idle(50_000);
        assert!(noc.stats().packets_delivered > 0);
    }

    #[test]
    fn per_flow_counts_track_bandwidth() {
        let (spec, g) = setup();
        let mut noc = Noc::new(&spec).unwrap();
        let mut app = AppTraffic::new(&spec, &g, 2e-4, 2, 11).unwrap();
        app.run(&mut noc, 8000);
        let counts = app.flow_injected();
        assert_eq!(counts.len(), 2);
        assert_eq!(counts.iter().sum::<u64>(), app.injected());
        // Flow 0 is 100 MB/s, flow 1 is 50 MB/s: roughly 2:1.
        let ratio = counts[0] as f64 / counts[1].max(1) as f64;
        assert!(
            (1.3..3.0).contains(&ratio),
            "ratio {ratio} counts {counts:?}"
        );
    }

    #[test]
    fn missing_ni_is_an_error() {
        let (spec, _) = setup();
        let mut g2 = TaskGraph::new("bad");
        let a = g2.add_core("ghost", CoreKind::Initiator);
        let b2 = g2.add_core("mem", CoreKind::Target);
        g2.add_flow(a, b2, 10.0).unwrap();
        assert!(AppTraffic::new(&spec, &g2, 1e-4, 4, 1).is_err());
    }

    #[test]
    fn rate_clamped_to_one() {
        let (spec, g) = setup();
        // Absurd scale: rates clamp at 1 packet/cycle.
        let app = AppTraffic::new(&spec, &g, 1.0, 4, 1).unwrap();
        assert!(app.flows.iter().all(|f| f.rate <= 1.0));
    }
}
