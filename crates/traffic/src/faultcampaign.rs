//! Deterministic fault-injection campaigns.
//!
//! A campaign sweeps the fault models of [`FaultKind`] across an
//! error-rate grid on a reference network, with the protocol monitor
//! attached to every channel, and reduces each grid point to pass/fail
//! plus measurements ([`CampaignReport`]). Everything is seeded: the same
//! seed produces byte-identical JSON reports, so a campaign can be golden
//! -tested and diffed across code changes.
//!
//! The fault-free baseline run anchors the latency-degradation metric:
//! each grid point reports `avg_latency / baseline_avg_latency`.
//!
//! # Examples
//!
//! ```
//! use xpipes_sim::FaultKind;
//! use xpipes_traffic::faultcampaign::{campaign_spec, run_campaign, CampaignConfig};
//!
//! let mut cfg = CampaignConfig::new(7, 600);
//! cfg.error_rates = vec![0.02];
//! let report = run_campaign(&campaign_spec(), &[FaultKind::FlitCorruption], &cfg).unwrap();
//! assert!(report.pass, "{}", report.to_json());
//! ```

use xpipes::monitor::MonitorConfig;
use xpipes::noc::{Noc, TelemetryConfig};
use xpipes::XpipesError;
use xpipes_sim::{CampaignReport, FaultKind, FaultPlan, FaultRun, RunSummary};
use xpipes_topology::builders::mesh;
use xpipes_topology::spec::NocSpec;

use crate::generator::{Injector, InjectorConfig};
use crate::pattern::Pattern;

/// Campaign parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Master seed; every run derives its own streams from it.
    pub seed: u64,
    /// Injection cycles per run.
    pub cycles: u64,
    /// Extra cycle budget for draining after injection stops.
    pub drain_cycles: u64,
    /// Offered load (packets per cycle per initiator).
    pub injection_rate: f64,
    /// Error-rate grid swept for every fault model.
    pub error_rates: Vec<f64>,
    /// Liveness bound handed to the protocol monitor (cycles without
    /// progress on a channel holding undelivered flits).
    pub liveness_bound: u64,
    /// Flight-recorder depth (recent flit-level events kept per run);
    /// failing runs embed the rendered dump in the report. 0 disables.
    pub flight_recorder_depth: usize,
}

impl CampaignConfig {
    /// Defaults tuned for the reference 2x2 mesh: light load, the paper's
    /// tolerated error-rate range, and a generous drain budget.
    pub fn new(seed: u64, cycles: u64) -> Self {
        CampaignConfig {
            seed,
            cycles,
            drain_cycles: cycles.max(2000) * 4,
            injection_rate: 0.02,
            error_rates: vec![0.01, 0.03, 0.05],
            liveness_bound: 2500,
            flight_recorder_depth: 512,
        }
    }
}

/// The reference campaign network: a 2x2 mesh with two initiators and two
/// mapped targets — every link class is exercised (NI↔switch and
/// switch↔switch) with cross traffic.
pub fn campaign_spec() -> NocSpec {
    let mut b = mesh(2, 2).expect("2x2 mesh is valid");
    b.attach_initiator("cpu0", (0, 0)).expect("free port");
    b.attach_initiator("cpu1", (1, 0)).expect("free port");
    let m0 = b.attach_target("m0", (0, 1)).expect("free port");
    let m1 = b.attach_target("m1", (1, 1)).expect("free port");
    let mut spec = NocSpec::new("fault-campaign", b.into_topology());
    spec.map_address(m0, 0, 1 << 20).expect("window fits");
    spec.map_address(m1, 1 << 20, 1 << 20).expect("window fits");
    spec
}

/// Per-run seed derivation: decorrelates grid points while keeping the
/// whole campaign a pure function of the master seed.
fn run_seed(master: u64, index: u64) -> u64 {
    master.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Executes one monitored run; returns measurements, rendered
/// violations (monitor findings plus end-to-end delivery checks), and —
/// for failing runs with a flight recorder — the rendered event dump.
fn run_one(
    spec: &NocSpec,
    plan: &FaultPlan,
    cfg: &CampaignConfig,
    seed: u64,
) -> Result<(RunSummary, Vec<String>, Vec<String>), XpipesError> {
    let mut noc = Noc::with_faults(spec, seed, plan)?;
    noc.enable_monitor(MonitorConfig {
        liveness_bound: cfg.liveness_bound,
        max_violations: 64,
    });
    noc.enable_telemetry(TelemetryConfig {
        flight_recorder_depth: cfg.flight_recorder_depth,
        ..TelemetryConfig::default()
    });
    noc.enable_attribution();
    let inj_cfg = InjectorConfig::new(cfg.injection_rate, Pattern::Uniform);
    let mut inj = Injector::new(spec, inj_cfg, seed ^ 0x5EED)?;
    for cycle in 0..cfg.cycles {
        inj.step(&mut noc);
        if cycle % 512 == 511 {
            inj.drain_responses(&mut noc);
        }
    }
    let drained = noc.run_until_idle(cfg.drain_cycles);
    inj.drain_responses(&mut noc);
    noc.finish_monitor();

    let mut violations: Vec<String> = noc
        .monitor_violations()
        .iter()
        .map(|v| v.to_string())
        .collect();
    let stats = noc.stats();
    if !drained {
        violations.push(format!(
            "network failed to drain within {} cycles",
            cfg.drain_cycles
        ));
    } else if stats.packets_delivered != stats.packets_sent {
        violations.push(format!(
            "end-to-end loss: {} of {} packets delivered after drain",
            stats.packets_delivered, stats.packets_sent
        ));
    }
    let avg_latency = if stats.transaction_latency.count() > 0 {
        stats.transaction_latency.mean()
    } else {
        0.0
    };
    noc.flush_telemetry();
    let summary = RunSummary {
        cycles: stats.cycles,
        packets_sent: stats.packets_sent,
        packets_delivered: stats.packets_delivered,
        retransmissions: stats.retransmissions,
        flits_corrupted: stats.flits_corrupted,
        acks_dropped: stats.acks_dropped,
        acks_corrupted: stats.acks_corrupted,
        ack_timeouts: stats.ack_timeouts,
        stall_cycles: stats.stall_cycles,
        avg_latency,
        drained,
        telemetry: Some(noc.telemetry_summary()),
        attribution: noc.attribution_summary(),
    };
    // Dump the recorder only for failing runs: the report stays compact
    // and byte-deterministic, and the dump is the frozen pre-violation
    // window when the monitor tripped mid-run.
    let flight_dump = if violations.is_empty() {
        Vec::new()
    } else {
        noc.flight_dump_rendered()
    };
    Ok((summary, violations, flight_dump))
}

/// One grid point awaiting execution: the baseline (index 0) or a
/// fault-model/rate pair (index 1..). Each job is a pure function of the
/// master seed and its submission index, which is what makes the
/// campaign safe to fan out across threads.
#[derive(Debug, Clone)]
struct CampaignJob {
    index: u64,
    kind: Option<FaultKind>,
    rate: f64,
}

fn campaign_jobs(faults: &[FaultKind], cfg: &CampaignConfig) -> Vec<CampaignJob> {
    let mut jobs = vec![CampaignJob {
        index: 0,
        kind: None,
        rate: 0.0,
    }];
    let mut index = 1u64;
    for &kind in faults {
        for &rate in &cfg.error_rates {
            jobs.push(CampaignJob {
                index,
                kind: Some(kind),
                rate,
            });
            index += 1;
        }
    }
    jobs
}

/// Folds per-run results (in submission order: baseline first, then the
/// grid) into the campaign report. Shared by the serial and parallel
/// paths so both render byte-identical JSON.
fn merge_results(
    spec: &NocSpec,
    faults: &[FaultKind],
    cfg: &CampaignConfig,
    jobs: &[CampaignJob],
    results: Vec<(RunSummary, Vec<String>, Vec<String>)>,
) -> CampaignReport {
    debug_assert_eq!(jobs.len(), results.len());
    let mut results = results.into_iter();
    let (baseline, base_violations, _) = results.next().expect("baseline job always present");
    let mut runs = Vec::with_capacity(jobs.len() - 1);
    for (job, (summary, violations, flight_dump)) in jobs[1..].iter().zip(results) {
        let kind = job.kind.expect("grid jobs carry a fault kind");
        let latency_factor = if baseline.avg_latency > 0.0 && summary.avg_latency > 0.0 {
            summary.avg_latency / baseline.avg_latency
        } else {
            1.0
        };
        let pass = violations.is_empty() && summary.drained;
        runs.push(FaultRun {
            fault: kind.name().to_string(),
            rate: job.rate,
            summary,
            violations,
            flight_dump,
            latency_factor,
            pass,
        });
    }
    debug_assert_eq!(runs.len(), faults.len() * cfg.error_rates.len());
    let pass = base_violations.is_empty() && baseline.drained && runs.iter().all(|r| r.pass);
    CampaignReport {
        name: spec.name.clone(),
        seed: cfg.seed,
        cycles: cfg.cycles,
        baseline,
        runs,
        pass,
    }
}

/// Runs the full campaign serially: a fault-free baseline, then every
/// fault model in `faults` at every rate in the config's grid.
///
/// # Errors
///
/// Propagates network-assembly failures from the specification.
pub fn run_campaign(
    spec: &NocSpec,
    faults: &[FaultKind],
    cfg: &CampaignConfig,
) -> Result<CampaignReport, XpipesError> {
    let jobs = campaign_jobs(faults, cfg);
    let results = jobs
        .iter()
        .map(|job| {
            let plan = job.kind.map_or_else(FaultPlan::none, |k| k.plan(job.rate));
            run_one(spec, &plan, cfg, run_seed(cfg.seed, job.index))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(merge_results(spec, faults, cfg, &jobs, results))
}

/// Runs the full campaign with grid points fanned out across `workers`
/// threads. Every run derives all randomness from the master seed and
/// its grid index, and results are merged in submission order, so the
/// report is **byte-identical** to [`run_campaign`] for the same inputs
/// — regardless of worker count or scheduling.
///
/// Pass `workers = 0` to use the host's available parallelism.
///
/// # Errors
///
/// Propagates network-assembly failures from the specification.
pub fn run_campaign_parallel(
    spec: &NocSpec,
    faults: &[FaultKind],
    cfg: &CampaignConfig,
    workers: usize,
) -> Result<CampaignReport, XpipesError> {
    let jobs = campaign_jobs(faults, cfg);
    let workers = if workers == 0 {
        xpipes_sim::parallel::worker_count(jobs.len())
    } else {
        workers
    };
    let results = xpipes_sim::parallel::parallel_map_ordered(&jobs, workers, |_, job| {
        let plan = job.kind.map_or_else(FaultPlan::none, |k| k.plan(job.rate));
        run_one(spec, &plan, cfg, run_seed(cfg.seed, job.index))
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    Ok(merge_results(spec, faults, cfg, &jobs, results))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_clean_and_drains() {
        let cfg = CampaignConfig::new(11, 800);
        let (summary, violations, flight_dump) =
            run_one(&campaign_spec(), &FaultPlan::none(), &cfg, 11).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
        assert!(flight_dump.is_empty(), "clean runs carry no dump");
        assert!(summary.drained);
        assert!(summary.packets_sent > 0);
        assert_eq!(summary.packets_sent, summary.packets_delivered);
        assert_eq!(summary.flits_corrupted, 0);
        let telem = summary
            .telemetry
            .as_ref()
            .expect("campaign runs collect telemetry");
        assert_eq!(telem.total_retransmissions, summary.retransmissions);
    }

    #[test]
    fn single_grid_point_passes_under_corruption() {
        let mut cfg = CampaignConfig::new(13, 600);
        cfg.error_rates = vec![0.03];
        let report = run_campaign(&campaign_spec(), &[FaultKind::FlitCorruption], &cfg).unwrap();
        assert!(report.pass, "{}", report.to_json());
        assert_eq!(report.runs.len(), 1);
        assert!(report.runs[0].summary.flits_corrupted > 0);
        assert!(report.runs[0].summary.retransmissions > 0);
    }

    #[test]
    fn run_seeds_decorrelate() {
        assert_ne!(run_seed(7, 0), run_seed(7, 1));
        assert_ne!(run_seed(7, 1), run_seed(7, 2));
    }

    #[test]
    fn parallel_report_is_byte_identical_to_serial() {
        let mut cfg = CampaignConfig::new(29, 500);
        cfg.error_rates = vec![0.02, 0.04];
        let faults = [FaultKind::FlitCorruption, FaultKind::AckLoss];
        let serial = run_campaign(&campaign_spec(), &faults, &cfg).unwrap();
        for workers in [1, 2, 4] {
            let par = run_campaign_parallel(&campaign_spec(), &faults, &cfg, workers).unwrap();
            assert_eq!(par.to_json(), serial.to_json(), "workers={workers}");
        }
    }
}
