//! Deterministic fault-injection campaigns.
//!
//! A campaign sweeps the fault models of [`FaultKind`] across an
//! error-rate grid on a reference network, with the protocol monitor
//! attached to every channel, and reduces each grid point to pass/fail
//! plus measurements ([`CampaignReport`]). Everything is seeded: the same
//! seed produces byte-identical JSON reports, so a campaign can be golden
//! -tested and diffed across code changes.
//!
//! The fault-free baseline run anchors the latency-degradation metric:
//! each grid point reports `avg_latency / baseline_avg_latency`.
//!
//! # Examples
//!
//! ```
//! use xpipes_sim::FaultKind;
//! use xpipes_traffic::faultcampaign::{campaign_spec, run_campaign, CampaignConfig};
//!
//! let mut cfg = CampaignConfig::new(7, 600);
//! cfg.error_rates = vec![0.02];
//! let report = run_campaign(&campaign_spec(), &[FaultKind::FlitCorruption], &cfg).unwrap();
//! assert!(report.pass, "{}", report.to_json());
//! ```

use xpipes::monitor::MonitorConfig;
use xpipes::noc::{Noc, TelemetryConfig};
use xpipes::XpipesError;
use xpipes_sim::attribution::{AttributionSummary, PHASE_COUNT};
use xpipes_sim::parallel::PoolStats;
use xpipes_sim::snapshot::fnv64;
use xpipes_sim::telemetry::TelemetrySummary;
use xpipes_sim::{
    CampaignReport, FaultKind, FaultPlan, FaultRun, Json, RunSummary, Snapshot, SnapshotError,
    SnapshotReader, SnapshotWriter,
};
use xpipes_topology::builders::mesh;
use xpipes_topology::spec::NocSpec;

use crate::generator::{Injector, InjectorConfig};
use crate::pattern::Pattern;

/// Campaign parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Master seed; every run derives its own streams from it.
    pub seed: u64,
    /// Injection cycles per run.
    pub cycles: u64,
    /// Extra cycle budget for draining after injection stops.
    pub drain_cycles: u64,
    /// Offered load (packets per cycle per initiator).
    pub injection_rate: f64,
    /// Error-rate grid swept for every fault model.
    pub error_rates: Vec<f64>,
    /// Liveness bound handed to the protocol monitor (cycles without
    /// progress on a channel holding undelivered flits).
    pub liveness_bound: u64,
    /// Flight-recorder depth (recent flit-level events kept per run);
    /// failing runs embed the rendered dump in the report. 0 disables.
    pub flight_recorder_depth: usize,
}

impl CampaignConfig {
    /// Defaults tuned for the reference 2x2 mesh: light load, the paper's
    /// tolerated error-rate range, and a generous drain budget.
    pub fn new(seed: u64, cycles: u64) -> Self {
        CampaignConfig {
            seed,
            cycles,
            drain_cycles: cycles.max(2000) * 4,
            injection_rate: 0.02,
            error_rates: vec![0.01, 0.03, 0.05],
            liveness_bound: 2500,
            flight_recorder_depth: 512,
        }
    }
}

/// The reference campaign network: a 2x2 mesh with two initiators and two
/// mapped targets — every link class is exercised (NI↔switch and
/// switch↔switch) with cross traffic.
pub fn campaign_spec() -> NocSpec {
    let mut b = mesh(2, 2).expect("2x2 mesh is valid");
    b.attach_initiator("cpu0", (0, 0)).expect("free port");
    b.attach_initiator("cpu1", (1, 0)).expect("free port");
    let m0 = b.attach_target("m0", (0, 1)).expect("free port");
    let m1 = b.attach_target("m1", (1, 1)).expect("free port");
    let mut spec = NocSpec::new("fault-campaign", b.into_topology());
    spec.map_address(m0, 0, 1 << 20).expect("window fits");
    spec.map_address(m1, 1 << 20, 1 << 20).expect("window fits");
    spec
}

/// Per-run seed derivation: decorrelates grid points while keeping the
/// whole campaign a pure function of the master seed.
fn run_seed(master: u64, index: u64) -> u64 {
    master.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Attaches the campaign observer set (protocol monitor, telemetry with
/// flight recorder, latency attribution) to a freshly built network.
fn instrument(noc: &mut Noc, cfg: &CampaignConfig) {
    noc.enable_monitor(MonitorConfig {
        liveness_bound: cfg.liveness_bound,
        max_violations: 64,
    });
    noc.enable_telemetry(TelemetryConfig {
        flight_recorder_depth: cfg.flight_recorder_depth,
        ..TelemetryConfig::default()
    });
    noc.enable_attribution();
}

/// Executes one monitored run (optionally branched off a shared warm
/// checkpoint); returns measurements, rendered violations (monitor
/// findings plus end-to-end delivery checks), and — for failing runs
/// with a flight recorder — the rendered event dump.
fn run_one(
    spec: &NocSpec,
    plan: &FaultPlan,
    cfg: &CampaignConfig,
    seed: u64,
    warm: Option<&WarmStart>,
) -> Result<(RunSummary, Vec<String>, Vec<String>), XpipesError> {
    let mut noc = Noc::with_faults(spec, seed, plan)?;
    instrument(&mut noc, cfg);
    let inj_cfg = InjectorConfig::new(cfg.injection_rate, Pattern::Uniform);
    let mut inj = Injector::new(spec, inj_cfg, seed ^ 0x5EED)?;
    if let Some(warm) = warm {
        // Branch off the shared warm state: all mutable state (including
        // every RNG stream position) comes from the checkpoint; the
        // branch keeps only its structural identity — its fault plan.
        noc.restore(warm.noc_bytes())?;
        let mut r = SnapshotReader::open(warm.injector_bytes()).map_err(XpipesError::from)?;
        inj.load_state(&mut r).map_err(XpipesError::from)?;
        r.finish().map_err(XpipesError::from)?;
    }
    for cycle in 0..cfg.cycles {
        inj.step(&mut noc);
        if cycle % 512 == 511 {
            inj.drain_responses(&mut noc);
        }
    }
    let drained = noc.run_until_idle(cfg.drain_cycles);
    inj.drain_responses(&mut noc);
    noc.finish_monitor();

    let mut violations: Vec<String> = noc
        .monitor_violations()
        .iter()
        .map(|v| v.to_string())
        .collect();
    let stats = noc.stats();
    if !drained {
        violations.push(format!(
            "network failed to drain within {} cycles",
            cfg.drain_cycles
        ));
    } else if stats.packets_delivered != stats.packets_sent {
        violations.push(format!(
            "end-to-end loss: {} of {} packets delivered after drain",
            stats.packets_delivered, stats.packets_sent
        ));
    }
    let avg_latency = if stats.transaction_latency.count() > 0 {
        stats.transaction_latency.mean()
    } else {
        0.0
    };
    noc.flush_telemetry();
    let summary = RunSummary {
        cycles: stats.cycles,
        packets_sent: stats.packets_sent,
        packets_delivered: stats.packets_delivered,
        retransmissions: stats.retransmissions,
        flits_corrupted: stats.flits_corrupted,
        acks_dropped: stats.acks_dropped,
        acks_corrupted: stats.acks_corrupted,
        ack_timeouts: stats.ack_timeouts,
        stall_cycles: stats.stall_cycles,
        avg_latency,
        drained,
        telemetry: Some(noc.telemetry_summary()),
        attribution: noc.attribution_summary(),
    };
    // Dump the recorder only for failing runs: the report stays compact
    // and byte-deterministic, and the dump is the frozen pre-violation
    // window when the monitor tripped mid-run.
    let flight_dump = if violations.is_empty() {
        Vec::new()
    } else {
        noc.flight_dump_rendered()
    };
    Ok((summary, violations, flight_dump))
}

/// Shared warm state for branching campaigns: the fully instrumented
/// network and its injector, checkpointed after a fault-free warm-up.
///
/// Warm-start campaigns restore this one checkpoint into every grid
/// point, so all branches start from identical queue occupancy, RNG
/// stream positions, and observer state, and differ **only** in their
/// fault plan. That is a deliberately different measurement protocol
/// from the cold campaign (where every point derives decorrelated
/// streams from its grid index): it isolates the fault model's effect
/// from stream variation, at the cost of correlated randomness across
/// points. Cold and warm reports are therefore not comparable
/// point-for-point — compare within one protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStart {
    /// Warm-up cycles already executed when the checkpoint was taken.
    pub cycles: u64,
    noc: Vec<u8>,
    injector: Vec<u8>,
}

impl WarmStart {
    /// The network checkpoint ([`Noc::checkpoint`] container).
    pub fn noc_bytes(&self) -> &[u8] {
        &self.noc
    }

    /// The injector snapshot container.
    pub fn injector_bytes(&self) -> &[u8] {
        &self.injector
    }

    /// Serializes the warm state into one snapshot container (for
    /// journaling to disk next to resumable campaign points).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.u64(self.cycles);
        w.bytes(&self.noc);
        w.bytes(&self.injector);
        w.finish()
    }

    /// Decodes a container produced by [`WarmStart::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the container is damaged or truncated.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes)?;
        let cycles = r.u64()?;
        let noc = r.bytes()?;
        let injector = r.bytes()?;
        r.finish()?;
        Ok(WarmStart {
            cycles,
            noc,
            injector,
        })
    }
}

/// Warms a fault-free, fully instrumented network for `warm_cycles` of
/// injection and checkpoints it for branching.
///
/// The warm-up runs with the complete campaign observer set (protocol
/// monitor, telemetry, attribution) because the monitor's conservation
/// and ordering checks assume observation from cycle 0 — it cannot
/// attach mid-stream. Each branch then restores the observers' state
/// along with the network.
///
/// # Errors
///
/// Propagates network-assembly failures from the specification.
pub fn warm_checkpoint(
    spec: &NocSpec,
    cfg: &CampaignConfig,
    warm_cycles: u64,
) -> Result<WarmStart, XpipesError> {
    let mut noc = Noc::with_faults(spec, cfg.seed, &FaultPlan::none())?;
    instrument(&mut noc, cfg);
    let inj_cfg = InjectorConfig::new(cfg.injection_rate, Pattern::Uniform);
    let mut inj = Injector::new(spec, inj_cfg, cfg.seed ^ 0x5EED)?;
    for cycle in 0..warm_cycles {
        inj.step(&mut noc);
        if cycle % 512 == 511 {
            inj.drain_responses(&mut noc);
        }
    }
    let mut w = SnapshotWriter::new();
    inj.save_state(&mut w);
    Ok(WarmStart {
        cycles: warm_cycles,
        noc: noc.checkpoint(),
        injector: w.finish(),
    })
}

/// One grid point awaiting execution: the baseline (index 0) or a
/// fault-model/rate pair (index 1..). Each job is a pure function of the
/// master seed and its submission index, which is what makes the
/// campaign safe to fan out across threads.
#[derive(Debug, Clone)]
struct CampaignJob {
    index: u64,
    kind: Option<FaultKind>,
    rate: f64,
}

fn campaign_jobs(faults: &[FaultKind], cfg: &CampaignConfig) -> Vec<CampaignJob> {
    let mut jobs = vec![CampaignJob {
        index: 0,
        kind: None,
        rate: 0.0,
    }];
    let mut index = 1u64;
    for &kind in faults {
        for &rate in &cfg.error_rates {
            jobs.push(CampaignJob {
                index,
                kind: Some(kind),
                rate,
            });
            index += 1;
        }
    }
    jobs
}

/// Folds per-run results (in submission order: baseline first, then the
/// grid) into the campaign report. Shared by the serial and parallel
/// paths so both render byte-identical JSON.
fn merge_results(
    spec: &NocSpec,
    faults: &[FaultKind],
    cfg: &CampaignConfig,
    jobs: &[CampaignJob],
    results: Vec<(RunSummary, Vec<String>, Vec<String>)>,
) -> CampaignReport {
    debug_assert_eq!(jobs.len(), results.len());
    let mut results = results.into_iter();
    let (baseline, base_violations, _) = results.next().expect("baseline job always present");
    let mut runs = Vec::with_capacity(jobs.len() - 1);
    for (job, (summary, violations, flight_dump)) in jobs[1..].iter().zip(results) {
        let kind = job.kind.expect("grid jobs carry a fault kind");
        let latency_factor = if baseline.avg_latency > 0.0 && summary.avg_latency > 0.0 {
            summary.avg_latency / baseline.avg_latency
        } else {
            1.0
        };
        let pass = violations.is_empty() && summary.drained;
        runs.push(FaultRun {
            fault: kind.name().to_string(),
            rate: job.rate,
            summary,
            violations,
            flight_dump,
            latency_factor,
            pass,
        });
    }
    debug_assert_eq!(runs.len(), faults.len() * cfg.error_rates.len());
    let pass = base_violations.is_empty() && baseline.drained && runs.iter().all(|r| r.pass);
    CampaignReport {
        name: spec.name.clone(),
        seed: cfg.seed,
        cycles: cfg.cycles,
        baseline,
        runs,
        pass,
    }
}

/// Shared body of all four campaign runners: `workers = None` executes
/// grid points serially, `Some(n)` fans out across `n` threads (0 means
/// host parallelism). Results merge in submission order either way, so
/// serial and parallel reports are byte-identical.
fn run_campaign_impl(
    spec: &NocSpec,
    faults: &[FaultKind],
    cfg: &CampaignConfig,
    warm: Option<&WarmStart>,
    workers: Option<usize>,
) -> Result<CampaignReport, XpipesError> {
    let jobs = campaign_jobs(faults, cfg);
    let point = |job: &CampaignJob| {
        let plan = job.kind.map_or_else(FaultPlan::none, |k| k.plan(job.rate));
        run_one(spec, &plan, cfg, run_seed(cfg.seed, job.index), warm)
    };
    let results = match workers {
        None => jobs.iter().map(point).collect::<Result<Vec<_>, _>>()?,
        Some(workers) => {
            let workers = if workers == 0 {
                xpipes_sim::parallel::worker_count(jobs.len())
            } else {
                workers
            };
            xpipes_sim::parallel::parallel_map_ordered(&jobs, workers, |_, job| point(job))
                .into_iter()
                .collect::<Result<Vec<_>, _>>()?
        }
    };
    Ok(merge_results(spec, faults, cfg, &jobs, results))
}

/// Runs the full campaign serially: a fault-free baseline, then every
/// fault model in `faults` at every rate in the config's grid.
///
/// # Errors
///
/// Propagates network-assembly failures from the specification.
pub fn run_campaign(
    spec: &NocSpec,
    faults: &[FaultKind],
    cfg: &CampaignConfig,
) -> Result<CampaignReport, XpipesError> {
    run_campaign_impl(spec, faults, cfg, None, None)
}

/// Runs the full campaign with grid points fanned out across `workers`
/// threads. Every run derives all randomness from the master seed and
/// its grid index, and results are merged in submission order, so the
/// report is **byte-identical** to [`run_campaign`] for the same inputs
/// — regardless of worker count or scheduling.
///
/// Pass `workers = 0` to use the host's available parallelism.
///
/// # Errors
///
/// Propagates network-assembly failures from the specification.
pub fn run_campaign_parallel(
    spec: &NocSpec,
    faults: &[FaultKind],
    cfg: &CampaignConfig,
    workers: usize,
) -> Result<CampaignReport, XpipesError> {
    run_campaign_impl(spec, faults, cfg, None, Some(workers))
}

/// Runs the campaign with every grid point branched off the shared
/// [`WarmStart`] instead of a cold network. See [`WarmStart`] for how
/// this measurement protocol differs from the cold campaign.
///
/// # Errors
///
/// Propagates assembly failures and checkpoint-decode failures (e.g. a
/// warm state captured on a differently shaped network).
pub fn run_campaign_warm(
    spec: &NocSpec,
    faults: &[FaultKind],
    cfg: &CampaignConfig,
    warm: &WarmStart,
) -> Result<CampaignReport, XpipesError> {
    run_campaign_impl(spec, faults, cfg, Some(warm), None)
}

/// Parallel variant of [`run_campaign_warm`]; byte-identical to it for
/// the same inputs, regardless of worker count. Pass `workers = 0` to
/// use the host's available parallelism.
///
/// # Errors
///
/// Propagates assembly failures and checkpoint-decode failures.
pub fn run_campaign_warm_parallel(
    spec: &NocSpec,
    faults: &[FaultKind],
    cfg: &CampaignConfig,
    warm: &WarmStart,
    workers: usize,
) -> Result<CampaignReport, XpipesError> {
    run_campaign_impl(spec, faults, cfg, Some(warm), Some(workers))
}

/// Number of grid points a campaign over `faults` executes: the
/// fault-free baseline plus one point per fault model per error rate.
pub fn grid_size(faults: &[FaultKind], cfg: &CampaignConfig) -> u64 {
    1 + (faults.len() * cfg.error_rates.len()) as u64
}

/// `(fault name, error rate)` of grid point `index` — `("baseline", 0.0)`
/// for index 0. Introspection for progress journals and status displays.
///
/// # Panics
///
/// When `index` is outside `0..grid_size(faults, cfg)`.
pub fn grid_point_label(faults: &[FaultKind], cfg: &CampaignConfig, index: u64) -> (String, f64) {
    let jobs = campaign_jobs(faults, cfg);
    let job = jobs
        .iter()
        .find(|j| j.index == index)
        .unwrap_or_else(|| panic!("grid index {index} out of range ({} points)", jobs.len()));
    (
        job.kind
            .map_or_else(|| "baseline".to_string(), |k| k.name().to_string()),
        job.rate,
    )
}

/// One per-grid-point progress-journal line: index, fault/rate label,
/// pass/fail status, and the deterministic run counters. Every field is
/// a pure function of the campaign seed and grid index — no wall-clock —
/// so a progress journal is **byte-identical across `--jobs` worker
/// counts** and across resumed runs.
pub fn progress_line(faults: &[FaultKind], cfg: &CampaignConfig, point: &CompletedPoint) -> Json {
    let (fault, rate) = grid_point_label(faults, cfg, point.index);
    let pass = point.violations.is_empty() && point.summary.drained;
    Json::object()
        .field("point", Json::UInt(point.index))
        .field("grid", Json::UInt(grid_size(faults, cfg)))
        .field("fault", Json::str(fault))
        .field("rate", Json::Fixed(rate, 4))
        .field("status", Json::str(if pass { "pass" } else { "fail" }))
        .field("cycles", Json::UInt(point.summary.cycles))
        .field("delivered", Json::UInt(point.summary.packets_delivered))
        .field("retransmissions", Json::UInt(point.summary.retransmissions))
        .field("violations", Json::UInt(point.violations.len() as u64))
        .field("drained", Json::Bool(point.summary.drained))
        .build()
}

/// Runs the full campaign fanned out across `workers` threads (0 means
/// host parallelism), invoking `on_point` with every completed grid
/// point **in ascending grid order** as chunks finish — the hook behind
/// `faultcampaign --progress`. Because each point is a pure function of
/// the master seed and its index, the emission order and every point's
/// content are independent of the worker count, and the returned report
/// is byte-identical to [`run_campaign_parallel`] (or the warm variant
/// when `warm` is given). The returned [`PoolStats`] describe how the
/// worker pool spent its wall clock; they are nondeterministic and must
/// stay quarantined from byte-compared artifacts.
///
/// # Errors
///
/// Propagates assembly and checkpoint-decode failures.
pub fn run_campaign_streaming(
    spec: &NocSpec,
    faults: &[FaultKind],
    cfg: &CampaignConfig,
    warm: Option<&WarmStart>,
    workers: usize,
    on_point: &mut dyn FnMut(&CompletedPoint),
) -> Result<(CampaignReport, PoolStats), XpipesError> {
    let grid = grid_size(faults, cfg);
    let workers = if workers == 0 {
        xpipes_sim::parallel::worker_count(grid as usize)
    } else {
        workers
    };
    let indices: Vec<u64> = (0..grid).collect();
    let mut points = Vec::with_capacity(grid as usize);
    let mut pool = PoolStats::default();
    // Chunked at the worker count so completed points stream out as the
    // campaign advances instead of all at once at the end.
    for chunk in indices.chunks(workers.max(1)) {
        let (ran, stats) =
            xpipes_sim::parallel::parallel_map_ordered_stats(chunk, workers, |_, &index| {
                run_grid_point(spec, faults, cfg, index, warm)
            });
        pool.merge(&stats);
        for done in ran {
            let point = done?;
            on_point(&point);
            points.push(point);
        }
    }
    Ok((assemble_report(spec, faults, cfg, points), pool))
}

/// Fingerprint of everything that determines a campaign's results:
/// spec name, seed, cycle/drain budgets, injection rate, error-rate
/// grid, monitor/recorder parameters, and the fault list. A resumable
/// campaign journals this next to its completed points so a resume with
/// different parameters is rejected instead of silently mixing results.
pub fn config_fingerprint(spec: &NocSpec, faults: &[FaultKind], cfg: &CampaignConfig) -> u64 {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = write!(
        s,
        "spec={};seed={};cycles={};drain={};rate={:016x};liveness={};depth={};rates=",
        spec.name,
        cfg.seed,
        cfg.cycles,
        cfg.drain_cycles,
        cfg.injection_rate.to_bits(),
        cfg.liveness_bound,
        cfg.flight_recorder_depth,
    );
    for r in &cfg.error_rates {
        let _ = write!(s, "{:016x},", r.to_bits());
    }
    s.push_str(";faults=");
    for k in faults {
        s.push_str(k.name());
        s.push(',');
    }
    fnv64(s.as_bytes())
}

fn save_strings(w: &mut SnapshotWriter, items: &[String]) {
    w.len(items.len());
    for s in items {
        w.str(s);
    }
}

fn load_strings(r: &mut SnapshotReader<'_>) -> Result<Vec<String>, SnapshotError> {
    let n = r.len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.str()?);
    }
    Ok(out)
}

fn save_summary(w: &mut SnapshotWriter, s: &RunSummary) {
    w.u64(s.cycles);
    w.u64(s.packets_sent);
    w.u64(s.packets_delivered);
    w.u64(s.retransmissions);
    w.u64(s.flits_corrupted);
    w.u64(s.acks_dropped);
    w.u64(s.acks_corrupted);
    w.u64(s.ack_timeouts);
    w.u64(s.stall_cycles);
    w.f64(s.avg_latency);
    w.bool(s.drained);
    w.bool(s.telemetry.is_some());
    if let Some(t) = &s.telemetry {
        w.u64(t.total_retransmissions);
        w.len(t.link_retransmissions.len());
        for (label, n) in &t.link_retransmissions {
            w.str(label);
            w.u64(*n);
        }
        w.u64(t.peak_queue_depth);
        w.str(&t.peak_queue_switch);
    }
    w.bool(s.attribution.is_some());
    if let Some(a) = &s.attribution {
        w.u64(a.packets);
        w.u64(a.incomplete);
        w.u64(a.in_flight);
        w.len(a.phase_totals.len());
        for t in &a.phase_totals {
            w.u64(*t);
        }
        w.bool(a.worst_flow.is_some());
        if let Some((src, dst, latency)) = &a.worst_flow {
            w.str(src);
            w.str(dst);
            w.u64(*latency);
        }
    }
}

fn load_summary(r: &mut SnapshotReader<'_>) -> Result<RunSummary, SnapshotError> {
    let cycles = r.u64()?;
    let packets_sent = r.u64()?;
    let packets_delivered = r.u64()?;
    let retransmissions = r.u64()?;
    let flits_corrupted = r.u64()?;
    let acks_dropped = r.u64()?;
    let acks_corrupted = r.u64()?;
    let ack_timeouts = r.u64()?;
    let stall_cycles = r.u64()?;
    let avg_latency = r.f64()?;
    let drained = r.bool()?;
    let telemetry = if r.bool()? {
        let total_retransmissions = r.u64()?;
        let n = r.len()?;
        let mut link_retransmissions = Vec::with_capacity(n);
        for _ in 0..n {
            let label = r.str()?;
            let count = r.u64()?;
            link_retransmissions.push((label, count));
        }
        Some(TelemetrySummary {
            total_retransmissions,
            link_retransmissions,
            peak_queue_depth: r.u64()?,
            peak_queue_switch: r.str()?,
        })
    } else {
        None
    };
    let attribution = if r.bool()? {
        let packets = r.u64()?;
        let incomplete = r.u64()?;
        let in_flight = r.u64()?;
        let n = r.len()?;
        if n != PHASE_COUNT {
            return Err(SnapshotError::Malformed(format!(
                "attribution has {PHASE_COUNT} phases, snapshot {n}"
            )));
        }
        let mut phase_totals = [0u64; PHASE_COUNT];
        for t in phase_totals.iter_mut() {
            *t = r.u64()?;
        }
        let worst_flow = if r.bool()? {
            Some((r.str()?, r.str()?, r.u64()?))
        } else {
            None
        };
        Some(AttributionSummary {
            packets,
            incomplete,
            in_flight,
            phase_totals,
            worst_flow,
        })
    } else {
        None
    };
    Ok(RunSummary {
        cycles,
        packets_sent,
        packets_delivered,
        retransmissions,
        flits_corrupted,
        acks_dropped,
        acks_corrupted,
        ack_timeouts,
        stall_cycles,
        avg_latency,
        drained,
        telemetry,
        attribution,
    })
}

/// One executed grid point, self-contained for journaling: a
/// crash-resumable campaign writes each point to disk as it completes
/// (via [`CompletedPoint::to_bytes`]) and a resume decodes the journal,
/// runs only the missing indices, and [`assemble_report`]s the union.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedPoint {
    /// Grid index (0 = baseline; see [`grid_size`]).
    pub index: u64,
    /// Measurements of the run.
    pub summary: RunSummary,
    /// Rendered monitor findings plus end-to-end checks.
    pub violations: Vec<String>,
    /// Flight-recorder dump (failing runs only).
    pub flight_dump: Vec<String>,
}

impl CompletedPoint {
    /// Serializes the point into one snapshot container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.u64(self.index);
        save_summary(&mut w, &self.summary);
        save_strings(&mut w, &self.violations);
        save_strings(&mut w, &self.flight_dump);
        w.finish()
    }

    /// Decodes a container produced by [`CompletedPoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the container is damaged or truncated.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::open(bytes)?;
        let index = r.u64()?;
        let summary = load_summary(&mut r)?;
        let violations = load_strings(&mut r)?;
        let flight_dump = load_strings(&mut r)?;
        r.finish()?;
        Ok(CompletedPoint {
            index,
            summary,
            violations,
            flight_dump,
        })
    }
}

/// Executes the single grid point `index` of the campaign over `faults`
/// — the unit of work a crash-resumable campaign journals. The result
/// is identical to what [`run_campaign`] (or the warm variants, when
/// `warm` is given) computes for that index.
///
/// # Panics
///
/// When `index` is outside `0..grid_size(faults, cfg)`.
///
/// # Errors
///
/// Propagates assembly and checkpoint-decode failures.
pub fn run_grid_point(
    spec: &NocSpec,
    faults: &[FaultKind],
    cfg: &CampaignConfig,
    index: u64,
    warm: Option<&WarmStart>,
) -> Result<CompletedPoint, XpipesError> {
    let jobs = campaign_jobs(faults, cfg);
    let job = jobs
        .iter()
        .find(|j| j.index == index)
        .unwrap_or_else(|| panic!("grid index {index} out of range ({} points)", jobs.len()));
    let plan = job.kind.map_or_else(FaultPlan::none, |k| k.plan(job.rate));
    let (summary, violations, flight_dump) =
        run_one(spec, &plan, cfg, run_seed(cfg.seed, job.index), warm)?;
    Ok(CompletedPoint {
        index,
        summary,
        violations,
        flight_dump,
    })
}

/// Folds a complete set of journaled grid points (any order) into the
/// campaign report. Byte-identical to the report the one-shot runners
/// produce from the same configuration.
///
/// # Panics
///
/// When a grid index is missing, duplicated, or out of range — a
/// resumable campaign must finish every point before assembling.
pub fn assemble_report(
    spec: &NocSpec,
    faults: &[FaultKind],
    cfg: &CampaignConfig,
    mut points: Vec<CompletedPoint>,
) -> CampaignReport {
    let jobs = campaign_jobs(faults, cfg);
    assert_eq!(
        points.len(),
        jobs.len(),
        "campaign has {} grid points, got {}",
        jobs.len(),
        points.len()
    );
    points.sort_by_key(|p| p.index);
    for (i, p) in points.iter().enumerate() {
        assert_eq!(p.index, i as u64, "grid point {i} missing or duplicated");
    }
    let results = points
        .into_iter()
        .map(|p| (p.summary, p.violations, p.flight_dump))
        .collect();
    merge_results(spec, faults, cfg, &jobs, results)
}

/// What [`time_travel`] recovered about the first monitor violation.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeTravelReport {
    /// Injection cycle at which the primary run first tripped.
    pub violation_cycle: u64,
    /// Cycle of the periodic checkpoint the replay rewound to.
    pub checkpoint_cycle: u64,
    /// Rendered monitor findings from the instrumented replay.
    pub violations: Vec<String>,
    /// Flight-recorder window frozen at the violation.
    pub flight_dump: Vec<String>,
    /// Attribution over the replayed window (packets first observed
    /// before the checkpoint are ignored by design).
    pub attribution: Option<AttributionSummary>,
}

/// Time-travel debugging: runs `plan` with only the (cheap) protocol
/// monitor attached, taking a checkpoint every `checkpoint_every`
/// cycles; on the first violation, rewinds to the last checkpoint and
/// replays the window with the flight recorder and latency attribution
/// enabled, returning the instrumented evidence. Returns `Ok(None)`
/// when no violation occurs within the injection phase.
///
/// The replay is bit-exact: observers are passive, so the restored
/// network re-executes the identical cycle sequence and trips the same
/// violation.
///
/// # Panics
///
/// When `checkpoint_every` is 0.
///
/// # Errors
///
/// Propagates assembly and checkpoint-decode failures.
pub fn time_travel(
    spec: &NocSpec,
    plan: &FaultPlan,
    cfg: &CampaignConfig,
    seed: u64,
    checkpoint_every: u64,
) -> Result<Option<TimeTravelReport>, XpipesError> {
    assert!(checkpoint_every > 0, "checkpoint_every must be nonzero");
    let monitor_cfg = MonitorConfig {
        liveness_bound: cfg.liveness_bound,
        max_violations: 64,
    };
    let inj_cfg = InjectorConfig::new(cfg.injection_rate, Pattern::Uniform);

    // Primary run: monitor only, so the hunt for the violation stays
    // cheap; checkpoints are taken *before* stepping the cycle.
    let mut noc = Noc::with_faults(spec, seed, plan)?;
    noc.enable_monitor(monitor_cfg);
    let mut inj = Injector::new(spec, inj_cfg, seed ^ 0x5EED)?;
    let mut checkpoint_cycle = 0u64;
    let mut noc_ckpt = noc.checkpoint();
    let mut inj_ckpt = {
        let mut w = SnapshotWriter::new();
        inj.save_state(&mut w);
        w.finish()
    };
    let mut violation_cycle = None;
    for cycle in 0..cfg.cycles {
        if cycle > 0 && cycle.is_multiple_of(checkpoint_every) {
            checkpoint_cycle = cycle;
            noc_ckpt = noc.checkpoint();
            let mut w = SnapshotWriter::new();
            inj.save_state(&mut w);
            inj_ckpt = w.finish();
        }
        inj.step(&mut noc);
        if cycle % 512 == 511 {
            inj.drain_responses(&mut noc);
        }
        if !noc.monitor_violations().is_empty() {
            violation_cycle = Some(cycle);
            break;
        }
    }
    let Some(violation_cycle) = violation_cycle else {
        return Ok(None);
    };

    // Replay from the last checkpoint with the full observer set. The
    // checkpoint has no telemetry/attribution sections, so those
    // observers start fresh at the rewind point; the monitor restores
    // its mid-stream state so its checks stay consistent.
    let mut replay = Noc::with_faults(spec, seed, plan)?;
    replay.enable_monitor(monitor_cfg);
    replay.enable_telemetry(TelemetryConfig {
        flight_recorder_depth: cfg.flight_recorder_depth.max(256),
        ..TelemetryConfig::default()
    });
    replay.enable_attribution();
    replay.restore(&noc_ckpt)?;
    let mut replay_inj = Injector::new(spec, inj_cfg, seed ^ 0x5EED)?;
    let mut r = SnapshotReader::open(&inj_ckpt).map_err(XpipesError::from)?;
    replay_inj.load_state(&mut r).map_err(XpipesError::from)?;
    r.finish().map_err(XpipesError::from)?;
    // Absolute cycle numbering keeps the periodic response drain on the
    // same cadence as the primary run.
    for cycle in checkpoint_cycle..cfg.cycles {
        replay_inj.step(&mut replay);
        if cycle % 512 == 511 {
            replay_inj.drain_responses(&mut replay);
        }
        if !replay.monitor_violations().is_empty() {
            break;
        }
    }
    replay.flush_telemetry();
    let violations = replay
        .monitor_violations()
        .iter()
        .map(|v| v.to_string())
        .collect();
    Ok(Some(TimeTravelReport {
        violation_cycle,
        checkpoint_cycle,
        violations,
        flight_dump: replay.flight_dump_rendered(),
        attribution: replay.attribution_summary(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_clean_and_drains() {
        let cfg = CampaignConfig::new(11, 800);
        let (summary, violations, flight_dump) =
            run_one(&campaign_spec(), &FaultPlan::none(), &cfg, 11, None).unwrap();
        assert!(violations.is_empty(), "{violations:?}");
        assert!(flight_dump.is_empty(), "clean runs carry no dump");
        assert!(summary.drained);
        assert!(summary.packets_sent > 0);
        assert_eq!(summary.packets_sent, summary.packets_delivered);
        assert_eq!(summary.flits_corrupted, 0);
        let telem = summary
            .telemetry
            .as_ref()
            .expect("campaign runs collect telemetry");
        assert_eq!(telem.total_retransmissions, summary.retransmissions);
    }

    #[test]
    fn single_grid_point_passes_under_corruption() {
        let mut cfg = CampaignConfig::new(13, 600);
        cfg.error_rates = vec![0.03];
        let report = run_campaign(&campaign_spec(), &[FaultKind::FlitCorruption], &cfg).unwrap();
        assert!(report.pass, "{}", report.to_json());
        assert_eq!(report.runs.len(), 1);
        assert!(report.runs[0].summary.flits_corrupted > 0);
        assert!(report.runs[0].summary.retransmissions > 0);
    }

    #[test]
    fn run_seeds_decorrelate() {
        assert_ne!(run_seed(7, 0), run_seed(7, 1));
        assert_ne!(run_seed(7, 1), run_seed(7, 2));
    }

    #[test]
    fn parallel_report_is_byte_identical_to_serial() {
        let mut cfg = CampaignConfig::new(29, 500);
        cfg.error_rates = vec![0.02, 0.04];
        let faults = [FaultKind::FlitCorruption, FaultKind::AckLoss];
        let serial = run_campaign(&campaign_spec(), &faults, &cfg).unwrap();
        for workers in [1, 2, 4] {
            let par = run_campaign_parallel(&campaign_spec(), &faults, &cfg, workers).unwrap();
            assert_eq!(par.to_json(), serial.to_json(), "workers={workers}");
        }
    }

    #[test]
    fn warm_start_bytes_round_trip() {
        let cfg = CampaignConfig::new(5, 200);
        let warm = warm_checkpoint(&campaign_spec(), &cfg, 128).unwrap();
        assert_eq!(warm.cycles, 128);
        let decoded = WarmStart::from_bytes(&warm.to_bytes()).unwrap();
        assert_eq!(decoded, warm);
        assert!(WarmStart::from_bytes(b"junk").is_err());
    }

    #[test]
    fn warm_campaign_is_deterministic_and_parallel_identical() {
        let mut cfg = CampaignConfig::new(31, 400);
        cfg.error_rates = vec![0.02];
        let faults = [FaultKind::FlitCorruption, FaultKind::AckLoss];
        let warm = warm_checkpoint(&campaign_spec(), &cfg, 300).unwrap();
        let a = run_campaign_warm(&campaign_spec(), &faults, &cfg, &warm).unwrap();
        let b = run_campaign_warm(&campaign_spec(), &faults, &cfg, &warm).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "warm campaign is deterministic");
        for workers in [2, 4] {
            let par = run_campaign_warm_parallel(&campaign_spec(), &faults, &cfg, &warm, workers)
                .unwrap();
            assert_eq!(par.to_json(), a.to_json(), "workers={workers}");
        }
        // The warmed-up traffic is part of every branch's measurements.
        let cold = run_campaign(&campaign_spec(), &faults, &cfg).unwrap();
        assert!(a.baseline.packets_sent > cold.baseline.packets_sent);
    }

    #[test]
    fn grid_points_assemble_into_the_serial_report() {
        let mut cfg = CampaignConfig::new(17, 400);
        cfg.error_rates = vec![0.03];
        let faults = [FaultKind::FlitCorruption];
        let serial = run_campaign(&campaign_spec(), &faults, &cfg).unwrap();
        let n = grid_size(&faults, &cfg);
        assert_eq!(n, 2);
        // Journaled out of order and round-tripped through bytes, as a
        // crash-resumed campaign would see them.
        let mut points = Vec::new();
        for index in (0..n).rev() {
            let p = run_grid_point(&campaign_spec(), &faults, &cfg, index, None).unwrap();
            points.push(CompletedPoint::from_bytes(&p.to_bytes()).unwrap());
        }
        let assembled = assemble_report(&campaign_spec(), &faults, &cfg, points);
        assert_eq!(assembled.to_json(), serial.to_json());
    }

    #[test]
    #[should_panic(expected = "grid point")]
    fn assemble_rejects_missing_points() {
        let mut cfg = CampaignConfig::new(17, 200);
        cfg.error_rates = vec![0.03];
        let faults = [FaultKind::FlitCorruption];
        let p = run_grid_point(&campaign_spec(), &faults, &cfg, 1, None).unwrap();
        let dup = p.clone();
        assemble_report(&campaign_spec(), &faults, &cfg, vec![p, dup]);
    }

    #[test]
    fn config_fingerprint_tracks_parameters() {
        let spec = campaign_spec();
        let cfg = CampaignConfig::new(7, 500);
        let faults = [FaultKind::FlitCorruption];
        let base = config_fingerprint(&spec, &faults, &cfg);
        assert_eq!(base, config_fingerprint(&spec, &faults, &cfg));
        let mut other = cfg.clone();
        other.seed = 8;
        assert_ne!(base, config_fingerprint(&spec, &faults, &other));
        let mut other = cfg.clone();
        other.error_rates = vec![0.01];
        assert_ne!(base, config_fingerprint(&spec, &faults, &other));
        assert_ne!(base, config_fingerprint(&spec, &[FaultKind::AckLoss], &cfg));
    }

    #[test]
    fn time_travel_replays_the_violation_window() {
        let mut cfg = CampaignConfig::new(3, 4000);
        cfg.liveness_bound = 20;
        let plan = FaultPlan {
            stall_rate: 0.02,
            stall_len: 40,
            ..FaultPlan::none()
        };
        let report = time_travel(&campaign_spec(), &plan, &cfg, 3, 256)
            .unwrap()
            .expect("aggressive stalls trip the liveness monitor");
        assert!(report.checkpoint_cycle <= report.violation_cycle);
        assert!(!report.violations.is_empty());
        assert!(!report.flight_dump.is_empty(), "recorder captured events");
        // The rewound replay trips the identical violation.
        let again = time_travel(&campaign_spec(), &plan, &cfg, 3, 256)
            .unwrap()
            .unwrap();
        assert_eq!(again, report);
    }

    #[test]
    fn time_travel_is_quiet_on_clean_runs() {
        let cfg = CampaignConfig::new(9, 600);
        let report = time_travel(&campaign_spec(), &FaultPlan::none(), &cfg, 9, 128).unwrap();
        assert!(report.is_none());
    }
}
