//! Measurement orchestration: warm-up, measure, report.
//!
//! Two protocols are offered. The classic [`measure`]/[`sweep`] path
//! warms the network up from cold at every operating point. The
//! warm-start path ([`sweep_warm_up`] + [`sweep_from_checkpoint`])
//! pays for one warm-up, checkpoints it, and branches every operating
//! point off the same warmed state — O(warmup + n·window) instead of
//! O(n·(warmup + window)) for an n-point curve. The two protocols give
//! different (both valid) curves: warm-start points share their warm-up
//! traffic and RNG stream positions, so compare points within one
//! protocol, not across.

use xpipes::noc::Noc;
use xpipes::XpipesError;
use xpipes_sim::{Snapshot, SnapshotReader, SnapshotWriter};
use xpipes_topology::spec::NocSpec;

use crate::generator::{Injector, InjectorConfig};
use crate::pattern::Pattern;

/// One point on a load–latency curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Offered load in packets per cycle per initiator.
    pub offered: f64,
    /// Accepted throughput in packets per cycle (network total).
    pub accepted_packets_per_cycle: f64,
    /// Mean transaction round-trip latency in cycles.
    pub avg_latency_cycles: f64,
    /// 95th-percentile transaction latency in cycles.
    pub p95_latency_cycles: f64,
    /// Worst observed transaction latency in cycles.
    pub max_latency_cycles: f64,
    /// ACK/nACK retransmissions during the measurement window.
    pub retransmissions: u64,
}

/// Measures one operating point.
///
/// Runs `warmup` cycles unmeasured, then measures `window` cycles by
/// differencing the network statistics.
///
/// # Errors
///
/// Propagates network construction errors.
pub fn measure(
    spec: &NocSpec,
    pattern: Pattern,
    rate: f64,
    warmup: u64,
    window: u64,
    seed: u64,
) -> Result<LoadPoint, XpipesError> {
    let mut noc = Noc::with_seed(spec, seed)?;
    let mut inj = Injector::new(spec, InjectorConfig::new(rate, pattern), seed ^ 0x9E37)?;
    inj.run(&mut noc, warmup);
    inj.drain_responses(&mut noc);
    let before = noc.stats();
    inj.run(&mut noc, window);
    inj.drain_responses(&mut noc);
    let after = noc.stats();

    let delivered = after.packets_delivered - before.packets_delivered;
    // Latency stats accumulate over the whole run; the window-dominant
    // view is acceptable because warm-up is short relative to the window,
    // and the mean over completed transactions is what the paper-style
    // curves report.
    Ok(LoadPoint {
        offered: rate,
        accepted_packets_per_cycle: delivered as f64 / window as f64,
        avg_latency_cycles: after.transaction_latency.mean(),
        p95_latency_cycles: after.latency_histogram.percentile(95.0).unwrap_or(0) as f64,
        max_latency_cycles: after.transaction_latency.max().unwrap_or(0.0),
        retransmissions: after.retransmissions - before.retransmissions,
    })
}

/// Parallel variant of [`sweep`], fanned out on the deterministic work
/// pool ([`xpipes_sim::parallel`]). Each operating point is seeded
/// independently and results come back in submission order, so the
/// output is identical to the sequential sweep — the pool just bounds
/// thread count at the host's parallelism instead of spawning one
/// thread per point.
///
/// # Errors
///
/// Propagates network construction errors from any point.
pub fn sweep_parallel(
    spec: &NocSpec,
    pattern: Pattern,
    rates: &[f64],
    warmup: u64,
    window: u64,
    seed: u64,
) -> Result<Vec<LoadPoint>, XpipesError> {
    let workers = xpipes_sim::parallel::worker_count(rates.len());
    xpipes_sim::parallel::parallel_map_ordered(rates, workers, |_, &r| {
        measure(spec, pattern, r, warmup, window, seed)
    })
    .into_iter()
    .collect()
}

/// A warmed measurement state: the (observer-free) network and injector
/// checkpointed after the warm-up phase, ready to branch into many
/// operating points without re-warming.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepWarmState {
    /// Warm-up cycles already executed.
    pub warmup: u64,
    pattern: Pattern,
    noc: Vec<u8>,
    injector: Vec<u8>,
}

/// Warms a network for `warmup` cycles at `warm_rate` offered load and
/// checkpoints it for [`sweep_from_checkpoint`].
///
/// Pick `warm_rate` representative of the sweep (e.g. its median rate):
/// every branched point inherits this warm-up's queue occupancy.
///
/// # Errors
///
/// Propagates network construction errors.
pub fn sweep_warm_up(
    spec: &NocSpec,
    pattern: Pattern,
    warm_rate: f64,
    warmup: u64,
    seed: u64,
) -> Result<SweepWarmState, XpipesError> {
    let mut noc = Noc::with_seed(spec, seed)?;
    let mut inj = Injector::new(spec, InjectorConfig::new(warm_rate, pattern), seed ^ 0x9E37)?;
    inj.run(&mut noc, warmup);
    inj.drain_responses(&mut noc);
    let mut w = SnapshotWriter::new();
    inj.save_state(&mut w);
    Ok(SweepWarmState {
        warmup,
        pattern,
        noc: noc.checkpoint(),
        injector: w.finish(),
    })
}

/// Measures one operating point branched off a shared warm checkpoint:
/// restores the warmed network, switches the injector to `rate`, and
/// measures `window` cycles by differencing statistics.
///
/// # Errors
///
/// Propagates construction and checkpoint-decode errors (e.g. a warm
/// state captured on a differently shaped network).
pub fn measure_from_checkpoint(
    spec: &NocSpec,
    warm: &SweepWarmState,
    rate: f64,
    window: u64,
    seed: u64,
) -> Result<LoadPoint, XpipesError> {
    let mut noc = Noc::with_seed(spec, seed)?;
    noc.restore(&warm.noc)?;
    let mut inj = Injector::new(spec, InjectorConfig::new(rate, warm.pattern), seed ^ 0x9E37)?;
    let mut r = SnapshotReader::open(&warm.injector).map_err(XpipesError::from)?;
    inj.load_state(&mut r).map_err(XpipesError::from)?;
    r.finish().map_err(XpipesError::from)?;
    let before = noc.stats();
    inj.run(&mut noc, window);
    inj.drain_responses(&mut noc);
    let after = noc.stats();

    let delivered = after.packets_delivered - before.packets_delivered;
    Ok(LoadPoint {
        offered: rate,
        accepted_packets_per_cycle: delivered as f64 / window as f64,
        avg_latency_cycles: after.transaction_latency.mean(),
        p95_latency_cycles: after.latency_histogram.percentile(95.0).unwrap_or(0) as f64,
        max_latency_cycles: after.transaction_latency.max().unwrap_or(0.0),
        retransmissions: after.retransmissions - before.retransmissions,
    })
}

/// Sweeps offered load over `rates` with every point branched off the
/// shared warm checkpoint — one warm-up for the whole curve.
///
/// # Errors
///
/// Propagates construction and checkpoint-decode errors.
pub fn sweep_from_checkpoint(
    spec: &NocSpec,
    warm: &SweepWarmState,
    rates: &[f64],
    window: u64,
    seed: u64,
) -> Result<Vec<LoadPoint>, XpipesError> {
    rates
        .iter()
        .map(|&r| measure_from_checkpoint(spec, warm, r, window, seed))
        .collect()
}

/// Parallel variant of [`sweep_from_checkpoint`]; identical output for
/// the same inputs, regardless of worker count.
///
/// # Errors
///
/// Propagates construction and checkpoint-decode errors from any point.
pub fn sweep_from_checkpoint_parallel(
    spec: &NocSpec,
    warm: &SweepWarmState,
    rates: &[f64],
    window: u64,
    seed: u64,
) -> Result<Vec<LoadPoint>, XpipesError> {
    let workers = xpipes_sim::parallel::worker_count(rates.len());
    xpipes_sim::parallel::parallel_map_ordered(rates, workers, |_, &r| {
        measure_from_checkpoint(spec, warm, r, window, seed)
    })
    .into_iter()
    .collect()
}

/// Sweeps offered load over `rates`, producing one [`LoadPoint`] each.
///
/// # Errors
///
/// Propagates network construction errors.
pub fn sweep(
    spec: &NocSpec,
    pattern: Pattern,
    rates: &[f64],
    warmup: u64,
    window: u64,
    seed: u64,
) -> Result<Vec<LoadPoint>, XpipesError> {
    rates
        .iter()
        .map(|&r| measure(spec, pattern, r, warmup, window, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpipes_topology::builders::mesh;

    fn spec_3x3() -> NocSpec {
        let mut b = mesh(3, 3).unwrap();
        for i in 0..3 {
            b.attach_initiator(format!("cpu{i}"), (i, 0)).unwrap();
        }
        let mut targets = Vec::new();
        for i in 0..3 {
            targets.push(b.attach_target(format!("m{i}"), (i, 2)).unwrap());
        }
        let mut spec = NocSpec::new("sweep", b.into_topology());
        for (i, t) in targets.into_iter().enumerate() {
            spec.map_address(t, (i as u64) << 20, 1 << 20).unwrap();
        }
        spec
    }

    #[test]
    fn light_load_has_low_latency() {
        let p = measure(&spec_3x3(), Pattern::Uniform, 0.005, 500, 3000, 11).unwrap();
        assert!(p.accepted_packets_per_cycle > 0.0);
        assert!(p.avg_latency_cycles > 5.0, "{}", p.avg_latency_cycles);
        assert!(p.avg_latency_cycles < 100.0, "{}", p.avg_latency_cycles);
    }

    #[test]
    fn latency_rises_with_load() {
        let spec = spec_3x3();
        let light = measure(&spec, Pattern::Uniform, 0.005, 500, 4000, 11).unwrap();
        let heavy = measure(&spec, Pattern::Uniform, 0.08, 500, 4000, 11).unwrap();
        assert!(
            heavy.avg_latency_cycles > light.avg_latency_cycles,
            "light {} heavy {}",
            light.avg_latency_cycles,
            heavy.avg_latency_cycles
        );
    }

    #[test]
    fn throughput_saturates() {
        let spec = spec_3x3();
        let pts = sweep(&spec, Pattern::Uniform, &[0.02, 0.30], 300, 3000, 13).unwrap();
        // At 0.30 offered per node the network is far past saturation:
        // accepted throughput must be well below offered.
        let offered_total = 0.30 * 3.0;
        assert!(pts[1].accepted_packets_per_cycle < offered_total * 0.8);
        // But more than the light-load accepted rate.
        assert!(pts[1].accepted_packets_per_cycle > pts[0].accepted_packets_per_cycle);
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let spec = spec_3x3();
        let rates = [0.01, 0.03];
        let seq = sweep(&spec, Pattern::Uniform, &rates, 200, 1500, 19).unwrap();
        let par = sweep_parallel(&spec, Pattern::Uniform, &rates, 200, 1500, 19).unwrap();
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.avg_latency_cycles, b.avg_latency_cycles);
            assert_eq!(a.accepted_packets_per_cycle, b.accepted_packets_per_cycle);
        }
    }

    #[test]
    fn percentile_at_least_mean_under_load() {
        let p = measure(&spec_3x3(), Pattern::Uniform, 0.05, 300, 3000, 23).unwrap();
        assert!(p.p95_latency_cycles >= p.avg_latency_cycles * 0.8, "{p:?}");
        assert!(p.p95_latency_cycles <= p.max_latency_cycles + 32.0, "{p:?}");
    }

    #[test]
    fn warm_sweep_is_deterministic_and_parallel_identical() {
        let spec = spec_3x3();
        let rates = [0.01, 0.03, 0.06];
        let warm = sweep_warm_up(&spec, Pattern::Uniform, 0.03, 500, 29).unwrap();
        let a = sweep_from_checkpoint(&spec, &warm, &rates, 2000, 29).unwrap();
        let b = sweep_from_checkpoint(&spec, &warm, &rates, 2000, 29).unwrap();
        assert_eq!(a, b, "warm sweep is deterministic");
        let par = sweep_from_checkpoint_parallel(&spec, &warm, &rates, 2000, 29).unwrap();
        assert_eq!(par, a, "parallel warm sweep matches sequential");
        for (p, r) in a.iter().zip(rates) {
            assert_eq!(p.offered, r);
            assert!(p.accepted_packets_per_cycle > 0.0, "{p:?}");
            assert!(p.avg_latency_cycles > 0.0, "{p:?}");
        }
    }

    #[test]
    fn warm_sweep_latency_rises_with_load() {
        let spec = spec_3x3();
        let warm = sweep_warm_up(&spec, Pattern::Uniform, 0.02, 400, 31).unwrap();
        let pts = sweep_from_checkpoint(&spec, &warm, &[0.005, 0.08], 4000, 31).unwrap();
        assert!(
            pts[1].avg_latency_cycles > pts[0].avg_latency_cycles,
            "light {} heavy {}",
            pts[0].avg_latency_cycles,
            pts[1].avg_latency_cycles
        );
    }

    #[test]
    fn sweep_preserves_order() {
        let spec = spec_3x3();
        let rates = [0.01, 0.02, 0.03];
        let pts = sweep(&spec, Pattern::Neighbor, &rates, 200, 1500, 17).unwrap();
        assert_eq!(pts.len(), 3);
        for (p, r) in pts.iter().zip(rates) {
            assert_eq!(p.offered, r);
        }
    }
}
