//! Measurement orchestration: warm-up, measure, report.

use xpipes::noc::Noc;
use xpipes::XpipesError;
use xpipes_topology::spec::NocSpec;

use crate::generator::{Injector, InjectorConfig};
use crate::pattern::Pattern;

/// One point on a load–latency curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Offered load in packets per cycle per initiator.
    pub offered: f64,
    /// Accepted throughput in packets per cycle (network total).
    pub accepted_packets_per_cycle: f64,
    /// Mean transaction round-trip latency in cycles.
    pub avg_latency_cycles: f64,
    /// 95th-percentile transaction latency in cycles.
    pub p95_latency_cycles: f64,
    /// Worst observed transaction latency in cycles.
    pub max_latency_cycles: f64,
    /// ACK/nACK retransmissions during the measurement window.
    pub retransmissions: u64,
}

/// Measures one operating point.
///
/// Runs `warmup` cycles unmeasured, then measures `window` cycles by
/// differencing the network statistics.
///
/// # Errors
///
/// Propagates network construction errors.
pub fn measure(
    spec: &NocSpec,
    pattern: Pattern,
    rate: f64,
    warmup: u64,
    window: u64,
    seed: u64,
) -> Result<LoadPoint, XpipesError> {
    let mut noc = Noc::with_seed(spec, seed)?;
    let mut inj = Injector::new(spec, InjectorConfig::new(rate, pattern), seed ^ 0x9E37)?;
    inj.run(&mut noc, warmup);
    inj.drain_responses(&mut noc);
    let before = noc.stats();
    inj.run(&mut noc, window);
    inj.drain_responses(&mut noc);
    let after = noc.stats();

    let delivered = after.packets_delivered - before.packets_delivered;
    // Latency stats accumulate over the whole run; the window-dominant
    // view is acceptable because warm-up is short relative to the window,
    // and the mean over completed transactions is what the paper-style
    // curves report.
    Ok(LoadPoint {
        offered: rate,
        accepted_packets_per_cycle: delivered as f64 / window as f64,
        avg_latency_cycles: after.transaction_latency.mean(),
        p95_latency_cycles: after.latency_histogram.percentile(95.0).unwrap_or(0) as f64,
        max_latency_cycles: after.transaction_latency.max().unwrap_or(0.0),
        retransmissions: after.retransmissions - before.retransmissions,
    })
}

/// Parallel variant of [`sweep`], fanned out on the deterministic work
/// pool ([`xpipes_sim::parallel`]). Each operating point is seeded
/// independently and results come back in submission order, so the
/// output is identical to the sequential sweep — the pool just bounds
/// thread count at the host's parallelism instead of spawning one
/// thread per point.
///
/// # Errors
///
/// Propagates network construction errors from any point.
pub fn sweep_parallel(
    spec: &NocSpec,
    pattern: Pattern,
    rates: &[f64],
    warmup: u64,
    window: u64,
    seed: u64,
) -> Result<Vec<LoadPoint>, XpipesError> {
    let workers = xpipes_sim::parallel::worker_count(rates.len());
    xpipes_sim::parallel::parallel_map_ordered(rates, workers, |_, &r| {
        measure(spec, pattern, r, warmup, window, seed)
    })
    .into_iter()
    .collect()
}

/// Sweeps offered load over `rates`, producing one [`LoadPoint`] each.
///
/// # Errors
///
/// Propagates network construction errors.
pub fn sweep(
    spec: &NocSpec,
    pattern: Pattern,
    rates: &[f64],
    warmup: u64,
    window: u64,
    seed: u64,
) -> Result<Vec<LoadPoint>, XpipesError> {
    rates
        .iter()
        .map(|&r| measure(spec, pattern, r, warmup, window, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpipes_topology::builders::mesh;

    fn spec_3x3() -> NocSpec {
        let mut b = mesh(3, 3).unwrap();
        for i in 0..3 {
            b.attach_initiator(format!("cpu{i}"), (i, 0)).unwrap();
        }
        let mut targets = Vec::new();
        for i in 0..3 {
            targets.push(b.attach_target(format!("m{i}"), (i, 2)).unwrap());
        }
        let mut spec = NocSpec::new("sweep", b.into_topology());
        for (i, t) in targets.into_iter().enumerate() {
            spec.map_address(t, (i as u64) << 20, 1 << 20).unwrap();
        }
        spec
    }

    #[test]
    fn light_load_has_low_latency() {
        let p = measure(&spec_3x3(), Pattern::Uniform, 0.005, 500, 3000, 11).unwrap();
        assert!(p.accepted_packets_per_cycle > 0.0);
        assert!(p.avg_latency_cycles > 5.0, "{}", p.avg_latency_cycles);
        assert!(p.avg_latency_cycles < 100.0, "{}", p.avg_latency_cycles);
    }

    #[test]
    fn latency_rises_with_load() {
        let spec = spec_3x3();
        let light = measure(&spec, Pattern::Uniform, 0.005, 500, 4000, 11).unwrap();
        let heavy = measure(&spec, Pattern::Uniform, 0.08, 500, 4000, 11).unwrap();
        assert!(
            heavy.avg_latency_cycles > light.avg_latency_cycles,
            "light {} heavy {}",
            light.avg_latency_cycles,
            heavy.avg_latency_cycles
        );
    }

    #[test]
    fn throughput_saturates() {
        let spec = spec_3x3();
        let pts = sweep(&spec, Pattern::Uniform, &[0.02, 0.30], 300, 3000, 13).unwrap();
        // At 0.30 offered per node the network is far past saturation:
        // accepted throughput must be well below offered.
        let offered_total = 0.30 * 3.0;
        assert!(pts[1].accepted_packets_per_cycle < offered_total * 0.8);
        // But more than the light-load accepted rate.
        assert!(pts[1].accepted_packets_per_cycle > pts[0].accepted_packets_per_cycle);
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let spec = spec_3x3();
        let rates = [0.01, 0.03];
        let seq = sweep(&spec, Pattern::Uniform, &rates, 200, 1500, 19).unwrap();
        let par = sweep_parallel(&spec, Pattern::Uniform, &rates, 200, 1500, 19).unwrap();
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.avg_latency_cycles, b.avg_latency_cycles);
            assert_eq!(a.accepted_packets_per_cycle, b.accepted_packets_per_cycle);
        }
    }

    #[test]
    fn percentile_at_least_mean_under_load() {
        let p = measure(&spec_3x3(), Pattern::Uniform, 0.05, 300, 3000, 23).unwrap();
        assert!(p.p95_latency_cycles >= p.avg_latency_cycles * 0.8, "{p:?}");
        assert!(p.p95_latency_cycles <= p.max_latency_cycles + 32.0, "{p:?}");
    }

    #[test]
    fn sweep_preserves_order() {
        let spec = spec_3x3();
        let rates = [0.01, 0.02, 0.03];
        let pts = sweep(&spec, Pattern::Neighbor, &rates, 200, 1500, 17).unwrap();
        assert_eq!(pts.len(), 3);
        for (p, r) in pts.iter().zip(rates) {
            assert_eq!(p.offered, r);
        }
    }
}
