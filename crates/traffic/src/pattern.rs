//! Synthetic destination patterns.
//!
//! A pattern maps a source index to a destination index among the target
//! NIs, in the standard NoC-evaluation taxonomy.

use xpipes_sim::SimRng;

/// A synthetic traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Uniform random destination.
    Uniform,
    /// Destination = transpose of the source index (bit-reversal analogue
    /// for non-power-of-two sets: reversed index).
    Transpose,
    /// Destination = bitwise complement of the source index.
    BitComplement,
    /// A fraction of traffic targets a single hotspot; the rest uniform.
    Hotspot {
        /// Index of the hotspot target.
        target: usize,
        /// Fraction of packets sent to the hotspot (0..=1).
        fraction: f64,
    },
    /// Destination = (source + 1) mod targets.
    Neighbor,
    /// Tile-local uniform: source `s` owns the `targets_per_tile`
    /// consecutive targets starting at `s * targets_per_tile` and picks
    /// uniformly among them. The large-fabric pattern: keeps every route
    /// inside the source's tile (and inside the 7-hop source-route
    /// budget) however big the mesh grows.
    TileUniform {
        /// Tile-local targets owned by each source.
        targets_per_tile: usize,
    },
    /// Tile-local hotspot: a fraction of traffic goes to the tile's
    /// first target, the rest uniform within the tile.
    TileHotspot {
        /// Tile-local targets owned by each source.
        targets_per_tile: usize,
        /// Fraction of packets sent to the tile's first target (0..=1).
        fraction: f64,
    },
}

impl Pattern {
    /// Picks the destination target index for a packet from initiator
    /// `src` among `targets` destinations.
    ///
    /// # Panics
    ///
    /// Panics when `targets` is zero.
    pub fn destination(&self, src: usize, targets: usize, rng: &mut SimRng) -> usize {
        assert!(targets > 0, "pattern needs at least one target");
        match *self {
            Pattern::Uniform => rng.below(targets),
            Pattern::Transpose => {
                // Reverse the index within the target count.
                (targets - 1).saturating_sub(src % targets)
            }
            Pattern::BitComplement => {
                let bits = usize::BITS - (targets.max(2) - 1).leading_zeros();
                let complemented = !src & ((1usize << bits) - 1);
                complemented % targets
            }
            Pattern::Hotspot { target, fraction } => {
                if rng.chance(fraction) {
                    target % targets
                } else {
                    rng.below(targets)
                }
            }
            Pattern::Neighbor => (src + 1) % targets,
            Pattern::TileUniform { targets_per_tile } => {
                let (base, span) = tile_window(src, targets_per_tile, targets);
                base + rng.below(span)
            }
            Pattern::TileHotspot {
                targets_per_tile,
                fraction,
            } => {
                let (base, span) = tile_window(src, targets_per_tile, targets);
                if rng.chance(fraction) {
                    base
                } else {
                    base + rng.below(span)
                }
            }
        }
    }

    /// Human-readable name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            Pattern::Uniform => "uniform",
            Pattern::Transpose => "transpose",
            Pattern::BitComplement => "bit-complement",
            Pattern::Hotspot { .. } => "hotspot",
            Pattern::Neighbor => "neighbor",
            Pattern::TileUniform { .. } => "tile-uniform",
            Pattern::TileHotspot { .. } => "tile-hotspot",
        }
    }
}

/// The `(base, span)` slice of the target set owned by tile-local
/// source `src`: `targets_per_tile` consecutive targets starting at
/// `src * targets_per_tile`, clipped to the target count so a
/// mis-sized mapping degrades to in-range destinations instead of
/// panicking.
fn tile_window(src: usize, targets_per_tile: usize, targets: usize) -> (usize, usize) {
    let tpt = targets_per_tile.max(1);
    let base = (src * tpt) % targets;
    (base, tpt.min(targets - base))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_all_targets() {
        let mut rng = SimRng::seed(1);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[Pattern::Uniform.destination(0, 8, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn transpose_is_deterministic_and_reversing() {
        let mut rng = SimRng::seed(1);
        assert_eq!(Pattern::Transpose.destination(0, 8, &mut rng), 7);
        assert_eq!(Pattern::Transpose.destination(7, 8, &mut rng), 0);
        assert_eq!(Pattern::Transpose.destination(3, 8, &mut rng), 4);
    }

    #[test]
    fn bit_complement_in_range() {
        let mut rng = SimRng::seed(1);
        for src in 0..16 {
            let d = Pattern::BitComplement.destination(src, 10, &mut rng);
            assert!(d < 10);
        }
        // Power-of-two case is an exact complement.
        assert_eq!(
            Pattern::BitComplement.destination(0b0101, 16, &mut rng),
            0b1010
        );
    }

    #[test]
    fn hotspot_concentrates() {
        let mut rng = SimRng::seed(2);
        let p = Pattern::Hotspot {
            target: 3,
            fraction: 0.8,
        };
        let hits = (0..1000)
            .filter(|_| p.destination(0, 8, &mut rng) == 3)
            .count();
        assert!(hits > 700, "hotspot hits {hits}");
    }

    #[test]
    fn hotspot_zero_fraction_is_uniform() {
        let mut rng = SimRng::seed(3);
        let p = Pattern::Hotspot {
            target: 0,
            fraction: 0.0,
        };
        let hits = (0..1000)
            .filter(|_| p.destination(0, 8, &mut rng) == 0)
            .count();
        assert!(hits < 250, "{hits}");
    }

    #[test]
    fn neighbor_wraps() {
        let mut rng = SimRng::seed(1);
        assert_eq!(Pattern::Neighbor.destination(7, 8, &mut rng), 0);
        assert_eq!(Pattern::Neighbor.destination(2, 8, &mut rng), 3);
    }

    #[test]
    fn names() {
        assert_eq!(Pattern::Uniform.name(), "uniform");
        assert_eq!(
            Pattern::Hotspot {
                target: 0,
                fraction: 0.5
            }
            .name(),
            "hotspot"
        );
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn zero_targets_panics() {
        Pattern::Uniform.destination(0, 0, &mut SimRng::seed(0));
    }

    #[test]
    fn tile_uniform_stays_in_tile_and_covers_it() {
        let mut rng = SimRng::seed(5);
        let p = Pattern::TileUniform {
            targets_per_tile: 4,
        };
        for src in 0..4 {
            let mut seen = [false; 4];
            for _ in 0..200 {
                let d = p.destination(src, 16, &mut rng);
                assert!(
                    (src * 4..src * 4 + 4).contains(&d),
                    "src {src} escaped its tile: {d}"
                );
                seen[d - src * 4] = true;
            }
            assert!(seen.iter().all(|&s| s), "src {src} missed a tile target");
        }
    }

    #[test]
    fn tile_hotspot_concentrates_on_tile_head() {
        let mut rng = SimRng::seed(6);
        let p = Pattern::TileHotspot {
            targets_per_tile: 4,
            fraction: 0.8,
        };
        let hits = (0..1000)
            .filter(|_| p.destination(2, 16, &mut rng) == 8)
            .count();
        assert!(hits > 700, "tile hotspot hits {hits}");
        for _ in 0..200 {
            let d = p.destination(2, 16, &mut rng);
            assert!((8..12).contains(&d), "escaped tile: {d}");
        }
    }

    #[test]
    fn tile_window_clips_at_the_target_count() {
        let mut rng = SimRng::seed(7);
        let p = Pattern::TileUniform {
            targets_per_tile: 4,
        };
        for _ in 0..100 {
            // 2 targets per tile short: the window clips in range.
            let d = p.destination(3, 14, &mut rng);
            assert!(d < 14);
        }
    }
}
