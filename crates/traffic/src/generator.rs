//! Open-loop Bernoulli injectors.
//!
//! Every initiator NI gets an independent injection process: each cycle
//! it starts a new transaction with probability `rate` (packets per cycle
//! per node). Destinations follow the configured [`Pattern`]; requests
//! are a configurable mix of reads and burst writes.

use xpipes::noc::Noc;
use xpipes::XpipesError;
use xpipes_ocp::Request;
use xpipes_sim::{SimRng, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use xpipes_topology::spec::NocSpec;
use xpipes_topology::{NiId, NiKind};

use crate::pattern::Pattern;

/// Injector parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectorConfig {
    /// Packets per cycle per initiator (offered load).
    pub rate: f64,
    /// Destination pattern.
    pub pattern: Pattern,
    /// Fraction of transactions that are reads (the rest are writes).
    pub read_fraction: f64,
    /// Burst length of write transactions in beats.
    pub write_burst: u32,
    /// Burst length of read transactions in beats.
    pub read_burst: u32,
}

impl InjectorConfig {
    /// A standard evaluation config: given rate and pattern, 50% reads,
    /// 4-beat bursts.
    pub fn new(rate: f64, pattern: Pattern) -> Self {
        InjectorConfig {
            rate,
            pattern,
            read_fraction: 0.5,
            write_burst: 4,
            read_burst: 4,
        }
    }
}

/// Drives a [`Noc`] with open-loop traffic.
#[derive(Debug, Clone)]
pub struct Injector {
    config: InjectorConfig,
    initiators: Vec<NiId>,
    /// Target address windows: (base, size).
    target_windows: Vec<(u64, u64)>,
    rng: SimRng,
    injected: u64,
    rejected_submits: u64,
}

impl Injector {
    /// Builds an injector for the NIs of `spec`.
    ///
    /// # Errors
    ///
    /// [`XpipesError::UnmappedAddress`] when a target has no window.
    pub fn new(spec: &NocSpec, config: InjectorConfig, seed: u64) -> Result<Self, XpipesError> {
        let initiators: Vec<NiId> = spec
            .topology
            .nis_of_kind(NiKind::Initiator)
            .map(|a| a.ni)
            .collect();
        let mut target_windows = Vec::new();
        for t in spec.topology.nis_of_kind(NiKind::Target) {
            let r = spec.range_of(t.ni).ok_or(XpipesError::UnmappedAddress(0))?;
            target_windows.push((r.base, r.size));
        }
        Ok(Injector {
            config,
            initiators,
            target_windows,
            rng: SimRng::seed(seed),
            injected: 0,
            rejected_submits: 0,
        })
    }

    /// Packets injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Submissions the NoC rejected (e.g. backlog full).
    pub fn rejected(&self) -> u64 {
        self.rejected_submits
    }

    /// Offers one cycle of traffic, then advances the network one cycle.
    pub fn step(&mut self, noc: &mut Noc) {
        for idx in 0..self.initiators.len() {
            if !self.rng.chance(self.config.rate) {
                continue;
            }
            let ni = self.initiators[idx];
            let dst =
                self.config
                    .pattern
                    .destination(idx, self.target_windows.len(), &mut self.rng);
            let (base, size) = self.target_windows[dst];
            let offset = (self.rng.next_u64() % (size / 8).max(1)) * 8;
            let addr = base + offset;
            let req = if self.rng.chance(self.config.read_fraction) {
                Request::read(addr, self.config.read_burst)
            } else {
                let data = (0..self.config.write_burst as u64).collect();
                Request::write(addr, data)
            };
            match req {
                Ok(r) => match noc.submit(ni, r) {
                    Ok(()) => self.injected += 1,
                    Err(_) => self.rejected_submits += 1,
                },
                Err(_) => self.rejected_submits += 1,
            }
        }
        noc.step();
    }

    /// Runs `cycles` of injection + simulation.
    pub fn run(&mut self, noc: &mut Noc, cycles: u64) {
        for _ in 0..cycles {
            self.step(noc);
        }
    }

    /// Drains responses at every initiator (call periodically so response
    /// queues don't grow without bound in long runs).
    pub fn drain_responses(&self, noc: &mut Noc) -> u64 {
        let mut drained = 0;
        for &ni in &self.initiators {
            while let Ok(Some(_)) = noc.take_response(ni) {
                drained += 1;
            }
        }
        drained
    }
}

impl Snapshot for Injector {
    /// The injection process is one RNG stream plus two counters; the
    /// config and NI/window lists are structural. Restoring into an
    /// injector built with a **different** rate or pattern is allowed and
    /// deliberate: warm-start sweeps reuse one warmed RNG position across
    /// operating points.
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.rng(&self.rng);
        w.u64(self.injected);
        w.u64(self.rejected_submits);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.rng = r.rng()?;
        self.injected = r.u64()?;
        self.rejected_submits = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpipes_topology::builders::mesh;

    fn spec_2x2() -> NocSpec {
        let mut b = mesh(2, 2).unwrap();
        b.attach_initiator("cpu0", (0, 0)).unwrap();
        b.attach_initiator("cpu1", (1, 0)).unwrap();
        let m0 = b.attach_target("m0", (0, 1)).unwrap();
        let m1 = b.attach_target("m1", (1, 1)).unwrap();
        let mut spec = NocSpec::new("gen", b.into_topology());
        spec.map_address(m0, 0, 1 << 20).unwrap();
        spec.map_address(m1, 1 << 20, 1 << 20).unwrap();
        spec
    }

    #[test]
    fn injects_at_roughly_configured_rate() {
        let spec = spec_2x2();
        let mut noc = Noc::new(&spec).unwrap();
        let mut inj = Injector::new(&spec, InjectorConfig::new(0.05, Pattern::Uniform), 3).unwrap();
        inj.run(&mut noc, 4000);
        // 2 initiators × 0.05 × 4000 = 400 expected.
        let got = inj.injected();
        assert!((300..500).contains(&got), "injected {got}");
    }

    #[test]
    fn traffic_is_delivered() {
        let spec = spec_2x2();
        let mut noc = Noc::new(&spec).unwrap();
        let mut inj = Injector::new(&spec, InjectorConfig::new(0.02, Pattern::Uniform), 5).unwrap();
        inj.run(&mut noc, 2000);
        // Stop injecting, drain.
        noc.run_until_idle(50_000);
        let stats = noc.stats();
        assert!(stats.packets_delivered > 0);
        assert!(inj.drain_responses(&mut noc) > 0, "reads produce responses");
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let spec = spec_2x2();
        let mut noc = Noc::new(&spec).unwrap();
        let mut inj = Injector::new(&spec, InjectorConfig::new(0.0, Pattern::Uniform), 5).unwrap();
        inj.run(&mut noc, 500);
        assert_eq!(inj.injected(), 0);
        assert_eq!(noc.stats().packets_sent, 0);
    }

    #[test]
    fn injector_snapshot_resumes_stream_bit_exactly() {
        let spec = spec_2x2();
        let cfg = InjectorConfig::new(0.08, Pattern::Uniform);
        let mut noc = Noc::new(&spec).unwrap();
        let mut inj = Injector::new(&spec, cfg, 21).unwrap();
        inj.run(&mut noc, 300);
        let mut w = SnapshotWriter::new();
        inj.save_state(&mut w);
        let noc_bytes = noc.checkpoint();
        let bytes = w.finish();

        // Twin restored from the snapshot, original keeps running: every
        // subsequent injection decision must match.
        let mut twin_noc = Noc::new(&spec).unwrap();
        twin_noc.restore(&noc_bytes).unwrap();
        let mut twin = Injector::new(&spec, cfg, 999).unwrap(); // seed overwritten
        let mut r = SnapshotReader::open(&bytes).unwrap();
        twin.load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(twin.injected(), inj.injected());

        inj.run(&mut noc, 500);
        twin.run(&mut twin_noc, 500);
        assert_eq!(inj.injected(), twin.injected());
        assert_eq!(inj.rejected(), twin.rejected());
        assert_eq!(noc.checkpoint(), twin_noc.checkpoint());
    }

    #[test]
    fn write_only_config() {
        let spec = spec_2x2();
        let mut noc = Noc::new(&spec).unwrap();
        let mut cfg = InjectorConfig::new(0.05, Pattern::Neighbor);
        cfg.read_fraction = 0.0;
        cfg.write_burst = 2;
        let mut inj = Injector::new(&spec, cfg, 7).unwrap();
        inj.run(&mut noc, 1000);
        noc.run_until_idle(20_000);
        // Posted writes produce no responses.
        assert_eq!(inj.drain_responses(&mut noc), 0);
        assert!(noc.stats().packets_delivered > 0);
    }
}
