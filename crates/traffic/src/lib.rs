//! # xpipes-traffic — workloads and traffic generation
//!
//! Evaluation traffic for assembled xpipes networks:
//!
//! * [`pattern`] — synthetic destination patterns (uniform random,
//!   transpose, bit-complement, hotspot, nearest-neighbour),
//! * [`generator`] — open-loop Bernoulli injectors that drive a
//!   [`Noc`](xpipes::noc::Noc) at a configured offered load,
//! * [`runner`] — warm-up / measure orchestration producing load–latency
//!   points and full sweep curves,
//! * [`appdriven`] — task-graph-driven traffic reproducing application
//!   communication (used by the SunMap evaluation flow),
//! * [`trace`] — request trace record and replay,
//! * [`faultcampaign`] — seeded fault-injection campaigns sweeping fault
//!   models across error-rate grids with protocol invariant monitoring.
//!
//! # Examples
//!
//! ```
//! use xpipes_topology::builders::mesh;
//! use xpipes_topology::NocSpec;
//! use xpipes_traffic::{pattern::Pattern, runner};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = mesh(2, 2)?;
//! for i in 0..2 {
//!     b.attach_initiator(format!("cpu{i}"), (i, 0))?;
//!     b.attach_target(format!("mem{i}"), (i, 1))?;
//! }
//! let mut spec = NocSpec::new("lat", b.into_topology());
//! let targets: Vec<_> = spec.topology.nis_of_kind(xpipes_topology::NiKind::Target)
//!     .map(|a| a.ni).collect();
//! for (i, t) in targets.iter().enumerate() {
//!     spec.map_address(*t, (i as u64) << 20, 1 << 20)?;
//! }
//! let point = runner::measure(&spec, Pattern::Uniform, 0.01, 500, 2000, 7)?;
//! assert!(point.avg_latency_cycles > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod appdriven;
pub mod faultcampaign;
pub mod generator;
pub mod pattern;
pub mod runner;
pub mod trace;

pub use faultcampaign::{
    assemble_report, campaign_spec, config_fingerprint, grid_size, run_campaign,
    run_campaign_parallel, run_campaign_warm, run_campaign_warm_parallel, run_grid_point,
    time_travel, warm_checkpoint, CampaignConfig, CompletedPoint, TimeTravelReport, WarmStart,
};
pub use generator::{Injector, InjectorConfig};
pub use pattern::Pattern;
pub use runner::{
    measure, measure_from_checkpoint, sweep, sweep_from_checkpoint, sweep_from_checkpoint_parallel,
    sweep_parallel, sweep_warm_up, LoadPoint, SweepWarmState,
};
