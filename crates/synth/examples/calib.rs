use xpipes::config::{NiConfig, SwitchConfig};
use xpipes_synth::components::*;
use xpipes_synth::report::{synthesize, synthesize_max_speed};

fn main() {
    for w in [16u32, 32, 64, 128] {
        let ini = synthesize(&initiator_ni_netlist(&NiConfig::new(w)), 1000.0);
        let tgt = synthesize(&target_ni_netlist(&NiConfig::new(w)), 1000.0);
        match (ini, tgt) {
            (Ok(i), Ok(t)) => println!(
                "NI w={w}: ini {:.4} mm² {:.2} mW | tgt {:.4} mm² {:.2} mW",
                i.area_mm2, i.power_mw, t.area_mm2, t.power_mw
            ),
            (i, t) => println!(
                "NI w={w}: {:?} {:?}",
                i.err().map(|e| e.to_string()),
                t.err().map(|e| e.to_string())
            ),
        }
    }
    for (n, m) in [(4usize, 4usize), (6, 4), (5, 5)] {
        for w in [16u32, 32, 64, 128] {
            let net = switch_netlist(&SwitchConfig::new(n, m, w));
            let max = synthesize_max_speed(&net).unwrap();
            let at1g = synthesize(&net, 1000.0);
            let a1 = at1g
                .as_ref()
                .map(|r| format!("{:.4} mm² {:.1} mW", r.area_mm2, r.power_mw))
                .unwrap_or_else(|e| e.to_string());
            println!(
                "SW {n}x{m} w={w}: fmax {:.0} MHz minarea-ish {:.4} mm² | @1GHz: {a1}",
                max.fmax_mhz, max.area_mm2
            );
        }
    }
    // 5x5 32-bit banana curve
    let net = switch_netlist(&SwitchConfig::new(5, 5, 32));
    for f in [200.0, 400.0, 600.0, 800.0, 1000.0, 1200.0, 1400.0] {
        match synthesize(&net, f) {
            Ok(r) => println!("5x5 @ {f} MHz: {:.4} mm²", r.area_mm2),
            Err(e) => println!("5x5 @ {f} MHz: {e}"),
        }
    }
}
