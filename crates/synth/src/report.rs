//! One-call synthesis: netlist → area / fmax / power report.

use std::collections::HashMap;
use std::fmt;

use crate::area;
use crate::netlist::Netlist;
use crate::power;
use crate::sizing::{self, SizingError};
use crate::sta::TimingError;

/// Errors from the synthesis pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// Timing analysis failed.
    Timing(TimingError),
    /// The frequency target is unreachable; carries the best achievable
    /// frequency in MHz.
    TargetUnreachable { best_mhz: f64 },
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Timing(e) => write!(f, "timing: {e}"),
            SynthError::TargetUnreachable { best_mhz } => {
                write!(f, "frequency target unreachable; best is {best_mhz:.0} MHz")
            }
        }
    }
}

impl std::error::Error for SynthError {}

/// A post-synthesis report for one component.
#[derive(Debug, Clone)]
pub struct SynthReport {
    /// Component name.
    pub name: String,
    /// Macro area in mm² (cells + routing overhead) at the final sizing.
    pub area_mm2: f64,
    /// Maximum operating frequency in MHz at the final sizing.
    pub fmax_mhz: f64,
    /// Total power in mW at the requested clock.
    pub power_mw: f64,
    /// Dynamic-power share of `power_mw`.
    pub dynamic_mw: f64,
    /// Per-block area breakdown in µm².
    pub area_breakdown_um2: HashMap<String, f64>,
    /// Gate and flop counts.
    pub gate_count: usize,
    /// Flip-flop count.
    pub dff_count: usize,
    /// Critical-path logic depth.
    pub critical_depth: usize,
}

impl fmt::Display for SynthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.4} mm², fmax {:.0} MHz, {:.2} mW ({} gates, {} DFF, depth {})",
            self.name,
            self.area_mm2,
            self.fmax_mhz,
            self.power_mw,
            self.gate_count,
            self.dff_count,
            self.critical_depth
        )
    }
}

/// Synthesizes `netlist` for a `target_mhz` clock: sizes the critical
/// path to meet the target, then reports area, fmax and power *at the
/// target clock*.
///
/// # Errors
///
/// * [`SynthError::TargetUnreachable`] when even maximum effort misses
///   the target (the error carries the achievable frequency).
/// * [`SynthError::Timing`] on malformed netlists.
pub fn synthesize(netlist: &Netlist, target_mhz: f64) -> Result<SynthReport, SynthError> {
    let mut sized = netlist.clone();
    let target_ps = 1.0e6 / target_mhz.max(1.0);
    let result = match sizing::fit_to_period(&mut sized, target_ps) {
        Ok(r) => r,
        Err(SizingError::Unachievable { best_ps }) => {
            return Err(SynthError::TargetUnreachable {
                best_mhz: 1.0e6 / best_ps,
            })
        }
        Err(SizingError::Timing(e)) => return Err(SynthError::Timing(e)),
    };
    let p = power::estimate(&sized, target_mhz);
    Ok(SynthReport {
        name: sized.name().to_string(),
        area_mm2: area::macro_area_mm2(&sized),
        fmax_mhz: result.timing.fmax_mhz,
        power_mw: p.total_mw(),
        dynamic_mw: p.dynamic_mw + p.clock_mw,
        area_breakdown_um2: area::breakdown_um2(&sized),
        gate_count: sized.gate_count(),
        dff_count: sized.dff_count(),
        critical_depth: result.timing.critical_depth,
    })
}

/// Synthesizes at maximum effort and reports the achievable fmax (power
/// evaluated at that fmax).
///
/// # Errors
///
/// [`SynthError::Timing`] on malformed netlists.
pub fn synthesize_max_speed(netlist: &Netlist) -> Result<SynthReport, SynthError> {
    // Probe the achievable floor on a scratch copy (this maxes out every
    // drive), then re-fit a fresh netlist to exactly that period so the
    // reported area is the *minimal* area achieving fmax. The greedy
    // refit can marginally miss the all-max floor; fall back to the
    // probe itself in that case.
    let mut probe = netlist.clone();
    let best_ps = sizing::best_period_ps(&mut probe).map_err(|e| match e {
        SizingError::Timing(t) => SynthError::Timing(t),
        SizingError::Unachievable { best_ps } => SynthError::TargetUnreachable {
            best_mhz: 1.0e6 / best_ps,
        },
    })?;
    match synthesize(netlist, 1.0e6 / best_ps) {
        Ok(r) => Ok(r),
        Err(SynthError::TargetUnreachable { .. }) => {
            let fmax = 1.0e6 / best_ps;
            let p = power::estimate(&probe, fmax);
            let timing = crate::sta::analyze(&probe).map_err(SynthError::Timing)?;
            Ok(SynthReport {
                name: probe.name().to_string(),
                area_mm2: area::macro_area_mm2(&probe),
                fmax_mhz: fmax,
                power_mw: p.total_mw(),
                dynamic_mw: p.dynamic_mw + p.clock_mw,
                area_breakdown_um2: area::breakdown_um2(&probe),
                gate_count: probe.gate_count(),
                dff_count: probe.dff_count(),
                critical_depth: timing.critical_depth,
            })
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{initiator_ni_netlist, switch_netlist};
    use xpipes::config::{NiConfig, SwitchConfig};

    #[test]
    fn switch_4x4_meets_1ghz() {
        let n = switch_netlist(&SwitchConfig::new(4, 4, 32));
        let r = synthesize(&n, 1000.0).expect("the paper's switch runs at 1 GHz @ 130 nm");
        assert!(r.fmax_mhz >= 1000.0);
        assert!(r.area_mm2 > 0.02 && r.area_mm2 < 0.3, "{}", r.area_mm2);
        assert!(r.power_mw > 0.5 && r.power_mw < 100.0, "{}", r.power_mw);
    }

    #[test]
    fn tighter_target_costs_area() {
        let n = switch_netlist(&SwitchConfig::new(5, 5, 32));
        let relaxed = synthesize(&n, 400.0).unwrap();
        let tight = synthesize(&n, 1100.0);
        if let Ok(tight) = tight {
            assert!(tight.area_mm2 >= relaxed.area_mm2);
        }
        // At minimum, max-speed costs more than relaxed.
        let max = synthesize_max_speed(&n).unwrap();
        assert!(max.area_mm2 >= relaxed.area_mm2);
        assert!(max.fmax_mhz > 400.0);
    }

    #[test]
    fn unreachable_target_reports_best() {
        let n = switch_netlist(&SwitchConfig::new(4, 4, 32));
        let err = synthesize(&n, 100_000.0).unwrap_err();
        match err {
            SynthError::TargetUnreachable { best_mhz } => {
                assert!(best_mhz > 300.0 && best_mhz < 5000.0, "{best_mhz}")
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn report_display() {
        let n = initiator_ni_netlist(&NiConfig::new(32));
        let r = synthesize(&n, 800.0).unwrap();
        let s = r.to_string();
        assert!(s.contains("mm²") && s.contains("MHz"));
        assert!(r.dff_count > 100, "NI is register-rich: {}", r.dff_count);
        assert!(r.dynamic_mw <= r.power_mw);
    }

    #[test]
    fn breakdown_total_matches_area() {
        let n = switch_netlist(&SwitchConfig::new(4, 4, 32));
        let r = synthesize(&n, 500.0).unwrap();
        let sum_um2: f64 = r.area_breakdown_um2.values().sum();
        let macro_um2 = r.area_mm2 * 1.0e6;
        assert!((macro_um2 / sum_um2 - crate::cells::ROUTING_OVERHEAD).abs() < 1e-6);
    }
}
