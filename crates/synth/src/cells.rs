//! The 130 nm-class standard-cell model.
//!
//! One free-parameter set, calibrated once against the paper's stated
//! anchors (1 GHz 4x4 switch at 130 nm; 0.10–0.18 mm² 5x5 switch band;
//! ~2.6 mm² 3x4 mesh) and then frozen — every sweep in the benches uses
//! these same constants.
//!
//! Delay model: `delay = intrinsic + drive · load / size` where `load` is
//! the number of driven inputs. Area and energy grow affinely with drive
//! size; leakage linearly.

/// Combinational and sequential cell kinds the netlist generators use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-to-1 multiplexer.
    Mux2,
    /// AND-OR-invert 2-2 (complex gate used for decode/compare).
    Aoi22,
    /// D flip-flop (the only sequential cell).
    Dff,
}

impl CellKind {
    /// All cell kinds, for iteration in reports.
    pub const ALL: [CellKind; 7] = [
        CellKind::Inv,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::Xor2,
        CellKind::Mux2,
        CellKind::Aoi22,
        CellKind::Dff,
    ];

    /// Number of input pins.
    pub const fn input_pins(self) -> usize {
        match self {
            CellKind::Inv => 1,
            CellKind::Nand2 | CellKind::Nor2 | CellKind::Xor2 => 2,
            CellKind::Mux2 => 3,
            CellKind::Aoi22 => 4,
            CellKind::Dff => 1,
        }
    }

    /// True for the sequential cell.
    pub const fn is_sequential(self) -> bool {
        matches!(self, CellKind::Dff)
    }

    /// Nominal (size-1) cell area in µm².
    pub const fn base_area_um2(self) -> f64 {
        match self {
            CellKind::Inv => 2.8,
            CellKind::Nand2 => 3.7,
            CellKind::Nor2 => 3.7,
            CellKind::Xor2 => 8.3,
            CellKind::Mux2 => 7.4,
            CellKind::Aoi22 => 6.5,
            CellKind::Dff => 27.7,
        }
    }

    /// Intrinsic delay in ps (for `Dff`, the clock-to-Q delay).
    pub const fn intrinsic_ps(self) -> f64 {
        match self {
            CellKind::Inv => 14.0,
            CellKind::Nand2 => 22.0,
            CellKind::Nor2 => 26.0,
            CellKind::Xor2 => 42.0,
            CellKind::Mux2 => 38.0,
            CellKind::Aoi22 => 34.0,
            CellKind::Dff => 190.0,
        }
    }

    /// Load-dependent delay in ps per driven input pin, at size 1.
    pub const fn drive_ps_per_load(self) -> f64 {
        match self {
            CellKind::Inv => 9.0,
            CellKind::Nand2 => 13.0,
            CellKind::Nor2 => 15.0,
            CellKind::Xor2 => 16.0,
            CellKind::Mux2 => 14.0,
            CellKind::Aoi22 => 15.0,
            CellKind::Dff => 11.0,
        }
    }

    /// Setup time in ps (sequential only; 0 for combinational cells).
    pub const fn setup_ps(self) -> f64 {
        match self {
            CellKind::Dff => 95.0,
            _ => 0.0,
        }
    }

    /// Switching energy per output toggle in fJ, at size 1 (includes the
    /// internal clock pin energy for the DFF).
    pub const fn energy_fj(self) -> f64 {
        match self {
            CellKind::Inv => 1.2,
            CellKind::Nand2 => 1.8,
            CellKind::Nor2 => 1.8,
            CellKind::Xor2 => 3.5,
            CellKind::Mux2 => 3.0,
            CellKind::Aoi22 => 2.6,
            CellKind::Dff => 9.5,
        }
    }

    /// Leakage in nW at size 1.
    pub const fn leakage_nw(self) -> f64 {
        match self {
            CellKind::Inv => 1.6,
            CellKind::Nand2 => 2.4,
            CellKind::Nor2 => 2.4,
            CellKind::Xor2 => 4.8,
            CellKind::Mux2 => 4.2,
            CellKind::Aoi22 => 3.8,
            CellKind::Dff => 9.0,
        }
    }
}

/// Largest discrete drive size.
pub const MAX_SIZE: u8 = 8;

/// Area of a cell at drive size `size` in µm².
pub fn area_um2(cell: CellKind, size: u8) -> f64 {
    cell.base_area_um2() * (0.40 + 0.60 * size as f64)
}

/// Delay of a cell at drive size `size` driving `load` input pins, in ps.
pub fn delay_ps(cell: CellKind, size: u8, load: usize) -> f64 {
    // A floor of one load models the cell's own output parasitics.
    let load = load.max(1) as f64;
    cell.intrinsic_ps() + cell.drive_ps_per_load() * load / size as f64
}

/// Switching energy per toggle at drive size `size`, in fJ.
pub fn energy_fj(cell: CellKind, size: u8) -> f64 {
    cell.energy_fj() * (0.60 + 0.40 * size as f64)
}

/// Leakage at drive size `size`, in nW.
pub fn leakage_nw(cell: CellKind, size: u8) -> f64 {
    cell.leakage_nw() * size as f64
}

/// Routing/clock-tree area overhead multiplier applied to summed cell
/// area (placed-and-routed macros are never 100% cell area).
pub const ROUTING_OVERHEAD: f64 = 1.18;

/// Clock-tree energy per clocked flop per cycle, in fJ (always switching).
pub const CLOCK_TREE_FJ_PER_DFF: f64 = 2.2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsizing_speeds_up_and_grows() {
        for cell in CellKind::ALL {
            let d1 = delay_ps(cell, 1, 4);
            let d4 = delay_ps(cell, 4, 4);
            assert!(d4 < d1, "{cell:?} must speed up with size");
            let a1 = area_um2(cell, 1);
            let a4 = area_um2(cell, 4);
            assert!(a4 > a1, "{cell:?} must grow with size");
        }
    }

    #[test]
    fn delay_grows_with_load() {
        let light = delay_ps(CellKind::Nand2, 1, 1);
        let heavy = delay_ps(CellKind::Nand2, 1, 16);
        assert!(heavy > light);
    }

    #[test]
    fn zero_load_has_floor() {
        assert_eq!(delay_ps(CellKind::Inv, 1, 0), delay_ps(CellKind::Inv, 1, 1));
    }

    #[test]
    fn dff_is_sequential_only() {
        for cell in CellKind::ALL {
            assert_eq!(cell.is_sequential(), cell == CellKind::Dff);
            if !cell.is_sequential() {
                assert_eq!(cell.setup_ps(), 0.0);
            }
        }
        assert!(CellKind::Dff.setup_ps() > 0.0);
    }

    #[test]
    fn pin_counts() {
        assert_eq!(CellKind::Inv.input_pins(), 1);
        assert_eq!(CellKind::Mux2.input_pins(), 3);
        assert_eq!(CellKind::Aoi22.input_pins(), 4);
        assert_eq!(CellKind::Dff.input_pins(), 1);
    }

    #[test]
    fn dff_dominates_area() {
        // Buffer-dominated components rely on this ordering.
        for cell in CellKind::ALL {
            if cell != CellKind::Dff {
                assert!(CellKind::Dff.base_area_um2() > cell.base_area_um2());
            }
        }
    }

    #[test]
    fn energy_scales_with_size() {
        assert!(energy_fj(CellKind::Dff, 4) > energy_fj(CellKind::Dff, 1));
        assert!(leakage_nw(CellKind::Inv, 8) == 8.0 * CellKind::Inv.leakage_nw());
    }
}
