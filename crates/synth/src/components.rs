//! Netlist generators for every xpipes Lite component.
//!
//! Each generator constructs the gate-level structure implied by the
//! behavioural model's configuration — the same `SwitchConfig`/`NiConfig`
//! drive both, so a simulated component and its synthesis report always
//! describe the same hardware. Datapath scaling (flit width), buffer
//! scaling (queue depths) and control scaling (port count, arbiter depth)
//! all emerge from real structure.

use xpipes::config::{NiConfig, SwitchConfig};
use xpipes::header::Header;

use crate::cells::CellKind;
use crate::netlist::{NetId, Netlist, NetlistBuilder};

/// Kind/control sideband bits accompanying every flit (head/tail marking).
const KIND_BITS: u32 = 2;

/// Builds the gate-level netlist of a switch.
///
/// Structure per the paper's switch diagram: input sampling registers and
/// route-consumption logic (stage 1), per-output round-robin arbiter +
/// crossbar mux column + output queue (stage 2), and ACK/nACK machinery
/// (sequence counters, parity trees, retransmission buffers) on every
/// port.
pub fn switch_netlist(config: &SwitchConfig) -> Netlist {
    let mut b = NetlistBuilder::new(format!(
        "switch_{}x{}_w{}",
        config.inputs, config.outputs, config.flit_width
    ));
    let bus = config.flit_width + KIND_BITS;
    let g_inreg = b.group("input_regs", 0.25);
    let g_route = b.group("routing", 0.15);
    let g_arb = b.group("allocator", 0.10);
    let g_xbar = b.group("crossbar", 0.25);
    let g_queue = b.group("out_queue", 0.20);
    let g_outreg = b.group("output_regs", 0.25);
    let g_flow = b.group("flow_ctrl", 0.15);

    // ---- Stage 1: per-input sampling + route handling + rx guard ----
    let mut sampled: Vec<Vec<NetId>> = Vec::with_capacity(config.inputs);
    let mut requests: Vec<Vec<NetId>> = Vec::with_capacity(config.inputs);
    for _ in 0..config.inputs {
        let raw = b.inputs(bus);
        // Receiver guard: parity check over the incoming flit + sequence
        // compare against the expected counter.
        let parity = b.xor_tree(g_flow, &raw);
        let seq_ctr = b.counter(g_flow, 6);
        let seq_in = b.inputs(6);
        let seq_ok = b.comparator(g_flow, &seq_ctr, &seq_in);
        let accept = b.gate(g_flow, CellKind::Nand2, &[parity, seq_ok]);
        let accept = b.gate(g_flow, CellKind::Inv, &[accept]);

        // Input register (clock-enabled: model as mux-recirculated DFF).
        let mut reg_q = Vec::with_capacity(bus as usize);
        for &bit in &raw {
            let d = b.net();
            let q = b.dff(g_inreg, d);
            let sel = b.gate(g_inreg, CellKind::Mux2, &[accept, q, bit]);
            // Wire the recirculation mux into the DFF.
            patch_dff_input(&mut b, q, sel);
            let _ = d;
            reg_q.push(q);
        }

        // Route consumption: shift the route field down 4 bits on head
        // flits (a mux per route bit).
        let head_flag = reg_q[bus as usize - 1];
        let route_bits = (28).min(config.flit_width) as usize;
        let mut shifted = reg_q.clone();
        for i in 0..route_bits {
            let hi = reg_q[(i + 4).min(bus as usize - 1)];
            shifted[i] = b.gate(g_route, CellKind::Mux2, &[head_flag, reg_q[i], hi]);
        }
        // Request decode: low 4 route bits → one-hot output requests.
        let f = [reg_q[0], reg_q[1], reg_q[2], reg_q[3]];
        let mut reqs = Vec::with_capacity(config.outputs);
        for _ in 0..config.outputs {
            let dec = b.gate(g_route, CellKind::Aoi22, &[f[0], f[1], f[2], f[3]]);
            reqs.push(dec);
        }
        sampled.push(shifted);
        requests.push(reqs);
    }

    // Port indices are meaningful here: keep the explicit loop.
    #[allow(clippy::needless_range_loop)]
    // ---- Stage 2: per-output arbitration + crossbar + queue + tx ----
    for o in 0..config.outputs {
        let reqs_o: Vec<NetId> = (0..config.inputs).map(|i| requests[i][o]).collect();

        // Round-robin arbiter: a rotating mask register gates a masked
        // priority chain; an unmasked chain catches the wrap-around case.
        let ptr_bits = (usize::BITS - (config.inputs - 1).leading_zeros()).max(1);
        let ptr = b.counter(g_arb, ptr_bits);
        let masked: Vec<NetId> = reqs_o
            .iter()
            .map(|&r| {
                let m = b.gate(g_arb, CellKind::Nand2, &[r, ptr[0]]);
                b.gate(g_arb, CellKind::Inv, &[m])
            })
            .collect();
        let chain_hi = b.priority_chain(g_arb, &masked);
        let chain_lo = b.priority_chain(g_arb, &reqs_o);
        let any_hi = b.xor_tree(g_arb, &chain_hi); // reduction proxy
        let grants: Vec<NetId> = chain_hi
            .iter()
            .zip(&chain_lo)
            .map(|(&h, &l)| b.gate(g_arb, CellKind::Mux2, &[any_hi, l, h]))
            .collect();
        // Grant register (pipeline boundary of the allocation).
        let grants_q = b.register(g_arb, &grants);

        // Crossbar column: an N:1 mux tree over the sampled input buses.
        let xbar = b.mux_tree(g_xbar, &grants_q, &sampled);

        // Output queue: depth × bus DFF ring with read mux tree and
        // pointer counters.
        let mut slots: Vec<Vec<NetId>> = Vec::with_capacity(config.output_queue_depth);
        let mut stage_in = xbar.clone();
        for _ in 0..config.output_queue_depth {
            let q = b.register(g_queue, &stage_in);
            stage_in = q.clone();
            slots.push(q);
        }
        let rd_ptr = b.counter(
            g_queue,
            (config.output_queue_depth as u32).max(2).ilog2() + 1,
        );
        let read = b.mux_tree(g_queue, &rd_ptr, &slots);
        let wr_ptr = b.counter(
            g_queue,
            (config.output_queue_depth as u32).max(2).ilog2() + 1,
        );
        let _full = b.comparator(g_queue, &rd_ptr, &wr_ptr);

        // Output register (stage-2 pipeline register driving the link).
        let out_reg = b.register(g_outreg, &read);

        // ACK/nACK sender: retransmission buffer + sequence counters +
        // parity generator.
        let retrans_depth = config.retransmit_depth();
        let mut rslots: Vec<Vec<NetId>> = Vec::with_capacity(retrans_depth);
        let mut rstage = out_reg.clone();
        for _ in 0..retrans_depth {
            let q = b.register(g_flow, &rstage);
            rstage = q.clone();
            rslots.push(q);
        }
        let rptr = b.counter(g_flow, 6);
        let resend = b.mux_tree(g_flow, &rptr, &rslots);
        let tx_seq = b.counter(g_flow, 6);
        let ack_seq = b.inputs(6);
        let _pruned = b.comparator(g_flow, &tx_seq, &ack_seq);
        let _parity_out = b.xor_tree(g_flow, &resend);
    }

    b.finish()
}

/// Patches the D input of the flip-flop driving `q` to `new_d` (used to
/// close enable-mux recirculation loops built after the DFF).
fn patch_dff_input(b: &mut NetlistBuilder, q: NetId, new_d: NetId) {
    // NetlistBuilder keeps gates in creation order; scan backwards.
    b.patch_last_dff(q, new_d);
}

/// Builds the gate-level netlist of an initiator network interface.
///
/// Blocks: OCP front-end FSM, the ~50-bit header register and its builder
/// muxes, the payload register, the routing LUT (address comparators +
/// read network), the flit serializer, the output queue with ACK/nACK
/// sender, the response depacketizer, and the outstanding-tag table that
/// implements the threading extensions.
pub fn initiator_ni_netlist(config: &NiConfig) -> Netlist {
    let mut b = NetlistBuilder::new(format!("ni_initiator_w{}", config.flit_width));
    ni_common(&mut b, config, true);
    b.finish()
}

/// Builds the gate-level netlist of a target network interface.
///
/// Smaller than the initiator: no address-decode comparators (the return
/// LUT is indexed directly by source NI id) and no tag table, but it adds
/// the request reassembly registers and response scheduler.
pub fn target_ni_netlist(config: &NiConfig) -> Netlist {
    let mut b = NetlistBuilder::new(format!("ni_target_w{}", config.flit_width));
    ni_common(&mut b, config, false);
    b.finish()
}

fn ni_common(b: &mut NetlistBuilder, config: &NiConfig, initiator: bool) {
    let bus = config.flit_width + KIND_BITS;
    let g_fsm = b.group("ocp_fsm", 0.10);
    let g_hdr = b.group("header_reg", 0.20);
    let g_pay = b.group("payload_reg", 0.30);
    let g_lut = b.group("lut", 0.10);
    let g_ser = b.group("serializer", 0.25);
    let g_queue = b.group("out_queue", 0.20);
    let g_flow = b.group("flow_ctrl", 0.15);
    let g_depkt = b.group("depacketizer", 0.20);

    // OCP front-end FSM.
    let fsm_in = b.inputs(6);
    let fsm_state = b.register(g_fsm, &fsm_in);
    for w in fsm_state.windows(2) {
        let x = b.gate(g_fsm, CellKind::Aoi22, &[w[0], w[1], w[0], w[1]]);
        let y = b.gate(g_fsm, CellKind::Nand2, &[x, w[0]]);
        b.gate(g_fsm, CellKind::Inv, &[y]);
    }

    // Header register (the paper's ~50-bit register: 61 bits here) with a
    // builder mux per bit.
    let hdr_src = b.inputs(Header::TOTAL_BITS);
    let sel = b.input();
    let hdr_d: Vec<NetId> = hdr_src
        .iter()
        .map(|&s| {
            let z = b.net();
            b.gate(g_hdr, CellKind::Mux2, &[sel, s, z])
        })
        .collect();
    let _hdr_q = b.register(g_hdr, &hdr_d);

    // Payload register: one per burst beat, data-width bits.
    let pay_in = b.inputs(config.data_width);
    let pay_q = b.register(g_pay, &pay_in);

    // Routing LUT.
    let entries = config.lut_entries.max(1);
    let addr = b.inputs(16);
    for _ in 0..entries {
        if initiator {
            // Address window comparator (16 tag bits) per entry.
            let window = b.inputs(16);
            b.comparator(g_lut, &addr, &window);
        }
        // Route read network: ~31 bits of stored route per entry.
        let en = b.input();
        for _ in 0..31 / 2 {
            b.gate(g_lut, CellKind::Aoi22, &[en, addr[0], en, addr[1]]);
        }
    }

    // Flit serializer: pick the flit-width chunk of header/payload.
    let chunk_sel = b.counter(g_ser, 3);
    let mut ser_bus = Vec::with_capacity(config.flit_width as usize);
    for i in 0..config.flit_width as usize {
        let a = hdr_src[i % hdr_src.len()];
        let p = pay_q[i % pay_q.len()];
        let m = b.gate(g_ser, CellKind::Mux2, &[chunk_sel[0], a, p]);
        ser_bus.push(m);
    }
    // Kind bits join the serialized bus.
    let kind_bits = b.inputs(KIND_BITS);
    ser_bus.extend_from_slice(&kind_bits);

    // Output queue (6 flits deep, as the behavioural default) + ACK/nACK
    // sender, mirroring the switch output port.
    let depth = 6usize;
    let mut slots = Vec::with_capacity(depth);
    let mut stage = ser_bus.clone();
    for _ in 0..depth {
        let q = b.register(g_queue, &stage);
        stage = q.clone();
        slots.push(q);
    }
    let rd = b.counter(g_queue, 3);
    let read = b.mux_tree(g_queue, &rd, &slots);
    let retrans = (2 * config.link_pipeline + 2) as usize;
    let mut rslots = Vec::with_capacity(retrans);
    let mut rstage = read.clone();
    for _ in 0..retrans {
        let q = b.register(g_flow, &rstage);
        rstage = q.clone();
        rslots.push(q);
    }
    let rptr = b.counter(g_flow, 6);
    let resend = b.mux_tree(g_flow, &rptr, &rslots);
    let _parity = b.xor_tree(g_flow, &resend);
    let tx_seq = b.counter(g_flow, 6);
    let ack = b.inputs(6);
    let _cmp = b.comparator(g_flow, &tx_seq, &ack);

    // Receive side: guard + depacketizer registers.
    let rx_bus = b.inputs(bus);
    let _rx_parity = b.xor_tree(g_flow, &rx_bus);
    let rx_seq = b.counter(g_flow, 6);
    let rx_seq_in = b.inputs(6);
    let _rx_ok = b.comparator(g_flow, &rx_seq, &rx_seq_in);
    let hdr_asm_in = b.inputs(Header::TOTAL_BITS);
    let _hdr_asm = b.register(g_depkt, &hdr_asm_in);
    let data_asm_in = b.inputs(config.data_width);
    let _data_asm = b.register(g_depkt, &data_asm_in);
    let _beat_ctr = b.counter(g_depkt, 8);

    if initiator {
        // Outstanding-tag table: 16 entries × 10 bits + allocation chain.
        let g_tags = b.group("tag_table", 0.10);
        for _ in 0..16 {
            let e = b.inputs(10);
            b.register(g_tags, &e);
        }
        let free = b.inputs(16);
        b.priority_chain(g_tags, &free);
        // Response reorder staging: two data-width registers.
        let r0 = b.inputs(config.data_width);
        b.register(g_depkt, &r0);
        let r1 = b.inputs(config.data_width);
        b.register(g_depkt, &r1);
    } else {
        // Request reassembly + response scheduler state.
        let g_sched = b.group("resp_sched", 0.10);
        let t = b.inputs(24);
        b.register(g_sched, &t);
        let lat_ctr = b.counter(g_sched, 8);
        let lat_cfg = b.inputs(8);
        b.comparator(g_sched, &lat_ctr, &lat_cfg);
    }
}

/// Builds the netlist of one pipeline stage of a link (forward flit
/// register + reverse ACK register + parity regeneration).
pub fn link_stage_netlist(flit_width: u32) -> Netlist {
    let mut b = NetlistBuilder::new(format!("link_stage_w{flit_width}"));
    let g = b.group("link_pipe", 0.25);
    let fwd = b.inputs(flit_width + KIND_BITS);
    let fq = b.register(g, &fwd);
    let rev = b.inputs(7); // 6-bit seq + ack bit
    b.register(g, &rev);
    b.xor_tree(g, &fq);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::macro_area_mm2;
    use crate::sta::analyze;

    #[test]
    fn switch_area_grows_with_flit_width() {
        let mut last = 0.0;
        for w in [16, 32, 64, 128] {
            let n = switch_netlist(&SwitchConfig::new(4, 4, w));
            let a = macro_area_mm2(&n);
            assert!(a > last, "area must grow with flit width (w={w}: {a})");
            last = a;
        }
    }

    #[test]
    fn switch_area_grows_with_radix() {
        let a44 = macro_area_mm2(&switch_netlist(&SwitchConfig::new(4, 4, 32)));
        let a64 = macro_area_mm2(&switch_netlist(&SwitchConfig::new(6, 4, 32)));
        let a55 = macro_area_mm2(&switch_netlist(&SwitchConfig::new(5, 5, 32)));
        assert!(a64 > a44);
        assert!(a55 > a44);
    }

    #[test]
    fn switch_area_in_paper_band() {
        // The paper's 32-bit switches occupy roughly 0.05–0.20 mm² at
        // 130 nm before timing effort.
        let a = macro_area_mm2(&switch_netlist(&SwitchConfig::new(4, 4, 32)));
        assert!((0.03..0.20).contains(&a), "4x4x32 area {a} mm² out of band");
    }

    #[test]
    fn bigger_radix_is_slower() {
        let t44 = analyze(&switch_netlist(&SwitchConfig::new(4, 4, 32))).unwrap();
        let t84 = analyze(&switch_netlist(&SwitchConfig::new(8, 8, 32))).unwrap();
        assert!(
            t84.min_period_ps > t44.min_period_ps,
            "8x8 ({}) must be slower than 4x4 ({})",
            t84.min_period_ps,
            t44.min_period_ps
        );
    }

    #[test]
    fn buffers_dominate_switch_area() {
        let n = switch_netlist(&SwitchConfig::new(4, 4, 32));
        let bd = crate::area::breakdown_um2(&n);
        let buffers = bd["out_queue"] + bd["flow_ctrl"] + bd["input_regs"];
        let logic = bd["crossbar"] + bd["allocator"] + bd["routing"];
        assert!(
            buffers > logic,
            "output-queued switches are buffer-dominated"
        );
    }

    #[test]
    fn ni_area_grows_with_flit_width() {
        let mut last = 0.0;
        for w in [16, 32, 64, 128] {
            let a = macro_area_mm2(&initiator_ni_netlist(&NiConfig::new(w)));
            assert!(a > last, "w={w}");
            last = a;
        }
    }

    #[test]
    fn initiator_bigger_than_target() {
        for w in [16, 32, 64, 128] {
            let i = macro_area_mm2(&initiator_ni_netlist(&NiConfig::new(w)));
            let t = macro_area_mm2(&target_ni_netlist(&NiConfig::new(w)));
            assert!(i > t, "initiator must outweigh target at w={w}");
        }
    }

    #[test]
    fn ni_smaller_than_switch() {
        let ni = macro_area_mm2(&initiator_ni_netlist(&NiConfig::new(32)));
        let sw = macro_area_mm2(&switch_netlist(&SwitchConfig::new(4, 4, 32)));
        assert!(ni < sw);
    }

    #[test]
    fn all_generators_produce_valid_netlists() {
        for cfg in [(2usize, 2usize), (4, 4), (6, 4), (5, 5), (8, 8)] {
            for w in [16, 32, 128] {
                switch_netlist(&SwitchConfig::new(cfg.0, cfg.1, w))
                    .validate()
                    .expect("switch netlist structurally sound");
            }
        }
        for w in [16, 32, 64, 128] {
            initiator_ni_netlist(&NiConfig::new(w))
                .validate()
                .expect("initiator NI");
            target_ni_netlist(&NiConfig::new(w))
                .validate()
                .expect("target NI");
            link_stage_netlist(w).validate().expect("link stage");
        }
    }

    #[test]
    fn components_are_timeable() {
        for n in [
            switch_netlist(&SwitchConfig::new(4, 4, 32)),
            initiator_ni_netlist(&NiConfig::new(32)),
            target_ni_netlist(&NiConfig::new(32)),
            link_stage_netlist(32),
        ] {
            let t = analyze(&n).unwrap();
            assert!(
                t.min_period_ps > 100.0 && t.min_period_ps < 10_000.0,
                "{}",
                n.name()
            );
        }
    }

    #[test]
    fn link_stage_is_tiny() {
        let a = macro_area_mm2(&link_stage_netlist(32));
        assert!(a < 0.01, "{a}");
    }

    #[test]
    fn queue_depth_scales_buffers() {
        let mut deep = SwitchConfig::new(4, 4, 32);
        deep.output_queue_depth = 12;
        let a6 = macro_area_mm2(&switch_netlist(&SwitchConfig::new(4, 4, 32)));
        let a12 = macro_area_mm2(&switch_netlist(&deep));
        assert!(a12 > a6 * 1.2, "doubling queues must add real area");
    }
}
