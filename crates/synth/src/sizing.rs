//! Timing-driven gate sizing: the synthesis "effort" knob.
//!
//! [`fit_to_period`] runs slack analysis and upsizes **every cell on a
//! violating path** (negative slack against the target period), repeating
//! until the target is met or all violating cells saturate at maximum
//! drive. Tight targets therefore swell whole timing cones, trading area
//! for frequency exactly as a synthesis tool's effort knob does — this
//! reproduces the paper's area-vs-frequency "banana" curve for the 32-bit
//! 5x5 switch.

use std::collections::HashMap;

use crate::cells::{self, MAX_SIZE};
use crate::netlist::{NetId, Netlist};
use crate::sta::{analyze_detailed, TimingError, TimingReport};

/// Outcome of a sizing run.
#[derive(Debug, Clone)]
pub struct SizingResult {
    /// Final timing after sizing.
    pub timing: TimingReport,
    /// Sizing iterations performed.
    pub iterations: usize,
    /// True when the target period was met.
    pub met: bool,
}

/// Errors from sizing.
#[derive(Debug, Clone, PartialEq)]
pub enum SizingError {
    /// Timing analysis failed.
    Timing(TimingError),
    /// Target unreachable; carries the best achievable period in ps.
    Unachievable { best_ps: f64 },
}

impl std::fmt::Display for SizingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SizingError::Timing(e) => write!(f, "timing analysis failed: {e}"),
            SizingError::Unachievable { best_ps } => {
                write!(f, "target period unachievable; best is {best_ps:.0} ps")
            }
        }
    }
}

impl std::error::Error for SizingError {}

impl From<TimingError> for SizingError {
    fn from(e: TimingError) -> Self {
        SizingError::Timing(e)
    }
}

/// Upsize cells on violating paths until `target_ps` is met.
///
/// Mutates the netlist's drive sizes in place. On failure the netlist is
/// left at maximum-effort sizing.
///
/// # Errors
///
/// * [`SizingError::Timing`] on analysis failures.
/// * [`SizingError::Unachievable`] when even maximum sizing misses the
///   target; the error carries the best achievable period.
pub fn fit_to_period(netlist: &mut Netlist, target_ps: f64) -> Result<SizingResult, SizingError> {
    // Each round can raise every violating gate one size step, so
    // MAX_SIZE rounds saturate; a few extra rounds absorb load shifts.
    let max_iters = MAX_SIZE as usize + 8;
    for iteration in 0..max_iters {
        let detail = analyze_detailed(netlist)?;
        if detail.report.min_period_ps <= target_ps {
            return Ok(SizingResult {
                timing: detail.report,
                iterations: iteration,
                met: true,
            });
        }

        // Backward required-time pass against the target period.
        let fanout = netlist.fanout();
        let mut required: HashMap<NetId, f64> = HashMap::new();
        let tighten = |req: &mut HashMap<NetId, f64>, net: NetId, t: f64| {
            let e = req.entry(net).or_insert(f64::INFINITY);
            if t < *e {
                *e = t;
            }
        };
        for g in netlist.gates() {
            if g.cell.is_sequential() {
                tighten(&mut required, g.inputs[0], target_ps - g.cell.setup_ps());
            }
        }
        for net in detail.arrival.keys() {
            if !fanout.contains_key(net) {
                tighten(&mut required, *net, target_ps);
            }
        }
        for &gi in detail.topo_order.iter().rev() {
            let g = &netlist.gates()[gi];
            let load = fanout.get(&g.output).copied().unwrap_or(0);
            let req_out = required.get(&g.output).copied().unwrap_or(target_ps);
            let d = cells::delay_ps(g.cell, g.size, load);
            for &input in &g.inputs {
                tighten(&mut required, input, req_out - d);
            }
        }

        // Upsize every gate whose output violates its required time,
        // including a guard band: cells within a few percent of violation
        // are sized too, as a synthesis tool's margining would.
        let margin = target_ps * 0.08;
        let mut progressed = false;
        let mut any_violation_upsized = false;
        for gi in 0..netlist.gate_count() {
            let g = &netlist.gates()[gi];
            let out = g.output;
            let arr = detail.arrival.get(&out).copied().unwrap_or(0.0);
            let req = required.get(&out).copied().unwrap_or(target_ps);
            if arr + margin > req && g.size < MAX_SIZE {
                let size = g.size + 1;
                netlist.set_size(crate::netlist::GateId(gi as u32), size);
                progressed = true;
                if arr > req {
                    any_violation_upsized = true;
                }
            }
        }
        if !progressed || !any_violation_upsized {
            return Err(SizingError::Unachievable {
                best_ps: detail.report.min_period_ps,
            });
        }
    }
    let timing = analyze_detailed(netlist)?.report;
    if timing.min_period_ps <= target_ps {
        Ok(SizingResult {
            timing,
            iterations: max_iters,
            met: true,
        })
    } else {
        Err(SizingError::Unachievable {
            best_ps: timing.min_period_ps,
        })
    }
}

/// The fastest period achievable at maximum effort, in ps.
///
/// # Errors
///
/// Propagates timing-analysis failures.
pub fn best_period_ps(netlist: &mut Netlist) -> Result<f64, SizingError> {
    match fit_to_period(netlist, 0.0) {
        Ok(r) => Ok(r.timing.min_period_ps),
        Err(SizingError::Unachievable { best_ps }) => Ok(best_ps),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::cell_area_um2;
    use crate::cells::CellKind;
    use crate::netlist::NetlistBuilder;
    use crate::sta::analyze;

    fn wide_chain() -> Netlist {
        let mut b = NetlistBuilder::new("chain");
        let g = b.group("c", 0.2);
        let d0 = b.input();
        let mut net = b.dff(g, d0);
        for _ in 0..12 {
            net = b.gate(g, CellKind::Nand2, &[net, net]);
        }
        b.dff(g, net);
        b.finish()
    }

    fn period_of(n: &Netlist) -> f64 {
        analyze(n).unwrap().min_period_ps
    }

    #[test]
    fn relaxed_target_needs_no_sizing() {
        let mut n = wide_chain();
        let r = fit_to_period(&mut n, 1.0e6).unwrap();
        assert!(r.met);
        assert_eq!(r.iterations, 0);
        assert!(n.gates().iter().all(|g| g.size == 1));
    }

    #[test]
    fn tight_target_costs_area() {
        let mut relaxed = wide_chain();
        fit_to_period(&mut relaxed, 1.0e6).unwrap();
        let base_area = cell_area_um2(&relaxed);

        let mut tight = wide_chain();
        let t0 = period_of(&tight);
        let r = fit_to_period(&mut tight, t0 * 0.7).unwrap();
        assert!(r.met);
        assert!(r.iterations > 0);
        assert!(cell_area_um2(&tight) > base_area);
    }

    #[test]
    fn impossible_target_reports_best() {
        let mut n = wide_chain();
        let err = fit_to_period(&mut n, 1.0).unwrap_err();
        match err {
            SizingError::Unachievable { best_ps } => {
                assert!(best_ps > 1.0);
                assert!(best_ps < period_of(&wide_chain()));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn best_period_is_monotone_floor() {
        let mut n = wide_chain();
        let best = best_period_ps(&mut n).unwrap();
        assert!(fit_to_period(&mut wide_chain(), best * 1.2).is_ok());
        assert!(fit_to_period(&mut wide_chain(), best * 0.8).is_err());
    }

    #[test]
    fn area_monotonically_rises_as_target_tightens() {
        let t0 = period_of(&wide_chain());
        let mut last_area = 0.0;
        for factor in [1.0, 0.9, 0.8, 0.72] {
            let mut n = wide_chain();
            if fit_to_period(&mut n, t0 * factor).is_ok() {
                let a = cell_area_um2(&n);
                assert!(a >= last_area, "area must not shrink as target tightens");
                last_area = a;
            }
        }
        assert!(last_area > 0.0);
    }

    #[test]
    fn sizing_touches_whole_violating_cone() {
        // Two parallel equal chains between registers: both violate, both
        // must be sized (path-at-a-time sizing would alternate slowly).
        let mut b = NetlistBuilder::new("par");
        let g = b.group("c", 0.2);
        let d0 = b.input();
        let q = b.dff(g, d0);
        let mut x = q;
        let mut y = q;
        for _ in 0..10 {
            x = b.gate(g, CellKind::Nand2, &[x, x]);
            y = b.gate(g, CellKind::Nor2, &[y, y]);
        }
        b.dff(g, x);
        b.dff(g, y);
        let mut n = b.finish();
        let t0 = period_of(&n);
        let r = fit_to_period(&mut n, t0 * 0.75).unwrap();
        assert!(r.met);
        // Both chains were upsized, not just the single critical one.
        let sized_nand = n
            .gates()
            .iter()
            .filter(|g| g.cell == CellKind::Nand2 && g.size > 1)
            .count();
        let sized_nor = n
            .gates()
            .iter()
            .filter(|g| g.cell == CellKind::Nor2 && g.size > 1)
            .count();
        assert!(sized_nand >= 5, "nand chain sized: {sized_nand}");
        assert!(sized_nor >= 5, "nor chain sized: {sized_nor}");
    }

    #[test]
    fn iterations_bounded() {
        let mut n = wide_chain();
        let t0 = period_of(&n);
        let r = fit_to_period(&mut n, t0 * 0.75).unwrap();
        assert!(r.iterations <= MAX_SIZE as usize + 8);
    }
}
