//! # xpipes-synth — synthesis estimation for the xpipes Lite library
//!
//! The original xpipes Lite paper reports **synthesis results**: area,
//! power and operating frequency of NIs and switches on a 130 nm standard
//! cell process. A Rust reproduction has no foundry flow, so this crate
//! substitutes the pipeline with the same *mechanism* scaled down:
//!
//! 1. [`components`] — parameterized **netlist generators** construct a
//!    gate-level structural netlist for every library component (switch,
//!    initiator NI, target NI, link pipeline stage) from the same configs
//!    the behavioural models use. Buffer arrays really are DFF arrays,
//!    crossbars really are mux trees, arbiters really are priority chains,
//!    so area/timing *scaling* with flit width and port count emerges from
//!    structure, not curve fitting.
//! 2. [`cells`] — a calibrated 130 nm-class standard-cell model (area,
//!    load-dependent delay, switching energy, leakage) with discrete
//!    drive-strength sizing.
//! 3. [`sta`] — static timing analysis over the netlist DAG; reports the
//!    minimum clock period and the critical path.
//! 4. [`sizing`] — timing-driven gate sizing: upsize critical-path cells
//!    until a target period is met, trading area for frequency exactly as
//!    a synthesis tool's effort knob does (this reproduces the paper's
//!    area-vs-frequency "banana" curve for the 5x5 switch).
//! 5. [`area`] / [`power`] — area accounting with routing overhead, and
//!    activity-based dynamic + leakage power at a given clock.
//! 6. [`report`] — one-call [`report::synthesize`] producing a
//!    [`report::SynthReport`] (area mm², fmax MHz, power mW, per-block
//!    breakdown), the unit in which every paper figure is reproduced.
//!
//! # Examples
//!
//! ```
//! use xpipes::SwitchConfig;
//! use xpipes_synth::components::switch_netlist;
//! use xpipes_synth::report::synthesize;
//!
//! # fn main() -> Result<(), xpipes_synth::SynthError> {
//! // The paper's headline component: a 4x4, 32-bit switch at 1 GHz.
//! let netlist = switch_netlist(&SwitchConfig::new(4, 4, 32));
//! let report = synthesize(&netlist, 1000.0)?; // target MHz
//! assert!(report.area_mm2 > 0.01 && report.area_mm2 < 1.0);
//! assert!(report.fmax_mhz >= 1000.0);
//! # Ok(())
//! # }
//! ```

pub mod area;
pub mod cells;
pub mod components;
pub mod netlist;
pub mod power;
pub mod report;
pub mod sizing;
pub mod sta;

pub use cells::CellKind;
pub use netlist::{GateId, NetId, Netlist, NetlistBuilder};
pub use report::{synthesize, SynthError, SynthReport};
