//! Area accounting.

use std::collections::HashMap;

use crate::cells;
use crate::netlist::Netlist;

/// Total cell area in µm² (before routing overhead).
pub fn cell_area_um2(netlist: &Netlist) -> f64 {
    netlist
        .gates()
        .iter()
        .map(|g| cells::area_um2(g.cell, g.size))
        .sum()
}

/// Macro area in mm² including routing/clock-tree overhead — the figure
/// a post-synthesis report would show.
pub fn macro_area_mm2(netlist: &Netlist) -> f64 {
    cell_area_um2(netlist) * cells::ROUTING_OVERHEAD / 1.0e6
}

/// Per-group area breakdown in µm² (cell area, no overhead).
pub fn breakdown_um2(netlist: &Netlist) -> HashMap<String, f64> {
    let mut map: HashMap<String, f64> = HashMap::new();
    for g in netlist.gates() {
        *map.entry(netlist.group_name(g.group).to_string())
            .or_insert(0.0) += cells::area_um2(g.cell, g.size);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellKind;
    use crate::netlist::NetlistBuilder;

    fn two_group_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("t");
        let ga = b.group("a", 0.2);
        let gb = b.group("b", 0.2);
        let i = b.input();
        b.dff(ga, i);
        let x = b.gate(gb, CellKind::Inv, &[i]);
        b.gate(gb, CellKind::Inv, &[x]);
        b.finish()
    }

    #[test]
    fn cell_area_sums() {
        let n = two_group_netlist();
        let expected = cells::area_um2(CellKind::Dff, 1) + 2.0 * cells::area_um2(CellKind::Inv, 1);
        assert!((cell_area_um2(&n) - expected).abs() < 1e-9);
    }

    #[test]
    fn macro_area_applies_overhead() {
        let n = two_group_netlist();
        let macro_mm2 = macro_area_mm2(&n);
        assert!((macro_mm2 * 1.0e6 / cells::ROUTING_OVERHEAD - cell_area_um2(&n)).abs() < 1e-6);
    }

    #[test]
    fn breakdown_covers_all_groups() {
        let n = two_group_netlist();
        let bd = breakdown_um2(&n);
        assert_eq!(bd.len(), 2);
        let total: f64 = bd.values().sum();
        assert!((total - cell_area_um2(&n)).abs() < 1e-9);
        assert!(bd["a"] > bd["b"], "one DFF outweighs two inverters");
    }

    #[test]
    fn sizing_increases_area() {
        let mut n = two_group_netlist();
        let before = cell_area_um2(&n);
        n.set_size(crate::netlist::GateId(1), 8);
        assert!(cell_area_um2(&n) > before);
    }
}
