//! Activity-based power estimation.
//!
//! `P = Σ_gates α·E(size)·f  +  clock-tree  +  Σ leakage`, with the
//! per-gate activity annotated by the netlist generators (data paths
//! toggle more than control).

use std::collections::HashMap;

use crate::cells;
use crate::netlist::Netlist;

/// Power estimate at one operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Dynamic switching power in mW.
    pub dynamic_mw: f64,
    /// Clock-tree power in mW.
    pub clock_mw: f64,
    /// Leakage power in mW.
    pub leakage_mw: f64,
}

impl PowerReport {
    /// Total power in mW.
    pub fn total_mw(&self) -> f64 {
        self.dynamic_mw + self.clock_mw + self.leakage_mw
    }
}

/// Estimates power at clock frequency `freq_mhz`.
pub fn estimate(netlist: &Netlist, freq_mhz: f64) -> PowerReport {
    let f_hz = freq_mhz * 1.0e6;
    let mut dynamic_fj_per_cycle = 0.0;
    let mut leakage_nw = 0.0;
    let mut dff_count = 0usize;
    for g in netlist.gates() {
        dynamic_fj_per_cycle += g.activity * cells::energy_fj(g.cell, g.size);
        leakage_nw += cells::leakage_nw(g.cell, g.size);
        if g.cell.is_sequential() {
            dff_count += 1;
        }
    }
    let clock_fj_per_cycle = dff_count as f64 * cells::CLOCK_TREE_FJ_PER_DFF;
    PowerReport {
        // fJ/cycle × Hz = fW×... : 1 fJ × 1 Hz = 1e-15 W; to mW: ×1e-12.
        dynamic_mw: dynamic_fj_per_cycle * f_hz * 1.0e-12,
        clock_mw: clock_fj_per_cycle * f_hz * 1.0e-12,
        leakage_mw: leakage_nw * 1.0e-6,
    }
}

/// Per-group dynamic power breakdown in mW at `freq_mhz`.
pub fn breakdown_mw(netlist: &Netlist, freq_mhz: f64) -> HashMap<String, f64> {
    let f_hz = freq_mhz * 1.0e6;
    let mut map: HashMap<String, f64> = HashMap::new();
    for g in netlist.gates() {
        let mw = g.activity * cells::energy_fj(g.cell, g.size) * f_hz * 1.0e-12;
        *map.entry(netlist.group_name(g.group).to_string())
            .or_insert(0.0) += mw;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellKind;
    use crate::netlist::NetlistBuilder;

    fn reg_bank(width: u32, activity: f64) -> Netlist {
        let mut b = NetlistBuilder::new("regs");
        let g = b.group("regs", activity);
        let d = b.inputs(width);
        b.register(g, &d);
        b.finish()
    }

    #[test]
    fn power_scales_with_frequency() {
        let n = reg_bank(32, 0.25);
        let p500 = estimate(&n, 500.0);
        let p1000 = estimate(&n, 1000.0);
        assert!((p1000.dynamic_mw - 2.0 * p500.dynamic_mw).abs() < 1e-12);
        assert!((p1000.clock_mw - 2.0 * p500.clock_mw).abs() < 1e-12);
        // Leakage is frequency independent.
        assert_eq!(p1000.leakage_mw, p500.leakage_mw);
    }

    #[test]
    fn power_scales_with_width() {
        let p32 = estimate(&reg_bank(32, 0.25), 1000.0);
        let p128 = estimate(&reg_bank(128, 0.25), 1000.0);
        assert!((p128.total_mw() / p32.total_mw() - 4.0).abs() < 0.01);
    }

    #[test]
    fn activity_drives_dynamic_power() {
        let idle = estimate(&reg_bank(32, 0.0), 1000.0);
        let busy = estimate(&reg_bank(32, 0.5), 1000.0);
        assert_eq!(idle.dynamic_mw, 0.0);
        assert!(busy.dynamic_mw > 0.0);
        // Clock tree burns power regardless of data activity.
        assert!(idle.clock_mw > 0.0);
    }

    #[test]
    fn magnitudes_are_plausible() {
        // 1024 DFF at 25% activity, 1 GHz: single-digit mW at 130 nm.
        let n = reg_bank(1024, 0.25);
        let p = estimate(&n, 1000.0);
        assert!(
            p.total_mw() > 1.0 && p.total_mw() < 20.0,
            "{}",
            p.total_mw()
        );
    }

    #[test]
    fn breakdown_sums_to_dynamic() {
        let mut b = NetlistBuilder::new("t");
        let g1 = b.group("a", 0.3);
        let g2 = b.group("b", 0.1);
        let i = b.input();
        let x = b.gate(g1, CellKind::Inv, &[i]);
        b.gate(g2, CellKind::Inv, &[x]);
        let n = b.finish();
        let p = estimate(&n, 800.0);
        let total: f64 = breakdown_mw(&n, 800.0).values().sum();
        assert!((total - p.dynamic_mw).abs() < 1e-12);
    }
}
