//! The structural netlist intermediate representation.
//!
//! A [`Netlist`] is a DAG of sized standard cells connected by nets, with
//! gates tagged by functional *group* (for per-block area breakdown) and
//! annotated with a switching activity used by the power model.

use std::collections::HashMap;
use std::fmt;

use crate::cells::CellKind;

/// Identifier of a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Identifier of a gate instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub u32);

/// Identifier of a functional group (block) within a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupId(pub u16);

/// One cell instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    /// Cell kind.
    pub cell: CellKind,
    /// Input nets (length = `cell.input_pins()`).
    pub inputs: Vec<NetId>,
    /// Output net (every gate drives exactly one net).
    pub output: NetId,
    /// Discrete drive size (1..=[`crate::cells::MAX_SIZE`]).
    pub size: u8,
    /// Functional group for breakdowns.
    pub group: GroupId,
    /// Output switching activity (expected toggles per cycle).
    pub activity: f64,
}

/// A complete structural netlist.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    groups: Vec<String>,
    primary_inputs: Vec<NetId>,
    net_count: u32,
    /// Driver gate per net (None for primary inputs).
    driver: HashMap<NetId, GateId>,
}

impl Netlist {
    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All gate instances.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// One gate by id.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.0 as usize]
    }

    /// Sets a gate's drive size (used by the sizing engine).
    ///
    /// # Panics
    ///
    /// Panics on size 0 or above [`crate::cells::MAX_SIZE`].
    pub fn set_size(&mut self, id: GateId, size: u8) {
        assert!(
            (1..=crate::cells::MAX_SIZE).contains(&size),
            "bad drive size {size}"
        );
        self.gates[id.0 as usize].size = size;
    }

    /// Group names in id order.
    pub fn groups(&self) -> &[String] {
        &self.groups
    }

    /// Name of one group.
    pub fn group_name(&self, id: GroupId) -> &str {
        &self.groups[id.0 as usize]
    }

    /// Primary input nets.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Total number of nets.
    pub fn net_count(&self) -> u32 {
        self.net_count
    }

    /// Number of gate instances.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of flip-flops.
    pub fn dff_count(&self) -> usize {
        self.gates.iter().filter(|g| g.cell.is_sequential()).count()
    }

    /// The gate driving `net`, if it is not a primary input.
    pub fn driver(&self, net: NetId) -> Option<GateId> {
        self.driver.get(&net).copied()
    }

    /// Fanout (number of driven input pins) per net.
    pub fn fanout(&self) -> HashMap<NetId, usize> {
        let mut f: HashMap<NetId, usize> = HashMap::new();
        for g in &self.gates {
            for &i in &g.inputs {
                *f.entry(i).or_insert(0) += 1;
            }
        }
        f
    }

    /// Gate count per group, for structure assertions in tests.
    pub fn group_gate_count(&self, name: &str) -> usize {
        let Some(idx) = self.groups.iter().position(|g| g == name) else {
            return 0;
        };
        let gid = GroupId(idx as u16);
        self.gates.iter().filter(|g| g.group == gid).count()
    }

    /// Structural sanity check: every net id in range, exactly one driver
    /// per driven net, pin counts matching cells, drive sizes in range.
    /// Generators assert this in tests; analyses may assume it holds.
    ///
    /// # Errors
    ///
    /// The first structural problem found.
    pub fn validate(&self) -> Result<(), ValidateNetlistError> {
        let mut drivers: HashMap<NetId, GateId> = HashMap::new();
        for (i, g) in self.gates.iter().enumerate() {
            let id = GateId(i as u32);
            if g.inputs.len() != g.cell.input_pins() {
                return Err(ValidateNetlistError::BadPinCount(id));
            }
            if !(1..=crate::cells::MAX_SIZE).contains(&g.size) {
                return Err(ValidateNetlistError::BadSize(id));
            }
            for n in g.inputs.iter().chain(std::iter::once(&g.output)) {
                if n.0 >= self.net_count {
                    return Err(ValidateNetlistError::NetOutOfRange(id, *n));
                }
            }
            if let Some(prev) = drivers.insert(g.output, id) {
                return Err(ValidateNetlistError::MultipleDrivers(g.output, prev, id));
            }
        }
        for &pi in &self.primary_inputs {
            if let Some(&gid) = drivers.get(&pi) {
                return Err(ValidateNetlistError::DrivenPrimaryInput(pi, gid));
            }
        }
        Ok(())
    }
}

/// Structural problems reported by [`Netlist::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidateNetlistError {
    /// A gate's input count does not match its cell's pins.
    BadPinCount(GateId),
    /// A gate's drive size is outside `1..=MAX_SIZE`.
    BadSize(GateId),
    /// A gate references a net id beyond the allocated count.
    NetOutOfRange(GateId, NetId),
    /// Two gates drive the same net.
    MultipleDrivers(NetId, GateId, GateId),
    /// A gate drives a declared primary input.
    DrivenPrimaryInput(NetId, GateId),
}

impl fmt::Display for ValidateNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateNetlistError::BadPinCount(g) => write!(f, "gate {} pin count", g.0),
            ValidateNetlistError::BadSize(g) => write!(f, "gate {} drive size", g.0),
            ValidateNetlistError::NetOutOfRange(g, n) => {
                write!(f, "gate {} references unallocated net {}", g.0, n.0)
            }
            ValidateNetlistError::MultipleDrivers(n, a, b) => {
                write!(f, "net {} driven by gates {} and {}", n.0, a.0, b.0)
            }
            ValidateNetlistError::DrivenPrimaryInput(n, g) => {
                write!(f, "primary input {} driven by gate {}", n.0, g.0)
            }
        }
    }
}

impl std::error::Error for ValidateNetlistError {}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} gates ({} DFF), {} nets, {} groups",
            self.name,
            self.gate_count(),
            self.dff_count(),
            self.net_count,
            self.groups.len()
        )
    }
}

/// Incremental netlist constructor used by the component generators.
///
/// # Examples
///
/// ```
/// use xpipes_synth::{NetlistBuilder, CellKind};
///
/// let mut b = NetlistBuilder::new("adder_bit");
/// let g = b.group("sum", 0.25);
/// let a = b.input();
/// let c = b.input();
/// let s = b.gate(g, CellKind::Xor2, &[a, c]);
/// let _q = b.dff(g, s);
/// let n = b.finish();
/// assert_eq!(n.gate_count(), 2);
/// assert_eq!(n.dff_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    name: String,
    gates: Vec<Gate>,
    groups: Vec<String>,
    group_activity: Vec<f64>,
    primary_inputs: Vec<NetId>,
    net_count: u32,
}

impl NetlistBuilder {
    /// Starts an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        NetlistBuilder {
            name: name.into(),
            gates: Vec::new(),
            groups: Vec::new(),
            group_activity: Vec::new(),
            primary_inputs: Vec::new(),
            net_count: 0,
        }
    }

    /// Declares (or reuses) a functional group with a default switching
    /// activity for its gates.
    pub fn group(&mut self, name: &str, activity: f64) -> GroupId {
        if let Some(idx) = self.groups.iter().position(|g| g == name) {
            return GroupId(idx as u16);
        }
        self.groups.push(name.to_string());
        self.group_activity.push(activity.clamp(0.0, 1.0));
        GroupId((self.groups.len() - 1) as u16)
    }

    /// Allocates a fresh net.
    pub fn net(&mut self) -> NetId {
        let id = NetId(self.net_count);
        self.net_count += 1;
        id
    }

    /// Allocates a primary-input net.
    pub fn input(&mut self) -> NetId {
        let n = self.net();
        self.primary_inputs.push(n);
        n
    }

    /// Allocates `width` primary-input nets.
    pub fn inputs(&mut self, width: u32) -> Vec<NetId> {
        (0..width).map(|_| self.input()).collect()
    }

    /// Instantiates a combinational gate; returns its output net.
    ///
    /// # Panics
    ///
    /// Panics when the input count does not match the cell's pins or when
    /// a sequential cell is passed (use [`dff`](Self::dff)).
    pub fn gate(&mut self, group: GroupId, cell: CellKind, inputs: &[NetId]) -> NetId {
        assert!(!cell.is_sequential(), "use dff() for sequential cells");
        assert_eq!(inputs.len(), cell.input_pins(), "{cell:?} pin count");
        let output = self.net();
        self.push(group, cell, inputs.to_vec(), output);
        output
    }

    /// Instantiates a flip-flop fed by `d`; returns its Q net.
    pub fn dff(&mut self, group: GroupId, d: NetId) -> NetId {
        let output = self.net();
        self.push(group, CellKind::Dff, vec![d], output);
        output
    }

    /// Instantiates a `width`-bit register; returns the Q nets.
    pub fn register(&mut self, group: GroupId, d: &[NetId]) -> Vec<NetId> {
        d.iter().map(|&bit| self.dff(group, bit)).collect()
    }

    /// A `width`-bit 2:1 mux (one [`CellKind::Mux2`] per bit).
    pub fn mux2_bus(&mut self, group: GroupId, sel: NetId, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        assert_eq!(a.len(), b.len(), "mux bus width mismatch");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.gate(group, CellKind::Mux2, &[sel, x, y]))
            .collect()
    }

    /// An N:1 one-hot mux tree over equal-width buses; returns the output
    /// bus. Structure: a balanced tree of 2:1 muxes, `(N-1)·width` cells —
    /// exactly the crossbar column of a switch output.
    ///
    /// # Panics
    ///
    /// Panics when `buses` is empty or widths differ.
    pub fn mux_tree(&mut self, group: GroupId, sels: &[NetId], buses: &[Vec<NetId>]) -> Vec<NetId> {
        assert!(!buses.is_empty(), "mux tree needs at least one bus");
        let mut level: Vec<Vec<NetId>> = buses.to_vec();
        let mut sel_idx = 0;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut iter = level.chunks(2);
            for pair in iter.by_ref() {
                if pair.len() == 2 {
                    let sel = sels[sel_idx % sels.len().max(1)];
                    sel_idx += 1;
                    next.push(self.mux2_bus(group, sel, &pair[0], &pair[1]));
                } else {
                    next.push(pair[0].clone());
                }
            }
            level = next;
        }
        level.pop().expect("nonempty")
    }

    /// An XOR reduction tree over `bits` (parity / CRC checker).
    pub fn xor_tree(&mut self, group: GroupId, bits: &[NetId]) -> NetId {
        assert!(!bits.is_empty(), "xor tree needs inputs");
        let mut level = bits.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut chunks = level.chunks(2);
            for pair in chunks.by_ref() {
                if pair.len() == 2 {
                    next.push(self.gate(group, CellKind::Xor2, &[pair[0], pair[1]]));
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        level[0]
    }

    /// An equality comparator between two equal-width buses: per-bit XOR
    /// feeding a NOR reduction. Returns the match net.
    pub fn comparator(&mut self, group: GroupId, a: &[NetId], b: &[NetId]) -> NetId {
        assert_eq!(a.len(), b.len(), "comparator width mismatch");
        let diffs: Vec<NetId> = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| self.gate(group, CellKind::Xor2, &[x, y]))
            .collect();
        // NOR-reduce the difference bits.
        let mut level = diffs;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut chunks = level.chunks(2);
            for pair in chunks.by_ref() {
                if pair.len() == 2 {
                    next.push(self.gate(group, CellKind::Nor2, &[pair[0], pair[1]]));
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        level[0]
    }

    /// A ripple priority chain over `requests`: `grant[i]` is `request[i]`
    /// masked by all lower requests — the fixed-priority arbiter core. The
    /// chain depth grows linearly with the request count, which is what
    /// makes high-radix switches slower.
    pub fn priority_chain(&mut self, group: GroupId, requests: &[NetId]) -> Vec<NetId> {
        assert!(!requests.is_empty(), "priority chain needs requests");
        let mut grants = Vec::with_capacity(requests.len());
        let mut any_above: Option<NetId> = None;
        for &req in requests {
            let grant = match any_above {
                None => req,
                Some(blocker) => {
                    let nb = self.gate(group, CellKind::Inv, &[blocker]);
                    let g = self.gate(group, CellKind::Nand2, &[req, nb]);
                    self.gate(group, CellKind::Inv, &[g])
                }
            };
            grants.push(grant);
            any_above = Some(match any_above {
                None => req,
                Some(prev) => {
                    let or = self.gate(group, CellKind::Nor2, &[prev, req]);
                    self.gate(group, CellKind::Inv, &[or])
                }
            });
        }
        grants
    }

    /// A `width`-bit binary counter (DFF + XOR/carry chain); returns the
    /// Q nets. Used for sequence numbers and FIFO pointers.
    pub fn counter(&mut self, group: GroupId, width: u32) -> Vec<NetId> {
        let mut qs = Vec::with_capacity(width as usize);
        let mut carry: Option<NetId> = None;
        for _ in 0..width {
            // Feedback toggle bit: q -> xor with carry -> d.
            let d_net = self.net();
            let q = self.dff(group, d_net);
            let toggled = match carry {
                None => self.gate(group, CellKind::Inv, &[q]),
                Some(c) => self.gate(group, CellKind::Xor2, &[q, c]),
            };
            // Patch the DFF's D input to the computed toggle net.
            let dff_gate = self
                .gates
                .iter_mut()
                .rev()
                .find(|g| g.output == q)
                .expect("dff just created");
            dff_gate.inputs[0] = toggled;
            carry = Some(match carry {
                None => q,
                Some(c) => {
                    let n = self.gate(group, CellKind::Nand2, &[q, c]);
                    self.gate(group, CellKind::Inv, &[n])
                }
            });
            qs.push(q);
        }
        qs
    }

    /// Re-targets the D input of the flip-flop driving `q`. Used to close
    /// recirculation (clock-enable) loops that are built after the DFF.
    ///
    /// # Panics
    ///
    /// Panics when no flip-flop drives `q`.
    pub fn patch_last_dff(&mut self, q: NetId, new_d: NetId) {
        let gate = self
            .gates
            .iter_mut()
            .rev()
            .find(|g| g.output == q && g.cell.is_sequential())
            .expect("patch_last_dff: no flip-flop drives the given net");
        gate.inputs[0] = new_d;
    }

    fn push(&mut self, group: GroupId, cell: CellKind, inputs: Vec<NetId>, output: NetId) {
        let activity = self.group_activity[group.0 as usize];
        self.gates.push(Gate {
            cell,
            inputs,
            output,
            size: 1,
            group,
            activity,
        });
    }

    /// Freezes the builder into an immutable netlist.
    pub fn finish(self) -> Netlist {
        let mut driver = HashMap::with_capacity(self.gates.len());
        for (i, g) in self.gates.iter().enumerate() {
            driver.insert(g.output, GateId(i as u32));
        }
        Netlist {
            name: self.name,
            gates: self.gates,
            groups: self.groups,
            primary_inputs: self.primary_inputs,
            net_count: self.net_count,
            driver,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_counts() {
        let mut b = NetlistBuilder::new("t");
        let g = b.group("core", 0.2);
        let a = b.input();
        let c = b.input();
        let x = b.gate(g, CellKind::Nand2, &[a, c]);
        b.dff(g, x);
        let n = b.finish();
        assert_eq!(n.gate_count(), 2);
        assert_eq!(n.dff_count(), 1);
        assert_eq!(n.primary_inputs().len(), 2);
        assert_eq!(n.name(), "t");
        assert!(n.to_string().contains("2 gates"));
    }

    #[test]
    fn group_reuse() {
        let mut b = NetlistBuilder::new("t");
        let g1 = b.group("x", 0.1);
        let g2 = b.group("x", 0.9);
        assert_eq!(g1, g2);
        let n = b.finish();
        assert_eq!(n.groups().len(), 1);
    }

    #[test]
    fn fanout_computation() {
        let mut b = NetlistBuilder::new("t");
        let g = b.group("c", 0.2);
        let a = b.input();
        let x = b.gate(g, CellKind::Inv, &[a]);
        b.gate(g, CellKind::Inv, &[x]);
        b.gate(g, CellKind::Inv, &[x]);
        let n = b.finish();
        let fo = n.fanout();
        assert_eq!(fo[&x], 2);
        assert_eq!(fo[&a], 1);
    }

    #[test]
    fn driver_lookup() {
        let mut b = NetlistBuilder::new("t");
        let g = b.group("c", 0.2);
        let a = b.input();
        let x = b.gate(g, CellKind::Inv, &[a]);
        let n = b.finish();
        assert!(n.driver(a).is_none());
        assert_eq!(n.driver(x), Some(GateId(0)));
    }

    #[test]
    fn mux_tree_cell_count() {
        let mut b = NetlistBuilder::new("t");
        let g = b.group("xbar", 0.25);
        let sels: Vec<NetId> = (0..3).map(|_| b.input()).collect();
        let buses: Vec<Vec<NetId>> = (0..4).map(|_| b.inputs(8)).collect();
        let out = b.mux_tree(g, &sels, &buses);
        assert_eq!(out.len(), 8);
        // (N-1) * width muxes = 3 * 8 = 24.
        let n = b.finish();
        assert_eq!(n.gate_count(), 24);
    }

    #[test]
    fn mux_tree_single_bus_passthrough() {
        let mut b = NetlistBuilder::new("t");
        let g = b.group("xbar", 0.25);
        let bus = b.inputs(4);
        let out = b.mux_tree(g, &[], std::slice::from_ref(&bus));
        assert_eq!(out, bus);
        assert_eq!(b.finish().gate_count(), 0);
    }

    #[test]
    fn xor_tree_reduces() {
        let mut b = NetlistBuilder::new("t");
        let g = b.group("crc", 0.3);
        let bits = b.inputs(9);
        b.xor_tree(g, &bits);
        let n = b.finish();
        assert_eq!(n.gate_count(), 8); // n-1 XORs
    }

    #[test]
    fn comparator_structure() {
        let mut b = NetlistBuilder::new("t");
        let g = b.group("cmp", 0.2);
        let a = b.inputs(6);
        let c = b.inputs(6);
        b.comparator(g, &a, &c);
        let n = b.finish();
        // 6 XOR + 5 reduce gates.
        assert_eq!(n.gate_count(), 11);
    }

    #[test]
    fn priority_chain_grows_linearly() {
        let count = |n: usize| {
            let mut b = NetlistBuilder::new("t");
            let g = b.group("arb", 0.1);
            let reqs = b.inputs(n as u32);
            b.priority_chain(g, &reqs);
            b.finish().gate_count()
        };
        let c4 = count(4);
        let c6 = count(6);
        let c8 = count(8);
        assert!(c6 > c4 && c8 > c6);
        // Linear growth: equal increments.
        assert_eq!(c8 - c6, c6 - c4);
    }

    #[test]
    fn counter_has_width_dffs() {
        let mut b = NetlistBuilder::new("t");
        let g = b.group("ctr", 0.5);
        let qs = b.counter(g, 6);
        assert_eq!(qs.len(), 6);
        let n = b.finish();
        assert_eq!(n.dff_count(), 6);
        // No dangling D inputs: every DFF input must be a driven net.
        for gate in n.gates() {
            if gate.cell.is_sequential() {
                assert!(
                    n.driver(gate.inputs[0]).is_some(),
                    "counter DFF D must be driven"
                );
            }
        }
    }

    #[test]
    fn validate_passes_builder_output() {
        let mut b = NetlistBuilder::new("ok");
        let g = b.group("c", 0.2);
        let a = b.input();
        let x = b.gate(g, CellKind::Inv, &[a]);
        b.dff(g, x);
        assert!(b.finish().validate().is_ok());
    }

    #[test]
    fn validate_rejects_double_driver() {
        let mut b = NetlistBuilder::new("dup");
        let g = b.group("c", 0.2);
        let a = b.input();
        let x = b.gate(g, CellKind::Inv, &[a]);
        let y = b.gate(g, CellKind::Inv, &[x]);
        // Force gate 1 to drive gate 0's output net (illegal). The test
        // module sits inside netlist.rs, so private fields are reachable.
        let _ = y;
        let mut n = b.finish();
        let out0 = n.gates[0].output;
        n.gates[1].output = out0;
        assert!(matches!(
            n.validate(),
            Err(ValidateNetlistError::MultipleDrivers(net, _, _)) if net == out0
        ));
    }

    #[test]
    #[should_panic(expected = "pin count")]
    fn wrong_pin_count_panics() {
        let mut b = NetlistBuilder::new("t");
        let g = b.group("c", 0.2);
        let a = b.input();
        b.gate(g, CellKind::Nand2, &[a]);
    }

    #[test]
    #[should_panic(expected = "bad drive size")]
    fn set_size_validates() {
        let mut b = NetlistBuilder::new("t");
        let g = b.group("c", 0.2);
        let a = b.input();
        b.gate(g, CellKind::Inv, &[a]);
        let mut n = b.finish();
        n.set_size(GateId(0), 0);
    }
}
