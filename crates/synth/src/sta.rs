//! Static timing analysis over the netlist DAG.
//!
//! Sources are primary inputs (arrival 0) and DFF Q pins (clock-to-Q);
//! sinks are DFF D pins (arrival + setup) and undriven-fanout nets
//! (primary outputs). The minimum clock period is the worst sink arrival.
//! [`analyze_detailed`] additionally exposes per-net arrivals and the
//! topological order, which the slack-based sizing engine consumes.

use std::collections::HashMap;

use crate::cells;
use crate::netlist::{GateId, NetId, Netlist};

/// Timing analysis results.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Minimum clock period in ps.
    pub min_period_ps: f64,
    /// Maximum frequency in MHz.
    pub fmax_mhz: f64,
    /// Gates on the critical path, source to sink.
    pub critical_path: Vec<GateId>,
    /// Logic depth of the critical path (combinational gates).
    pub critical_depth: usize,
}

/// Full analysis detail for downstream optimization passes.
#[derive(Debug, Clone)]
pub struct TimingDetail {
    /// Summary report.
    pub report: TimingReport,
    /// Arrival time per net, in ps.
    pub arrival: HashMap<NetId, f64>,
    /// Combinational gates in evaluation (topological) order.
    pub topo_order: Vec<usize>,
}

/// Errors from timing analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimingError {
    /// The combinational graph has a cycle through the listed gate.
    CombinationalLoop(GateId),
    /// The netlist contains no timed elements at all.
    EmptyNetlist,
}

impl std::fmt::Display for TimingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimingError::CombinationalLoop(g) => {
                write!(f, "combinational loop through gate {}", g.0)
            }
            TimingError::EmptyNetlist => write!(f, "netlist has no gates"),
        }
    }
}

impl std::error::Error for TimingError {}

/// Runs static timing analysis (summary only).
///
/// # Errors
///
/// See [`analyze_detailed`].
pub fn analyze(netlist: &Netlist) -> Result<TimingReport, TimingError> {
    analyze_detailed(netlist).map(|d| d.report)
}

/// Runs static timing analysis, returning arrivals and evaluation order.
///
/// # Errors
///
/// [`TimingError::CombinationalLoop`] if the combinational subgraph is
/// cyclic; [`TimingError::EmptyNetlist`] for a gate-less netlist.
pub fn analyze_detailed(netlist: &Netlist) -> Result<TimingDetail, TimingError> {
    if netlist.gate_count() == 0 {
        return Err(TimingError::EmptyNetlist);
    }
    let fanout = netlist.fanout();

    let mut arrival: HashMap<NetId, f64> = HashMap::new();
    let mut arrival_from: HashMap<NetId, GateId> = HashMap::new();

    for &pi in netlist.primary_inputs() {
        arrival.insert(pi, 0.0);
    }
    for (i, g) in netlist.gates().iter().enumerate() {
        if g.cell.is_sequential() {
            let load = fanout.get(&g.output).copied().unwrap_or(0);
            arrival.insert(g.output, cells::delay_ps(g.cell, g.size, load));
            arrival_from.insert(g.output, GateId(i as u32));
        }
    }

    // Kahn topological evaluation over combinational gates. Inputs that
    // are neither primary, nor gate-driven, nor DFF-driven are tie-offs:
    // they time as constants (arrival 0).
    let comb: Vec<usize> = (0..netlist.gate_count())
        .filter(|&i| !netlist.gates()[i].cell.is_sequential())
        .collect();
    let known = |arr: &HashMap<NetId, f64>, nl: &Netlist, n: &NetId| {
        arr.contains_key(n) || nl.driver(*n).is_none()
    };
    let mut unresolved: HashMap<usize, usize> = HashMap::new();
    let mut consumers: HashMap<NetId, Vec<usize>> = HashMap::new();
    let mut ready: Vec<usize> = Vec::new();
    for &gi in &comb {
        let g = &netlist.gates()[gi];
        let missing = g
            .inputs
            .iter()
            .filter(|n| !known(&arrival, netlist, n))
            .count();
        if missing == 0 {
            ready.push(gi);
        } else {
            unresolved.insert(gi, missing);
            for n in &g.inputs {
                if !known(&arrival, netlist, n) {
                    consumers.entry(*n).or_default().push(gi);
                }
            }
        }
    }

    let mut topo_order = Vec::with_capacity(comb.len());
    while let Some(gi) = ready.pop() {
        topo_order.push(gi);
        let g = &netlist.gates()[gi];
        let load = fanout.get(&g.output).copied().unwrap_or(0);
        let in_arr = g
            .inputs
            .iter()
            .map(|n| arrival.get(n).copied().unwrap_or(0.0))
            .fold(0.0_f64, f64::max);
        let out_arr = in_arr + cells::delay_ps(g.cell, g.size, load);
        arrival.insert(g.output, out_arr);
        arrival_from.insert(g.output, GateId(gi as u32));
        if let Some(waiters) = consumers.remove(&g.output) {
            for w in waiters {
                if let Some(m) = unresolved.get_mut(&w) {
                    *m -= 1;
                    if *m == 0 {
                        unresolved.remove(&w);
                        ready.push(w);
                    }
                }
            }
        }
    }
    if !unresolved.is_empty() {
        let stuck = *unresolved.keys().next().expect("nonempty");
        return Err(TimingError::CombinationalLoop(GateId(stuck as u32)));
    }

    // Sinks: DFF D pins (+setup) and undriven-fanout nets.
    let mut worst = 0.0_f64;
    let mut worst_net: Option<NetId> = None;
    for g in netlist.gates() {
        if g.cell.is_sequential() {
            let d = g.inputs[0];
            let t = arrival.get(&d).copied().unwrap_or(0.0) + g.cell.setup_ps();
            if t > worst {
                worst = t;
                worst_net = Some(d);
            }
        }
    }
    for (net, t) in &arrival {
        if !fanout.contains_key(net) && *t > worst {
            worst = *t;
            worst_net = Some(*net);
        }
    }

    // Trace the critical path back from the worst net.
    let mut path = Vec::new();
    let mut cur = worst_net;
    while let Some(net) = cur {
        let Some(gid) = arrival_from.get(&net).copied() else {
            break;
        };
        path.push(gid);
        let g = netlist.gate(gid);
        if g.cell.is_sequential() {
            break;
        }
        cur = g
            .inputs
            .iter()
            .max_by(|a, b| {
                let ta = arrival.get(a).copied().unwrap_or(0.0);
                let tb = arrival.get(b).copied().unwrap_or(0.0);
                ta.partial_cmp(&tb).expect("arrivals are finite")
            })
            .copied();
    }
    path.reverse();
    let depth = path
        .iter()
        .filter(|g| !netlist.gate(**g).cell.is_sequential())
        .count();

    let min_period_ps = worst.max(1.0);
    Ok(TimingDetail {
        report: TimingReport {
            min_period_ps,
            fmax_mhz: 1.0e6 / min_period_ps,
            critical_path: path,
            critical_depth: depth,
        },
        arrival,
        topo_order,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cells::CellKind;
    use crate::netlist::NetlistBuilder;

    /// reg -> inv chain of depth `n` -> reg.
    fn chain(n: usize) -> Netlist {
        let mut b = NetlistBuilder::new("chain");
        let g = b.group("c", 0.2);
        let d0 = b.input();
        let mut net = b.dff(g, d0);
        for _ in 0..n {
            net = b.gate(g, CellKind::Inv, &[net]);
        }
        b.dff(g, net);
        b.finish()
    }

    #[test]
    fn period_grows_with_depth() {
        let short = analyze(&chain(2)).unwrap();
        let long = analyze(&chain(10)).unwrap();
        assert!(long.min_period_ps > short.min_period_ps);
        assert!(long.fmax_mhz < short.fmax_mhz);
        assert_eq!(long.critical_depth, 10);
    }

    #[test]
    fn period_includes_clkq_and_setup() {
        let r = analyze(&chain(0)).unwrap();
        let expected = cells::delay_ps(CellKind::Dff, 1, 1) + CellKind::Dff.setup_ps();
        assert!(
            (r.min_period_ps - expected).abs() < 1e-9,
            "{}",
            r.min_period_ps
        );
    }

    #[test]
    fn critical_path_traced() {
        let n = chain(4);
        let r = analyze(&n).unwrap();
        assert!(r.critical_path.len() >= 5);
        assert_eq!(r.critical_depth, 4);
    }

    #[test]
    fn upsizing_critical_gates_reduces_period() {
        let mut n = chain(8);
        let before = analyze(&n).unwrap();
        for gid in before.critical_path.clone() {
            n.set_size(gid, 8);
        }
        let after = analyze(&n).unwrap();
        assert!(after.min_period_ps < before.min_period_ps);
    }

    #[test]
    fn fanout_slows_driver() {
        let build = |consumers: usize| {
            let mut b = NetlistBuilder::new("f");
            let g = b.group("c", 0.2);
            let d0 = b.input();
            let q = b.dff(g, d0);
            let x = b.gate(g, CellKind::Inv, &[q]);
            for _ in 0..consumers {
                let y = b.gate(g, CellKind::Inv, &[x]);
                b.dff(g, y);
            }
            b.finish()
        };
        let light = analyze(&build(1)).unwrap();
        let heavy = analyze(&build(12)).unwrap();
        assert!(heavy.min_period_ps > light.min_period_ps);
    }

    #[test]
    fn empty_netlist_rejected() {
        let b = NetlistBuilder::new("empty");
        assert_eq!(analyze(&b.finish()).unwrap_err(), TimingError::EmptyNetlist);
    }

    #[test]
    fn pure_combinational_po_timed() {
        let mut b = NetlistBuilder::new("comb");
        let g = b.group("c", 0.2);
        let a = b.input();
        let c = b.input();
        let x = b.gate(g, CellKind::Nand2, &[a, c]);
        let _y = b.gate(g, CellKind::Inv, &[x]);
        let r = analyze(&b.finish()).unwrap();
        assert!(r.min_period_ps > 0.0);
        assert_eq!(r.critical_depth, 2);
    }

    #[test]
    fn undriven_inputs_treated_as_constants() {
        let mut b = NetlistBuilder::new("tieoff");
        let g = b.group("c", 0.2);
        let tie = b.net();
        let mut net = b.gate(g, CellKind::Inv, &[tie]);
        for _ in 0..9 {
            net = b.gate(g, CellKind::Inv, &[net]);
        }
        b.dff(g, net);
        let r = analyze(&b.finish()).unwrap();
        assert!(r.min_period_ps > 0.0);
        assert_eq!(r.critical_depth, 10);
    }

    #[test]
    fn detailed_exposes_arrivals_and_order() {
        let n = chain(3);
        let d = analyze_detailed(&n).unwrap();
        assert_eq!(d.topo_order.len(), 3);
        // Arrivals strictly increase along the inverter chain.
        let mut last = 0.0;
        for &gi in &d.topo_order {
            let out = n.gates()[gi].output;
            let t = d.arrival[&out];
            assert!(t > last);
            last = t;
        }
    }
}
