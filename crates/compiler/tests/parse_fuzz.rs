//! Parser robustness: arbitrary input must produce a clean error or a
//! valid specification — never a panic, and never an invalid spec.

use proptest::prelude::*;

use xpipes_compiler::{parse_spec, print_spec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary text never panics the parser.
    #[test]
    fn arbitrary_text_never_panics(input in ".{0,400}") {
        let _ = parse_spec(&input);
    }

    /// Arbitrary token soup (closer to the grammar's alphabet) never
    /// panics and, when accepted, round-trips.
    #[test]
    fn token_soup_is_handled(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("noc".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("switch".to_string()),
                Just("link".to_string()),
                Just("<->".to_string()),
                Just("initiator".to_string()),
                Just("target".to_string()),
                Just("@".to_string()),
                Just("base".to_string()),
                Just("size".to_string()),
                Just("s0.0".to_string()),
                Just("s0".to_string()),
                Just("0x10".to_string()),
                Just("7".to_string()),
                Just("\n".to_string()),
            ],
            0..40,
        ),
    ) {
        let input = tokens.join(" ");
        if let Ok(spec) = parse_spec(&input) {
            let printed = print_spec(&spec);
            let reparsed = parse_spec(&printed).expect("printer output must parse");
            prop_assert_eq!(print_spec(&reparsed), printed);
        }
    }

    /// Numeric fields survive extreme values without panicking.
    #[test]
    fn extreme_numbers_handled(width in any::<u64>(), depth in any::<u64>()) {
        let text = format!(
            "noc x {{\n  flit_width {width}\n  queue_depth {depth}\n  switch a\n}}"
        );
        if let Ok(spec) = parse_spec(&text) {
            // Out-of-range values must be caught by validation, not by
            // a panic downstream.
            let _ = spec.validate();
        }
    }
}

#[test]
fn deeply_malformed_inputs_error_cleanly() {
    for bad in [
        "noc",
        "noc {",
        "noc a { noc b {",
        "noc a {\n link x.0 <-> y.0\n}",
        "noc a {\n switch s\n initiator i @ s.99\n}",
        "noc a {\n switch s\n target t @ s.0 base zz size 1\n}",
        "}{",
        "noc a {}\nextra",
    ] {
        assert!(parse_spec(bad).is_err(), "should reject: {bad:?}");
    }
}
