//! # xpipes-compiler — the xpipesCompiler
//!
//! The paper's flow — "XpipesCompiler: NoC specification → routing
//! tables plus xpipes components" — produces **orthogonal synthesis and
//! simulation design flows** from one description. This crate reproduces
//! that tool:
//!
//! * [`spec_text`] — a human-writable NoC specification text format with
//!   a parser and printer (round-trip stable),
//! * [`instantiate`] — specification → runnable cycle-accurate network
//!   (the *simulation view*),
//! * [`emit`] — generation of a structural Verilog top (the *synthesis
//!   view*), a SystemC-style module skeleton (the original library's
//!   native simulation language), and gate-level Verilog from synthesis
//!   netlists,
//! * [`routing_report`] — the per-NI LUT contents (routing tables).
//!
//! # Examples
//!
//! ```
//! use xpipes_compiler::{parse_spec, print_spec, instantiate};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let text = "
//! noc demo {
//!   flit_width 32
//!   switch s0
//!   switch s1
//!   link s0.0 <-> s1.0 stages 1
//!   initiator cpu @ s0.1
//!   target mem @ s1.1 base 0x0 size 0x10000
//! }";
//! let spec = parse_spec(text)?;
//! assert_eq!(print_spec(&spec), print_spec(&parse_spec(&print_spec(&spec))?));
//! let noc = instantiate(&spec)?;
//! assert_eq!(noc.name(), "demo");
//! # Ok(())
//! # }
//! ```

pub mod emit;
pub mod spec_text;

pub use spec_text::{parse_spec, print_spec, ParseSpecError};

use xpipes::noc::Noc;
use xpipes::XpipesError;
use xpipes_topology::spec::NocSpec;

/// Instantiates the simulation view: a runnable [`Noc`].
///
/// # Errors
///
/// Propagates specification validation and routing failures.
pub fn instantiate(spec: &NocSpec) -> Result<Noc, XpipesError> {
    Noc::new(spec)
}

/// Renders the routing tables (each initiator/target NI's LUT) as text.
///
/// # Errors
///
/// Propagates routing failures for disconnected specifications.
pub fn routing_report(spec: &NocSpec) -> Result<String, XpipesError> {
    use std::fmt::Write as _;
    let tables = spec.routing_tables()?;
    let mut out = String::new();
    let _ = writeln!(out, "# routing tables for '{}'", spec.name);
    let mut nis: Vec<_> = spec.topology.nis().to_vec();
    nis.sort_by_key(|a| a.ni);
    for att in &nis {
        let _ = writeln!(out, "lut {} ({} {})", att.name, att.ni, att.kind);
        let mut entries: Vec<_> = tables.lut_for(att.ni).collect();
        entries.sort_by_key(|(dst, _)| *dst);
        for (dst, route) in entries {
            let dst_name = spec
                .topology
                .ni(dst)
                .map(|a| a.name.as_str())
                .unwrap_or("?");
            let _ = writeln!(out, "  -> {dst_name} ({dst}): {route}");
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpipes_topology::builders::mesh;

    #[test]
    fn routing_report_lists_all_nis() {
        let mut b = mesh(2, 1).unwrap();
        b.attach_initiator("cpu", (0, 0)).unwrap();
        let mem = b.attach_target("mem", (1, 0)).unwrap();
        let mut spec = NocSpec::new("r", b.into_topology());
        spec.map_address(mem, 0, 64).unwrap();
        let report = routing_report(&spec).unwrap();
        assert!(report.contains("lut cpu"));
        assert!(report.contains("lut mem"));
        assert!(report.contains("-> mem"));
        assert!(report.contains("-> cpu"));
    }

    #[test]
    fn instantiate_runs() {
        let mut b = mesh(2, 1).unwrap();
        b.attach_initiator("cpu", (0, 0)).unwrap();
        let mem = b.attach_target("mem", (1, 0)).unwrap();
        let mut spec = NocSpec::new("sim", b.into_topology());
        spec.map_address(mem, 0, 64).unwrap();
        let mut noc = instantiate(&spec).unwrap();
        noc.run(10);
        assert_eq!(noc.now().as_u64(), 10);
    }
}
