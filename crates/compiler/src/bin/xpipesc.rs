//! `xpipesc` — the xpipesCompiler command-line tool.
//!
//! ```text
//! xpipesc <spec-file> [--verilog <out>] [--systemc <out>] [--routing]
//!         [--simulate <cycles>] [--check]
//! ```
//!
//! Reads a NoC specification in the xpipes text format, validates it, and
//! produces the requested artefacts:
//!
//! * `--check` — validate only (default when no other flag is given),
//! * `--routing` — print the routing tables (every NI's LUT),
//! * `--verilog <file>` — write the structural synthesis view,
//! * `--systemc <file>` — write the SystemC-style simulation view,
//! * `--simulate <cycles>` — instantiate the simulation view and run idle
//!   cycles as a smoke test, reporting statistics.

use std::path::PathBuf;
use std::process::ExitCode;

use xpipes_compiler::{emit, instantiate, parse_spec, routing_report};

#[derive(Debug)]
struct Args {
    spec_path: PathBuf,
    verilog: Option<PathBuf>,
    systemc: Option<PathBuf>,
    dot: Option<PathBuf>,
    routing: bool,
    simulate: Option<u64>,
    synthesize: Option<f64>,
}

fn usage() -> &'static str {
    "usage: xpipesc <spec-file> [--verilog <out>] [--systemc <out>] [--dot <out>] \
     [--routing] [--simulate <cycles>] [--synthesize <MHz>] [--check]"
}

fn parse_args(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let spec_path = argv.next().ok_or_else(|| usage().to_string())?;
    if spec_path.starts_with('-') {
        return Err(usage().to_string());
    }
    let mut args = Args {
        spec_path: PathBuf::from(spec_path),
        verilog: None,
        systemc: None,
        dot: None,
        routing: false,
        simulate: None,
        synthesize: None,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--verilog" => {
                args.verilog = Some(PathBuf::from(argv.next().ok_or("--verilog needs a path")?));
            }
            "--systemc" => {
                args.systemc = Some(PathBuf::from(argv.next().ok_or("--systemc needs a path")?));
            }
            "--dot" => {
                args.dot = Some(PathBuf::from(argv.next().ok_or("--dot needs a path")?));
            }
            "--routing" => args.routing = true,
            "--check" => {}
            "--simulate" => {
                let n = argv.next().ok_or("--simulate needs a cycle count")?;
                args.simulate = Some(n.parse().map_err(|_| format!("bad cycle count '{n}'"))?);
            }
            "--synthesize" => {
                let n = argv.next().ok_or("--synthesize needs a clock in MHz")?;
                args.synthesize = Some(n.parse().map_err(|_| format!("bad clock '{n}'"))?);
            }
            other => return Err(format!("unknown flag '{other}'\n{}", usage())),
        }
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), String> {
    let text = std::fs::read_to_string(&args.spec_path)
        .map_err(|e| format!("cannot read {}: {e}", args.spec_path.display()))?;
    let spec = parse_spec(&text).map_err(|e| format!("parse error: {e}"))?;
    spec.validate()
        .map_err(|e| format!("invalid specification: {e}"))?;
    eprintln!(
        "ok: '{}' — {} switches, {} NIs, {}-bit flits",
        spec.name,
        spec.topology.switch_count(),
        spec.topology.nis().len(),
        spec.flit_width
    );

    if args.routing {
        let report = routing_report(&spec).map_err(|e| format!("routing failed: {e}"))?;
        println!("{report}");
    }
    if let Some(path) = &args.verilog {
        std::fs::write(path, emit::verilog_top(&spec))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("wrote synthesis view to {}", path.display());
    }
    if let Some(path) = &args.systemc {
        std::fs::write(path, emit::systemc_top(&spec))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("wrote simulation view to {}", path.display());
    }
    if let Some(path) = &args.dot {
        std::fs::write(path, emit::dot(&spec))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("wrote topology graph to {}", path.display());
    }
    if let Some(target_mhz) = args.synthesize {
        synthesize_components(&spec, target_mhz)?;
    }
    if let Some(cycles) = args.simulate {
        let mut noc = instantiate(&spec).map_err(|e| format!("instantiation failed: {e}"))?;
        noc.run(cycles);
        let stats = noc.stats();
        println!(
            "simulated {} cycles: {} packets, {} flits routed, {} retransmissions",
            stats.cycles, stats.packets_delivered, stats.flits_routed, stats.retransmissions
        );
    }
    Ok(())
}

/// Prints a synthesis report per distinct component configuration in the
/// specification (the area/power library view of the design).
fn synthesize_components(spec: &xpipes_topology::NocSpec, target_mhz: f64) -> Result<(), String> {
    use xpipes::config::{NiConfig, SwitchConfig};
    use xpipes_synth::components::{initiator_ni_netlist, switch_netlist, target_ni_netlist};
    use xpipes_synth::report::{synthesize, synthesize_max_speed, SynthError};

    let synth = |netlist: &xpipes_synth::Netlist| match synthesize(netlist, target_mhz) {
        Ok(r) => Ok(r),
        Err(SynthError::TargetUnreachable { .. }) => {
            synthesize_max_speed(netlist).map_err(|e| e.to_string())
        }
        Err(e) => Err(e.to_string()),
    };
    let mut seen = std::collections::BTreeSet::new();
    println!("component synthesis @ {target_mhz:.0} MHz target:");
    for s in spec.topology.switches() {
        let radix = spec.topology.switch_degree(s).max(2);
        let depth = spec.queue_depth_of(s);
        if seen.insert((radix, depth)) {
            let mut cfg = SwitchConfig::new(radix, radix, spec.flit_width);
            cfg.output_queue_depth = depth as usize;
            let r = synth(&switch_netlist(&cfg))?;
            println!("  {r}");
        }
    }
    let ni = NiConfig::new(spec.flit_width);
    println!("  {}", synth(&initiator_ni_netlist(&ni))?);
    println!("  {}", synth(&target_ni_netlist(&ni))?);
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(v: &[&str]) -> std::vec::IntoIter<String> {
        v.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parses_full_flag_set() {
        let a = parse_args(argv(&[
            "x.noc",
            "--verilog",
            "o.v",
            "--systemc",
            "o.cpp",
            "--routing",
            "--simulate",
            "99",
        ]))
        .expect("valid");
        assert_eq!(a.spec_path, PathBuf::from("x.noc"));
        assert_eq!(a.verilog, Some(PathBuf::from("o.v")));
        assert_eq!(a.systemc, Some(PathBuf::from("o.cpp")));
        assert!(a.routing);
        assert_eq!(a.simulate, Some(99));
    }

    #[test]
    fn missing_spec_is_usage_error() {
        assert!(parse_args(argv(&[])).is_err());
        assert!(parse_args(argv(&["--routing"])).is_err());
    }

    #[test]
    fn unknown_flag_rejected() {
        let err = parse_args(argv(&["x.noc", "--bogus"])).unwrap_err();
        assert!(err.contains("unknown flag"));
    }

    #[test]
    fn bad_cycle_count_rejected() {
        assert!(parse_args(argv(&["x.noc", "--simulate", "abc"])).is_err());
        assert!(parse_args(argv(&["x.noc", "--simulate"])).is_err());
    }

    #[test]
    fn run_roundtrip_through_filesystem() {
        let dir = std::env::temp_dir().join("xpipesc_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let spec_path = dir.join("demo.noc");
        std::fs::write(
            &spec_path,
            "noc clidemo {\n  switch a\n  switch b\n  link a.0 <-> b.0\n  \
             initiator cpu @ a.1\n  target mem @ b.1 base 0x0 size 0x1000\n}\n",
        )
        .expect("write spec");
        let vpath = dir.join("out.v");
        let args = Args {
            spec_path,
            verilog: Some(vpath.clone()),
            systemc: None,
            dot: None,
            routing: true,
            simulate: Some(10),
            synthesize: Some(800.0),
        };
        run(&args).expect("compiles");
        let verilog = std::fs::read_to_string(&vpath).expect("emitted");
        assert!(verilog.contains("module clidemo_top"));
    }

    #[test]
    fn run_reports_parse_errors() {
        let dir = std::env::temp_dir().join("xpipesc_test_bad");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let spec_path = dir.join("bad.noc");
        std::fs::write(&spec_path, "noc x {\nbogus\n}").expect("write");
        let args = Args {
            spec_path,
            verilog: None,
            systemc: None,
            dot: None,
            routing: false,
            simulate: None,
            synthesize: None,
        };
        let err = run(&args).unwrap_err();
        assert!(err.contains("parse error"));
    }

    #[test]
    fn run_missing_file_errors() {
        let args = Args {
            spec_path: PathBuf::from("/nonexistent/xpipes.noc"),
            verilog: None,
            systemc: None,
            dot: None,
            routing: false,
            simulate: None,
            synthesize: None,
        };
        assert!(run(&args).unwrap_err().contains("cannot read"));
    }
}
