//! Code emission: the orthogonal synthesis and simulation views.
//!
//! * [`verilog_top`] — a structural Verilog top-level: one module per
//!   component class (parameterized like the xpipes class templates), one
//!   instance per topology element, wires per link. This is the
//!   *synthesis view* entry point.
//! * [`gate_level_verilog`] — a flattened gate-level Verilog netlist from
//!   a synthesis-estimation netlist (what the mapped design looks like).
//! * [`systemc_top`] — a SystemC-style module skeleton matching the
//!   original library's *simulation view*.

use std::fmt::Write as _;

use xpipes_synth::netlist::Netlist;
use xpipes_synth::CellKind;
use xpipes_topology::spec::NocSpec;
use xpipes_topology::NiKind;

/// Sanitises an identifier for HDL output.
fn ident(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        s.insert(0, 'u');
    }
    s
}

/// Emits the structural Verilog top-level (synthesis view).
pub fn verilog_top(spec: &NocSpec) -> String {
    let mut out = String::new();
    let w = spec.flit_width;
    let bus = w + 2;
    let _ = writeln!(out, "// xpipesCompiler synthesis view for '{}'", spec.name);
    let _ = writeln!(
        out,
        "// flit width {w}, {} switches, {} NIs",
        spec.topology.switch_count(),
        spec.topology.nis().len()
    );
    let _ = writeln!(out);

    // Component class templates.
    let _ = writeln!(
        out,
        "module xpipes_switch #(parameter NIN = 4, NOUT = 4, FLIT_W = {w}, QDEPTH = {}) (",
        spec.output_queue_depth
    );
    let _ = writeln!(out, "  input  wire clk, rst_n,");
    let _ = writeln!(out, "  input  wire [NIN*{bus}-1:0]  in_flit,");
    let _ = writeln!(out, "  input  wire [NIN-1:0]        in_valid,");
    let _ = writeln!(out, "  output wire [NIN-1:0]        in_ack,");
    let _ = writeln!(out, "  output wire [NOUT*{bus}-1:0] out_flit,");
    let _ = writeln!(out, "  output wire [NOUT-1:0]       out_valid,");
    let _ = writeln!(out, "  input  wire [NOUT-1:0]       out_ack");
    let _ = writeln!(out, ");");
    let _ = writeln!(out, "endmodule");
    let _ = writeln!(out);
    for kind in ["initiator", "target"] {
        let _ = writeln!(out, "module xpipes_ni_{kind} #(parameter FLIT_W = {w}) (");
        let _ = writeln!(out, "  input  wire clk, rst_n,");
        let _ = writeln!(out, "  output wire [{bus}-1:0] tx_flit,");
        let _ = writeln!(out, "  output wire            tx_valid,");
        let _ = writeln!(out, "  input  wire            tx_ack,");
        let _ = writeln!(out, "  input  wire [{bus}-1:0] rx_flit,");
        let _ = writeln!(out, "  input  wire            rx_valid,");
        let _ = writeln!(out, "  output wire            rx_ack");
        let _ = writeln!(out, ");");
        let _ = writeln!(out, "endmodule");
        let _ = writeln!(out);
    }

    // Top level.
    let _ = writeln!(
        out,
        "module {}_top (input wire clk, input wire rst_n);",
        ident(&spec.name)
    );
    // Wires per directed channel.
    for (i, l) in spec.topology.links().iter().enumerate() {
        let _ = writeln!(
            out,
            "  wire [{bus}-1:0] w{i}_flit; wire w{i}_valid, w{i}_ack; // {}p{} -> {}p{} ({} stages)",
            spec.topology.switch_name(l.from).unwrap_or("?"),
            l.from_port.0,
            spec.topology.switch_name(l.to).unwrap_or("?"),
            l.to_port.0,
            l.pipeline_stages,
        );
    }
    for ni in spec.topology.nis() {
        let n = ident(&ni.name);
        let _ = writeln!(out, "  wire [{bus}-1:0] {n}_tx_flit, {n}_rx_flit;");
        let _ = writeln!(
            out,
            "  wire {n}_tx_valid, {n}_tx_ack, {n}_rx_valid, {n}_rx_ack;"
        );
    }
    // Switch instances.
    for s in spec.topology.switches() {
        let deg = spec.topology.switch_degree(s);
        let name = ident(spec.topology.switch_name(s).unwrap_or("sw"));
        let _ = writeln!(
            out,
            "  xpipes_switch #(.NIN({deg}), .NOUT({deg}), .FLIT_W({w})) {name} (.clk(clk), .rst_n(rst_n));"
        );
    }
    // NI instances.
    for ni in spec.topology.nis() {
        let kind = match ni.kind {
            NiKind::Initiator => "initiator",
            NiKind::Target => "target",
        };
        let n = ident(&ni.name);
        let _ = writeln!(
            out,
            "  xpipes_ni_{kind} #(.FLIT_W({w})) {n} (.clk(clk), .rst_n(rst_n), .tx_flit({n}_tx_flit), .tx_valid({n}_tx_valid), .tx_ack({n}_tx_ack), .rx_flit({n}_rx_flit), .rx_valid({n}_rx_valid), .rx_ack({n}_rx_ack));"
        );
    }
    let _ = writeln!(out, "endmodule");
    out
}

/// Emits a SystemC-style simulation view skeleton.
pub fn systemc_top(spec: &NocSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// xpipesCompiler simulation view for '{}'", spec.name);
    let _ = writeln!(out, "#include <systemc.h>");
    let _ = writeln!(out, "#include \"xpipes.h\"");
    let _ = writeln!(out);
    let _ = writeln!(out, "int sc_main(int, char**) {{");
    let _ = writeln!(out, "  sc_clock clk(\"clk\", 1, SC_NS);");
    for s in spec.topology.switches() {
        let deg = spec.topology.switch_degree(s);
        let name = ident(spec.topology.switch_name(s).unwrap_or("sw"));
        let _ = writeln!(
            out,
            "  xpipes_switch<{deg}, {deg}, {}> {name}(\"{name}\");",
            spec.flit_width
        );
    }
    for ni in spec.topology.nis() {
        let class = match ni.kind {
            NiKind::Initiator => "xpipes_ni_initiator",
            NiKind::Target => "xpipes_ni_target",
        };
        let n = ident(&ni.name);
        let _ = writeln!(out, "  {class}<{}> {n}(\"{n}\");", spec.flit_width);
    }
    for (i, l) in spec.topology.links().iter().enumerate() {
        let _ = writeln!(
            out,
            "  xpipes_link<{}> link{i}(\"link{i}\"); // {} -> {}",
            l.pipeline_stages,
            spec.topology.switch_name(l.from).unwrap_or("?"),
            spec.topology.switch_name(l.to).unwrap_or("?"),
        );
    }
    let _ = writeln!(out, "  sc_start();");
    let _ = writeln!(out, "  return 0;");
    let _ = writeln!(out, "}}");
    out
}

/// Emits a Graphviz DOT rendering of the topology: switches as boxes,
/// NIs as ellipses (initiators filled), one edge per bidirectional link
/// labelled with its pipeline depth.
pub fn dot(spec: &NocSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {} {{", ident(&spec.name));
    let _ = writeln!(out, "  node [fontname=\"monospace\"];");
    for s in spec.topology.switches() {
        let name = ident(spec.topology.switch_name(s).unwrap_or("sw"));
        let _ = writeln!(out, "  {name} [shape=box];");
    }
    for ni in spec.topology.nis() {
        let n = ident(&ni.name);
        let style = match ni.kind {
            NiKind::Initiator => "style=filled, fillcolor=lightgray",
            NiKind::Target => "style=solid",
        };
        let _ = writeln!(out, "  {n} [shape=ellipse, {style}];");
        let sw = ident(spec.topology.switch_name(ni.switch).unwrap_or("sw"));
        let _ = writeln!(out, "  {n} -- {sw};");
    }
    // One edge per bidirectional pair.
    let mut seen = std::collections::HashSet::new();
    for l in spec.topology.links() {
        let key = if (l.from, l.from_port) <= (l.to, l.to_port) {
            (l.from, l.from_port, l.to, l.to_port)
        } else {
            (l.to, l.to_port, l.from, l.from_port)
        };
        if !seen.insert(key) {
            continue;
        }
        let a = ident(spec.topology.switch_name(key.0).unwrap_or("sw"));
        let b = ident(spec.topology.switch_name(key.2).unwrap_or("sw"));
        let _ = writeln!(out, "  {a} -- {b} [label=\"{}\"];", l.pipeline_stages);
    }
    let _ = writeln!(out, "}}");
    out
}

/// Emits flattened gate-level Verilog from a synthesis netlist.
pub fn gate_level_verilog(netlist: &Netlist) -> String {
    let mut out = String::new();
    let name = ident(netlist.name());
    let _ = writeln!(out, "// gate-level netlist: {netlist}");
    let _ = writeln!(out, "module {name} (input wire clk);");
    let _ = writeln!(
        out,
        "  wire [{}:0] n; // net bundle",
        netlist.net_count().saturating_sub(1)
    );
    for (i, g) in netlist.gates().iter().enumerate() {
        let ins: Vec<String> = g.inputs.iter().map(|n| format!("n[{}]", n.0)).collect();
        let o = format!("n[{}]", g.output.0);
        let line = match g.cell {
            CellKind::Inv => format!("INV_X{} g{i} (.A({}), .ZN({o}));", g.size, ins[0]),
            CellKind::Nand2 => {
                format!(
                    "NAND2_X{} g{i} (.A1({}), .A2({}), .ZN({o}));",
                    g.size, ins[0], ins[1]
                )
            }
            CellKind::Nor2 => {
                format!(
                    "NOR2_X{} g{i} (.A1({}), .A2({}), .ZN({o}));",
                    g.size, ins[0], ins[1]
                )
            }
            CellKind::Xor2 => {
                format!(
                    "XOR2_X{} g{i} (.A({}), .B({}), .Z({o}));",
                    g.size, ins[0], ins[1]
                )
            }
            CellKind::Mux2 => format!(
                "MUX2_X{} g{i} (.S({}), .A({}), .B({}), .Z({o}));",
                g.size, ins[0], ins[1], ins[2]
            ),
            CellKind::Aoi22 => format!(
                "AOI22_X{} g{i} (.A1({}), .A2({}), .B1({}), .B2({}), .ZN({o}));",
                g.size, ins[0], ins[1], ins[2], ins[3]
            ),
            CellKind::Dff => {
                format!("DFF_X{} g{i} (.CK(clk), .D({}), .Q({o}));", g.size, ins[0])
            }
        };
        let _ = writeln!(out, "  {line}");
    }
    let _ = writeln!(out, "endmodule");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpipes::config::SwitchConfig;
    use xpipes_synth::components::switch_netlist;
    use xpipes_topology::builders::mesh;

    fn demo_spec() -> NocSpec {
        let mut b = mesh(2, 1).unwrap();
        b.attach_initiator("cpu", (0, 0)).unwrap();
        let mem = b.attach_target("mem", (1, 0)).unwrap();
        let mut spec = NocSpec::new("demo", b.into_topology());
        spec.map_address(mem, 0, 64).unwrap();
        spec
    }

    #[test]
    fn verilog_contains_all_instances() {
        let v = verilog_top(&demo_spec());
        assert!(v.contains("module xpipes_switch"));
        assert!(v.contains("module demo_top"));
        assert!(v.contains("xpipes_ni_initiator #(.FLIT_W(32)) cpu"));
        assert!(v.contains("xpipes_ni_target #(.FLIT_W(32)) mem"));
        // Two switches instantiated (indented lines; the module
        // declaration itself does not count).
        assert_eq!(v.matches("  xpipes_switch #(").count(), 2);
        // Balanced module/endmodule.
        assert_eq!(v.matches("module ").count(), v.matches("endmodule").count());
    }

    #[test]
    fn systemc_view_mirrors_structure() {
        let s = systemc_top(&demo_spec());
        assert!(s.contains("sc_main"));
        assert!(s.contains("xpipes_ni_initiator<32> cpu"));
        assert!(s.contains("xpipes_link<1> link0"));
    }

    #[test]
    fn gate_level_instantiates_every_gate() {
        let n = switch_netlist(&SwitchConfig::new(2, 2, 16));
        let v = gate_level_verilog(&n);
        // One instance line per gate.
        let instances = v.matches(" g").count();
        assert!(instances >= n.gate_count());
        assert!(v.contains("DFF_X1"));
        assert!(v.contains("endmodule"));
    }

    #[test]
    fn dot_renders_graph() {
        let spec = demo_spec();
        let d = dot(&spec);
        assert!(d.starts_with("graph demo {"));
        assert!(d.contains("[shape=box]"));
        assert!(d.contains("cpu [shape=ellipse, style=filled"));
        assert!(d.contains("mem [shape=ellipse, style=solid"));
        // 2 switches, one bidi pair → exactly one switch-switch edge.
        let switch_edges = d
            .lines()
            .filter(|l| l.contains("--") && l.contains("label="))
            .count();
        assert_eq!(switch_edges, 1);
        assert!(d.trim_end().ends_with('}'));
    }

    #[test]
    fn identifiers_sanitised() {
        assert_eq!(ident("cpu#i"), "cpu_i");
        assert_eq!(ident("3com"), "u3com");
        assert_eq!(ident("ok_name"), "ok_name");
    }

    #[test]
    fn views_are_deterministic() {
        let spec = demo_spec();
        assert_eq!(verilog_top(&spec), verilog_top(&spec));
        assert_eq!(systemc_top(&spec), systemc_top(&spec));
    }
}
