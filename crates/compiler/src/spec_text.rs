//! The NoC specification text format: parser and printer.
//!
//! Grammar (line oriented; `#` starts a comment):
//!
//! ```text
//! noc <name> {
//!   flit_width <bits>
//!   arbitration rr|fixed
//!   queue_depth <flits>
//!   error_rate <p>
//!   topology mesh|torus <cols> <rows>   # template instantiation
//!   topology ring <n>
//!   switch <name>
//!   link <sw>.<port> <-> <sw>.<port> [stages <n>]
//!   initiator <name> @ <sw>.<port>
//!   initiator <name> @ (x,y)            # grid coordinate, auto port
//!   target <name> @ <sw>.<port> base <addr> size <bytes>
//!   target <name> @ (x,y) base <addr> size <bytes>
//! }
//! ```
//!
//! The `topology` directive performs the xpipesCompiler's hierarchical
//! template instantiation: it expands a whole regular fabric (switches
//! named `sw_<x>_<y>` for grids, `ring<i>` for rings) that later
//! directives refer to — by name/port, or by `(x,y)` coordinate with
//! automatic port assignment on grids.
//!
//! Numbers accept decimal or `0x` hexadecimal. [`print_spec`] renders a
//! specification back into the fully expanded format; `parse(print(s))`
//! is identical to `parse`'s normalisation of `s`.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use xpipes_topology::spec::{Arbitration, NocSpec};
use xpipes_topology::{NiKind, PortId, SwitchId, Topology};

/// Parse errors with line information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseSpecError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl ParseSpecError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseSpecError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseSpecError {}

fn parse_number(tok: &str, line: usize) -> Result<u64, ParseSpecError> {
    let parsed = if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        tok.parse()
    };
    parsed.map_err(|_| ParseSpecError::new(line, format!("bad number '{tok}'")))
}

fn parse_port_ref(
    tok: &str,
    switches: &HashMap<String, SwitchId>,
    line: usize,
) -> Result<(SwitchId, PortId), ParseSpecError> {
    let (sw, port) = tok.rsplit_once('.').ok_or_else(|| {
        ParseSpecError::new(line, format!("expected <switch>.<port>, got '{tok}'"))
    })?;
    let id = switches
        .get(sw)
        .copied()
        .ok_or_else(|| ParseSpecError::new(line, format!("unknown switch '{sw}'")))?;
    let p: u8 = port
        .parse()
        .map_err(|_| ParseSpecError::new(line, format!("bad port '{port}'")))?;
    Ok((id, PortId(p)))
}

/// Parses a `(x,y)` grid coordinate token.
fn parse_coord(tok: &str) -> Option<(usize, usize)> {
    let inner = tok.strip_prefix('(')?.strip_suffix(')')?;
    let (x, y) = inner.split_once(',')?;
    Some((x.trim().parse().ok()?, y.trim().parse().ok()?))
}

/// Parses the specification text format.
///
/// # Errors
///
/// [`ParseSpecError`] with the offending line on any syntax or semantic
/// problem (duplicate switches, unknown references, port conflicts).
pub fn parse_spec(text: &str) -> Result<NocSpec, ParseSpecError> {
    let mut name: Option<String> = None;
    let mut topo = Topology::new();
    let mut switches: HashMap<String, SwitchId> = HashMap::new();
    // Grid dimensions when a mesh/torus template was instantiated.
    let mut grid_dims: Option<(usize, usize)> = None;
    let mut flit_width = NocSpec::DEFAULT_FLIT_WIDTH;
    let mut arbitration = Arbitration::RoundRobin;
    let mut queue_depth = NocSpec::DEFAULT_QUEUE_DEPTH;
    let mut error_rate = 0.0f64;
    // Address windows deferred until the topology is complete.
    let mut windows: Vec<(String, u64, u64, usize)> = Vec::new();
    let mut closed = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let code = raw.split('#').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        if closed {
            return Err(ParseSpecError::new(line, "content after closing '}'"));
        }
        let toks: Vec<&str> = code.split_whitespace().collect();
        match toks[0] {
            "noc" => {
                if toks.len() < 3 || toks[2] != "{" {
                    return Err(ParseSpecError::new(line, "expected: noc <name> {"));
                }
                if name.is_some() {
                    return Err(ParseSpecError::new(line, "duplicate 'noc' header"));
                }
                name = Some(toks[1].to_string());
            }
            "}" => {
                closed = true;
            }
            "flit_width" if toks.len() == 2 => {
                flit_width = parse_number(toks[1], line)? as u32;
            }
            "queue_depth" if toks.len() == 2 => {
                queue_depth = parse_number(toks[1], line)? as u32;
            }
            "error_rate" if toks.len() == 2 => {
                error_rate = toks[1]
                    .parse()
                    .map_err(|_| ParseSpecError::new(line, "bad error rate"))?;
            }
            "arbitration" if toks.len() == 2 => {
                arbitration = match toks[1] {
                    "rr" | "round-robin" => Arbitration::RoundRobin,
                    "fixed" => Arbitration::Fixed,
                    other => {
                        return Err(ParseSpecError::new(
                            line,
                            format!("unknown arbitration '{other}'"),
                        ))
                    }
                };
            }
            "topology" if toks.len() >= 3 => {
                if !switches.is_empty() {
                    return Err(ParseSpecError::new(
                        line,
                        "topology template must precede explicit switches",
                    ));
                }
                let built = match (toks[1], toks.len()) {
                    ("mesh", 4) | ("torus", 4) => {
                        let cols = parse_number(toks[2], line)? as usize;
                        let rows = parse_number(toks[3], line)? as usize;
                        grid_dims = Some((cols, rows));
                        let b = if toks[1] == "mesh" {
                            xpipes_topology::builders::mesh(cols, rows)
                        } else {
                            xpipes_topology::builders::torus(cols, rows)
                        };
                        b.map(xpipes_topology::builders::GridBuilder::into_topology)
                    }
                    ("ring", 3) => {
                        let n = parse_number(toks[2], line)? as usize;
                        xpipes_topology::builders::ring(n)
                    }
                    (other, _) => {
                        return Err(ParseSpecError::new(
                            line,
                            format!("unknown topology template '{other}'"),
                        ))
                    }
                };
                topo = built.map_err(|e| ParseSpecError::new(line, e.to_string()))?;
                for s in topo.switches() {
                    let n = topo.switch_name(s).unwrap_or_default().to_string();
                    switches.insert(n, s);
                }
            }
            "switch" if toks.len() == 2 => {
                let sw_name = toks[1].to_string();
                if switches.contains_key(&sw_name) {
                    return Err(ParseSpecError::new(
                        line,
                        format!("duplicate switch '{sw_name}'"),
                    ));
                }
                let id = topo.add_switch(sw_name.clone());
                switches.insert(sw_name, id);
            }
            "link" if toks.len() >= 4 && toks[2] == "<->" => {
                let (a, ap) = parse_port_ref(toks[1], &switches, line)?;
                let (b, bp) = parse_port_ref(toks[3], &switches, line)?;
                let stages = if toks.len() >= 6 && toks[4] == "stages" {
                    parse_number(toks[5], line)? as u32
                } else {
                    1
                };
                topo.add_bidi_link(a, ap, b, bp, stages)
                    .map_err(|e| ParseSpecError::new(line, e.to_string()))?;
            }
            "initiator" | "target" if toks.len() >= 4 && toks[2] == "@" => {
                let kind = if toks[0] == "initiator" {
                    NiKind::Initiator
                } else {
                    NiKind::Target
                };
                let ni = if let Some((x, y)) = parse_coord(toks[3]) {
                    let (cols, rows) = grid_dims.ok_or_else(|| {
                        ParseSpecError::new(
                            line,
                            "coordinate attach requires a mesh/torus topology template",
                        )
                    })?;
                    if x >= cols || y >= rows {
                        return Err(ParseSpecError::new(
                            line,
                            format!("coordinate ({x},{y}) outside the {cols}x{rows} grid"),
                        ));
                    }
                    let sw = switches[&format!("sw_{x}_{y}")];
                    topo.attach_ni_auto(toks[1], kind, sw)
                        .map_err(|e| ParseSpecError::new(line, e.to_string()))?
                } else {
                    let (sw, port) = parse_port_ref(toks[3], &switches, line)?;
                    topo.attach_ni(toks[1], kind, sw, port)
                        .map_err(|e| ParseSpecError::new(line, e.to_string()))?
                };
                if kind == NiKind::Target {
                    if toks.len() != 8 || toks[4] != "base" || toks[6] != "size" {
                        return Err(ParseSpecError::new(
                            line,
                            "target needs: base <addr> size <bytes>",
                        ));
                    }
                    let base = parse_number(toks[5], line)?;
                    let size = parse_number(toks[7], line)?;
                    windows.push((toks[1].to_string(), base, size, ni.0));
                }
            }
            other => {
                return Err(ParseSpecError::new(
                    line,
                    format!("unrecognised directive '{other}'"),
                ));
            }
        }
    }

    let name = name.ok_or_else(|| ParseSpecError::new(1, "missing 'noc <name> {' header"))?;
    if !closed {
        return Err(ParseSpecError::new(
            text.lines().count(),
            "missing closing '}'",
        ));
    }
    let mut spec = NocSpec::new(name, topo);
    spec.flit_width = flit_width;
    spec.arbitration = arbitration;
    spec.output_queue_depth = queue_depth;
    spec.link_error_rate = error_rate;
    for (ni_name, base, size, ni_idx) in windows {
        spec.map_address(xpipes_topology::NiId(ni_idx), base, size)
            .map_err(|e| ParseSpecError::new(0, format!("address window of '{ni_name}': {e}")))?;
    }
    Ok(spec)
}

/// Renders a specification in the text format (round-trip stable with
/// [`parse_spec`]).
pub fn print_spec(spec: &NocSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "noc {} {{", spec.name);
    let _ = writeln!(out, "  flit_width {}", spec.flit_width);
    let arb = match spec.arbitration {
        Arbitration::RoundRobin => "rr",
        Arbitration::Fixed => "fixed",
    };
    let _ = writeln!(out, "  arbitration {arb}");
    let _ = writeln!(out, "  queue_depth {}", spec.output_queue_depth);
    let _ = writeln!(out, "  error_rate {}", spec.link_error_rate);
    for s in spec.topology.switches() {
        let _ = writeln!(
            out,
            "  switch {}",
            spec.topology.switch_name(s).unwrap_or("?")
        );
    }
    // Print each bidirectional pair once (canonical direction: the edge
    // whose (from, port) is lexicographically smallest).
    let mut seen = std::collections::HashSet::new();
    for l in spec.topology.links() {
        let key = if (l.from, l.from_port) <= (l.to, l.to_port) {
            (l.from, l.from_port, l.to, l.to_port)
        } else {
            (l.to, l.to_port, l.from, l.from_port)
        };
        if !seen.insert(key) {
            continue;
        }
        let _ = writeln!(
            out,
            "  link {}.{} <-> {}.{} stages {}",
            spec.topology.switch_name(key.0).unwrap_or("?"),
            key.1 .0,
            spec.topology.switch_name(key.2).unwrap_or("?"),
            key.3 .0,
            l.pipeline_stages
        );
    }
    for ni in spec.topology.nis() {
        let sw = spec.topology.switch_name(ni.switch).unwrap_or("?");
        match ni.kind {
            NiKind::Initiator => {
                let _ = writeln!(out, "  initiator {} @ {}.{}", ni.name, sw, ni.port.0);
            }
            NiKind::Target => {
                let (base, size) = spec
                    .range_of(ni.ni)
                    .map(|r| (r.base, r.size))
                    .unwrap_or((0, 0));
                let _ = writeln!(
                    out,
                    "  target {} @ {}.{} base 0x{base:x} size 0x{size:x}",
                    ni.name, sw, ni.port.0
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "
# demo network
noc demo {
  flit_width 64
  arbitration fixed
  queue_depth 4
  error_rate 0.01
  switch s0
  switch s1
  link s0.0 <-> s1.0 stages 2
  initiator cpu @ s0.1
  target mem @ s1.1 base 0x1000 size 0x1000
}";

    #[test]
    fn parses_all_fields() {
        let spec = parse_spec(DEMO).unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.flit_width, 64);
        assert_eq!(spec.arbitration, Arbitration::Fixed);
        assert_eq!(spec.output_queue_depth, 4);
        assert_eq!(spec.link_error_rate, 0.01);
        assert_eq!(spec.topology.switch_count(), 2);
        assert_eq!(spec.topology.links().len(), 2);
        assert_eq!(spec.topology.nis().len(), 2);
        assert_eq!(spec.decode_address(0x1800), Some(xpipes_topology::NiId(1)));
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn round_trip_is_stable() {
        let spec = parse_spec(DEMO).unwrap();
        let printed = print_spec(&spec);
        let reparsed = parse_spec(&printed).unwrap();
        assert_eq!(print_spec(&reparsed), printed);
    }

    #[test]
    fn hex_and_decimal_numbers() {
        assert_eq!(parse_number("0x10", 1).unwrap(), 16);
        assert_eq!(parse_number("10", 1).unwrap(), 10);
        assert!(parse_number("zz", 1).is_err());
    }

    #[test]
    fn missing_header_rejected() {
        let err = parse_spec("switch s0\n}").unwrap_err();
        assert!(err.message.contains("unrecognised") || err.message.contains("header"));
    }

    #[test]
    fn missing_close_rejected() {
        let err = parse_spec("noc x {\n switch s0\n").unwrap_err();
        assert!(err.message.contains("closing"));
    }

    #[test]
    fn duplicate_switch_rejected() {
        let err = parse_spec("noc x {\nswitch a\nswitch a\n}").unwrap_err();
        assert!(err.message.contains("duplicate switch"));
        assert_eq!(err.line, 3);
    }

    #[test]
    fn unknown_switch_in_link_rejected() {
        let err = parse_spec("noc x {\nswitch a\nlink a.0 <-> b.0\n}").unwrap_err();
        assert!(err.message.contains("unknown switch 'b'"));
    }

    #[test]
    fn target_without_window_rejected() {
        let err = parse_spec("noc x {\nswitch a\ntarget m @ a.0\n}").unwrap_err();
        assert!(err.message.contains("base"));
    }

    #[test]
    fn port_conflict_reported_with_line() {
        let err =
            parse_spec("noc x {\nswitch a\ninitiator c @ a.0\ninitiator d @ a.0\n}").unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.message.contains("connected twice") || err.message.contains("port"));
    }

    #[test]
    fn default_stages_is_one() {
        let spec = parse_spec("noc x {\nswitch a\nswitch b\nlink a.0 <-> b.0\n}").unwrap();
        assert_eq!(spec.topology.links()[0].pipeline_stages, 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let spec = parse_spec("\n# hi\nnoc x { # open\nswitch a # sw\n}\n").unwrap();
        assert_eq!(spec.topology.switch_count(), 1);
    }

    #[test]
    fn error_display_carries_line() {
        let err = parse_spec("noc x {\nbogus\n}").unwrap_err();
        assert_eq!(err.to_string(), "line 2: unrecognised directive 'bogus'");
    }

    const TEMPLATED: &str = "
noc grid {
  flit_width 32
  topology mesh 3 2
  initiator cpu @ (0,0)
  target mem @ (2,1) base 0x0 size 0x1000
}";

    #[test]
    fn topology_template_expands_mesh() {
        let spec = parse_spec(TEMPLATED).unwrap();
        assert_eq!(spec.topology.switch_count(), 6);
        assert!(spec.topology.ni_by_name("cpu").is_some());
        assert!(spec.validate().is_ok());
        // Expanded form round-trips through the printer.
        let printed = print_spec(&spec);
        let reparsed = parse_spec(&printed).unwrap();
        assert_eq!(print_spec(&reparsed), printed);
    }

    #[test]
    fn topology_template_ring() {
        let spec = parse_spec(
            "noc r {\n topology ring 5\n initiator c @ ring0.2\n target m @ ring3.2 base 0 size 64\n}",
        )
        .unwrap();
        assert_eq!(spec.topology.switch_count(), 5);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn coordinate_attach_requires_grid() {
        let err = parse_spec("noc x {\n switch a\n initiator c @ (0,0)\n}").unwrap_err();
        assert!(err.message.contains("requires a mesh/torus"));
    }

    #[test]
    fn coordinate_out_of_grid_rejected() {
        let err = parse_spec("noc x {\n topology mesh 2 2\n initiator c @ (5,0)\n}").unwrap_err();
        assert!(err.message.contains("outside the 2x2 grid"));
    }

    #[test]
    fn template_after_switch_rejected() {
        let err = parse_spec("noc x {\n switch a\n topology mesh 2 2\n}").unwrap_err();
        assert!(err.message.contains("must precede"));
    }

    #[test]
    fn unknown_template_rejected() {
        let err = parse_spec("noc x {\n topology donut 3 3\n}").unwrap_err();
        assert!(err.message.contains("unknown topology template"));
    }

    #[test]
    fn coord_parsing() {
        assert_eq!(parse_coord("(1,2)"), Some((1, 2)));
        assert_eq!(parse_coord("( 3 , 4 )"), Some((3, 4)));
        assert_eq!(parse_coord("1,2"), None);
        assert_eq!(parse_coord("(x,2)"), None);
    }
}
