//! The NoC specification: everything the xpipesCompiler needs to
//! instantiate a network.
//!
//! A [`NocSpec`] bundles the topology with the component parameters the
//! paper exposes (flit width, arbitration policy, buffer sizing, link
//! reliability) and the system address map that programs the initiator
//! NI LUTs.

use std::error::Error;
use std::fmt;

use crate::graph::{NiId, NiKind, SwitchId, Topology, TopologyError};
use crate::route::RoutingTables;

/// Switch arbitration policy (paper: "Arbitration: Fixed / RR").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Arbitration {
    /// Fixed priority: lower input port index always wins.
    Fixed,
    /// Round-robin rotating priority.
    #[default]
    RoundRobin,
}

impl fmt::Display for Arbitration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Arbitration::Fixed => "fixed",
            Arbitration::RoundRobin => "round-robin",
        })
    }
}

/// An address window owned by one target NI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressRange {
    /// Owning target NI.
    pub ni: NiId,
    /// Base address (inclusive).
    pub base: u64,
    /// Window size in bytes.
    pub size: u64,
}

impl AddressRange {
    /// True if `addr` falls inside the window.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr - self.base < self.size
    }

    /// True if the two windows share any address.
    pub fn overlaps(&self, other: &AddressRange) -> bool {
        self.base < other.base.saturating_add(other.size)
            && other.base < self.base.saturating_add(self.size)
    }
}

/// Errors from NoC specification validation.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// Flit width outside the supported range.
    BadFlitWidth(u32),
    /// Output queue depth must be at least 2 flits for full throughput.
    BadQueueDepth(u32),
    /// A target NI has no address window.
    UnmappedTarget(NiId),
    /// An address window belongs to a non-target NI.
    RangeOnNonTarget(NiId),
    /// Two address windows overlap.
    OverlappingRanges(NiId, NiId),
    /// An address window has zero size.
    EmptyRange(NiId),
    /// Underlying topology problem.
    Topology(TopologyError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::BadFlitWidth(w) => {
                write!(f, "flit width {w} outside supported range 8..=128")
            }
            SpecError::BadQueueDepth(d) => write!(f, "output queue depth {d} below minimum 2"),
            SpecError::UnmappedTarget(ni) => write!(f, "target {ni} has no address window"),
            SpecError::RangeOnNonTarget(ni) => {
                write!(f, "address window assigned to non-target {ni}")
            }
            SpecError::OverlappingRanges(a, b) => {
                write!(f, "address windows of {a} and {b} overlap")
            }
            SpecError::EmptyRange(ni) => write!(f, "address window of {ni} is empty"),
            SpecError::Topology(e) => write!(f, "topology error: {e}"),
        }
    }
}

impl Error for SpecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpecError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopologyError> for SpecError {
    fn from(e: TopologyError) -> Self {
        SpecError::Topology(e)
    }
}

/// A complete NoC specification: topology + component parameters +
/// address map. This is the xpipesCompiler's input.
///
/// # Examples
///
/// ```
/// use xpipes_topology::builders::mesh;
/// use xpipes_topology::NocSpec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = mesh(2, 2)?;
/// b.attach_initiator("cpu", (0, 0))?;
/// let mem = b.attach_target("mem", (1, 1))?;
/// let mut spec = NocSpec::new("demo", b.into_topology());
/// spec.map_address(mem, 0x0, 0x1000)?;
/// spec.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NocSpec {
    /// Design name (used in emitted files).
    pub name: String,
    /// Flit width in bits (paper sweeps 16–128).
    pub flit_width: u32,
    /// Switch arbitration policy.
    pub arbitration: Arbitration,
    /// Output queue depth in flits.
    pub output_queue_depth: u32,
    /// Flit error probability per link traversal (ACK/nACK exercises it).
    pub link_error_rate: f64,
    /// Extra switch input-pipeline stages. 0 instantiates the 2-stage
    /// xpipes Lite switch; 5 models the first-generation 7-stage switch
    /// the paper compares against.
    pub extra_switch_stages: u32,
    /// The network graph.
    pub topology: Topology,
    /// Target address windows.
    pub address_map: Vec<AddressRange>,
    /// Per-switch output-queue depth overrides (the xpipesCompiler's
    /// "Component Optimizations: Buffer Sizes").
    pub queue_depth_overrides: std::collections::HashMap<SwitchId, u32>,
}

impl NocSpec {
    /// Default flit width used by the paper's headline results.
    pub const DEFAULT_FLIT_WIDTH: u32 = 32;
    /// Default output-queue depth in flits.
    pub const DEFAULT_QUEUE_DEPTH: u32 = 6;

    /// Creates a specification with paper-default parameters.
    pub fn new(name: impl Into<String>, topology: Topology) -> Self {
        NocSpec {
            name: name.into(),
            flit_width: Self::DEFAULT_FLIT_WIDTH,
            arbitration: Arbitration::RoundRobin,
            output_queue_depth: Self::DEFAULT_QUEUE_DEPTH,
            link_error_rate: 0.0,
            extra_switch_stages: 0,
            topology,
            address_map: Vec::new(),
            queue_depth_overrides: std::collections::HashMap::new(),
        }
    }

    /// Overrides the output-queue depth of one switch.
    ///
    /// # Errors
    ///
    /// Rejects unknown switches and depths below 2 flits.
    pub fn set_queue_depth(&mut self, switch: SwitchId, depth: u32) -> Result<(), SpecError> {
        if switch.0 >= self.topology.switch_count() {
            return Err(SpecError::Topology(TopologyError::UnknownSwitch(switch)));
        }
        if depth < 2 {
            return Err(SpecError::BadQueueDepth(depth));
        }
        self.queue_depth_overrides.insert(switch, depth);
        Ok(())
    }

    /// The effective output-queue depth of a switch (override or global).
    pub fn queue_depth_of(&self, switch: SwitchId) -> u32 {
        self.queue_depth_overrides
            .get(&switch)
            .copied()
            .unwrap_or(self.output_queue_depth)
    }

    /// Assigns an address window to a target NI.
    ///
    /// # Errors
    ///
    /// Rejects unknown NIs, windows on non-targets, empty windows and
    /// overlaps with existing windows.
    pub fn map_address(&mut self, ni: NiId, base: u64, size: u64) -> Result<(), SpecError> {
        let att = self
            .topology
            .ni(ni)
            .ok_or(SpecError::Topology(TopologyError::UnknownNi(ni)))?;
        if att.kind != NiKind::Target {
            return Err(SpecError::RangeOnNonTarget(ni));
        }
        if size == 0 {
            return Err(SpecError::EmptyRange(ni));
        }
        let range = AddressRange { ni, base, size };
        for existing in &self.address_map {
            if existing.overlaps(&range) {
                return Err(SpecError::OverlappingRanges(existing.ni, ni));
            }
        }
        self.address_map.push(range);
        Ok(())
    }

    /// Target NI owning `addr`, if mapped (the NI LUT decode).
    pub fn decode_address(&self, addr: u64) -> Option<NiId> {
        self.address_map
            .iter()
            .find(|r| r.contains(addr))
            .map(|r| r.ni)
    }

    /// Address window of a target NI.
    pub fn range_of(&self, ni: NiId) -> Option<&AddressRange> {
        self.address_map.iter().find(|r| r.ni == ni)
    }

    /// Full validation: parameters, topology connectivity, routability and
    /// address-map consistency.
    ///
    /// # Errors
    ///
    /// The first problem found, see [`SpecError`].
    pub fn validate(&self) -> Result<(), SpecError> {
        if !(8..=128).contains(&self.flit_width) {
            return Err(SpecError::BadFlitWidth(self.flit_width));
        }
        if self.output_queue_depth < 2 {
            return Err(SpecError::BadQueueDepth(self.output_queue_depth));
        }
        self.topology.validate_connected()?;
        RoutingTables::build(&self.topology)?;
        for target in self.topology.nis_of_kind(NiKind::Target) {
            if self.range_of(target.ni).is_none() {
                return Err(SpecError::UnmappedTarget(target.ni));
            }
        }
        Ok(())
    }

    /// Builds the routing tables for this spec's topology.
    ///
    /// # Errors
    ///
    /// Propagates unroutable pairs.
    pub fn routing_tables(&self) -> Result<RoutingTables, SpecError> {
        Ok(RoutingTables::build(&self.topology)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::mesh;

    fn spec_2x2() -> (NocSpec, NiId, NiId) {
        let mut b = mesh(2, 2).unwrap();
        b.attach_initiator("cpu", (0, 0)).unwrap();
        let m0 = b.attach_target("m0", (1, 0)).unwrap();
        let m1 = b.attach_target("m1", (1, 1)).unwrap();
        let mut spec = NocSpec::new("test", b.into_topology());
        spec.map_address(m0, 0x0000, 0x1000).unwrap();
        spec.map_address(m1, 0x1000, 0x1000).unwrap();
        (spec, m0, m1)
    }

    #[test]
    fn valid_spec_passes() {
        let (spec, _, _) = spec_2x2();
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn address_decode() {
        let (spec, m0, m1) = spec_2x2();
        assert_eq!(spec.decode_address(0x0), Some(m0));
        assert_eq!(spec.decode_address(0x0FFF), Some(m0));
        assert_eq!(spec.decode_address(0x1000), Some(m1));
        assert_eq!(spec.decode_address(0x2000), None);
    }

    #[test]
    fn overlapping_ranges_rejected() {
        let mut b = mesh(1, 1).unwrap();
        b.attach_initiator("cpu", (0, 0)).unwrap();
        let t0 = b.attach_target("t0", (0, 0)).unwrap();
        let t1 = b.attach_target("t1", (0, 0)).unwrap();
        let mut spec = NocSpec::new("x", b.into_topology());
        spec.map_address(t0, 0x0, 0x2000).unwrap();
        let err = spec.map_address(t1, 0x1000, 0x1000).unwrap_err();
        assert_eq!(err, SpecError::OverlappingRanges(t0, t1));
    }

    #[test]
    fn range_on_initiator_rejected() {
        let mut b = mesh(1, 1).unwrap();
        let cpu = b.attach_initiator("cpu", (0, 0)).unwrap();
        b.attach_target("t", (0, 0)).unwrap();
        let mut spec = NocSpec::new("x", b.into_topology());
        assert_eq!(
            spec.map_address(cpu, 0, 16).unwrap_err(),
            SpecError::RangeOnNonTarget(cpu)
        );
    }

    #[test]
    fn empty_range_rejected() {
        let (mut spec, _, _) = spec_2x2();
        let t = spec.topology.nis_of_kind(NiKind::Target).next().unwrap().ni;
        // remove existing window first to avoid overlap short-circuit
        spec.address_map.clear();
        assert_eq!(
            spec.map_address(t, 0, 0).unwrap_err(),
            SpecError::EmptyRange(t)
        );
    }

    #[test]
    fn unmapped_target_fails_validation() {
        let (mut spec, _, m1) = spec_2x2();
        spec.address_map.retain(|r| r.ni != m1);
        assert_eq!(spec.validate().unwrap_err(), SpecError::UnmappedTarget(m1));
    }

    #[test]
    fn bad_parameters_fail_validation() {
        let (mut spec, _, _) = spec_2x2();
        spec.flit_width = 4;
        assert_eq!(spec.validate().unwrap_err(), SpecError::BadFlitWidth(4));
        spec.flit_width = 32;
        spec.output_queue_depth = 1;
        assert_eq!(spec.validate().unwrap_err(), SpecError::BadQueueDepth(1));
    }

    #[test]
    fn range_contains_and_overlaps() {
        let a = AddressRange {
            ni: NiId(0),
            base: 0x100,
            size: 0x100,
        };
        assert!(a.contains(0x100));
        assert!(a.contains(0x1FF));
        assert!(!a.contains(0x200));
        assert!(!a.contains(0xFF));
        let b = AddressRange {
            ni: NiId(1),
            base: 0x1FF,
            size: 1,
        };
        let c = AddressRange {
            ni: NiId(2),
            base: 0x200,
            size: 0x10,
        };
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn overflow_safe_overlap() {
        let a = AddressRange {
            ni: NiId(0),
            base: u64::MAX - 1,
            size: u64::MAX,
        };
        let b = AddressRange {
            ni: NiId(1),
            base: 0,
            size: 1,
        };
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn defaults_match_paper() {
        let spec = NocSpec::new("d", Topology::new());
        assert_eq!(spec.flit_width, 32);
        assert_eq!(spec.arbitration, Arbitration::RoundRobin);
        assert_eq!(spec.output_queue_depth, 6);
        assert_eq!(spec.link_error_rate, 0.0);
    }

    #[test]
    fn queue_depth_overrides() {
        let (mut spec, _, _) = spec_2x2();
        assert_eq!(
            spec.queue_depth_of(SwitchId(0)),
            NocSpec::DEFAULT_QUEUE_DEPTH
        );
        spec.set_queue_depth(SwitchId(1), 10).unwrap();
        assert_eq!(spec.queue_depth_of(SwitchId(1)), 10);
        assert_eq!(
            spec.queue_depth_of(SwitchId(0)),
            NocSpec::DEFAULT_QUEUE_DEPTH
        );
        assert_eq!(
            spec.set_queue_depth(SwitchId(1), 1).unwrap_err(),
            SpecError::BadQueueDepth(1)
        );
        assert!(matches!(
            spec.set_queue_depth(SwitchId(99), 4),
            Err(SpecError::Topology(TopologyError::UnknownSwitch(_)))
        ));
    }

    #[test]
    fn arbitration_display() {
        assert_eq!(Arbitration::Fixed.to_string(), "fixed");
        assert_eq!(Arbitration::RoundRobin.to_string(), "round-robin");
    }

    #[test]
    fn routing_tables_accessor() {
        let (spec, _, _) = spec_2x2();
        let tables = spec.routing_tables().unwrap();
        assert_eq!(tables.len(), 4); // 1 initiator x 2 targets, both directions
    }
}
