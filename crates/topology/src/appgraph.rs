//! Application task graphs: the input to the SunMap mapping flow.
//!
//! A task graph captures the communication structure of the target MPSoC
//! application — "complex, highly heterogeneous, communication intensive"
//! in the paper's words: cores (processors, DSPs, memories, peripherals)
//! and directed bandwidth-annotated flows between them.

use std::error::Error;
use std::fmt;

/// Identifier of a core within a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Protocol role(s) a core plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// Pure master (issues transactions): CPU, DMA engine.
    Initiator,
    /// Pure slave (serves transactions): memory, peripheral.
    Target,
    /// Both master and slave (gets an initiator NI *and* a target NI).
    Both,
}

impl CoreKind {
    /// True if the core can source request flows.
    pub const fn can_initiate(self) -> bool {
        matches!(self, CoreKind::Initiator | CoreKind::Both)
    }

    /// True if the core can sink request flows.
    pub const fn can_serve(self) -> bool {
        matches!(self, CoreKind::Target | CoreKind::Both)
    }
}

/// A directed communication flow between two cores.
#[derive(Debug, Clone, PartialEq)]
pub struct Flow {
    /// Source (master side) core.
    pub src: CoreId,
    /// Destination (slave side) core.
    pub dst: CoreId,
    /// Average bandwidth demand in MB/s.
    pub bandwidth_mbps: f64,
    /// Optional latency constraint in cycles (used by routing co-design).
    pub max_latency: Option<u64>,
}

/// Errors from task-graph construction.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskGraphError {
    /// Flow endpoint does not exist.
    UnknownCore(CoreId),
    /// Flow source cannot initiate or destination cannot serve.
    RoleMismatch { src: CoreId, dst: CoreId },
    /// Self-flows are meaningless on a NoC.
    SelfFlow(CoreId),
    /// Bandwidth must be positive and finite.
    BadBandwidth(f64),
}

impl fmt::Display for TaskGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskGraphError::UnknownCore(c) => write!(f, "unknown core {c}"),
            TaskGraphError::RoleMismatch { src, dst } => {
                write!(f, "flow {src}→{dst} violates initiator/target roles")
            }
            TaskGraphError::SelfFlow(c) => write!(f, "flow from {c} to itself"),
            TaskGraphError::BadBandwidth(b) => write!(f, "bad bandwidth {b} MB/s"),
        }
    }
}

impl Error for TaskGraphError {}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Core {
    name: String,
    kind: CoreKind,
}

/// An application task graph: named cores plus bandwidth-annotated flows.
///
/// # Examples
///
/// ```
/// use xpipes_topology::{TaskGraph, CoreKind};
///
/// # fn main() -> Result<(), xpipes_topology::appgraph::TaskGraphError> {
/// let mut g = TaskGraph::new("decoder");
/// let cpu = g.add_core("cpu", CoreKind::Initiator);
/// let mem = g.add_core("sdram", CoreKind::Target);
/// g.add_flow(cpu, mem, 160.0)?;
/// assert_eq!(g.total_bandwidth(), 160.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    name: String,
    cores: Vec<Core>,
    flows: Vec<Flow>,
}

impl TaskGraph {
    /// Creates an empty task graph.
    pub fn new(name: impl Into<String>) -> Self {
        TaskGraph {
            name: name.into(),
            cores: Vec::new(),
            flows: Vec::new(),
        }
    }

    /// Application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a core and returns its id.
    pub fn add_core(&mut self, name: impl Into<String>, kind: CoreKind) -> CoreId {
        let id = CoreId(self.cores.len());
        self.cores.push(Core {
            name: name.into(),
            kind,
        });
        id
    }

    /// Adds a flow of `bandwidth_mbps` from `src` to `dst`.
    ///
    /// # Errors
    ///
    /// Rejects unknown cores, self-flows, role mismatches and non-positive
    /// bandwidths.
    pub fn add_flow(
        &mut self,
        src: CoreId,
        dst: CoreId,
        bandwidth_mbps: f64,
    ) -> Result<(), TaskGraphError> {
        self.add_flow_with_latency(src, dst, bandwidth_mbps, None)
    }

    /// Adds a flow with an optional latency constraint.
    ///
    /// # Errors
    ///
    /// Same as [`add_flow`](Self::add_flow).
    pub fn add_flow_with_latency(
        &mut self,
        src: CoreId,
        dst: CoreId,
        bandwidth_mbps: f64,
        max_latency: Option<u64>,
    ) -> Result<(), TaskGraphError> {
        let src_core = self
            .cores
            .get(src.0)
            .ok_or(TaskGraphError::UnknownCore(src))?;
        let dst_core = self
            .cores
            .get(dst.0)
            .ok_or(TaskGraphError::UnknownCore(dst))?;
        if src == dst {
            return Err(TaskGraphError::SelfFlow(src));
        }
        if !src_core.kind.can_initiate() || !dst_core.kind.can_serve() {
            return Err(TaskGraphError::RoleMismatch { src, dst });
        }
        if !(bandwidth_mbps.is_finite() && bandwidth_mbps > 0.0) {
            return Err(TaskGraphError::BadBandwidth(bandwidth_mbps));
        }
        self.flows.push(Flow {
            src,
            dst,
            bandwidth_mbps,
            max_latency,
        });
        Ok(())
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Core ids.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> {
        (0..self.cores.len()).map(CoreId)
    }

    /// Core name.
    pub fn core_name(&self, id: CoreId) -> Option<&str> {
        self.cores.get(id.0).map(|c| c.name.as_str())
    }

    /// Core kind.
    pub fn core_kind(&self, id: CoreId) -> Option<CoreKind> {
        self.cores.get(id.0).map(|c| c.kind)
    }

    /// All flows.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Flows departing `core`.
    pub fn flows_from(&self, core: CoreId) -> impl Iterator<Item = &Flow> {
        self.flows.iter().filter(move |f| f.src == core)
    }

    /// Flows arriving at `core`.
    pub fn flows_to(&self, core: CoreId) -> impl Iterator<Item = &Flow> {
        self.flows.iter().filter(move |f| f.dst == core)
    }

    /// Sum of all flow bandwidths (MB/s).
    pub fn total_bandwidth(&self) -> f64 {
        self.flows.iter().map(|f| f.bandwidth_mbps).sum()
    }

    /// Communication volume between a specific ordered pair.
    pub fn bandwidth_between(&self, src: CoreId, dst: CoreId) -> f64 {
        self.flows
            .iter()
            .filter(|f| f.src == src && f.dst == dst)
            .map(|f| f.bandwidth_mbps)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> (TaskGraph, CoreId, CoreId, CoreId) {
        let mut g = TaskGraph::new("t");
        let cpu = g.add_core("cpu", CoreKind::Initiator);
        let dsp = g.add_core("dsp", CoreKind::Both);
        let mem = g.add_core("mem", CoreKind::Target);
        (g, cpu, dsp, mem)
    }

    #[test]
    fn add_cores_and_flows() {
        let (mut g, cpu, dsp, mem) = graph();
        g.add_flow(cpu, mem, 100.0).unwrap();
        g.add_flow(cpu, dsp, 50.0).unwrap(); // dsp can serve
        g.add_flow(dsp, mem, 25.0).unwrap(); // dsp can initiate
        assert_eq!(g.core_count(), 3);
        assert_eq!(g.flows().len(), 3);
        assert_eq!(g.total_bandwidth(), 175.0);
        assert_eq!(g.bandwidth_between(cpu, mem), 100.0);
    }

    #[test]
    fn role_mismatch_rejected() {
        let (mut g, cpu, _, mem) = graph();
        // mem is a pure target: cannot initiate.
        let err = g.add_flow(mem, cpu, 10.0).unwrap_err();
        assert!(matches!(err, TaskGraphError::RoleMismatch { .. }));
        // cpu is a pure initiator: cannot serve.
        let mut g2 = TaskGraph::new("t2");
        let a = g2.add_core("a", CoreKind::Initiator);
        let b = g2.add_core("b", CoreKind::Initiator);
        let err2 = g2.add_flow(a, b, 10.0).unwrap_err();
        assert!(matches!(err2, TaskGraphError::RoleMismatch { .. }));
    }

    #[test]
    fn self_flow_rejected() {
        let (mut g, _, dsp, _) = graph();
        assert_eq!(
            g.add_flow(dsp, dsp, 5.0).unwrap_err(),
            TaskGraphError::SelfFlow(dsp)
        );
    }

    #[test]
    fn unknown_core_rejected() {
        let (mut g, cpu, _, _) = graph();
        let err = g.add_flow(cpu, CoreId(99), 5.0).unwrap_err();
        assert_eq!(err, TaskGraphError::UnknownCore(CoreId(99)));
    }

    #[test]
    fn bad_bandwidth_rejected() {
        let (mut g, cpu, _, mem) = graph();
        assert!(g.add_flow(cpu, mem, 0.0).is_err());
        assert!(g.add_flow(cpu, mem, -4.0).is_err());
        assert!(g.add_flow(cpu, mem, f64::NAN).is_err());
        assert!(g.add_flow(cpu, mem, f64::INFINITY).is_err());
    }

    #[test]
    fn flow_queries() {
        let (mut g, cpu, dsp, mem) = graph();
        g.add_flow(cpu, mem, 10.0).unwrap();
        g.add_flow(cpu, dsp, 20.0).unwrap();
        g.add_flow(dsp, mem, 30.0).unwrap();
        assert_eq!(g.flows_from(cpu).count(), 2);
        assert_eq!(g.flows_to(mem).count(), 2);
        assert_eq!(g.flows_from(mem).count(), 0);
    }

    #[test]
    fn latency_constraint_carried() {
        let (mut g, cpu, _, mem) = graph();
        g.add_flow_with_latency(cpu, mem, 10.0, Some(20)).unwrap();
        assert_eq!(g.flows()[0].max_latency, Some(20));
    }

    #[test]
    fn kind_predicates() {
        assert!(CoreKind::Initiator.can_initiate());
        assert!(!CoreKind::Initiator.can_serve());
        assert!(CoreKind::Target.can_serve());
        assert!(!CoreKind::Target.can_initiate());
        assert!(CoreKind::Both.can_initiate() && CoreKind::Both.can_serve());
    }

    #[test]
    fn metadata_accessors() {
        let (g, cpu, _, _) = graph();
        assert_eq!(g.name(), "t");
        assert_eq!(g.core_name(cpu), Some("cpu"));
        assert_eq!(g.core_kind(cpu), Some(CoreKind::Initiator));
        assert_eq!(g.core_name(CoreId(9)), None);
        assert_eq!(g.cores().count(), 3);
    }
}
