//! Source routing: per-hop port paths and whole-network routing tables.
//!
//! xpipes Lite switches perform **source-based routing**: the packet header
//! carries the entire path as a string of 4-bit output-port indices; each
//! switch consumes the lowest field and shifts the rest. The initiator NI
//! obtains the path from its LUT, indexed by the transaction address after
//! decode (the paper's "from MAddr after LUT").

use std::collections::HashMap;
use std::fmt;

use crate::graph::{NiId, NiKind, PortId, Topology, TopologyError};

/// Bits per hop in the header's route field.
pub const BITS_PER_HOP: u32 = 4;

/// Maximum number of hops a single header route field can carry (28 route
/// bits in the ~50-bit header).
pub const MAX_HOPS: usize = 7;

/// A source route: the output port to take at each switch along the path,
/// ending with the ejection port at the destination switch.
///
/// # Examples
///
/// ```
/// use xpipes_topology::route::SourceRoute;
/// use xpipes_topology::PortId;
///
/// let route = SourceRoute::new(vec![PortId(2), PortId(3), PortId(0)]).unwrap();
/// let bits = route.encode();
/// let (first, rest) = SourceRoute::consume(bits);
/// assert_eq!(first, PortId(2));
/// let (second, _) = SourceRoute::consume(rest);
/// assert_eq!(second, PortId(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SourceRoute {
    hops: Vec<PortId>,
}

impl SourceRoute {
    /// Creates a route from hop ports.
    ///
    /// # Errors
    ///
    /// * [`TopologyError::PortOutOfRange`] if any hop exceeds 4 bits.
    /// * [`TopologyError::EmptyDimension`] if `hops` is empty (a route
    ///   always contains at least the ejection port).
    pub fn new(hops: Vec<PortId>) -> Result<Self, TopologyError> {
        if hops.is_empty() {
            return Err(TopologyError::EmptyDimension);
        }
        for h in &hops {
            if h.0 > PortId::MAX {
                return Err(TopologyError::PortOutOfRange(h.0));
            }
        }
        Ok(SourceRoute { hops })
    }

    /// The hop sequence.
    pub fn hops(&self) -> &[PortId] {
        &self.hops
    }

    /// Number of switches traversed (including the ejecting switch).
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// A route is never empty; provided for clippy-completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True if the route fits the single-header route field.
    pub fn fits_header(&self) -> bool {
        self.hops.len() <= MAX_HOPS
    }

    /// Packs the route into the header's route field, first hop in the
    /// least-significant bits.
    pub fn encode(&self) -> u32 {
        let mut bits = 0u32;
        for (i, hop) in self.hops.iter().enumerate().take(8) {
            bits |= (hop.0 as u32) << (i as u32 * BITS_PER_HOP);
        }
        bits
    }

    /// Switch-side route consumption: extract the next output port and
    /// shift the remaining field down, exactly as the RTL does.
    pub fn consume(bits: u32) -> (PortId, u32) {
        (PortId((bits & 0xF) as u8), bits >> BITS_PER_HOP)
    }

    /// Rebuilds a route of known hop count from an encoded field.
    pub fn decode(mut bits: u32, len: usize) -> Self {
        let mut hops = Vec::with_capacity(len);
        for _ in 0..len {
            let (p, rest) = Self::consume(bits);
            hops.push(p);
            bits = rest;
        }
        SourceRoute { hops }
    }
}

impl fmt::Display for SourceRoute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.hops.iter().map(|p| p.0.to_string()).collect();
        write!(f, "[{}]", parts.join("→"))
    }
}

/// Grid coordinate of a builder-named switch (`sw_<x>_<y>`).
fn grid_coord(topo: &Topology, s: crate::graph::SwitchId) -> Option<(i64, i64)> {
    let name = topo.switch_name(s)?;
    let rest = name.strip_prefix("sw_")?;
    let (x, y) = rest.split_once('_')?;
    Some((x.parse().ok()?, y.parse().ok()?))
}

/// Dimension-ordered route between two grid switches, or `None` when the
/// topology is not a builder grid (names/links don't match) — callers
/// then fall back to generic shortest paths.
fn xy_route(
    topo: &Topology,
    from: crate::graph::SwitchId,
    to: crate::graph::SwitchId,
) -> Option<Vec<PortId>> {
    let (mut x, mut y) = grid_coord(topo, from)?;
    let (tx, ty) = grid_coord(topo, to)?;
    let mut hops = Vec::new();
    let mut cur = from;
    let step =
        |cur: &mut crate::graph::SwitchId, hops: &mut Vec<PortId>, port: PortId| -> Option<()> {
            let link = topo.out_links(*cur).find(|l| l.from_port == port)?;
            hops.push(port);
            *cur = link.to;
            Some(())
        };
    // X dimension first (ports 0 = East, 1 = West per the grid
    // builders). The walk is strictly monotone toward the target, so
    // torus wrap links are never taken: XY stays deadlock-free at the
    // cost of ignoring wrap shortcuts (VC-less wormhole rings deadlock).
    while x != tx {
        let east = tx > x;
        let port = if east { PortId(0) } else { PortId(1) };
        step(&mut cur, &mut hops, port)?;
        let (nx, ny) = grid_coord(topo, cur)?;
        if ny != y || (nx - tx).abs() >= (x - tx).abs() {
            return None; // link structure is not the expected grid
        }
        x = nx;
    }
    // Then Y (2 = North, 3 = South).
    while y != ty {
        let south = ty > y;
        let port = if south { PortId(3) } else { PortId(2) };
        step(&mut cur, &mut hops, port)?;
        let (nx, ny) = grid_coord(topo, cur)?;
        if nx != tx || (ny - ty).abs() >= (y - ty).abs() {
            return None;
        }
        y = ny;
    }
    (cur == to).then_some(hops)
}

/// Precomputed routing tables for a topology: for every ordered NI pair,
/// the source route between them (requests initiator→target, responses
/// target→initiator).
///
/// These are the LUT contents the xpipesCompiler programs into each NI.
#[derive(Debug, Clone)]
pub struct RoutingTables {
    routes: HashMap<(NiId, NiId), SourceRoute>,
}

impl RoutingTables {
    /// Builds shortest-path routes between all initiator↔target pairs.
    ///
    /// # Errors
    ///
    /// [`TopologyError::NoRoute`] if any initiator cannot reach any target
    /// (or vice versa for the response path).
    pub fn build(topo: &Topology) -> Result<Self, TopologyError> {
        let mut routes = HashMap::new();
        let initiators: Vec<_> = topo.nis_of_kind(NiKind::Initiator).cloned().collect();
        let targets: Vec<_> = topo.nis_of_kind(NiKind::Target).cloned().collect();
        for src in initiators.iter() {
            for dst in targets.iter() {
                let fwd = Self::route_between(topo, src.switch, dst.switch, dst.port).ok_or(
                    TopologyError::NoRoute {
                        from: src.ni,
                        to: dst.ni,
                    },
                )?;
                routes.insert((src.ni, dst.ni), fwd);
                let back = Self::route_between(topo, dst.switch, src.switch, src.port).ok_or(
                    TopologyError::NoRoute {
                        from: dst.ni,
                        to: src.ni,
                    },
                )?;
                routes.insert((dst.ni, src.ni), back);
            }
        }
        Ok(RoutingTables { routes })
    }

    fn route_between(
        topo: &Topology,
        from: crate::graph::SwitchId,
        to: crate::graph::SwitchId,
        eject_port: PortId,
    ) -> Option<SourceRoute> {
        // Grids get dimension-ordered (XY) routes: all X moves, then all
        // Y moves. XY routing is deadlock-free under wormhole switching
        // without virtual channels, which generic shortest paths are not.
        let mut hops: Vec<PortId> = match xy_route(topo, from, to) {
            Some(h) => h,
            None => topo
                .shortest_path(from, to)?
                .iter()
                .map(|l| l.from_port)
                .collect(),
        };
        hops.push(eject_port);
        SourceRoute::new(hops).ok()
    }

    /// Route from NI `from` to NI `to`, if one was computed.
    pub fn route(&self, from: NiId, to: NiId) -> Option<&SourceRoute> {
        self.routes.get(&(from, to))
    }

    /// All routes originating at `from` (that NI's LUT contents).
    pub fn lut_for(&self, from: NiId) -> impl Iterator<Item = (NiId, &SourceRoute)> {
        self.routes
            .iter()
            .filter(move |((f, _), _)| *f == from)
            .map(|((_, t), r)| (*t, r))
    }

    /// Total number of stored routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when no routes are stored.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The longest route in hops (determines whether multi-flit headers
    /// are needed and sizes the compiler's route field checks).
    pub fn max_hops(&self) -> usize {
        self.routes
            .values()
            .map(SourceRoute::len)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::mesh;
    use crate::graph::{NiKind, SwitchId};

    #[test]
    fn route_requires_nonempty() {
        assert!(SourceRoute::new(vec![]).is_err());
    }

    #[test]
    fn route_rejects_wide_ports() {
        assert!(SourceRoute::new(vec![PortId(16)]).is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let route = SourceRoute::new(vec![PortId(1), PortId(15), PortId(0), PortId(7)]).unwrap();
        let decoded = SourceRoute::decode(route.encode(), 4);
        assert_eq!(decoded, route);
    }

    #[test]
    fn consume_matches_shift_semantics() {
        let route = SourceRoute::new(vec![PortId(3), PortId(5)]).unwrap();
        let bits = route.encode();
        let (p0, rest) = SourceRoute::consume(bits);
        let (p1, rest2) = SourceRoute::consume(rest);
        assert_eq!((p0, p1), (PortId(3), PortId(5)));
        assert_eq!(rest2, 0);
    }

    #[test]
    fn fits_header_limit() {
        let short = SourceRoute::new(vec![PortId(0); 7]).unwrap();
        let long = SourceRoute::new(vec![PortId(0); 8]).unwrap();
        assert!(short.fits_header());
        assert!(!long.fits_header());
    }

    #[test]
    fn display_shows_hops() {
        let route = SourceRoute::new(vec![PortId(2), PortId(0)]).unwrap();
        assert_eq!(route.to_string(), "[2→0]");
    }

    #[test]
    fn tables_cover_all_pairs_both_ways() {
        let mut b = mesh(2, 2).unwrap();
        let cpu = b.attach_initiator("cpu", (0, 0)).unwrap();
        let mem = b.attach_target("mem", (1, 1)).unwrap();
        let topo = b.into_topology();
        let tables = RoutingTables::build(&topo).unwrap();
        assert_eq!(tables.len(), 2);
        assert!(tables.route(cpu, mem).is_some());
        assert!(tables.route(mem, cpu).is_some());
        assert!(tables.route(cpu, cpu).is_none());
    }

    #[test]
    fn routes_follow_topology_edges() {
        let mut b = mesh(3, 1).unwrap();
        let cpu = b.attach_initiator("cpu", (0, 0)).unwrap();
        let mem = b.attach_target("mem", (2, 0)).unwrap();
        let topo = b.into_topology();
        let tables = RoutingTables::build(&topo).unwrap();
        let route = tables.route(cpu, mem).unwrap();
        // 2 link hops + ejection = 3 hops.
        assert_eq!(route.len(), 3);
        // Walk the route through the graph and confirm it lands on mem.
        let src = topo.ni(cpu).unwrap();
        let dst = topo.ni(mem).unwrap();
        let mut cur = src.switch;
        for (i, hop) in route.hops().iter().enumerate() {
            if i + 1 == route.len() {
                assert_eq!(cur, dst.switch);
                assert_eq!(*hop, dst.port);
            } else {
                let link = topo
                    .out_links(cur)
                    .find(|l| l.from_port == *hop)
                    .expect("route uses an existing link");
                cur = link.to;
            }
        }
    }

    #[test]
    fn lut_for_lists_destinations() {
        let mut b = mesh(2, 2).unwrap();
        let cpu = b.attach_initiator("cpu", (0, 0)).unwrap();
        b.attach_target("m0", (1, 0)).unwrap();
        b.attach_target("m1", (1, 1)).unwrap();
        let topo = b.into_topology();
        let tables = RoutingTables::build(&topo).unwrap();
        assert_eq!(tables.lut_for(cpu).count(), 2);
        assert!(tables.max_hops() >= 2);
    }

    #[test]
    fn mesh_routes_are_dimension_ordered() {
        // Every initiator→target route on a mesh must make all its X
        // moves (ports 0/1) before any Y move (ports 2/3): the XY
        // deadlock-freedom discipline.
        let mut b = mesh(4, 4).unwrap();
        let mut inis = Vec::new();
        let mut tgts = Vec::new();
        for i in 0..4 {
            inis.push(b.attach_initiator(format!("c{i}"), (i, i % 2)).unwrap());
            tgts.push(
                b.attach_target(format!("m{i}"), (3 - i, 2 + i % 2))
                    .unwrap(),
            );
        }
        let topo = b.into_topology();
        let tables = RoutingTables::build(&topo).unwrap();
        for &src in &inis {
            for &dst in &tgts {
                let route = tables.route(src, dst).unwrap();
                let hops = route.hops();
                // Drop the ejection hop; check X-before-Y on the rest.
                let transit = &hops[..hops.len() - 1];
                let mut seen_y = false;
                for p in transit {
                    match p.0 {
                        0 | 1 => {
                            assert!(!seen_y, "{src:?}->{dst:?}: X move after Y in {route}")
                        }
                        2 | 3 => seen_y = true,
                        other => panic!("unexpected transit port {other}"),
                    }
                }
            }
        }
    }

    #[test]
    fn xy_route_matches_manhattan_length() {
        let b = mesh(5, 5).unwrap();
        let topo = b.into_topology();
        for (from, to, expect) in [
            (SwitchId(0), SwitchId(24), 8), // corner to corner: 4+4
            (SwitchId(7), SwitchId(7), 0),
            (SwitchId(3), SwitchId(15), 6), // (3,0) -> (0,3): 3+3
        ] {
            let hops = xy_route(&topo, from, to).expect("grid route");
            assert_eq!(hops.len(), expect, "{from:?}->{to:?}");
        }
    }

    #[test]
    fn non_grid_falls_back_to_bfs() {
        use crate::builders::ring;
        let mut topo = ring(5).unwrap();
        topo.attach_ni("cpu", NiKind::Initiator, SwitchId(0), PortId(2))
            .unwrap();
        topo.attach_ni("mem", NiKind::Target, SwitchId(2), PortId(2))
            .unwrap();
        let tables = RoutingTables::build(&topo).unwrap();
        assert_eq!(tables.max_hops(), 3); // 2 ring hops + ejection
    }

    #[test]
    fn disconnected_pair_is_error() {
        let mut topo = Topology::new();
        let a = topo.add_switch("a");
        let b = topo.add_switch("b");
        // no link between a and b
        topo.attach_ni("cpu", NiKind::Initiator, a, PortId(0))
            .unwrap();
        topo.attach_ni("mem", NiKind::Target, b, PortId(0)).unwrap();
        let err = RoutingTables::build(&topo).unwrap_err();
        assert!(matches!(err, TopologyError::NoRoute { .. }));
    }
}
