//! # xpipes-topology — NoC topology graphs, routing and specifications
//!
//! xpipes Lite is a *heterogeneous* NoC library: the design flow
//! instantiates arbitrary application-specific topologies, not just
//! regular meshes. This crate provides:
//!
//! * the [`Topology`] graph of switches, links and network-interface
//!   attachment points, with validation and path queries,
//! * regular-topology builders ([`builders`]): mesh, torus, ring, star,
//!   spidergon,
//! * **source routing** ([`route`]): per-hop output-port paths encoded as
//!   the bit string the packet header carries, plus whole-network routing
//!   tables (the LUT contents of every initiator NI),
//! * application task graphs ([`appgraph`]) used by the SunMap mapping
//!   flow,
//! * the complete [`spec::NocSpec`] consumed by the xpipesCompiler.
//!
//! # Examples
//!
//! ```
//! use xpipes_topology::builders::mesh;
//! use xpipes_topology::route::RoutingTables;
//!
//! # fn main() -> Result<(), xpipes_topology::TopologyError> {
//! // A 3x3 mesh; attach one initiator at (0,0) and one target at (2,2).
//! let mut m = mesh(3, 3)?;
//! let src = m.attach_initiator("cpu0", (0, 0))?;
//! let dst = m.attach_target("mem0", (2, 2))?;
//! let topo = m.into_topology();
//! let tables = RoutingTables::build(&topo)?;
//! let route = tables.route(src, dst).expect("connected");
//! assert_eq!(route.hops().len(), 5); // 4 switch traversals + ejection
//! # Ok(())
//! # }
//! ```

pub mod appgraph;
pub mod builders;
pub mod graph;
pub mod route;
pub mod spec;

pub use appgraph::{CoreKind, Flow, TaskGraph};
pub use graph::{LinkEdge, NiAttachment, NiId, NiKind, PortId, SwitchId, Topology, TopologyError};
pub use route::{RoutingTables, SourceRoute};
pub use spec::NocSpec;
