//! Regular-topology builders: mesh, torus, ring, star, spidergon.
//!
//! These populate the topology library that SunMap's selection stage
//! iterates over; application-specific (custom) topologies are built
//! directly through [`Topology`]'s methods.

use crate::graph::{NiId, NiKind, PortId, SwitchId, Topology, TopologyError};

/// Mesh/torus direction port numbering: East.
pub const PORT_E: PortId = PortId(0);
/// West.
pub const PORT_W: PortId = PortId(1);
/// North.
pub const PORT_N: PortId = PortId(2);
/// South.
pub const PORT_S: PortId = PortId(3);
/// First port index available for NI attachment on grid switches.
pub const FIRST_LOCAL_PORT: u8 = 4;

/// A 2-D grid builder produced by [`mesh`] or [`torus`]: lets callers
/// attach NIs by grid coordinate before freezing into a [`Topology`].
#[derive(Debug, Clone)]
pub struct GridBuilder {
    topo: Topology,
    cols: usize,
    rows: usize,
}

impl GridBuilder {
    /// Switch at grid coordinate `(x, y)`.
    ///
    /// # Errors
    ///
    /// [`TopologyError::CoordOutOfRange`] for coordinates outside the grid.
    pub fn switch_at(&self, (x, y): (usize, usize)) -> Result<SwitchId, TopologyError> {
        if x >= self.cols || y >= self.rows {
            return Err(TopologyError::CoordOutOfRange { x, y });
        }
        Ok(SwitchId(y * self.cols + x))
    }

    /// Attaches an initiator NI to the switch at `(x, y)`.
    ///
    /// # Errors
    ///
    /// Propagates coordinate and port-exhaustion errors.
    pub fn attach_initiator(
        &mut self,
        name: impl Into<String>,
        at: (usize, usize),
    ) -> Result<NiId, TopologyError> {
        let s = self.switch_at(at)?;
        self.topo.attach_ni_auto(name, NiKind::Initiator, s)
    }

    /// Attaches a target NI to the switch at `(x, y)`.
    ///
    /// # Errors
    ///
    /// Propagates coordinate and port-exhaustion errors.
    pub fn attach_target(
        &mut self,
        name: impl Into<String>,
        at: (usize, usize),
    ) -> Result<NiId, TopologyError> {
        let s = self.switch_at(at)?;
        self.topo.attach_ni_auto(name, NiKind::Target, s)
    }

    /// Grid width.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grid height.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Freezes the builder into the underlying topology.
    pub fn into_topology(self) -> Topology {
        self.topo
    }

    /// Borrow the topology under construction.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }
}

/// Builds a `cols` × `rows` 2-D mesh with single-cycle pipelined links.
///
/// Grid switches use ports 0–3 for E/W/N/S neighbours; NIs attach from
/// port 4 upward.
///
/// # Errors
///
/// [`TopologyError::EmptyDimension`] when either dimension is zero.
///
/// # Examples
///
/// ```
/// use xpipes_topology::builders::mesh;
///
/// let m = mesh(3, 4).unwrap();
/// assert_eq!(m.topology().switch_count(), 12);
/// ```
pub fn mesh(cols: usize, rows: usize) -> Result<GridBuilder, TopologyError> {
    grid(cols, rows, false)
}

/// Builds a `cols` × `rows` 2-D torus (mesh plus wrap-around links).
///
/// # Errors
///
/// [`TopologyError::EmptyDimension`] when either dimension is zero.
pub fn torus(cols: usize, rows: usize) -> Result<GridBuilder, TopologyError> {
    grid(cols, rows, true)
}

fn grid(cols: usize, rows: usize, wrap: bool) -> Result<GridBuilder, TopologyError> {
    if cols == 0 || rows == 0 {
        return Err(TopologyError::EmptyDimension);
    }
    let mut topo = Topology::new();
    for y in 0..rows {
        for x in 0..cols {
            topo.add_switch(format!("sw_{x}_{y}"));
        }
    }
    let at = |x: usize, y: usize| SwitchId(y * cols + x);
    for y in 0..rows {
        for x in 0..cols {
            // East link (and wrap link from last column).
            if x + 1 < cols {
                topo.add_bidi_link(at(x, y), PORT_E, at(x + 1, y), PORT_W, 1)?;
            } else if wrap && cols > 2 {
                topo.add_bidi_link(at(x, y), PORT_E, at(0, y), PORT_W, 1)?;
            }
            // South link (and wrap link from last row).
            if y + 1 < rows {
                topo.add_bidi_link(at(x, y), PORT_S, at(x, y + 1), PORT_N, 1)?;
            } else if wrap && rows > 2 {
                topo.add_bidi_link(at(x, y), PORT_S, at(x, 0), PORT_N, 1)?;
            }
        }
    }
    Ok(GridBuilder { topo, cols, rows })
}

/// Builds an `n`-switch bidirectional ring (ports 0 = clockwise,
/// 1 = counter-clockwise; NIs from port 2).
///
/// # Errors
///
/// [`TopologyError::EmptyDimension`] when `n < 2`.
pub fn ring(n: usize) -> Result<Topology, TopologyError> {
    if n < 2 {
        return Err(TopologyError::EmptyDimension);
    }
    let mut topo = Topology::new();
    let switches: Vec<_> = (0..n)
        .map(|i| topo.add_switch(format!("ring{i}")))
        .collect();
    for i in 0..n {
        let next = (i + 1) % n;
        if n == 2 && i == 1 {
            break; // avoid doubling the single link of a 2-ring
        }
        topo.add_bidi_link(switches[i], PortId(0), switches[next], PortId(1), 1)?;
    }
    Ok(topo)
}

/// Builds a star: one hub switch and `leaves` leaf switches.
///
/// Leaf port 0 faces the hub; hub ports count up from 0. The hub radix is
/// `leaves`, so at most 16 leaves are supported.
///
/// # Errors
///
/// [`TopologyError::EmptyDimension`] for zero leaves;
/// [`TopologyError::PortOutOfRange`] above 16 leaves.
pub fn star(leaves: usize) -> Result<Topology, TopologyError> {
    if leaves == 0 {
        return Err(TopologyError::EmptyDimension);
    }
    if leaves > 16 {
        return Err(TopologyError::PortOutOfRange(leaves as u8));
    }
    let mut topo = Topology::new();
    let hub = topo.add_switch("hub");
    for i in 0..leaves {
        let leaf = topo.add_switch(format!("leaf{i}"));
        topo.add_bidi_link(hub, PortId(i as u8), leaf, PortId(0), 1)?;
    }
    Ok(topo)
}

/// Builds a balanced tree of switches with the given `arity` and number
/// of `levels` (level 0 is the single root).
///
/// Port convention: port 0 faces the parent; children occupy ports
/// 1..=arity. NIs typically attach to the leaves on the remaining ports.
///
/// # Errors
///
/// [`TopologyError::EmptyDimension`] for zero levels or zero arity;
/// [`TopologyError::PortOutOfRange`] when `arity` exceeds 14 (ports 1-15
/// must fit the children plus at least one NI port on leaves).
///
/// # Examples
///
/// ```
/// use xpipes_topology::builders::tree;
///
/// let t = tree(2, 3).unwrap(); // binary tree: 1 + 2 + 4 switches
/// assert_eq!(t.switch_count(), 7);
/// assert!(t.validate_connected().is_ok());
/// ```
pub fn tree(arity: usize, levels: usize) -> Result<Topology, TopologyError> {
    if arity == 0 || levels == 0 {
        return Err(TopologyError::EmptyDimension);
    }
    if arity > 14 {
        return Err(TopologyError::PortOutOfRange(arity as u8));
    }
    let mut topo = Topology::new();
    let mut previous_level: Vec<SwitchId> = vec![topo.add_switch("tree_root")];
    for level in 1..levels {
        let mut current = Vec::new();
        for (pi, &parent) in previous_level.iter().enumerate() {
            for c in 0..arity {
                let child = topo.add_switch(format!("tree_{level}_{pi}_{c}"));
                topo.add_bidi_link(parent, PortId((1 + c) as u8), child, PortId(0), 1)?;
                current.push(child);
            }
        }
        previous_level = current;
    }
    Ok(topo)
}

/// Builds a spidergon of even `n` switches: a ring plus cross links to the
/// diametrically opposite switch (ports 0 = CW, 1 = CCW, 2 = across).
///
/// # Errors
///
/// [`TopologyError::EmptyDimension`] when `n < 4` or `n` is odd.
pub fn spidergon(n: usize) -> Result<Topology, TopologyError> {
    if n < 4 || !n.is_multiple_of(2) {
        return Err(TopologyError::EmptyDimension);
    }
    let mut topo = ring(n)?;
    let half = n / 2;
    for i in 0..half {
        topo.add_bidi_link(SwitchId(i), PortId(2), SwitchId(i + half), PortId(2), 1)?;
    }
    Ok(topo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_counts() {
        let m = mesh(3, 4).unwrap();
        let t = m.topology();
        assert_eq!(t.switch_count(), 12);
        // Internal links: horizontal 2*4=8, vertical 3*3=9; bidi doubles.
        assert_eq!(t.links().len(), 2 * (8 + 9));
        assert!(t.validate_connected().is_ok());
    }

    #[test]
    fn mesh_rejects_empty() {
        assert_eq!(mesh(0, 3).unwrap_err(), TopologyError::EmptyDimension);
        assert_eq!(mesh(3, 0).unwrap_err(), TopologyError::EmptyDimension);
    }

    #[test]
    fn mesh_corner_degree() {
        let m = mesh(3, 3).unwrap();
        let t = m.topology();
        let corner = m.switch_at((0, 0)).unwrap();
        let center = m.switch_at((1, 1)).unwrap();
        assert_eq!(t.switch_degree(corner), 2);
        assert_eq!(t.switch_degree(center), 4);
    }

    #[test]
    fn mesh_coord_out_of_range() {
        let m = mesh(2, 2).unwrap();
        assert!(matches!(
            m.switch_at((2, 0)),
            Err(TopologyError::CoordOutOfRange { x: 2, y: 0 })
        ));
    }

    #[test]
    fn mesh_attachment_by_coordinate() {
        let mut m = mesh(2, 2).unwrap();
        let ni = m.attach_initiator("cpu", (1, 0)).unwrap();
        let t = m.into_topology();
        let att = t.ni(ni).unwrap();
        assert_eq!(att.switch, SwitchId(1));
        // (1,0) is a corner of the 2x2 grid: its East port is unused, so
        // the auto-attacher compacts the radix by reusing it.
        assert_eq!(att.port, PortId(0));
    }

    #[test]
    fn torus_adds_wrap_links() {
        let mesh_links = mesh(3, 3).unwrap().topology().links().len();
        let torus_links = torus(3, 3).unwrap().topology().links().len();
        // 3 wrap rows + 3 wrap cols, bidi → 12 extra edges.
        assert_eq!(torus_links, mesh_links + 12);
        assert!(torus(3, 3).unwrap().topology().validate_connected().is_ok());
    }

    #[test]
    fn torus_2xn_skips_duplicate_wrap() {
        // A 2-column torus would duplicate the E/W link; the builder must
        // not attempt it (port conflict would error).
        let t = torus(2, 3).unwrap();
        assert!(t.topology().validate_connected().is_ok());
    }

    #[test]
    fn torus_diameter_shrinks() {
        let m = mesh(4, 1).unwrap().into_topology();
        let t = torus(4, 1).unwrap().into_topology();
        let far_mesh = m.shortest_path(SwitchId(0), SwitchId(3)).unwrap().len();
        let far_torus = t.shortest_path(SwitchId(0), SwitchId(3)).unwrap().len();
        assert_eq!(far_mesh, 3);
        assert_eq!(far_torus, 1); // wrap link
    }

    #[test]
    fn ring_connects() {
        let t = ring(5).unwrap();
        assert_eq!(t.switch_count(), 5);
        assert_eq!(t.links().len(), 10);
        assert!(t.validate_connected().is_ok());
        assert_eq!(t.shortest_path(SwitchId(0), SwitchId(3)).unwrap().len(), 2);
    }

    #[test]
    fn ring_of_two() {
        let t = ring(2).unwrap();
        assert_eq!(t.links().len(), 2);
        assert!(t.validate_connected().is_ok());
    }

    #[test]
    fn ring_rejects_one() {
        assert!(ring(1).is_err());
    }

    #[test]
    fn star_shape() {
        let t = star(4).unwrap();
        assert_eq!(t.switch_count(), 5);
        assert_eq!(t.switch_degree(SwitchId(0)), 4);
        assert!(t.validate_connected().is_ok());
        // leaf to leaf goes through hub: 2 hops.
        assert_eq!(t.shortest_path(SwitchId(1), SwitchId(2)).unwrap().len(), 2);
    }

    #[test]
    fn star_limits() {
        assert!(star(0).is_err());
        assert!(star(17).is_err());
        assert!(star(16).is_ok());
    }

    #[test]
    fn tree_shape() {
        let t = tree(2, 3).unwrap();
        assert_eq!(t.switch_count(), 7);
        assert_eq!(t.links().len(), 12); // 6 bidi edges
        assert!(t.validate_connected().is_ok());
        // Leaf to leaf across the root: 4 hops.
        assert_eq!(t.shortest_path(SwitchId(3), SwitchId(6)).unwrap().len(), 4);
        // Root degree = arity; leaf degree = 1.
        assert_eq!(t.switch_degree(SwitchId(0)), 2);
        assert_eq!(t.switch_degree(SwitchId(3)), 1);
    }

    #[test]
    fn tree_single_level_is_one_switch() {
        let t = tree(4, 1).unwrap();
        assert_eq!(t.switch_count(), 1);
        assert!(t.links().is_empty());
    }

    #[test]
    fn tree_limits() {
        assert!(tree(0, 2).is_err());
        assert!(tree(2, 0).is_err());
        assert!(tree(15, 2).is_err());
        assert!(tree(14, 2).is_ok());
    }

    #[test]
    fn spidergon_cross_links() {
        let t = spidergon(8).unwrap();
        assert_eq!(t.switch_count(), 8);
        // ring: 16 edges; cross: 4 bidi = 8 edges.
        assert_eq!(t.links().len(), 24);
        // opposite node reachable in 1 hop via the cross link.
        assert_eq!(t.shortest_path(SwitchId(0), SwitchId(4)).unwrap().len(), 1);
    }

    #[test]
    fn spidergon_rejects_odd_and_small() {
        assert!(spidergon(5).is_err());
        assert!(spidergon(2).is_err());
        assert!(spidergon(4).is_ok());
    }
}
