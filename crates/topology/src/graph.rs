//! The [`Topology`] graph: switches, directed links and NI attachments.

use std::collections::{HashMap, HashSet, VecDeque};
use std::error::Error;
use std::fmt;

/// Identifier of a switch within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SwitchId(pub usize);

/// Identifier of a network interface within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NiId(pub usize);

/// A switch port index. xpipes source routes encode ports in 4 bits, so
/// valid ports are `0..=15`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u8);

impl PortId {
    /// Largest representable port (source-route field is 4 bits).
    pub const MAX: u8 = 15;
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SB{}", self.0)
    }
}

impl fmt::Display for NiId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NI{}", self.0)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Which side of the transaction protocol an NI serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NiKind {
    /// Connects a master core (CPU, DMA): packetizes requests, receives
    /// responses.
    Initiator,
    /// Connects a slave core (memory, peripheral): receives requests,
    /// packetizes responses.
    Target,
}

impl fmt::Display for NiKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NiKind::Initiator => "initiator",
            NiKind::Target => "target",
        })
    }
}

/// A unidirectional switch-to-switch channel. Bidirectional links are two
/// edges.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkEdge {
    /// Source switch.
    pub from: SwitchId,
    /// Output port on the source switch.
    pub from_port: PortId,
    /// Destination switch.
    pub to: SwitchId,
    /// Input port on the destination switch.
    pub to_port: PortId,
    /// Physical length estimate in millimetres (filled by the
    /// floorplanner; 1.0 by default).
    pub length_mm: f64,
    /// Link pipeline depth in cycles (paper: links are pipelined).
    pub pipeline_stages: u32,
}

/// An NI attached to a switch port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NiAttachment {
    /// The NI.
    pub ni: NiId,
    /// Human-readable core name ("arm0", "sdram").
    pub name: String,
    /// Initiator or target.
    pub kind: NiKind,
    /// Switch it attaches to.
    pub switch: SwitchId,
    /// Port on that switch (used both to inject and to eject).
    pub port: PortId,
}

/// Errors from topology construction and validation.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// Referenced switch does not exist.
    UnknownSwitch(SwitchId),
    /// Referenced NI does not exist.
    UnknownNi(NiId),
    /// Port number exceeds [`PortId::MAX`].
    PortOutOfRange(u8),
    /// Two connections claim the same (switch, port).
    PortConflict { switch: SwitchId, port: PortId },
    /// The switch graph is not strongly connected.
    Disconnected {
        from: SwitchId,
        unreachable: SwitchId,
    },
    /// A mesh/torus dimension was zero.
    EmptyDimension,
    /// No route exists between the two NIs.
    NoRoute { from: NiId, to: NiId },
    /// A grid coordinate was outside the mesh.
    CoordOutOfRange { x: usize, y: usize },
    /// Too many NIs attached to one switch (ports exhausted).
    PortsExhausted(SwitchId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownSwitch(s) => write!(f, "unknown switch {s}"),
            TopologyError::UnknownNi(n) => write!(f, "unknown NI {n}"),
            TopologyError::PortOutOfRange(p) => {
                write!(f, "port {p} exceeds the 4-bit source-route field")
            }
            TopologyError::PortConflict { switch, port } => {
                write!(f, "port {port} on {switch} connected twice")
            }
            TopologyError::Disconnected { from, unreachable } => {
                write!(f, "{unreachable} unreachable from {from}")
            }
            TopologyError::EmptyDimension => write!(f, "topology dimension must be positive"),
            TopologyError::NoRoute { from, to } => write!(f, "no route from {from} to {to}"),
            TopologyError::CoordOutOfRange { x, y } => {
                write!(f, "coordinate ({x}, {y}) outside the grid")
            }
            TopologyError::PortsExhausted(s) => {
                write!(f, "no free port left on {s}")
            }
        }
    }
}

impl Error for TopologyError {}

/// A validated NoC topology: switches, unidirectional links and NI
/// attachment points.
///
/// Construct with [`Topology::new`] and the `add_*` methods, or through
/// the regular builders in [`crate::builders`]. All mutating methods
/// validate their arguments eagerly.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    switch_names: Vec<String>,
    links: Vec<LinkEdge>,
    nis: Vec<NiAttachment>,
    /// (switch, port) pairs already in use, for conflict detection.
    used_ports: HashSet<(SwitchId, PortId)>,
    /// Per-switch indices into `links` of the edges leaving that switch.
    /// Keeps [`Topology::out_links`] O(degree) instead of O(links) — the
    /// difference between milliseconds and minutes when validating and
    /// routing a 64x64 mesh.
    out_adj: Vec<Vec<usize>>,
    /// Output-direction port occupancy ((from, from_port) of some link).
    out_ports: HashSet<(SwitchId, PortId)>,
    /// Input-direction port occupancy ((to, to_port) of some link).
    in_ports: HashSet<(SwitchId, PortId)>,
    /// Ports taken by NI attachments.
    ni_ports: HashSet<(SwitchId, PortId)>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a switch and returns its id.
    pub fn add_switch(&mut self, name: impl Into<String>) -> SwitchId {
        let id = SwitchId(self.switch_names.len());
        self.switch_names.push(name.into());
        self.out_adj.push(Vec::new());
        id
    }

    /// Adds a unidirectional link.
    ///
    /// # Errors
    ///
    /// Rejects unknown switches, out-of-range ports and port conflicts
    /// (an output port can feed only one link, an input port can be fed by
    /// only one link; input and output directions are tracked separately).
    pub fn add_link(
        &mut self,
        from: SwitchId,
        from_port: PortId,
        to: SwitchId,
        to_port: PortId,
        pipeline_stages: u32,
    ) -> Result<(), TopologyError> {
        self.check_switch(from)?;
        self.check_switch(to)?;
        Self::check_port(from_port)?;
        Self::check_port(to_port)?;
        if self.out_ports.contains(&(from, from_port)) {
            return Err(TopologyError::PortConflict {
                switch: from,
                port: from_port,
            });
        }
        if self.in_ports.contains(&(to, to_port)) {
            return Err(TopologyError::PortConflict {
                switch: to,
                port: to_port,
            });
        }
        if self.ni_ports.contains(&(from, from_port)) || self.ni_ports.contains(&(to, to_port)) {
            return Err(TopologyError::PortConflict {
                switch: from,
                port: from_port,
            });
        }
        self.used_ports.insert((from, from_port));
        self.used_ports.insert((to, to_port));
        self.out_ports.insert((from, from_port));
        self.in_ports.insert((to, to_port));
        self.out_adj[from.0].push(self.links.len());
        self.links.push(LinkEdge {
            from,
            from_port,
            to,
            to_port,
            length_mm: 1.0,
            pipeline_stages,
        });
        Ok(())
    }

    /// Adds a bidirectional link: two edges using the same port number on
    /// each side (xpipes ports are full-duplex in/out pairs).
    pub fn add_bidi_link(
        &mut self,
        a: SwitchId,
        a_port: PortId,
        b: SwitchId,
        b_port: PortId,
        pipeline_stages: u32,
    ) -> Result<(), TopologyError> {
        self.add_link(a, a_port, b, b_port, pipeline_stages)?;
        self.add_link(b, b_port, a, a_port, pipeline_stages)
    }

    /// Attaches an NI to a switch port and returns its id.
    ///
    /// # Errors
    ///
    /// Rejects unknown switches, out-of-range ports and ports already in
    /// use by links or other NIs.
    pub fn attach_ni(
        &mut self,
        name: impl Into<String>,
        kind: NiKind,
        switch: SwitchId,
        port: PortId,
    ) -> Result<NiId, TopologyError> {
        self.check_switch(switch)?;
        Self::check_port(port)?;
        if self.used_ports.contains(&(switch, port)) || self.ni_ports.contains(&(switch, port)) {
            return Err(TopologyError::PortConflict { switch, port });
        }
        let ni = NiId(self.nis.len());
        self.ni_ports.insert((switch, port));
        self.nis.push(NiAttachment {
            ni,
            name: name.into(),
            kind,
            switch,
            port,
        });
        Ok(ni)
    }

    /// Attaches an NI on the lowest free port of `switch`.
    ///
    /// # Errors
    ///
    /// [`TopologyError::PortsExhausted`] if all 16 ports are taken.
    pub fn attach_ni_auto(
        &mut self,
        name: impl Into<String>,
        kind: NiKind,
        switch: SwitchId,
    ) -> Result<NiId, TopologyError> {
        self.check_switch(switch)?;
        for p in 0..=PortId::MAX {
            let port = PortId(p);
            let used = self.used_ports.contains(&(switch, port))
                || self.ni_ports.contains(&(switch, port));
            if !used {
                return self.attach_ni(name, kind, switch, port);
            }
        }
        Err(TopologyError::PortsExhausted(switch))
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switch_names.len()
    }

    /// Name of a switch.
    pub fn switch_name(&self, id: SwitchId) -> Option<&str> {
        self.switch_names.get(id.0).map(String::as_str)
    }

    /// All switch ids.
    pub fn switches(&self) -> impl Iterator<Item = SwitchId> + '_ {
        (0..self.switch_names.len()).map(SwitchId)
    }

    /// All link edges.
    pub fn links(&self) -> &[LinkEdge] {
        &self.links
    }

    /// Mutable access to link edges (floorplanner updates lengths).
    ///
    /// Only `length_mm` and `pipeline_stages` may be changed: rewiring
    /// endpoints or ports here would desynchronise the adjacency index
    /// that backs [`Topology::out_links`].
    pub fn links_mut(&mut self) -> &mut [LinkEdge] {
        &mut self.links
    }

    /// All NI attachments.
    pub fn nis(&self) -> &[NiAttachment] {
        &self.nis
    }

    /// Attachment record of an NI.
    pub fn ni(&self, id: NiId) -> Option<&NiAttachment> {
        self.nis.get(id.0)
    }

    /// NIs of a given kind.
    pub fn nis_of_kind(&self, kind: NiKind) -> impl Iterator<Item = &NiAttachment> {
        self.nis.iter().filter(move |ni| ni.kind == kind)
    }

    /// Looks up an NI by core name.
    pub fn ni_by_name(&self, name: &str) -> Option<&NiAttachment> {
        self.nis.iter().find(|ni| ni.name == name)
    }

    /// Number of ports in use on a switch (its radix when instantiated).
    pub fn switch_degree(&self, id: SwitchId) -> usize {
        let mut ports = HashSet::new();
        for l in &self.links {
            if l.from == id {
                ports.insert(l.from_port);
            }
            if l.to == id {
                ports.insert(l.to_port);
            }
        }
        for ni in &self.nis {
            if ni.switch == id {
                ports.insert(ni.port);
            }
        }
        ports.len()
    }

    /// Out-edges of a switch, via the per-switch adjacency index.
    pub fn out_links(&self, id: SwitchId) -> impl Iterator<Item = &LinkEdge> {
        self.out_adj
            .get(id.0)
            .into_iter()
            .flatten()
            .map(move |&i| &self.links[i])
    }

    /// Shortest switch-to-switch path by hop count (BFS). Returns the
    /// sequence of link edges traversed, or `None` if unreachable.
    pub fn shortest_path(&self, from: SwitchId, to: SwitchId) -> Option<Vec<&LinkEdge>> {
        if from == to {
            return Some(Vec::new());
        }
        let mut prev: HashMap<SwitchId, &LinkEdge> = HashMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(from);
        let mut seen = HashSet::new();
        seen.insert(from);
        while let Some(s) = queue.pop_front() {
            for l in self.out_links(s) {
                if seen.insert(l.to) {
                    prev.insert(l.to, l);
                    if l.to == to {
                        let mut path = Vec::new();
                        let mut cur = to;
                        while cur != from {
                            let l = prev[&cur];
                            path.push(l);
                            cur = l.from;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(l.to);
                }
            }
        }
        None
    }

    /// Checks that every switch can reach every other switch.
    ///
    /// # Errors
    ///
    /// [`TopologyError::Disconnected`] naming the first unreachable pair.
    pub fn validate_connected(&self) -> Result<(), TopologyError> {
        if self.switch_names.is_empty() {
            return Ok(());
        }
        // Strong connectivity in two BFS passes instead of one per
        // switch: every node reaches every other node iff some root
        // reaches all (forward pass) and all reach the root (reverse
        // pass). O(V + E) twice — the all-sources scan was O(V²·E) and
        // took minutes on a 64x64 mesh.
        let root = SwitchId(0);
        let mut seen = vec![false; self.switch_names.len()];
        seen[root.0] = true;
        let mut queue = VecDeque::from([root]);
        while let Some(s) = queue.pop_front() {
            for l in self.out_links(s) {
                if !seen[l.to.0] {
                    seen[l.to.0] = true;
                    queue.push_back(l.to);
                }
            }
        }
        if let Some(u) = seen.iter().position(|&v| !v) {
            return Err(TopologyError::Disconnected {
                from: root,
                unreachable: SwitchId(u),
            });
        }
        let mut in_adj: Vec<Vec<SwitchId>> = vec![Vec::new(); self.switch_names.len()];
        for l in &self.links {
            in_adj[l.to.0].push(l.from);
        }
        let mut seen = vec![false; self.switch_names.len()];
        seen[root.0] = true;
        let mut queue = VecDeque::from([root]);
        while let Some(s) = queue.pop_front() {
            for &from in &in_adj[s.0] {
                if !seen[from.0] {
                    seen[from.0] = true;
                    queue.push_back(from);
                }
            }
        }
        if let Some(u) = seen.iter().position(|&v| !v) {
            return Err(TopologyError::Disconnected {
                from: SwitchId(u),
                unreachable: root,
            });
        }
        Ok(())
    }

    /// Average hop distance between all initiator→target NI pairs
    /// (switch traversals, not counting injection/ejection).
    pub fn avg_initiator_target_hops(&self) -> f64 {
        let mut total = 0usize;
        let mut pairs = 0usize;
        for src in self.nis_of_kind(NiKind::Initiator) {
            for dst in self.nis_of_kind(NiKind::Target) {
                if let Some(path) = self.shortest_path(src.switch, dst.switch) {
                    total += path.len() + 1; // +1: traversal of the final switch
                    pairs += 1;
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        }
    }

    fn check_switch(&self, id: SwitchId) -> Result<(), TopologyError> {
        if id.0 < self.switch_names.len() {
            Ok(())
        } else {
            Err(TopologyError::UnknownSwitch(id))
        }
    }

    fn check_port(port: PortId) -> Result<(), TopologyError> {
        if port.0 <= PortId::MAX {
            Ok(())
        } else {
            Err(TopologyError::PortOutOfRange(port.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_switch_topo() -> (Topology, SwitchId, SwitchId) {
        let mut t = Topology::new();
        let a = t.add_switch("a");
        let b = t.add_switch("b");
        t.add_bidi_link(a, PortId(0), b, PortId(0), 1).unwrap();
        (t, a, b)
    }

    #[test]
    fn add_switch_assigns_sequential_ids() {
        let mut t = Topology::new();
        assert_eq!(t.add_switch("x"), SwitchId(0));
        assert_eq!(t.add_switch("y"), SwitchId(1));
        assert_eq!(t.switch_name(SwitchId(1)), Some("y"));
        assert_eq!(t.switch_count(), 2);
    }

    #[test]
    fn bidi_link_creates_two_edges() {
        let (t, a, b) = two_switch_topo();
        assert_eq!(t.links().len(), 2);
        assert_eq!(t.out_links(a).count(), 1);
        assert_eq!(t.out_links(b).count(), 1);
    }

    #[test]
    fn link_to_unknown_switch_rejected() {
        let mut t = Topology::new();
        let a = t.add_switch("a");
        let err = t
            .add_link(a, PortId(0), SwitchId(7), PortId(0), 1)
            .unwrap_err();
        assert_eq!(err, TopologyError::UnknownSwitch(SwitchId(7)));
    }

    #[test]
    fn output_port_conflict_rejected() {
        let mut t = Topology::new();
        let a = t.add_switch("a");
        let b = t.add_switch("b");
        let c = t.add_switch("c");
        t.add_link(a, PortId(0), b, PortId(0), 1).unwrap();
        let err = t.add_link(a, PortId(0), c, PortId(0), 1).unwrap_err();
        assert!(matches!(err, TopologyError::PortConflict { .. }));
    }

    #[test]
    fn ni_port_conflict_with_link_rejected() {
        let (mut t, a, _) = two_switch_topo();
        let err = t
            .attach_ni("cpu", NiKind::Initiator, a, PortId(0))
            .unwrap_err();
        assert!(matches!(err, TopologyError::PortConflict { .. }));
    }

    #[test]
    fn ni_attach_and_lookup() {
        let (mut t, a, b) = two_switch_topo();
        let cpu = t.attach_ni("cpu", NiKind::Initiator, a, PortId(1)).unwrap();
        let mem = t.attach_ni("mem", NiKind::Target, b, PortId(1)).unwrap();
        assert_eq!(t.ni(cpu).unwrap().name, "cpu");
        assert_eq!(t.ni_by_name("mem").unwrap().ni, mem);
        assert_eq!(t.nis_of_kind(NiKind::Initiator).count(), 1);
        assert_eq!(t.nis_of_kind(NiKind::Target).count(), 1);
    }

    #[test]
    fn auto_attach_picks_free_ports() {
        let (mut t, a, _) = two_switch_topo();
        let n1 = t.attach_ni_auto("x", NiKind::Initiator, a).unwrap();
        let n2 = t.attach_ni_auto("y", NiKind::Target, a).unwrap();
        assert_eq!(t.ni(n1).unwrap().port, PortId(1)); // 0 used by link
        assert_eq!(t.ni(n2).unwrap().port, PortId(2));
    }

    #[test]
    fn auto_attach_exhausts() {
        let mut t = Topology::new();
        let a = t.add_switch("a");
        for i in 0..16 {
            t.attach_ni(format!("n{i}"), NiKind::Target, a, PortId(i))
                .unwrap();
        }
        let err = t.attach_ni_auto("overflow", NiKind::Target, a).unwrap_err();
        assert_eq!(err, TopologyError::PortsExhausted(a));
    }

    #[test]
    fn port_out_of_range_rejected() {
        let mut t = Topology::new();
        let a = t.add_switch("a");
        let err = t.attach_ni("n", NiKind::Target, a, PortId(16)).unwrap_err();
        assert_eq!(err, TopologyError::PortOutOfRange(16));
    }

    #[test]
    fn switch_degree_counts_distinct_ports() {
        let (mut t, a, _) = two_switch_topo();
        t.attach_ni("cpu", NiKind::Initiator, a, PortId(1)).unwrap();
        t.attach_ni("dsp", NiKind::Initiator, a, PortId(2)).unwrap();
        assert_eq!(t.switch_degree(a), 3); // link port + 2 NI ports
    }

    #[test]
    fn shortest_path_on_line() {
        let mut t = Topology::new();
        let s: Vec<_> = (0..4).map(|i| t.add_switch(format!("s{i}"))).collect();
        for w in s.windows(2) {
            t.add_bidi_link(w[0], PortId(0), w[1], PortId(1), 1)
                .unwrap();
        }
        let path = t.shortest_path(s[0], s[3]).unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(path[0].from, s[0]);
        assert_eq!(path[2].to, s[3]);
        assert!(t.shortest_path(s[2], s[2]).unwrap().is_empty());
    }

    #[test]
    fn connectivity_validation() {
        let (t, _, _) = two_switch_topo();
        assert!(t.validate_connected().is_ok());

        let mut t2 = Topology::new();
        let a = t2.add_switch("a");
        let b = t2.add_switch("b");
        t2.add_link(a, PortId(0), b, PortId(0), 1).unwrap(); // one-way only
        let err = t2.validate_connected().unwrap_err();
        assert!(matches!(err, TopologyError::Disconnected { .. }));
    }

    #[test]
    fn empty_topology_is_connected() {
        assert!(Topology::new().validate_connected().is_ok());
    }

    #[test]
    fn avg_hops_simple() {
        let (mut t, a, b) = two_switch_topo();
        t.attach_ni("cpu", NiKind::Initiator, a, PortId(1)).unwrap();
        t.attach_ni("mem", NiKind::Target, b, PortId(1)).unwrap();
        // one link + final switch traversal = 2
        assert_eq!(t.avg_initiator_target_hops(), 2.0);
    }

    #[test]
    fn display_impls() {
        assert_eq!(SwitchId(3).to_string(), "SB3");
        assert_eq!(NiId(1).to_string(), "NI1");
        assert_eq!(PortId(5).to_string(), "p5");
        assert_eq!(NiKind::Initiator.to_string(), "initiator");
    }
}
