//! Fault models and campaign reports for deterministic fault injection.
//!
//! The xpipes Lite protocol stack is "designed for pipelined, unreliable
//! links": the ACK/nACK go-back-N layer must mask forward-channel flit
//! corruption, reverse-channel ACK/nACK loss, and transient backpressure.
//! This module defines the *specification* side of a fault-injection
//! campaign — which fault to inject at what rate — and the
//! machine-readable report the campaign runner emits. The injection
//! itself happens in the component models (`xpipes::link`,
//! `xpipes::switch`); the sweep orchestration lives in
//! `xpipes_traffic::faultcampaign`.
//!
//! Everything here is deterministic: a [`FaultPlan`] contains only rates
//! and lengths (the RNG streams live in the simulated components), and
//! [`CampaignReport::to_json`] renders byte-stable JSON.

use crate::json::Json;

/// The fault models a campaign can sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Independent single-flit corruption on the forward channel
    /// (a failed CRC at the receiver).
    FlitCorruption,
    /// Bursty forward-channel corruption: each trigger corrupts a run of
    /// consecutive flits (models a multi-cycle glitch on the wires).
    BurstCorruption,
    /// Reverse-channel ACK/nACK messages dropped in flight.
    AckLoss,
    /// Reverse-channel ACK/nACK messages corrupted in flight. Control
    /// lines are CRC-protected, so a corrupted message is detected and
    /// discarded at the receiving sender — observably a drop, but
    /// counted separately.
    AckCorruption,
    /// Transient backpressure stalls at switch output buffers: a stalled
    /// output transmits nothing for a run of cycles.
    OutputStall,
}

impl FaultKind {
    /// Every fault model, in canonical campaign order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::FlitCorruption,
        FaultKind::BurstCorruption,
        FaultKind::AckLoss,
        FaultKind::AckCorruption,
        FaultKind::OutputStall,
    ];

    /// Stable machine-readable name (used in reports and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::FlitCorruption => "flit-corruption",
            FaultKind::BurstCorruption => "burst-corruption",
            FaultKind::AckLoss => "ack-loss",
            FaultKind::AckCorruption => "ack-corruption",
            FaultKind::OutputStall => "output-stall",
        }
    }

    /// Parses a [`name`](Self::name) back into a kind.
    pub fn from_name(name: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// The single-fault plan injecting this model at `rate`.
    pub fn plan(self, rate: f64) -> FaultPlan {
        let mut plan = FaultPlan::none();
        match self {
            FaultKind::FlitCorruption => plan.flit_corruption_rate = rate,
            FaultKind::BurstCorruption => {
                plan.flit_corruption_rate = rate;
                plan.corruption_burst_len = FaultPlan::DEFAULT_BURST_LEN;
            }
            FaultKind::AckLoss => plan.ack_loss_rate = rate,
            FaultKind::AckCorruption => plan.ack_corruption_rate = rate,
            FaultKind::OutputStall => {
                plan.stall_rate = rate;
                plan.stall_len = FaultPlan::DEFAULT_STALL_LEN;
            }
        }
        plan.clamped()
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete fault-injection configuration. Fault models compose: a
/// plan may corrupt flits *and* drop ACKs *and* stall outputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Per-traversal probability that an entering forward flit starts a
    /// corruption event.
    pub flit_corruption_rate: f64,
    /// Flits corrupted per corruption event (1 = independent single-flit
    /// corruption).
    pub corruption_burst_len: u32,
    /// Per-message probability that a reverse-channel ACK/nACK is lost.
    pub ack_loss_rate: f64,
    /// Per-message probability that a reverse-channel ACK/nACK is
    /// corrupted (detected by the control CRC and discarded).
    pub ack_corruption_rate: f64,
    /// Per-cycle, per-switch-output probability of triggering a stall.
    pub stall_rate: f64,
    /// Cycles a triggered output stall lasts.
    pub stall_len: u32,
}

impl FaultPlan {
    /// Burst length used by [`FaultKind::BurstCorruption`].
    pub const DEFAULT_BURST_LEN: u32 = 4;
    /// Stall duration used by [`FaultKind::OutputStall`].
    pub const DEFAULT_STALL_LEN: u32 = 12;

    /// The fault-free plan.
    pub fn none() -> Self {
        FaultPlan {
            flit_corruption_rate: 0.0,
            corruption_burst_len: 1,
            ack_loss_rate: 0.0,
            ack_corruption_rate: 0.0,
            stall_rate: 0.0,
            stall_len: 0,
        }
    }

    /// True when the plan injects nothing.
    pub fn is_benign(&self) -> bool {
        self.flit_corruption_rate <= 0.0
            && self.ack_loss_rate <= 0.0
            && self.ack_corruption_rate <= 0.0
            && self.stall_rate <= 0.0
    }

    /// Same plan with all probabilities clamped into `[0, 1]` and
    /// lengths floored at 1 where a trigger exists.
    #[must_use]
    pub fn clamped(mut self) -> Self {
        self.flit_corruption_rate = self.flit_corruption_rate.clamp(0.0, 1.0);
        self.ack_loss_rate = self.ack_loss_rate.clamp(0.0, 1.0);
        self.ack_corruption_rate = self.ack_corruption_rate.clamp(0.0, 1.0);
        self.stall_rate = self.stall_rate.clamp(0.0, 1.0);
        self.corruption_burst_len = self.corruption_burst_len.max(1);
        if self.stall_rate > 0.0 {
            self.stall_len = self.stall_len.max(1);
        }
        self
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Aggregate measurements of one simulated run (fault-free baseline or
/// one fault/rate grid point).
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Cycles simulated, including the drain phase.
    pub cycles: u64,
    /// Packets injected by all NIs.
    pub packets_sent: u64,
    /// Packets fully reassembled at their destination NI.
    pub packets_delivered: u64,
    /// Flit retransmissions over all links (switch and NI senders).
    pub retransmissions: u64,
    /// Forward flits corrupted by the injectors.
    pub flits_corrupted: u64,
    /// Reverse-channel messages dropped.
    pub acks_dropped: u64,
    /// Reverse-channel messages corrupted (detected and discarded).
    pub acks_corrupted: u64,
    /// Sender ACK-timeout rewinds.
    pub ack_timeouts: u64,
    /// Switch output cycles lost to injected stalls.
    pub stall_cycles: u64,
    /// Mean transaction round-trip latency in cycles.
    pub avg_latency: f64,
    /// Whether the network drained within the cycle budget.
    pub drained: bool,
    /// Per-component telemetry digest (hot links, peak queue depth),
    /// when the run collected one. A pure function of end-of-run
    /// component counters, so reports stay byte-deterministic at any
    /// worker count.
    pub telemetry: Option<crate::telemetry::TelemetrySummary>,
    /// Per-packet latency attribution digest (phase totals, worst flow),
    /// when the run collected one. Like `telemetry`, a pure function of
    /// end-of-run state — byte-deterministic at any worker count.
    pub attribution: Option<crate::attribution::AttributionSummary>,
}

impl RunSummary {
    fn to_json(&self) -> Json {
        let mut b = Json::object()
            .field("cycles", Json::UInt(self.cycles))
            .field("packets_sent", Json::UInt(self.packets_sent))
            .field("packets_delivered", Json::UInt(self.packets_delivered))
            .field("retransmissions", Json::UInt(self.retransmissions))
            .field("flits_corrupted", Json::UInt(self.flits_corrupted))
            .field("acks_dropped", Json::UInt(self.acks_dropped))
            .field("acks_corrupted", Json::UInt(self.acks_corrupted))
            .field("ack_timeouts", Json::UInt(self.ack_timeouts))
            .field("stall_cycles", Json::UInt(self.stall_cycles))
            .field("avg_latency", Json::Fixed(self.avg_latency, 3))
            .field("drained", Json::Bool(self.drained));
        if let Some(telemetry) = &self.telemetry {
            b = b.field("telemetry", telemetry.to_json());
        }
        if let Some(attribution) = &self.attribution {
            b = b.field("attribution", attribution.to_json());
        }
        b.build()
    }
}

/// One grid point of the campaign: a fault model at an error rate.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRun {
    /// Fault model name ([`FaultKind::name`]).
    pub fault: String,
    /// Injected error rate.
    pub rate: f64,
    /// Measurements.
    pub summary: RunSummary,
    /// Rendered invariant violations (empty on a clean run).
    pub violations: Vec<String>,
    /// `avg_latency / baseline.avg_latency` (1.0 when the baseline is
    /// degenerate).
    pub latency_factor: f64,
    /// True when no invariant was violated and the network drained.
    pub pass: bool,
    /// Flight-recorder dump (rendered last-K flit events), captured when
    /// the run tripped an invariant or failed to drain. Empty on a
    /// clean run.
    pub flight_dump: Vec<String>,
}

impl FaultRun {
    fn to_json(&self) -> Json {
        let mut b = Json::object()
            .field("fault", Json::str(&self.fault))
            .field("rate", Json::Fixed(self.rate, 4))
            .field("pass", Json::Bool(self.pass))
            .field("latency_factor", Json::Fixed(self.latency_factor, 3))
            .field(
                "violations",
                Json::Array(self.violations.iter().map(Json::str).collect()),
            );
        if !self.flight_dump.is_empty() {
            b = b.field(
                "flight_dump",
                Json::Array(self.flight_dump.iter().map(Json::str).collect()),
            );
        }
        b.field("summary", self.summary.to_json()).build()
    }
}

/// The complete campaign result.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Design / campaign name.
    pub name: String,
    /// Master seed every run's RNG streams derive from.
    pub seed: u64,
    /// Injection cycles per run (drain budget excluded).
    pub cycles: u64,
    /// The fault-free reference run.
    pub baseline: RunSummary,
    /// One entry per (fault model, rate) grid point.
    pub runs: Vec<FaultRun>,
    /// True when every grid point passed.
    pub pass: bool,
}

impl CampaignReport {
    /// Renders the byte-stable JSON document.
    pub fn to_json(&self) -> String {
        Json::object()
            .field("campaign", Json::str(&self.name))
            .field("seed", Json::UInt(self.seed))
            .field("cycles", Json::UInt(self.cycles))
            .field("pass", Json::Bool(self.pass))
            .field("baseline", self.baseline.to_json())
            .field(
                "runs",
                Json::Array(self.runs.iter().map(FaultRun::to_json).collect()),
            )
            .build()
            .render()
    }

    /// Grid points that violated an invariant or failed to drain.
    pub fn failures(&self) -> impl Iterator<Item = &FaultRun> {
        self.runs.iter().filter(|r| !r.pass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(FaultKind::from_name("nope"), None);
    }

    #[test]
    fn single_fault_plans_touch_one_knob() {
        let p = FaultKind::FlitCorruption.plan(0.1);
        assert_eq!(p.flit_corruption_rate, 0.1);
        assert_eq!(p.corruption_burst_len, 1);
        assert_eq!(p.ack_loss_rate, 0.0);

        let b = FaultKind::BurstCorruption.plan(0.1);
        assert_eq!(b.corruption_burst_len, FaultPlan::DEFAULT_BURST_LEN);

        let s = FaultKind::OutputStall.plan(0.05);
        assert_eq!(s.stall_len, FaultPlan::DEFAULT_STALL_LEN);
        assert!(!s.is_benign());
        assert!(FaultPlan::none().is_benign());
    }

    #[test]
    fn plans_clamp_rates() {
        let p = FaultKind::AckLoss.plan(7.0);
        assert_eq!(p.ack_loss_rate, 1.0);
        let mut raw = FaultPlan::none();
        raw.stall_rate = -1.0;
        raw.corruption_burst_len = 0;
        let c = raw.clamped();
        assert_eq!(c.stall_rate, 0.0);
        assert_eq!(c.corruption_burst_len, 1);
    }

    #[test]
    fn report_json_is_stable_and_ordered() {
        let summary = RunSummary {
            cycles: 100,
            packets_sent: 10,
            packets_delivered: 10,
            retransmissions: 2,
            flits_corrupted: 1,
            acks_dropped: 0,
            acks_corrupted: 0,
            ack_timeouts: 0,
            stall_cycles: 0,
            avg_latency: 31.25,
            drained: true,
            telemetry: Some(crate::telemetry::TelemetrySummary {
                total_retransmissions: 2,
                link_retransmissions: vec![("sw0.p1->sw1.p0".into(), 2)],
                peak_queue_depth: 3,
                peak_queue_switch: "sw0".into(),
            }),
            attribution: Some(crate::attribution::AttributionSummary {
                packets: 10,
                incomplete: 0,
                in_flight: 0,
                phase_totals: [5, 10, 0, 0, 290, 8],
                worst_flow: Some(("ini0".into(), "tgt3".into(), 44)),
            }),
        };
        let report = CampaignReport {
            name: "demo".into(),
            seed: 7,
            cycles: 100,
            baseline: summary.clone(),
            runs: vec![FaultRun {
                fault: "flit-corruption".into(),
                rate: 0.01,
                summary,
                violations: vec![],
                latency_factor: 1.0,
                pass: true,
                flight_dump: vec!["[cycle 90] transmit ch0(a->b) pkt 1 seq 0".into()],
            }],
            pass: true,
        };
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"campaign\": \"demo\""));
        assert!(a.contains("\"rate\": 0.0100"));
        assert!(a.contains("\"avg_latency\": 31.250"));
        assert!(a.contains("\"peak_queue_depth\": 3"));
        assert!(a.contains("\"flight_dump\""));
        assert!(a.contains("\"retx_penalty\": 8"));
        assert!(a.contains("\"worst_flow\""));
        assert_eq!(report.failures().count(), 0);
    }
}
