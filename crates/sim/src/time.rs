//! Simulation time: the [`Cycle`] newtype.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A clock-cycle timestamp.
///
/// Cycle counts are the only notion of time in the kernel; physical time is
/// derived downstream by the synthesis model (cycle period = 1/fmax).
///
/// # Examples
///
/// ```
/// use xpipes_sim::Cycle;
///
/// let t = Cycle::ZERO.next() + 3;
/// assert_eq!(t.as_u64(), 4);
/// assert_eq!(t - Cycle::new(1), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero, the first simulated cycle.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle timestamp from a raw count.
    pub const fn new(count: u64) -> Self {
        Cycle(count)
    }

    /// Returns the raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The immediately following cycle.
    #[must_use]
    pub const fn next(self) -> Self {
        Cycle(self.0 + 1)
    }

    /// Saturating distance in cycles from `earlier` to `self`.
    ///
    /// Returns 0 when `earlier` is later than `self` rather than wrapping,
    /// so latency accounting can never underflow.
    #[must_use]
    pub const fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    /// Cycle difference; panics in debug builds on underflow.
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl From<u64> for Cycle {
    fn from(count: u64) -> Self {
        Cycle(count)
    }
}

impl From<Cycle> for u64 {
    fn from(cycle: Cycle) -> Self {
        cycle.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(Cycle::default(), Cycle::ZERO);
        assert_eq!(Cycle::ZERO.as_u64(), 0);
    }

    #[test]
    fn next_increments() {
        assert_eq!(Cycle::ZERO.next(), Cycle::new(1));
        assert_eq!(Cycle::new(41).next().as_u64(), 42);
    }

    #[test]
    fn add_and_sub() {
        let t = Cycle::new(10) + 5;
        assert_eq!(t, Cycle::new(15));
        assert_eq!(t - Cycle::new(10), 5);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut t = Cycle::ZERO;
        t += 7;
        t += 3;
        assert_eq!(t.as_u64(), 10);
    }

    #[test]
    fn since_saturates() {
        assert_eq!(Cycle::new(5).since(Cycle::new(2)), 3);
        assert_eq!(Cycle::new(2).since(Cycle::new(5)), 0);
    }

    #[test]
    fn conversions_roundtrip() {
        let t: Cycle = 99u64.into();
        let raw: u64 = t.into();
        assert_eq!(raw, 99);
    }

    #[test]
    fn display_format() {
        assert_eq!(Cycle::new(17).to_string(), "@17");
    }

    #[test]
    fn ordering_follows_count() {
        assert!(Cycle::new(1) < Cycle::new(2));
        assert!(Cycle::new(2) <= Cycle::new(2));
    }
}
