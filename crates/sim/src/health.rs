//! Kernel-health introspection: deterministic per-run dispatch counters.
//!
//! PR 6 rebuilt the cycle kernel around a structure-of-arrays schedule
//! with event-wheel time jumping, which made the engine fast but opaque:
//! nothing reported when or *why* the fast path disengaged, so a run
//! could silently lose the entire speedup. [`KernelHealth`] is the
//! answer — a plain-counter observer the `Noc` updates on every step:
//!
//! * **dispatch mix** — event-kernel steps vs reference-fallback steps,
//!   with a reason-code histogram ([`FallbackReason`]) for every
//!   fallback,
//! * **active-set occupancy** — scheduled channels/switches per event
//!   step (last and peak),
//! * **wheel depth/horizon** — pending target wakes and the next wake
//!   cycle,
//! * **time jumping** — jump count, cycles skipped, and synthetic
//!   telemetry samples emitted across jumped gaps.
//!
//! Every counter is a pure function of the simulated schedule, so the
//! whole struct is deterministic: byte-identical across repeated runs,
//! across `--jobs` worker counts, and (reason histogram aside, where the
//! kernels differ by construction) between the event and reference
//! kernels.
//!
//! # Quarantine contract
//!
//! `KernelHealth` is *introspection*, not simulation state. It is never
//! serialized into checkpoints, never folded into
//! [`TelemetrySummary`](crate::telemetry::TelemetrySummary), and never
//! rendered into campaign or attribution reports — all the byte-compared
//! artifacts are unchanged whether or not anyone looks at it. It appears
//! only in the bench telemetry JSON report (`kernel_health` section), the
//! `--explain-kernel` rendering, progress heartbeat lines, and Perfetto
//! counter tracks.

use crate::json::Json;

/// Why a step fell back to the full-scan reference body instead of the
/// scheduled event kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// A VCD trace sink is armed; every channel must be scanned for
    /// value changes each cycle.
    TraceArmed,
    /// A protocol monitor is armed; invariants are checked over the full
    /// component set each cycle.
    MonitorArmed,
    /// A stall-fault plan is active; fault injection probes every switch
    /// output each cycle.
    StallFaultsActive,
    /// No observer forced the fallback: the reference body was invoked
    /// directly (differential testing) with the schedule invalidated.
    ScheduleInvalidated,
}

impl FallbackReason {
    /// All reasons, in histogram order.
    pub const ALL: [FallbackReason; 4] = [
        FallbackReason::TraceArmed,
        FallbackReason::MonitorArmed,
        FallbackReason::StallFaultsActive,
        FallbackReason::ScheduleInvalidated,
    ];

    /// Stable snake_case label used in JSON reports and renderings.
    pub fn label(self) -> &'static str {
        match self {
            FallbackReason::TraceArmed => "trace_armed",
            FallbackReason::MonitorArmed => "monitor_armed",
            FallbackReason::StallFaultsActive => "stall_faults_active",
            FallbackReason::ScheduleInvalidated => "schedule_invalidated",
        }
    }

    fn index(self) -> usize {
        match self {
            FallbackReason::TraceArmed => 0,
            FallbackReason::MonitorArmed => 1,
            FallbackReason::StallFaultsActive => 2,
            FallbackReason::ScheduleInvalidated => 3,
        }
    }
}

/// One epoch-cadenced snapshot of the health counters, taken at the same
/// cycle boundaries as telemetry sampling so the series lines up with
/// congestion timelines in a Perfetto view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthSample {
    /// Cycle at which the sample was taken.
    pub cycle: u64,
    /// Cumulative event-kernel steps.
    pub event_steps: u64,
    /// Cumulative fallback steps.
    pub fallback_steps: u64,
    /// Cumulative cycles skipped by time jumps.
    pub cycles_skipped: u64,
    /// Scheduled channels at the most recent event step.
    pub sched_channels: u64,
    /// Pending target wakes in the event wheel.
    pub wheel_depth: u64,
}

/// Deterministic per-run kernel dispatch counters. See the module docs
/// for the full taxonomy and the quarantine contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelHealth {
    event_steps: u64,
    fallback_steps: u64,
    fallback_reasons: [u64; 4],
    schedule_rebuilds: u64,
    time_jumps: u64,
    cycles_skipped: u64,
    synthetic_samples: u64,
    sched_channels_last: u64,
    sched_channels_peak: u64,
    sched_switches_last: u64,
    sched_switches_peak: u64,
    wheel_depth_last: u64,
    wheel_depth_peak: u64,
    wheel_horizon: Option<u64>,
    samples: Vec<HealthSample>,
}

impl KernelHealth {
    /// A zeroed observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event-kernel step with its schedule occupancy and
    /// wheel state.
    pub fn note_event_step(
        &mut self,
        sched_channels: u64,
        sched_switches: u64,
        wheel_depth: u64,
        wheel_horizon: Option<u64>,
    ) {
        self.event_steps += 1;
        self.sched_channels_last = sched_channels;
        self.sched_channels_peak = self.sched_channels_peak.max(sched_channels);
        self.sched_switches_last = sched_switches;
        self.sched_switches_peak = self.sched_switches_peak.max(sched_switches);
        self.wheel_depth_last = wheel_depth;
        self.wheel_depth_peak = self.wheel_depth_peak.max(wheel_depth);
        self.wheel_horizon = wheel_horizon;
    }

    /// Records one full-scan fallback step and the reasons that forced
    /// it (every armed observer counts; a forced reference step with no
    /// observer armed counts as [`FallbackReason::ScheduleInvalidated`]).
    pub fn note_fallback_step(&mut self, reasons: &[FallbackReason]) {
        self.fallback_steps += 1;
        for &reason in reasons {
            self.fallback_reasons[reason.index()] += 1;
        }
    }

    /// Records one rebuild of the invalidated schedule on the fast path.
    pub fn note_rebuild(&mut self) {
        self.schedule_rebuilds += 1;
    }

    /// Records one time jump over `skipped` provably-idle cycles.
    pub fn note_jump(&mut self, skipped: u64) {
        self.time_jumps += 1;
        self.cycles_skipped += skipped;
    }

    /// Records one telemetry epoch sample synthesized inside a jumped
    /// gap (rather than reached by stepping).
    pub fn note_synthetic_sample(&mut self) {
        self.synthetic_samples += 1;
    }

    /// Pushes an epoch snapshot of the cumulative counters; called at
    /// the same boundaries as telemetry sampling.
    pub fn sample(&mut self, cycle: u64) {
        self.samples.push(HealthSample {
            cycle,
            event_steps: self.event_steps,
            fallback_steps: self.fallback_steps,
            cycles_skipped: self.cycles_skipped,
            sched_channels: self.sched_channels_last,
            wheel_depth: self.wheel_depth_last,
        });
    }

    /// Total steps executed (event + fallback).
    pub fn steps(&self) -> u64 {
        self.event_steps + self.fallback_steps
    }

    /// Event-kernel steps executed.
    pub fn event_steps(&self) -> u64 {
        self.event_steps
    }

    /// Full-scan fallback steps executed.
    pub fn fallback_steps(&self) -> u64 {
        self.fallback_steps
    }

    /// Histogram count for one fallback reason.
    pub fn fallback_count(&self, reason: FallbackReason) -> u64 {
        self.fallback_reasons[reason.index()]
    }

    /// Schedule rebuilds performed on the fast path.
    pub fn schedule_rebuilds(&self) -> u64 {
        self.schedule_rebuilds
    }

    /// Time jumps taken.
    pub fn time_jumps(&self) -> u64 {
        self.time_jumps
    }

    /// Total cycles skipped by time jumps.
    pub fn cycles_skipped(&self) -> u64 {
        self.cycles_skipped
    }

    /// Telemetry epoch samples synthesized across jumped gaps.
    pub fn synthetic_samples(&self) -> u64 {
        self.synthetic_samples
    }

    /// Epoch-cadenced counter snapshots.
    pub fn samples(&self) -> &[HealthSample] {
        &self.samples
    }

    /// The health counters as a JSON object (deterministic rendering;
    /// contains no wall-clock data).
    pub fn to_json(&self) -> Json {
        let reasons = FallbackReason::ALL
            .iter()
            .fold(Json::object(), |b, &r| {
                b.field(r.label(), Json::UInt(self.fallback_count(r)))
            })
            .build();
        Json::object()
            .field("steps", Json::UInt(self.steps()))
            .field("event_steps", Json::UInt(self.event_steps))
            .field("fallback_steps", Json::UInt(self.fallback_steps))
            .field("fallback_reasons", reasons)
            .field("schedule_rebuilds", Json::UInt(self.schedule_rebuilds))
            .field("time_jumps", Json::UInt(self.time_jumps))
            .field("cycles_skipped", Json::UInt(self.cycles_skipped))
            .field("synthetic_samples", Json::UInt(self.synthetic_samples))
            .field(
                "active_set",
                Json::object()
                    .field("channels_last", Json::UInt(self.sched_channels_last))
                    .field("channels_peak", Json::UInt(self.sched_channels_peak))
                    .field("switches_last", Json::UInt(self.sched_switches_last))
                    .field("switches_peak", Json::UInt(self.sched_switches_peak))
                    .build(),
            )
            .field(
                "wheel",
                Json::object()
                    .field("depth_last", Json::UInt(self.wheel_depth_last))
                    .field("depth_peak", Json::UInt(self.wheel_depth_peak))
                    .field(
                        "horizon",
                        match self.wheel_horizon {
                            Some(c) => Json::UInt(c),
                            None => Json::Null,
                        },
                    )
                    .build(),
            )
            .build()
    }

    /// Human-readable dispatch report for `cycle_engine --explain-kernel`.
    pub fn render(&self) -> String {
        let total = self.steps();
        let pct = |n: u64| {
            if total == 0 {
                0.0
            } else {
                100.0 * n as f64 / total as f64
            }
        };
        let mut out = String::new();
        out.push_str(&format!(
            "kernel dispatch: {} steps ({} event [{:.1}%], {} fallback [{:.1}%])\n",
            total,
            self.event_steps,
            pct(self.event_steps),
            self.fallback_steps,
            pct(self.fallback_steps),
        ));
        out.push_str("fallback reasons:\n");
        for reason in FallbackReason::ALL {
            out.push_str(&format!(
                "  {:<22} {}\n",
                reason.label(),
                self.fallback_count(reason)
            ));
        }
        out.push_str(&format!(
            "time jumping: {} jumps, {} cycles skipped, {} synthetic telemetry samples\n",
            self.time_jumps, self.cycles_skipped, self.synthetic_samples,
        ));
        out.push_str(&format!(
            "schedule: {} rebuilds; active channels last {} / peak {}; active switches last {} / peak {}\n",
            self.schedule_rebuilds,
            self.sched_channels_last,
            self.sched_channels_peak,
            self.sched_switches_last,
            self.sched_switches_peak,
        ));
        out.push_str(&format!(
            "event wheel: depth last {} / peak {}; horizon {}\n",
            self.wheel_depth_last,
            self.wheel_depth_peak,
            match self.wheel_horizon {
                Some(c) => c.to_string(),
                None => "-".to_string(),
            },
        ));
        out
    }

    /// Chrome/Perfetto counter-track events (`"ph": "C"`, pid 2) for the
    /// epoch sample series, appended to the flit/attribution trace by
    /// the Perfetto exporter.
    pub fn perfetto_counter_events(&self) -> Vec<Json> {
        let mut events = Vec::new();
        if self.samples.is_empty() {
            return events;
        }
        events.push(
            Json::object()
                .field("name", Json::str("process_name"))
                .field("ph", Json::str("M"))
                .field("pid", Json::UInt(2))
                .field(
                    "args",
                    Json::object()
                        .field("name", Json::str("kernel health"))
                        .build(),
                )
                .build(),
        );
        let counter = |name: &str, ts: u64, value: u64| {
            Json::object()
                .field("name", Json::str(name))
                .field("ph", Json::str("C"))
                .field("ts", Json::UInt(ts))
                .field("pid", Json::UInt(2))
                .field("tid", Json::UInt(0))
                .field(
                    "args",
                    Json::object().field("value", Json::UInt(value)).build(),
                )
                .build()
        };
        for s in &self.samples {
            events.push(counter("event_steps", s.cycle, s.event_steps));
            events.push(counter("fallback_steps", s.cycle, s.fallback_steps));
            events.push(counter("cycles_skipped", s.cycle, s.cycles_skipped));
            events.push(counter("sched_channels", s.cycle, s.sched_channels));
            events.push(counter("wheel_depth", s.cycle, s.wheel_depth));
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_mix_and_reasons_accumulate() {
        let mut h = KernelHealth::new();
        h.note_event_step(3, 2, 5, Some(40));
        h.note_event_step(7, 1, 4, None);
        h.note_fallback_step(&[FallbackReason::TraceArmed, FallbackReason::MonitorArmed]);
        h.note_fallback_step(&[FallbackReason::ScheduleInvalidated]);
        assert_eq!(h.steps(), 4);
        assert_eq!(h.event_steps(), 2);
        assert_eq!(h.fallback_steps(), 2);
        assert_eq!(h.fallback_count(FallbackReason::TraceArmed), 1);
        assert_eq!(h.fallback_count(FallbackReason::MonitorArmed), 1);
        assert_eq!(h.fallback_count(FallbackReason::StallFaultsActive), 0);
        assert_eq!(h.fallback_count(FallbackReason::ScheduleInvalidated), 1);
    }

    #[test]
    fn occupancy_tracks_last_and_peak() {
        let mut h = KernelHealth::new();
        h.note_event_step(10, 4, 8, Some(12));
        h.note_event_step(3, 6, 2, Some(20));
        let json = h.to_json().render();
        assert!(json.contains("\"channels_last\": 3"));
        assert!(json.contains("\"channels_peak\": 10"));
        assert!(json.contains("\"switches_peak\": 6"));
        assert!(json.contains("\"depth_peak\": 8"));
        assert!(json.contains("\"horizon\": 20"));
    }

    #[test]
    fn jumps_and_samples_round_trip_through_json() {
        let mut h = KernelHealth::new();
        h.note_event_step(1, 1, 1, None);
        h.note_jump(100);
        h.note_synthetic_sample();
        h.sample(63);
        assert_eq!(h.time_jumps(), 1);
        assert_eq!(h.cycles_skipped(), 100);
        assert_eq!(h.samples().len(), 1);
        let rendered = h.to_json().render();
        let parsed = Json::parse(&rendered).expect("health JSON parses");
        assert_eq!(parsed.get("time_jumps").and_then(Json::as_u64), Some(1));
        assert_eq!(
            parsed.get("cycles_skipped").and_then(Json::as_u64),
            Some(100)
        );
        assert_eq!(
            parsed.get("synthetic_samples").and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn render_mentions_every_reason() {
        let h = KernelHealth::new();
        let text = h.render();
        for reason in FallbackReason::ALL {
            assert!(text.contains(reason.label()), "missing {}", reason.label());
        }
    }

    #[test]
    fn perfetto_counters_follow_samples() {
        let mut h = KernelHealth::new();
        assert!(h.perfetto_counter_events().is_empty());
        h.note_event_step(2, 1, 3, None);
        h.sample(63);
        h.sample(127);
        let events = h.perfetto_counter_events();
        // One metadata event plus five counters per sample.
        assert_eq!(events.len(), 1 + 2 * 5);
        let rendered = Json::Array(events).render();
        assert!(rendered.contains("\"ph\": \"C\""));
        assert!(rendered.contains("\"pid\": 2"));
    }
}
