//! Deterministic randomness for reproducible simulations.
//!
//! Every stochastic element of the reproduction (traffic injection, link
//! error injection, mapping annealers) draws from a [`SimRng`] seeded
//! explicitly, so a run is a pure function of its configuration.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic random number generator for simulations.
///
/// Thin wrapper over ChaCha8 with convenience draws used throughout the
/// workspace. Two `SimRng`s created with the same seed yield identical
/// streams on every platform.
///
/// # Examples
///
/// ```
/// use xpipes_sim::SimRng;
///
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

/// The exact keystream position of a [`SimRng`], exported for
/// checkpointing. The generator's entire future is a pure function of
/// this value: `(key, stream, counter)` select a ChaCha block and
/// `word_index` is the next unread 32-bit word inside it. Restoring via
/// [`SimRng::from_state`] reproduces every subsequent draw bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngState {
    /// 256-bit ChaCha key as eight little-endian words.
    pub key: [u32; 8],
    /// Keystream (nonce) id selected by [`SimRng::child`].
    pub stream: u64,
    /// Next block counter.
    pub counter: u64,
    /// Next unread 32-bit word of the current block (16 = block spent).
    pub word_index: u8,
}

impl SimRng {
    /// Exports the exact keystream position for checkpointing.
    pub fn state(&self) -> RngState {
        let (key, stream, counter, idx) = self.inner.state();
        RngState {
            key,
            stream,
            counter,
            word_index: idx as u8,
        }
    }

    /// Rebuilds a generator at a position exported by [`state`](Self::state);
    /// the restored generator's draws continue where the original's would.
    pub fn from_state(state: RngState) -> Self {
        SimRng {
            inner: ChaCha8Rng::from_state(
                state.key,
                state.stream,
                state.counter,
                state.word_index as usize,
            ),
        }
    }

    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; children with distinct
    /// `stream` values never correlate, letting per-node RNGs be split off
    /// one master seed.
    #[must_use]
    pub fn child(&self, stream: u64) -> Self {
        let mut inner = self.inner.clone();
        inner.set_stream(stream);
        SimRng { inner }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Bernoulli trial: true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.gen::<f64>() < p
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below() requires a positive bound");
        self.inner.gen_range(0..bound)
    }

    /// Uniform draw in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn between(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "between() requires lo <= hi");
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform floating-point draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Geometric inter-arrival sample for a Bernoulli process of rate `p`
    /// per cycle: number of cycles until (and including) the next arrival.
    /// Returns `u64::MAX` when `p <= 0`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        if p <= 0.0 {
            return u64::MAX;
        }
        if p >= 1.0 {
            return 1;
        }
        let u = self.unit().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_differs() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "seeds 1 and 2 should not track each other");
    }

    #[test]
    fn children_are_independent() {
        let master = SimRng::seed(99);
        let mut c1 = master.child(1);
        let mut c2 = master.child(2);
        let same = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut rng = SimRng::seed(42).child(9);
        for _ in 0..13 {
            let _ = rng.next_u64();
        }
        let _ = rng.chance(0.5); // leave the block mid-word
        let saved = rng.state();
        let mut restored = SimRng::from_state(saved);
        for _ in 0..200 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
        assert_eq!(restored.state(), rng.state());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed(0);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_rate_roughly_matches() {
        let mut rng = SimRng::seed(3);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SimRng::seed(5);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        SimRng::seed(0).below(0);
    }

    #[test]
    fn between_inclusive() {
        let mut rng = SimRng::seed(6);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.between(2, 4);
            assert!((2..=4).contains(&v));
            seen_lo |= v == 2;
            seen_hi |= v == 4;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn geometric_mean_close_to_inverse_rate() {
        let mut rng = SimRng::seed(8);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.geometric(0.25)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn geometric_edge_rates() {
        let mut rng = SimRng::seed(9);
        assert_eq!(rng.geometric(0.0), u64::MAX);
        assert_eq!(rng.geometric(1.0), 1);
    }
}
