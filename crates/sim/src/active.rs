//! Dense active-component sets for the event-driven NoC kernel.
//!
//! An [`ActiveSet`] is a fixed-capacity set of small integers (dense
//! component ids: channel indices, switch indices, NI indices) backed by
//! a two-level bitmap. Level 0 is one bit per member; level 1 is one bit
//! per level-0 word, so iteration and emptiness checks skip empty
//! 4096-member spans without scanning them. All mutating operations are
//! O(1); iteration is ascending and costs O(populated words).
//!
//! Ascending iteration order matters: the kernel processes scheduled
//! components in dense-id order, which is exactly the order the
//! reference (process-everything) step visits them, so observer event
//! streams (attribution, flight recorder) are byte-identical between the
//! two kernels.

/// A fixed-capacity set of `usize` ids with O(1) insert/remove/contains
/// and ascending iteration.
#[derive(Debug, Clone, Default)]
pub struct ActiveSet {
    /// Level 0: bit `i % 64` of `words[i / 64]` ⇔ `i` is a member.
    words: Vec<u64>,
    /// Level 1: bit `w % 64` of `summary[w / 64]` ⇔ `words[w] != 0`.
    summary: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl ActiveSet {
    /// An empty set holding ids in `0..capacity`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let nwords = capacity.div_ceil(64);
        ActiveSet {
            words: vec![0; nwords],
            summary: vec![0; nwords.div_ceil(64)],
            capacity,
            len: 0,
        }
    }

    /// Number of ids the set can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no ids are members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when `id` is a member.
    #[must_use]
    pub fn contains(&self, id: usize) -> bool {
        debug_assert!(
            id < self.capacity,
            "id {id} out of capacity {}",
            self.capacity
        );
        self.words[id / 64] & (1u64 << (id % 64)) != 0
    }

    /// Adds `id`; returns true when it was not already a member.
    pub fn insert(&mut self, id: usize) -> bool {
        debug_assert!(
            id < self.capacity,
            "id {id} out of capacity {}",
            self.capacity
        );
        let w = id / 64;
        let bit = 1u64 << (id % 64);
        if self.words[w] & bit != 0 {
            return false;
        }
        self.words[w] |= bit;
        self.summary[w / 64] |= 1u64 << (w % 64);
        self.len += 1;
        true
    }

    /// Removes `id`; returns true when it was a member.
    pub fn remove(&mut self, id: usize) -> bool {
        debug_assert!(
            id < self.capacity,
            "id {id} out of capacity {}",
            self.capacity
        );
        let w = id / 64;
        let bit = 1u64 << (id % 64);
        if self.words[w] & bit == 0 {
            return false;
        }
        self.words[w] &= !bit;
        if self.words[w] == 0 {
            self.summary[w / 64] &= !(1u64 << (w % 64));
        }
        self.len -= 1;
        true
    }

    /// Inserts or removes `id` according to `member`.
    pub fn set(&mut self, id: usize, member: bool) {
        if member {
            self.insert(id);
        } else {
            self.remove(id);
        }
    }

    /// Empties the set. Costs O(populated words), not O(capacity).
    pub fn clear(&mut self) {
        for si in 0..self.summary.len() {
            let mut s = self.summary[si];
            while s != 0 {
                let w = si * 64 + s.trailing_zeros() as usize;
                self.words[w] = 0;
                s &= s - 1;
            }
            self.summary[si] = 0;
        }
        self.len = 0;
    }

    /// Iterates members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.summary.iter().enumerate().flat_map(move |(si, &s)| {
            let mut s = s;
            std::iter::from_fn(move || {
                if s == 0 {
                    return None;
                }
                let w = si * 64 + s.trailing_zeros() as usize;
                s &= s - 1;
                Some(w)
            })
            .flat_map(move |w| {
                let mut bits = self.words[w];
                std::iter::from_fn(move || {
                    if bits == 0 {
                        return None;
                    }
                    let id = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(id)
                })
            })
        })
    }

    /// Collects the members, ascending, into `out` (cleared first).
    ///
    /// Convenience for callers that need to mutate the owner while
    /// walking the membership.
    pub fn drain_into(&mut self, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.iter());
        self.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = ActiveSet::new(300);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(299));
        assert!(!s.insert(64), "double insert reports absent");
        assert_eq!(s.len(), 4);
        assert!(s.contains(63) && s.contains(299) && !s.contains(1));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 299]);
    }

    #[test]
    fn iteration_is_ascending_and_complete() {
        let mut s = ActiveSet::new(10_000);
        let ids = [9_999, 0, 4_096, 127, 128, 5_000, 65];
        for &i in &ids {
            s.insert(i);
        }
        let mut expect: Vec<usize> = ids.to_vec();
        expect.sort_unstable();
        assert_eq!(s.iter().collect::<Vec<_>>(), expect);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = ActiveSet::new(8_192);
        for i in (0..8_192).step_by(7) {
            s.insert(i);
        }
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(s.insert(8_191));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![8_191]);
    }

    #[test]
    fn set_matches_insert_remove() {
        let mut s = ActiveSet::new(64);
        s.set(5, true);
        assert!(s.contains(5));
        s.set(5, false);
        assert!(!s.contains(5));
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn drain_into_empties_the_set() {
        let mut s = ActiveSet::new(200);
        s.insert(3);
        s.insert(150);
        let mut out = Vec::new();
        s.drain_into(&mut out);
        assert_eq!(out, vec![3, 150]);
        assert!(s.is_empty());
    }
}
