//! Versioned, integrity-hashed binary snapshots of simulation state.
//!
//! A checkpoint must reproduce a run *bit-exactly*: every retransmission
//! window, pipeline latch, and RNG stream position has to land back
//! where it was, or the restored run silently diverges from the
//! uninterrupted one. This module owns the container format — a small
//! header (magic, format version, payload length, FNV-1a payload hash)
//! around a flat byte payload — and the primitive codecs components use
//! to fill it. What goes *into* the payload is owned by the components
//! themselves through the [`Snapshot`] trait: each component serializes
//! its mutable state (and only its mutable state — configuration,
//! topology, and routing tables are rebuilt from the `NocSpec` on
//! restore, never stored).
//!
//! Integer fields are little-endian and fixed-width; floats are stored
//! as IEEE-754 bit patterns so byte-identity survives round-trips;
//! sequences carry a `u64` length prefix. There is no schema embedded in
//! the payload: reader and writer must agree via [`FORMAT_VERSION`],
//! which is bumped on any layout change so stale checkpoints are
//! rejected with [`SnapshotError::UnsupportedVersion`] instead of being
//! misparsed.

use crate::rng::{RngState, SimRng};

/// Leading magic of every snapshot ("xpipes snapshot").
pub const MAGIC: [u8; 4] = *b"XPSN";

/// Payload layout version. Bump on any change to what any component
/// writes; old checkpoints are then rejected, never misread.
pub const FORMAT_VERSION: u32 = 1;

/// Header bytes before the payload: magic + version + payload length +
/// FNV-1a hash of the payload.
const HEADER_LEN: usize = 4 + 4 + 8 + 8;

/// FNV-1a 64-bit over `bytes` — the same dependency-free hash the golden
/// tests pin artifacts with.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a snapshot could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The container is shorter than its header or its declared payload.
    Truncated,
    /// The leading magic is not [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    UnsupportedVersion(u32),
    /// The payload hash does not match the header — bit rot or a
    /// truncated/garbled write.
    IntegrityMismatch {
        /// Hash recorded in the header.
        expected: u64,
        /// Hash of the payload actually present.
        actual: u64,
    },
    /// A field decoded to a value the component cannot accept (bad enum
    /// tag, impossible length, state from a differently-shaped network).
    Malformed(String),
    /// Decoding finished with payload bytes left over — the snapshot was
    /// taken from a differently-shaped network than it is restored into.
    TrailingBytes(usize),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot format version {v} (this build reads {FORMAT_VERSION})"
                )
            }
            SnapshotError::IntegrityMismatch { expected, actual } => write!(
                f,
                "snapshot payload hash mismatch (header {expected:#018x}, payload {actual:#018x})"
            ),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::TrailingBytes(n) => {
                write!(
                    f,
                    "snapshot has {n} unread trailing bytes (topology mismatch?)"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A component whose mutable state can be captured into and restored
/// from a snapshot payload.
///
/// The contract is *restore-equivalence*: `load_state` applied to a
/// freshly assembled component (same configuration as the saved one)
/// must make every subsequent observable behaviour — outputs, RNG draws,
/// statistics — bit-identical to the component the state was saved from.
/// Save and load must consume exactly mirrored byte sequences;
/// structural configuration is not written.
pub trait Snapshot {
    /// Appends this component's mutable state to the payload.
    fn save_state(&self, w: &mut SnapshotWriter);

    /// Restores mutable state previously written by
    /// [`save_state`](Self::save_state) into `self`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the payload is truncated or a field cannot
    /// be accepted (which indicates the snapshot came from a
    /// differently-configured component).
    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError>;
}

/// Appends primitive fields to a snapshot payload.
///
/// # Examples
///
/// ```
/// use xpipes_sim::snapshot::{SnapshotReader, SnapshotWriter};
///
/// let mut w = SnapshotWriter::new();
/// w.u64(7);
/// w.str("hello");
/// let bytes = w.finish();
/// let mut r = SnapshotReader::open(&bytes).unwrap();
/// assert_eq!(r.u64().unwrap(), 7);
/// assert_eq!(r.str().unwrap(), "hello");
/// r.finish().unwrap();
/// ```
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    payload: Vec<u8>,
}

impl SnapshotWriter {
    /// Creates an empty payload.
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.payload.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.payload.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.payload.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    pub fn u128(&mut self, v: u128) {
        self.payload.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (fixed width across platforms).
    pub fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.len(s.len());
        self.payload.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed opaque byte blob (e.g. a nested
    /// snapshot container, letting readers skip sections they cannot
    /// interpret).
    pub fn bytes(&mut self, b: &[u8]) {
        self.len(b.len());
        self.payload.extend_from_slice(b);
    }

    /// Appends an RNG keystream position.
    pub fn rng(&mut self, rng: &SimRng) {
        let s = rng.state();
        for k in s.key {
            self.u32(k);
        }
        self.u64(s.stream);
        self.u64(s.counter);
        self.u8(s.word_index);
    }

    /// Seals the payload into the versioned, hashed container.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv64(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }
}

/// Reads primitive fields back out of a verified snapshot payload.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    payload: &'a [u8],
    pos: usize,
}

// `len` decodes a length *field* from the payload (mirroring
// `SnapshotWriter::len`); it is not a collection size, so the usual
// `is_empty` companion does not apply.
#[allow(clippy::len_without_is_empty)]
impl<'a> SnapshotReader<'a> {
    /// Verifies the container (magic, version, length, payload hash) and
    /// positions a reader at the start of the payload.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] describing the first container-level problem.
    pub fn open(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let declared = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
        let expected = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
        let payload = &bytes[HEADER_LEN..];
        if payload.len() != declared {
            return Err(SnapshotError::Truncated);
        }
        let actual = fnv64(payload);
        if actual != expected {
            return Err(SnapshotError::IntegrityMismatch { expected, actual });
        }
        Ok(SnapshotReader { payload, pos: 0 })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.payload.len())
            .ok_or(SnapshotError::Truncated)?;
        let slice = &self.payload[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] past the end of the payload (so for
    /// every primitive reader below).
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// See [`u8`](Self::u8).
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// See [`u8`](Self::u8).
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a little-endian `u128`.
    ///
    /// # Errors
    ///
    /// See [`u8`](Self::u8).
    pub fn u128(&mut self) -> Result<u128, SnapshotError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("16")))
    }

    /// Reads a length (`u64`) back as `usize`.
    ///
    /// # Errors
    ///
    /// See [`u8`](Self::u8); also [`SnapshotError::Malformed`] when the
    /// value does not fit a `usize`.
    pub fn len(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?)
            .map_err(|_| SnapshotError::Malformed("length exceeds usize".into()))
    }

    /// Reads an `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// See [`u8`](Self::u8).
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool.
    ///
    /// # Errors
    ///
    /// See [`u8`](Self::u8); also [`SnapshotError::Malformed`] on a tag
    /// other than 0/1.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Malformed(format!("bad bool tag {other}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// See [`u8`](Self::u8); also [`SnapshotError::Malformed`] on
    /// invalid UTF-8.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Malformed("invalid UTF-8 in string".into()))
    }

    /// Reads a length-prefixed opaque byte blob.
    ///
    /// # Errors
    ///
    /// See [`u8`](Self::u8).
    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let n = self.len()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads an RNG keystream position back into a generator.
    ///
    /// # Errors
    ///
    /// See [`u8`](Self::u8).
    pub fn rng(&mut self) -> Result<SimRng, SnapshotError> {
        let mut key = [0u32; 8];
        for k in &mut key {
            *k = self.u32()?;
        }
        let stream = self.u64()?;
        let counter = self.u64()?;
        let word_index = self.u8()?;
        Ok(SimRng::from_state(RngState {
            key,
            stream,
            counter,
            word_index,
        }))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.payload.len() - self.pos
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TrailingBytes`] when bytes remain — the snapshot
    /// came from a differently-shaped network.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.pos == self.payload.len() {
            Ok(())
        } else {
            Err(SnapshotError::TrailingBytes(self.payload.len() - self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = SnapshotWriter::new();
        w.u8(0xAB);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.u128(1 << 100);
        w.len(12345);
        w.f64(3.5);
        w.f64(f64::NAN);
        w.bool(true);
        w.bool(false);
        w.str("chan:sw0->sw1");
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.u128().unwrap(), 1 << 100);
        assert_eq!(r.len().unwrap(), 12345);
        assert_eq!(r.f64().unwrap(), 3.5);
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "chan:sw0->sw1");
        r.finish().unwrap();
    }

    #[test]
    fn rng_position_roundtrips_through_payload() {
        let mut rng = SimRng::seed(77).child(3);
        for _ in 0..9 {
            let _ = rng.next_u64();
        }
        let mut w = SnapshotWriter::new();
        w.rng(&rng);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        let mut restored = r.rng().unwrap();
        r.finish().unwrap();
        for _ in 0..64 {
            assert_eq!(rng.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn byte_blobs_nest_containers() {
        let mut inner = SnapshotWriter::new();
        inner.u64(99);
        let blob = inner.finish();

        let mut w = SnapshotWriter::new();
        w.bytes(&blob);
        w.bytes(b"");
        let bytes = w.finish();

        let mut r = SnapshotReader::open(&bytes).unwrap();
        let got = r.bytes().unwrap();
        assert_eq!(got, blob);
        assert!(r.bytes().unwrap().is_empty());
        r.finish().unwrap();

        let mut nested = SnapshotReader::open(&got).unwrap();
        assert_eq!(nested.u64().unwrap(), 99);
        nested.finish().unwrap();
    }

    #[test]
    fn container_rejects_corruption() {
        let mut w = SnapshotWriter::new();
        w.u64(42);
        let good = w.finish();

        assert_eq!(
            SnapshotReader::open(&good[..10]).unwrap_err(),
            SnapshotError::Truncated
        );

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(
            SnapshotReader::open(&bad_magic).unwrap_err(),
            SnapshotError::BadMagic
        );

        let mut bad_version = good.clone();
        bad_version[4] = 0xFE;
        assert!(matches!(
            SnapshotReader::open(&bad_version).unwrap_err(),
            SnapshotError::UnsupportedVersion(_)
        ));

        let mut flipped = good.clone();
        *flipped.last_mut().unwrap() ^= 1;
        assert!(matches!(
            SnapshotReader::open(&flipped).unwrap_err(),
            SnapshotError::IntegrityMismatch { .. }
        ));

        let mut truncated = good.clone();
        truncated.pop();
        assert_eq!(
            SnapshotReader::open(&truncated).unwrap_err(),
            SnapshotError::Truncated
        );
    }

    #[test]
    fn unread_trailing_bytes_are_an_error() {
        let mut w = SnapshotWriter::new();
        w.u64(1);
        w.u64(2);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        let _ = r.u64().unwrap();
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.finish().unwrap_err(), SnapshotError::TrailingBytes(8));
    }

    #[test]
    fn errors_render_one_line() {
        for e in [
            SnapshotError::Truncated,
            SnapshotError::BadMagic,
            SnapshotError::UnsupportedVersion(9),
            SnapshotError::IntegrityMismatch {
                expected: 1,
                actual: 2,
            },
            SnapshotError::Malformed("bad tag".into()),
            SnapshotError::TrailingBytes(3),
        ] {
            let text = e.to_string();
            assert!(!text.is_empty());
            assert!(!text.contains('\n'));
        }
    }
}
