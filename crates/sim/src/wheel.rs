//! A hierarchical timer wheel for event-driven simulation stepping.
//!
//! The event-driven NoC kernel keeps almost all of its wake-up state in
//! activity bitmaps ([`crate::active::ActiveSet`]) that are recomputed
//! incrementally each cycle. The one source of *future* work is a
//! latency queue (e.g. a target NI memory model that answers `L` cycles
//! after accepting a request): nothing in the fabric moves until the
//! scheduled cycle arrives. [`EventWheel`] stores those wake-ups and
//! answers "what is the next cycle with scheduled work?" exactly, so the
//! simulator can advance time directly to it instead of stepping idle
//! cycles one by one.
//!
//! # Invariants
//!
//! * **Never into the past** — [`EventWheel::schedule`] clamps a cycle
//!   earlier than the wheel's current cycle up to the current cycle, so
//!   an event is always delivered at or after the cycle it was filed.
//! * **No lost or reordered events** — [`EventWheel::advance_to`] drains
//!   every live event with `cycle ≤ target` in (cycle, schedule-order):
//!   earlier cycles first, FIFO within a cycle.
//! * **Exact horizon** — [`EventWheel::next_event_cycle`] returns the
//!   exact cycle of the earliest live event (not an approximation), by
//!   scanning a 256-slot occupancy bitmap for near events and the
//!   overflow map's first key for far ones.
//!
//! These invariants are pinned by the proptest suite at the bottom of
//! this file, which checks every operation against a naive sorted-`Vec`
//! oracle (the same debug-asserted-oracle pattern the NoC uses for its
//! `is_idle` cache).

use std::collections::{BTreeMap, HashMap};

/// Slots in the near ring: events within `HORIZON` cycles of the
/// wheel's current cycle index directly into a slot.
const HORIZON: u64 = 256;
/// Occupancy bitmap words (`HORIZON / 64`).
const WORDS: usize = 4;

/// Handle for a scheduled event; also encodes FIFO order within a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

#[derive(Debug, Clone)]
struct Entry<T> {
    id: u64,
    cycle: u64,
    payload: T,
}

/// A timer wheel: near events in a 256-slot ring with an occupancy
/// bitmap, far events in a sorted overflow map. `schedule`/`cancel` are
/// O(1) amortized; `advance_to` costs O(drained events); and
/// `next_event_cycle` is O(1) bitmap scans.
#[derive(Debug, Clone)]
pub struct EventWheel<T> {
    /// The wheel's current cycle: events fire at cycles `≥ now`.
    now: u64,
    next_id: u64,
    /// Slot `c % HORIZON` holds the events of exactly one live cycle
    /// `c ∈ [now, now + HORIZON)` (distinct live cycles in one slot
    /// would have to differ by ≥ HORIZON, which the window excludes).
    ring: Vec<Vec<Entry<T>>>,
    /// Bit `s` set ⇔ `ring[s]` is non-empty.
    occupancy: [u64; WORDS],
    /// Events at `cycle ≥ now + HORIZON`, keyed by cycle, FIFO per key.
    overflow: BTreeMap<u64, Vec<Entry<T>>>,
    /// Live event ids → scheduled cycle, for O(1) `cancel` routing.
    index: HashMap<u64, u64>,
}

impl<T> Default for EventWheel<T> {
    fn default() -> Self {
        Self::starting_at(0)
    }
}

impl<T> EventWheel<T> {
    /// An empty wheel whose current cycle is 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty wheel whose current cycle is `now`.
    #[must_use]
    pub fn starting_at(now: u64) -> Self {
        EventWheel {
            now,
            next_id: 0,
            ring: (0..HORIZON).map(|_| Vec::new()).collect(),
            occupancy: [0; WORDS],
            overflow: BTreeMap::new(),
            index: HashMap::new(),
        }
    }

    /// The wheel's current cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Live (scheduled, not yet fired or cancelled) events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no events are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Schedules `payload` to fire at `cycle`, clamped up to the current
    /// cycle — never into the past. Returns a handle for [`Self::cancel`].
    pub fn schedule(&mut self, cycle: u64, payload: T) -> EventId {
        let cycle = cycle.max(self.now);
        let id = self.next_id;
        self.next_id += 1;
        let entry = Entry { id, cycle, payload };
        if cycle - self.now < HORIZON {
            let slot = (cycle % HORIZON) as usize;
            self.ring[slot].push(entry);
            self.occupancy[slot / 64] |= 1u64 << (slot % 64);
        } else {
            self.overflow.entry(cycle).or_default().push(entry);
        }
        self.index.insert(id, cycle);
        EventId(id)
    }

    /// Removes a live event; returns false when `id` already fired or
    /// was cancelled. FIFO order of the remaining events is preserved.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(cycle) = self.index.remove(&id.0) else {
            return false;
        };
        if cycle - self.now < HORIZON {
            let slot = (cycle % HORIZON) as usize;
            self.ring[slot].retain(|e| e.id != id.0);
            if self.ring[slot].is_empty() {
                self.occupancy[slot / 64] &= !(1u64 << (slot % 64));
            }
        } else if let Some(bucket) = self.overflow.get_mut(&cycle) {
            bucket.retain(|e| e.id != id.0);
            if bucket.is_empty() {
                self.overflow.remove(&cycle);
            }
        }
        true
    }

    /// Exact cycle of the earliest live event, if any.
    #[must_use]
    pub fn next_event_cycle(&self) -> Option<u64> {
        let near = self.nearest_occupied_slot().map(|slot| {
            debug_assert!(!self.ring[slot].is_empty());
            self.ring[slot][0].cycle
        });
        let far = self.overflow.keys().next().copied();
        match (near, far) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Scans the occupancy bitmap for the occupied slot closest to (and
    /// at or after, in ring distance) `now % HORIZON`.
    fn nearest_occupied_slot(&self) -> Option<usize> {
        let start = (self.now % HORIZON) as usize;
        let mut best: Option<(u64, usize)> = None;
        for w in 0..WORDS {
            let mut bits = self.occupancy[w];
            while bits != 0 {
                let slot = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let dist = ((slot + HORIZON as usize - start) % HORIZON as usize) as u64;
                if best.is_none_or(|(d, _)| dist < d) {
                    best = Some((dist, slot));
                }
            }
        }
        best.map(|(_, slot)| slot)
    }

    /// Fires every live event with `cycle ≤ target`, appending
    /// `(cycle, payload)` pairs to `out` in (cycle, FIFO) order, then
    /// advances the wheel's current cycle to `target + 1`. Advancing to
    /// a cycle before `now` is a no-op.
    pub fn advance_to(&mut self, target: u64, out: &mut Vec<(u64, T)>) {
        while let Some(cycle) = self.next_event_cycle() {
            if cycle > target {
                break;
            }
            let bucket = if cycle - self.now < HORIZON {
                let slot = (cycle % HORIZON) as usize;
                self.occupancy[slot / 64] &= !(1u64 << (slot % 64));
                std::mem::take(&mut self.ring[slot])
            } else {
                // Reachable only when the overflow's first key is ≤
                // target while the ring is empty far past `now`.
                self.overflow.remove(&cycle).unwrap_or_default()
            };
            for e in bucket {
                debug_assert_eq!(e.cycle, cycle);
                self.index.remove(&e.id);
                out.push((cycle, e.payload));
            }
            // Nothing remains at cycles ≤ `cycle`, so the window may
            // slide; this keeps `overflow` keys migrating correctly
            // into ring range as time advances.
            self.now = self.now.max(cycle);
            self.migrate_overflow();
        }
        if target >= self.now {
            self.now = target + 1;
            self.migrate_overflow();
        }
    }

    /// Moves overflow events whose cycle fell inside the (shifted) ring
    /// window into the ring.
    fn migrate_overflow(&mut self) {
        while let Some((&cycle, _)) = self.overflow.iter().next() {
            if cycle - self.now >= HORIZON {
                break;
            }
            let mut bucket = self.overflow.remove(&cycle).unwrap_or_default();
            let slot = (cycle % HORIZON) as usize;
            // The slot may already hold entries for this same cycle,
            // scheduled later (once it came inside the horizon); an
            // overflow entry is always older than any ring entry for
            // the same cycle, so the migrated bucket goes in front.
            bucket.append(&mut self.ring[slot]);
            self.ring[slot] = bucket;
            self.occupancy[slot / 64] |= 1u64 << (slot % 64);
        }
    }

    /// Drops every live event and restarts the wheel at `now` (used when
    /// a checkpoint restore rebuilds the schedule from component state).
    pub fn reset(&mut self, now: u64) {
        for slot in 0..HORIZON as usize {
            self.ring[slot].clear();
        }
        self.occupancy = [0; WORDS];
        self.overflow.clear();
        self.index.clear();
        self.now = now;
        self.next_id = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fires_in_cycle_then_fifo_order() {
        let mut w = EventWheel::starting_at(10);
        w.schedule(20, "b");
        w.schedule(15, "a");
        w.schedule(20, "c");
        assert_eq!(w.next_event_cycle(), Some(15));
        assert_eq!(w.len(), 3);
        let mut out = Vec::new();
        w.advance_to(20, &mut out);
        assert_eq!(out, vec![(15, "a"), (20, "b"), (20, "c")]);
        assert!(w.is_empty());
        assert_eq!(w.now(), 21);
    }

    #[test]
    fn past_schedules_clamp_to_now() {
        let mut w = EventWheel::starting_at(100);
        w.schedule(3, "late");
        assert_eq!(w.next_event_cycle(), Some(100));
        let mut out = Vec::new();
        w.advance_to(100, &mut out);
        assert_eq!(out, vec![(100, "late")]);
    }

    #[test]
    fn cancel_removes_only_the_target() {
        let mut w = EventWheel::starting_at(0);
        let a = w.schedule(5, 'a');
        let b = w.schedule(5, 'b');
        assert!(w.cancel(a));
        assert!(!w.cancel(a), "double cancel");
        let mut out = Vec::new();
        w.advance_to(5, &mut out);
        assert_eq!(out, vec![(5, 'b')]);
        assert!(!w.cancel(b), "fired events cannot be cancelled");
    }

    #[test]
    fn far_events_survive_window_slides() {
        let mut w = EventWheel::starting_at(0);
        w.schedule(5_000, "far");
        w.schedule(2, "near");
        let mut out = Vec::new();
        w.advance_to(3_000, &mut out);
        assert_eq!(out, vec![(2, "near")]);
        assert_eq!(w.next_event_cycle(), Some(5_000));
        out.clear();
        w.advance_to(5_000, &mut out);
        assert_eq!(out, vec![(5_000, "far")]);
    }

    #[test]
    fn reset_drops_everything() {
        let mut w = EventWheel::starting_at(7);
        w.schedule(9, 1u32);
        w.schedule(900, 2);
        w.reset(42);
        assert!(w.is_empty());
        assert_eq!(w.now(), 42);
        assert_eq!(w.next_event_cycle(), None);
    }

    /// Naive oracle: a `Vec` of live events, fully rescanned for every
    /// query — unarguably correct, hopelessly slow.
    #[derive(Default)]
    struct Oracle {
        now: u64,
        next_seq: u64,
        live: Vec<(u64, u64, u32)>, // (cycle, seq, payload)
    }

    impl Oracle {
        fn schedule(&mut self, cycle: u64, payload: u32) -> u64 {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.live.push((cycle.max(self.now), seq, payload));
            seq
        }
        fn cancel(&mut self, seq: u64) -> bool {
            let before = self.live.len();
            self.live.retain(|&(_, s, _)| s != seq);
            self.live.len() != before
        }
        fn next_event_cycle(&self) -> Option<u64> {
            self.live.iter().map(|&(c, _, _)| c).min()
        }
        fn advance_to(&mut self, target: u64) -> Vec<(u64, u32)> {
            let mut due: Vec<_> = self
                .live
                .iter()
                .copied()
                .filter(|&(c, _, _)| c <= target)
                .collect();
            due.sort_by_key(|&(c, s, _)| (c, s));
            self.live.retain(|&(c, _, _)| c > target);
            if target >= self.now {
                self.now = target + 1;
            }
            due.into_iter().map(|(c, _, p)| (c, p)).collect()
        }
    }

    /// One scripted operation against both implementations.
    #[derive(Debug, Clone)]
    enum Op {
        /// Schedule at `now + delta` (also exercises the past-clamp via
        /// deltas "behind" cycles already advanced past).
        Schedule { delta: u64 },
        /// Cancel the k-th oldest still-live handle, if any.
        Cancel { k: usize },
        /// Advance by `delta` cycles and compare the drained streams.
        Advance { delta: u64 },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..700).prop_map(|delta| Op::Schedule { delta }).boxed(),
            (0usize..8).prop_map(|k| Op::Cancel { k }).boxed(),
            (0u64..600).prop_map(|delta| Op::Advance { delta }).boxed(),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The wheel agrees with the full-scan oracle on every drained
        /// event (cycle and order), every `next_event_cycle` answer, and
        /// every live count, across arbitrary schedule/cancel/advance
        /// scripts — and never delivers an event before the cycle the
        /// wheel stood at when it was scheduled.
        #[test]
        fn wheel_matches_full_scan_oracle(ops in prop::collection::vec(op_strategy(), 1..60)) {
            let mut wheel = EventWheel::starting_at(0);
            let mut oracle = Oracle::default();
            let mut handles: Vec<(EventId, u64)> = Vec::new(); // (wheel id, oracle seq)
            let mut payload = 0u32;

            for op in ops {
                match op {
                    Op::Schedule { delta } => {
                        // Half the deltas aim behind `now` once time has
                        // advanced, exercising the clamp.
                        let cycle = (wheel.now() + delta).saturating_sub(300);
                        let filed_at = wheel.now();
                        let id = wheel.schedule(cycle, payload);
                        let seq = oracle.schedule(cycle, payload);
                        prop_assert!(
                            wheel.next_event_cycle().unwrap() >= filed_at,
                            "scheduled into the past"
                        );
                        handles.push((id, seq));
                        payload += 1;
                    }
                    Op::Cancel { k } => {
                        if !handles.is_empty() {
                            let (id, seq) = handles[k % handles.len()];
                            prop_assert_eq!(wheel.cancel(id), oracle.cancel(seq));
                        }
                    }
                    Op::Advance { delta } => {
                        let target = wheel.now() + delta;
                        let filed_at = wheel.now();
                        let mut got = Vec::new();
                        wheel.advance_to(target, &mut got);
                        let want = oracle.advance_to(target);
                        prop_assert_eq!(&got, &want, "drain mismatch");
                        prop_assert!(
                            got.iter().all(|&(c, _)| c >= filed_at && c <= target),
                            "event outside the advanced span"
                        );
                        prop_assert_eq!(wheel.now(), target + 1);
                    }
                }
                prop_assert_eq!(wheel.next_event_cycle(), oracle.next_event_cycle());
                prop_assert_eq!(wheel.len(), oracle.live.len());
            }

            // Final full drain: nothing may be lost.
            let mut got = Vec::new();
            let end = oracle
                .live
                .iter()
                .map(|&(c, _, _)| c)
                .max()
                .unwrap_or(wheel.now());
            wheel.advance_to(end, &mut got);
            let want = oracle.advance_to(end);
            prop_assert_eq!(got, want);
            prop_assert!(wheel.is_empty());
        }
    }
}
