//! Two-phase clocked simulation: [`Register`], [`Clocked`] and the
//! [`Simulation`] driver.
//!
//! The xpipes Lite components are synchronous RTL blocks: at every rising
//! clock edge each register captures a value computed combinationally from
//! the values the registers held *before* the edge. The kernel models this
//! with a two-phase protocol:
//!
//! 1. **posedge phase** — every component reads current register values
//!    (its own and, through buses owned by the caller, its neighbours') and
//!    calls [`Register::set`] with next values;
//! 2. **commit phase** — every register atomically adopts its next value.
//!
//! Because no `set` is visible until the commit phase, evaluation order
//! within a cycle is irrelevant, exactly as in synthesizable RTL.

use crate::time::Cycle;

/// A clocked flip-flop bank holding a value of type `T`.
///
/// Reads ([`get`](Register::get)) always return the value committed at the
/// previous clock edge; writes ([`set`](Register::set)) take effect at the
/// next [`commit`](Register::commit). If `set` is not called during a cycle
/// the register holds its value, like a flip-flop with clock-enable low.
///
/// # Examples
///
/// ```
/// use xpipes_sim::Register;
///
/// let mut r = Register::new(1u8);
/// r.set(2);
/// assert_eq!(r.get(), 1); // not visible yet
/// r.commit();
/// assert_eq!(r.get(), 2);
/// r.commit();             // no set: holds value
/// assert_eq!(r.get(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Register<T: Clone> {
    current: T,
    next: Option<T>,
}

impl<T: Clone> Register<T> {
    /// Creates a register holding `reset_value`.
    pub fn new(reset_value: T) -> Self {
        Register {
            current: reset_value,
            next: None,
        }
    }

    /// Returns the value committed at the last clock edge.
    pub fn get(&self) -> T {
        self.current.clone()
    }

    /// Borrows the committed value without cloning.
    pub fn peek(&self) -> &T {
        &self.current
    }

    /// Schedules `value` to become visible at the next [`commit`](Self::commit).
    ///
    /// Calling `set` more than once in a cycle keeps the last value, like
    /// last-assignment-wins in an RTL process.
    pub fn set(&mut self, value: T) {
        self.next = Some(value);
    }

    /// True if a next value has been scheduled this cycle.
    pub fn is_set(&self) -> bool {
        self.next.is_some()
    }

    /// Clock edge: adopt the scheduled value, if any.
    pub fn commit(&mut self) {
        if let Some(next) = self.next.take() {
            self.current = next;
        }
    }
}

impl<T: Clone + Default> Default for Register<T> {
    fn default() -> Self {
        Register::new(T::default())
    }
}

/// A synchronous component driven by the simulation clock.
///
/// Implementors must confine all state changes visible to other components
/// to [`Register`]s (or equivalent double-buffered storage) so that
/// [`posedge`](Clocked::posedge) reads only previous-cycle state and
/// [`commit`](Clocked::commit) flips all buffers.
pub trait Clocked {
    /// Compute next state from previous-cycle state. Must not expose new
    /// state to other components.
    fn posedge(&mut self, now: Cycle);

    /// Make the state computed by `posedge` visible; called on every
    /// component after all `posedge` calls of the cycle.
    fn commit(&mut self);
}

/// A simple driver that owns a set of boxed [`Clocked`] components and runs
/// them in lock-step.
///
/// The xpipes NoC assembly (`xpipes::noc`) uses its own specialised stepping
/// loop for speed; `Simulation` is the generic entry point for user-composed
/// systems and for tests.
///
/// # Examples
///
/// ```
/// use xpipes_sim::{Simulation, Register, Clocked, Cycle};
///
/// struct Toggler { q: Register<bool> }
/// impl Clocked for Toggler {
///     fn posedge(&mut self, _now: Cycle) { let v = self.q.get(); self.q.set(!v); }
///     fn commit(&mut self) { self.q.commit(); }
/// }
///
/// let mut sim = Simulation::new();
/// sim.add(Box::new(Toggler { q: Register::new(false) }));
/// sim.run(10);
/// assert_eq!(sim.now(), Cycle::new(10));
/// ```
#[derive(Default)]
pub struct Simulation {
    components: Vec<Box<dyn Clocked>>,
    now: Cycle,
}

impl Simulation {
    /// Creates an empty simulation at [`Cycle::ZERO`].
    pub fn new() -> Self {
        Simulation {
            components: Vec::new(),
            now: Cycle::ZERO,
        }
    }

    /// Registers a component; returns its index for later retrieval.
    pub fn add(&mut self, component: Box<dyn Clocked>) -> usize {
        self.components.push(component);
        self.components.len() - 1
    }

    /// Current simulation time (number of completed cycles).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of registered components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True if no components are registered.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Advances the simulation by one clock cycle.
    pub fn step(&mut self) {
        for c in &mut self.components {
            c.posedge(self.now);
        }
        for c in &mut self.components {
            c.commit();
        }
        self.now = self.now.next();
    }

    /// Runs `cycles` clock cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("components", &self.components.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_holds_until_commit() {
        let mut r = Register::new(10u32);
        r.set(20);
        assert_eq!(r.get(), 10);
        assert!(r.is_set());
        r.commit();
        assert_eq!(r.get(), 20);
        assert!(!r.is_set());
    }

    #[test]
    fn register_holds_without_set() {
        let mut r = Register::new(7u32);
        r.commit();
        r.commit();
        assert_eq!(r.get(), 7);
    }

    #[test]
    fn register_last_set_wins() {
        let mut r = Register::new(0u32);
        r.set(1);
        r.set(2);
        r.commit();
        assert_eq!(r.get(), 2);
    }

    #[test]
    fn register_peek_borrows() {
        let r = Register::new(String::from("flit"));
        assert_eq!(r.peek(), "flit");
    }

    #[test]
    fn register_default_uses_type_default() {
        let r: Register<u64> = Register::default();
        assert_eq!(r.get(), 0);
    }

    /// Two registers swapping values every cycle: the canonical test that
    /// two-phase semantics hold (a classic race under one-phase updates).
    struct Swapper {
        a: Register<u32>,
        b: Register<u32>,
    }

    impl Clocked for Swapper {
        fn posedge(&mut self, _now: Cycle) {
            let (a, b) = (self.a.get(), self.b.get());
            self.a.set(b);
            self.b.set(a);
        }
        fn commit(&mut self) {
            self.a.commit();
            self.b.commit();
        }
    }

    #[test]
    fn two_phase_swap_has_no_race() {
        let mut s = Swapper {
            a: Register::new(1),
            b: Register::new(2),
        };
        s.posedge(Cycle::ZERO);
        s.commit();
        assert_eq!((s.a.get(), s.b.get()), (2, 1));
        s.posedge(Cycle::new(1));
        s.commit();
        assert_eq!((s.a.get(), s.b.get()), (1, 2));
    }

    #[test]
    fn simulation_advances_time() {
        let mut sim = Simulation::new();
        assert!(sim.is_empty());
        sim.run(25);
        assert_eq!(sim.now(), Cycle::new(25));
    }

    struct CountToTen {
        count: Register<u32>,
    }

    impl Clocked for CountToTen {
        fn posedge(&mut self, _now: Cycle) {
            let c = self.count.get();
            if c < 10 {
                self.count.set(c + 1);
            }
        }
        fn commit(&mut self) {
            self.count.commit();
        }
    }

    #[test]
    fn simulation_steps_components() {
        let mut sim = Simulation::new();
        let idx = sim.add(Box::new(CountToTen {
            count: Register::new(0),
        }));
        assert_eq!(idx, 0);
        assert_eq!(sim.len(), 1);
        sim.run(15);
        // The component saturates at 10 even though 15 cycles ran.
        // (We can't easily read it back through the trait object; the
        // saturation behaviour is asserted via time instead.)
        assert_eq!(sim.now().as_u64(), 15);
    }
}
