//! Low-overhead observability primitives: a per-component metric
//! registry, time-windowed congestion timelines, and a bounded
//! flight-recorder event trace with Chrome/Perfetto export.
//!
//! The design constraint throughout is that observation must compose
//! with the cycle engine's idle-skipping fast path instead of disabling
//! it. Components therefore keep their own cheap cumulative counters
//! (they already do — switch stats, link traversal counts, NI stats)
//! and the registry is *epoch-aggregated*: every `sample_interval`
//! cycles the engine scans those counters once and publishes the
//! values here. Between epochs telemetry costs nothing per cycle, no
//! atomics are involved (the simulator is single-threaded per network),
//! and no RNG stream is touched, so enabling telemetry cannot perturb
//! simulated behaviour.
//!
//! All exports render through [`crate::json::Json`], so they are
//! byte-deterministic for a given seed and sampling configuration.

use std::collections::VecDeque;

use crate::json::Json;
use crate::snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};

/// Link-layer sequence numbers are modulo 64 (mirrors the flow-control
/// layer's `SEQ_MOD`; the dependency points the other way, so the
/// constant is restated here and pinned by a conformance test there).
const SEQ_MOD: u8 = 64;

/// Handle to a registered metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetricId(usize);

/// Handle to a registered component (a switch, link/channel, or NI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComponentId(usize);

/// Whether a metric is a monotone counter or an instantaneous gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Cumulative count; `set` publishes the latest running total.
    Counter,
    /// Point-in-time sample; the registry also tracks the peak observed.
    Gauge,
}

#[derive(Debug, Clone)]
struct Metric {
    component: usize,
    name: String,
    kind: MetricKind,
    value: u64,
    peak: u64,
}

/// Registry of per-component counters and gauges, fed by epoch
/// sampling.
///
/// Registration order is the export order, which makes `to_json`
/// deterministic. Publishing a value is a plain store — there is no
/// per-event instrumentation and no synchronization.
///
/// # Examples
///
/// ```
/// use xpipes_sim::telemetry::{MetricsRegistry, MetricKind};
///
/// let mut reg = MetricsRegistry::new();
/// let sw = reg.add_component("sw0");
/// let flits = reg.counter(sw, "flits_forwarded");
/// let depth = reg.gauge(sw, "queue_depth");
/// reg.set(flits, 120);
/// reg.sample(depth, 3);
/// reg.sample(depth, 1);
/// reg.note_epoch();
/// assert_eq!(reg.value(flits), 120);
/// assert_eq!(reg.peak(depth), 3);
/// assert_eq!(reg.value(depth), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    components: Vec<String>,
    metrics: Vec<Metric>,
    epochs: u64,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a component; the name appears in the JSON export.
    pub fn add_component(&mut self, name: impl Into<String>) -> ComponentId {
        self.components.push(name.into());
        ComponentId(self.components.len() - 1)
    }

    /// Registers a cumulative counter under `component`.
    pub fn counter(&mut self, component: ComponentId, name: impl Into<String>) -> MetricId {
        self.register(component, name.into(), MetricKind::Counter)
    }

    /// Registers an instantaneous gauge under `component`.
    pub fn gauge(&mut self, component: ComponentId, name: impl Into<String>) -> MetricId {
        self.register(component, name.into(), MetricKind::Gauge)
    }

    fn register(&mut self, component: ComponentId, name: String, kind: MetricKind) -> MetricId {
        assert!(component.0 < self.components.len(), "unknown component");
        self.metrics.push(Metric {
            component: component.0,
            name,
            kind,
            value: 0,
            peak: 0,
        });
        MetricId(self.metrics.len() - 1)
    }

    /// Publishes a counter's running total (last write wins).
    pub fn set(&mut self, id: MetricId, total: u64) {
        let m = &mut self.metrics[id.0];
        m.value = total;
        m.peak = m.peak.max(total);
    }

    /// Publishes a gauge sample, tracking the peak.
    pub fn sample(&mut self, id: MetricId, value: u64) {
        let m = &mut self.metrics[id.0];
        m.value = value;
        m.peak = m.peak.max(value);
    }

    /// Marks the end of a sampling epoch.
    pub fn note_epoch(&mut self) {
        self.epochs += 1;
    }

    /// Number of completed sampling epochs.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Latest published value of a metric.
    pub fn value(&self, id: MetricId) -> u64 {
        self.metrics[id.0].value
    }

    /// Peak value observed for a metric (equals the latest total for
    /// counters, which are monotone).
    pub fn peak(&self, id: MetricId) -> u64 {
        self.metrics[id.0].peak
    }

    /// Number of registered components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Deterministic JSON export, grouped by component in registration
    /// order.
    pub fn to_json(&self) -> Json {
        let mut components = Vec::with_capacity(self.components.len());
        for (ci, name) in self.components.iter().enumerate() {
            let mut metrics = Vec::new();
            for m in self.metrics.iter().filter(|m| m.component == ci) {
                let mut b = Json::object()
                    .field("name", Json::str(m.name.clone()))
                    .field(
                        "kind",
                        Json::str(match m.kind {
                            MetricKind::Counter => "counter",
                            MetricKind::Gauge => "gauge",
                        }),
                    )
                    .field("value", Json::UInt(m.value));
                if m.kind == MetricKind::Gauge {
                    b = b.field("peak", Json::UInt(m.peak));
                }
                metrics.push(b.build());
            }
            components.push(
                Json::object()
                    .field("name", Json::str(name.clone()))
                    .field("metrics", Json::Array(metrics))
                    .build(),
            );
        }
        Json::object()
            .field("epochs", Json::UInt(self.epochs))
            .field("components", Json::Array(components))
            .build()
    }
}

impl Snapshot for MetricsRegistry {
    /// Saves the published values — components and metric names are
    /// structural (re-registered by `enable_telemetry` on restore).
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.u64(self.epochs);
        w.len(self.metrics.len());
        for m in &self.metrics {
            w.u64(m.value);
            w.u64(m.peak);
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.epochs = r.u64()?;
        let n = r.len()?;
        if n != self.metrics.len() {
            return Err(SnapshotError::Malformed(format!(
                "metric count mismatch: snapshot {n}, registry {}",
                self.metrics.len()
            )));
        }
        for m in &mut self.metrics {
            m.value = r.u64()?;
            m.peak = r.u64()?;
        }
        Ok(())
    }
}

/// One sampling window of the congestion timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineWindow {
    /// First cycle covered by the window.
    pub start: u64,
    /// Forward-flit traversals per link during the window (link order
    /// matches [`CongestionTimeline::link_labels`]).
    pub link_flits: Vec<u32>,
    /// Output-queue occupancy per switch, sampled at the window
    /// boundary (switch order matches
    /// [`CongestionTimeline::switch_labels`]).
    pub queue_depth: Vec<u32>,
}

/// Time-windowed per-link utilization and per-switch queue depth.
///
/// The engine pushes one window every `interval` cycles; each window
/// stores the traversal *delta* over the window (so utilization is
/// `link_flits / interval`) and a point sample of queue occupancy.
#[derive(Debug, Clone)]
pub struct CongestionTimeline {
    interval: u64,
    link_labels: Vec<String>,
    switch_labels: Vec<String>,
    windows: Vec<TimelineWindow>,
}

impl CongestionTimeline {
    /// Creates an empty timeline over the given links and switches.
    pub fn new(interval: u64, link_labels: Vec<String>, switch_labels: Vec<String>) -> Self {
        assert!(interval > 0, "sampling interval must be positive");
        CongestionTimeline {
            interval,
            link_labels,
            switch_labels,
            windows: Vec::new(),
        }
    }

    /// Sampling interval in cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Link labels, in window column order.
    pub fn link_labels(&self) -> &[String] {
        &self.link_labels
    }

    /// Switch labels, in window column order.
    pub fn switch_labels(&self) -> &[String] {
        &self.switch_labels
    }

    /// Appends a completed window.
    ///
    /// # Panics
    ///
    /// Panics when the column counts do not match the labels.
    pub fn push(&mut self, start: u64, link_flits: Vec<u32>, queue_depth: Vec<u32>) {
        assert_eq!(link_flits.len(), self.link_labels.len());
        assert_eq!(queue_depth.len(), self.switch_labels.len());
        self.windows.push(TimelineWindow {
            start,
            link_flits,
            queue_depth,
        });
    }

    /// Recorded windows, oldest first.
    pub fn windows(&self) -> &[TimelineWindow] {
        &self.windows
    }

    /// Deterministic JSON export.
    pub fn to_json(&self) -> Json {
        let windows = self
            .windows
            .iter()
            .map(|w| {
                Json::object()
                    .field("start", Json::UInt(w.start))
                    .field(
                        "link_flits",
                        Json::Array(w.link_flits.iter().map(|&v| Json::UInt(v as u64)).collect()),
                    )
                    .field(
                        "queue_depth",
                        Json::Array(
                            w.queue_depth
                                .iter()
                                .map(|&v| Json::UInt(v as u64))
                                .collect(),
                        ),
                    )
                    .build()
            })
            .collect();
        Json::object()
            .field("interval", Json::UInt(self.interval))
            .field(
                "links",
                Json::Array(self.link_labels.iter().map(Json::str).collect()),
            )
            .field(
                "switches",
                Json::Array(self.switch_labels.iter().map(Json::str).collect()),
            )
            .field("windows", Json::Array(windows))
            .build()
    }

    /// Rendered JSON document.
    pub fn render(&self) -> String {
        self.to_json().render()
    }
}

impl Snapshot for CongestionTimeline {
    /// Saves the recorded windows — interval and labels are structural.
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.len(self.windows.len());
        for win in &self.windows {
            w.u64(win.start);
            for &v in &win.link_flits {
                w.u32(v);
            }
            for &v in &win.queue_depth {
                w.u32(v);
            }
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let n = r.len()?;
        self.windows.clear();
        for _ in 0..n {
            let start = r.u64()?;
            let mut link_flits = Vec::with_capacity(self.link_labels.len());
            for _ in 0..self.link_labels.len() {
                link_flits.push(r.u32()?);
            }
            let mut queue_depth = Vec::with_capacity(self.switch_labels.len());
            for _ in 0..self.switch_labels.len() {
                queue_depth.push(r.u32()?);
            }
            self.windows.push(TimelineWindow {
                start,
                link_flits,
                queue_depth,
            });
        }
        Ok(())
    }
}

/// What a flight-recorder event witnessed on a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A new flit entered the forward channel.
    Transmit,
    /// A previously sent sequence number went out again (go-back-N
    /// rewind or timeout replay).
    Retransmit,
    /// A flit arrived intact at the consumer.
    Arrival,
    /// A flit arrived with its corruption flag set (will be nACKed).
    CorruptArrival,
    /// A tail flit arrived intact at a destination NI — the packet left
    /// the network.
    Deliver,
}

impl TraceEventKind {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::Transmit => "transmit",
            TraceEventKind::Retransmit => "retransmit",
            TraceEventKind::Arrival => "arrival",
            TraceEventKind::CorruptArrival => "corrupt_arrival",
            TraceEventKind::Deliver => "deliver",
        }
    }
}

/// One flit-level observation. Events record what appeared on the wire
/// — an out-of-window duplicate still logs an `Arrival` even though the
/// receiver re-ACKs it without delivering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the event was observed.
    pub cycle: u64,
    /// Channel index (dense, network assembly order).
    pub channel: u32,
    /// Packet the flit belongs to.
    pub packet_id: u64,
    /// Cycle the packet was injected at its source NI.
    pub injected_at: u64,
    /// Link-level go-back-N sequence number.
    pub seq: u8,
    /// What was observed.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// Human-readable one-line rendering; `label` names the channel.
    pub fn render(&self, label: &str) -> String {
        format!(
            "[cycle {}] {} ch{}({}) pkt {} seq {}",
            self.cycle,
            self.kind.name(),
            self.channel,
            label,
            self.packet_id,
            self.seq
        )
    }

    /// Deterministic JSON form.
    pub fn to_json(&self) -> Json {
        Json::object()
            .field("cycle", Json::UInt(self.cycle))
            .field("channel", Json::UInt(self.channel as u64))
            .field("packet", Json::UInt(self.packet_id))
            .field("injected_at", Json::UInt(self.injected_at))
            .field("seq", Json::UInt(self.seq as u64))
            .field("kind", Json::str(self.kind.name()))
            .build()
    }
}

/// A frozen snapshot of the flight recorder, captured at the moment an
/// invariant tripped.
#[derive(Debug, Clone)]
pub struct FrozenDump {
    /// Cycle at which the snapshot was taken.
    pub cycle: u64,
    /// Ring contents at that moment, oldest first.
    pub events: Vec<TraceEvent>,
}

/// Bounded ring buffer of recent flit-level events.
///
/// The recorder is fed only from channels the engine actually touches,
/// so the idle-skipping fast path stays intact: a skipped channel is
/// provably inert and produces no events. When a protocol invariant
/// trips, [`freeze`](Self::freeze) captures the ring so the last-K
/// events survive however long the run continues afterwards.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    depth: usize,
    ring: VecDeque<TraceEvent>,
    frozen: Option<FrozenDump>,
    /// Per-channel next-new sequence number, used to classify a
    /// transmission as new (`Transmit`) or a replay (`Retransmit`) the
    /// same way the protocol monitor does.
    expected_new_seq: Vec<u8>,
}

impl FlightRecorder {
    /// A recorder holding at most `depth` events over `channels`
    /// channels.
    pub fn new(depth: usize, channels: usize) -> Self {
        assert!(depth > 0, "flight recorder depth must be positive");
        FlightRecorder {
            depth,
            ring: VecDeque::with_capacity(depth.min(4096)),
            frozen: None,
            expected_new_seq: vec![0; channels],
        }
    }

    /// Maximum number of retained events.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no event has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Classifies a transmission on `channel` as new or a replay and
    /// advances the per-channel expectation for new sends.
    pub fn classify_transmit(&mut self, channel: usize, seq: u8) -> TraceEventKind {
        let expected = &mut self.expected_new_seq[channel];
        if seq == *expected {
            *expected = (*expected + 1) % SEQ_MOD;
            TraceEventKind::Transmit
        } else {
            TraceEventKind::Retransmit
        }
    }

    /// Appends an event, evicting the oldest once full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.ring.len() == self.depth {
            self.ring.pop_front();
        }
        self.ring.push_back(event);
    }

    /// Captures the current ring as the crash dump. Only the first
    /// freeze sticks — later violations in the same run must not
    /// overwrite the trace of the original trip.
    pub fn freeze(&mut self, cycle: u64) {
        if self.frozen.is_none() {
            self.frozen = Some(FrozenDump {
                cycle,
                events: self.ring.iter().copied().collect(),
            });
        }
    }

    /// The frozen dump, when a freeze happened.
    pub fn frozen(&self) -> Option<&FrozenDump> {
        self.frozen.as_ref()
    }

    /// The events to dump: the frozen snapshot when one exists,
    /// otherwise the live ring contents.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        match &self.frozen {
            Some(dump) => dump.events.clone(),
            None => self.ring.iter().copied().collect(),
        }
    }

    /// Live ring contents, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }
}

impl TraceEventKind {
    fn snapshot_tag(self) -> u8 {
        match self {
            TraceEventKind::Transmit => 0,
            TraceEventKind::Retransmit => 1,
            TraceEventKind::Arrival => 2,
            TraceEventKind::CorruptArrival => 3,
            TraceEventKind::Deliver => 4,
        }
    }

    fn from_snapshot_tag(tag: u8) -> Result<Self, SnapshotError> {
        Ok(match tag {
            0 => TraceEventKind::Transmit,
            1 => TraceEventKind::Retransmit,
            2 => TraceEventKind::Arrival,
            3 => TraceEventKind::CorruptArrival,
            4 => TraceEventKind::Deliver,
            other => {
                return Err(SnapshotError::Malformed(format!(
                    "bad trace event kind tag {other}"
                )))
            }
        })
    }
}

fn save_trace_event(w: &mut SnapshotWriter, ev: &TraceEvent) {
    w.u64(ev.cycle);
    w.u32(ev.channel);
    w.u64(ev.packet_id);
    w.u64(ev.injected_at);
    w.u8(ev.seq);
    w.u8(ev.kind.snapshot_tag());
}

fn load_trace_event(r: &mut SnapshotReader<'_>) -> Result<TraceEvent, SnapshotError> {
    Ok(TraceEvent {
        cycle: r.u64()?,
        channel: r.u32()?,
        packet_id: r.u64()?,
        injected_at: r.u64()?,
        seq: r.u8()?,
        kind: TraceEventKind::from_snapshot_tag(r.u8()?)?,
    })
}

impl Snapshot for FlightRecorder {
    /// Saves the event ring, the frozen dump (if any), and the
    /// per-channel replay classifier — depth and channel count are
    /// structural.
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.len(self.ring.len());
        for ev in &self.ring {
            save_trace_event(w, ev);
        }
        w.bool(self.frozen.is_some());
        if let Some(dump) = &self.frozen {
            w.u64(dump.cycle);
            w.len(dump.events.len());
            for ev in &dump.events {
                save_trace_event(w, ev);
            }
        }
        w.len(self.expected_new_seq.len());
        for &s in &self.expected_new_seq {
            w.u8(s);
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let n = r.len()?;
        self.ring.clear();
        for _ in 0..n {
            self.ring.push_back(load_trace_event(r)?);
        }
        self.frozen = if r.bool()? {
            let cycle = r.u64()?;
            let count = r.len()?;
            let mut events = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                events.push(load_trace_event(r)?);
            }
            Some(FrozenDump { cycle, events })
        } else {
            None
        };
        let channels = r.len()?;
        if channels != self.expected_new_seq.len() {
            return Err(SnapshotError::Malformed(format!(
                "flight recorder channel count mismatch: snapshot {channels}, target {}",
                self.expected_new_seq.len()
            )));
        }
        for s in &mut self.expected_new_seq {
            *s = r.u8()?;
        }
        Ok(())
    }
}

/// Per-run telemetry digest embedded in campaign reports: where the
/// protocol worked hardest. A pure function of end-of-run component
/// counters, so it is byte-deterministic at any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySummary {
    /// Total link-layer retransmissions across all senders.
    pub total_retransmissions: u64,
    /// Links with a nonzero retransmission count, in channel order.
    pub link_retransmissions: Vec<(String, u64)>,
    /// Highest output-queue occupancy any switch reached.
    pub peak_queue_depth: u64,
    /// Label of the switch that reached it (empty without switches).
    pub peak_queue_switch: String,
}

impl TelemetrySummary {
    /// Deterministic JSON form.
    pub fn to_json(&self) -> Json {
        let links = self
            .link_retransmissions
            .iter()
            .map(|(label, count)| {
                Json::object()
                    .field("link", Json::str(label.clone()))
                    .field("retransmissions", Json::UInt(*count))
                    .build()
            })
            .collect();
        Json::object()
            .field(
                "total_retransmissions",
                Json::UInt(self.total_retransmissions),
            )
            .field("peak_queue_depth", Json::UInt(self.peak_queue_depth))
            .field(
                "peak_queue_switch",
                Json::str(self.peak_queue_switch.clone()),
            )
            .field("link_retransmissions", Json::Array(links))
            .build()
    }
}

/// Renders flight-recorder events as a Chrome/Perfetto `trace_event`
/// document (load it at `ui.perfetto.dev` or `chrome://tracing`).
///
/// Each packet becomes one async span: it begins at the packet's
/// injection cycle, every wire observation becomes an instant event on
/// the channel's track, and the span ends at the packet's `Deliver`
/// event (or its last observation when delivery fell outside the
/// ring). Timestamps are simulation cycles interpreted as
/// microseconds.
pub fn perfetto_trace(events: &[TraceEvent], channel_labels: &[String]) -> Json {
    perfetto_trace_with(events, channel_labels, Vec::new())
}

/// Like [`perfetto_trace`], with `extra` trace events (e.g. attribution
/// spans from `xpipes_sim::attribution`) appended after the flit events
/// so both layers land in one document.
pub fn perfetto_trace_with(
    events: &[TraceEvent],
    channel_labels: &[String],
    extra: Vec<Json>,
) -> Json {
    // Packets in first-appearance order, with their span bounds.
    let mut order: Vec<u64> = Vec::new();
    let mut spans: Vec<(u64, u64, u64)> = Vec::new(); // (packet, begin, end)
    for ev in events {
        match spans.iter_mut().find(|(p, _, _)| *p == ev.packet_id) {
            Some((_, _, end)) => {
                if ev.kind == TraceEventKind::Deliver || ev.cycle > *end {
                    *end = ev.cycle;
                }
            }
            None => {
                order.push(ev.packet_id);
                spans.push((ev.packet_id, ev.injected_at, ev.cycle));
            }
        }
    }
    let mut trace_events = Vec::new();
    for &pkt in &order {
        let (_, begin, _) = spans.iter().find(|(p, _, _)| *p == pkt).unwrap();
        trace_events.push(async_event("b", pkt, *begin));
    }
    for ev in events {
        let label = channel_labels
            .get(ev.channel as usize)
            .map(String::as_str)
            .unwrap_or("?");
        trace_events.push(
            Json::object()
                .field("name", Json::str(ev.kind.name()))
                .field("cat", Json::str("flit"))
                .field("ph", Json::str("i"))
                .field("ts", Json::UInt(ev.cycle))
                .field("pid", Json::UInt(0))
                .field("tid", Json::UInt(ev.channel as u64 + 1))
                .field("s", Json::str("t"))
                .field(
                    "args",
                    Json::object()
                        .field("packet", Json::UInt(ev.packet_id))
                        .field("seq", Json::UInt(ev.seq as u64))
                        .field("channel", Json::str(label))
                        .build(),
                )
                .build(),
        );
    }
    for &pkt in &order {
        let (_, _, end) = spans.iter().find(|(p, _, _)| *p == pkt).unwrap();
        trace_events.push(async_event("e", pkt, *end));
    }
    trace_events.extend(extra);
    Json::object()
        .field("displayTimeUnit", Json::str("ms"))
        .field("traceEvents", Json::Array(trace_events))
        .build()
}

fn async_event(phase: &str, packet: u64, ts: u64) -> Json {
    Json::object()
        .field("name", Json::str(format!("pkt {packet}")))
        .field("cat", Json::str("packet"))
        .field("ph", Json::str(phase))
        .field("id", Json::UInt(packet))
        .field("ts", Json::UInt(ts))
        .field("pid", Json::UInt(0))
        .field("tid", Json::UInt(0))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_counters_and_gauges() {
        let mut reg = MetricsRegistry::new();
        let sw = reg.add_component("sw0");
        let link = reg.add_component("link0");
        let flits = reg.counter(sw, "flits_forwarded");
        let depth = reg.gauge(sw, "queue_depth");
        let retx = reg.counter(link, "retransmissions");
        reg.set(flits, 10);
        reg.sample(depth, 5);
        reg.note_epoch();
        reg.set(flits, 25);
        reg.sample(depth, 2);
        reg.set(retx, 1);
        reg.note_epoch();
        assert_eq!(reg.epochs(), 2);
        assert_eq!(reg.value(flits), 25);
        assert_eq!(reg.value(depth), 2);
        assert_eq!(reg.peak(depth), 5);
        assert_eq!(reg.value(retx), 1);
        assert_eq!(reg.component_count(), 2);
    }

    #[test]
    fn registry_json_is_deterministic_and_ordered() {
        let mk = || {
            let mut reg = MetricsRegistry::new();
            let a = reg.add_component("alpha");
            let b = reg.add_component("beta");
            let c = reg.counter(a, "count");
            let g = reg.gauge(b, "gauge");
            reg.set(c, 7);
            reg.sample(g, 3);
            reg.note_epoch();
            reg.to_json().render()
        };
        let text = mk();
        assert_eq!(text, mk());
        assert!(text.find("alpha").unwrap() < text.find("beta").unwrap());
        assert!(text.contains("\"peak\": 3"));
    }

    #[test]
    fn timeline_export_shape() {
        let mut tl = CongestionTimeline::new(
            64,
            vec!["sw0.p1->sw1.p0".into()],
            vec!["sw0".into(), "sw1".into()],
        );
        tl.push(0, vec![12], vec![1, 0]);
        tl.push(64, vec![30], vec![2, 3]);
        assert_eq!(tl.windows().len(), 2);
        let text = tl.render();
        assert_eq!(text, tl.render());
        assert!(text.contains("\"interval\": 64"));
        assert!(text.contains("\"start\": 64"));
        assert!(text.contains("sw0.p1->sw1.p0"));
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn timeline_rejects_mismatched_columns() {
        let mut tl = CongestionTimeline::new(8, vec!["l0".into()], vec!["s0".into()]);
        tl.push(0, vec![1, 2], vec![0]);
    }

    fn ev(cycle: u64, packet: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            cycle,
            channel: 0,
            packet_id: packet,
            injected_at: cycle.saturating_sub(2),
            seq: 0,
            kind,
        }
    }

    #[test]
    fn flight_recorder_bounds_and_freeze() {
        let mut fr = FlightRecorder::new(4, 2);
        for i in 0..10 {
            fr.record(ev(i, i, TraceEventKind::Transmit));
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.events().next().unwrap().cycle, 6);
        fr.freeze(10);
        fr.record(ev(11, 11, TraceEventKind::Arrival));
        fr.freeze(12); // second freeze must not overwrite the first
        let dump = fr.frozen().expect("frozen");
        assert_eq!(dump.cycle, 10);
        assert_eq!(dump.events.len(), 4);
        assert_eq!(dump.events.last().unwrap().cycle, 9);
        // The snapshot prefers the frozen dump over the live ring.
        assert_eq!(fr.snapshot().last().unwrap().cycle, 9);
    }

    #[test]
    fn flight_recorder_classifies_replays() {
        let mut fr = FlightRecorder::new(8, 1);
        assert_eq!(fr.classify_transmit(0, 0), TraceEventKind::Transmit);
        assert_eq!(fr.classify_transmit(0, 1), TraceEventKind::Transmit);
        // Go-back-N rewind: seq 0 goes out again.
        assert_eq!(fr.classify_transmit(0, 0), TraceEventKind::Retransmit);
        assert_eq!(fr.classify_transmit(0, 1), TraceEventKind::Retransmit);
        assert_eq!(fr.classify_transmit(0, 2), TraceEventKind::Transmit);
    }

    #[test]
    fn perfetto_spans_bracket_packet_lifetimes() {
        let labels = vec!["ini0->sw0.p2".to_string()];
        let events = [
            ev(5, 1, TraceEventKind::Transmit),
            ev(7, 1, TraceEventKind::Arrival),
            ev(8, 2, TraceEventKind::Transmit),
            ev(9, 1, TraceEventKind::Deliver),
        ];
        let text = perfetto_trace(&events, &labels).render();
        assert_eq!(text, perfetto_trace(&events, &labels).render());
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"ph\": \"b\""));
        assert!(text.contains("\"ph\": \"e\""));
        assert!(text.contains("\"pkt 1\""));
        assert!(text.contains("ini0->sw0.p2"));
        // The begin for packet 1 uses its injection cycle.
        let begin = text.find("\"ph\": \"b\"").unwrap();
        assert!(text[begin..].contains("\"ts\": 3"));
    }

    #[test]
    fn telemetry_state_snapshot_roundtrip() {
        let mut reg = MetricsRegistry::new();
        let sw = reg.add_component("sw0");
        let flits = reg.counter(sw, "flits_forwarded");
        let depth = reg.gauge(sw, "queue_depth");
        reg.set(flits, 12);
        reg.sample(depth, 5);
        reg.sample(depth, 1);
        reg.note_epoch();

        let mut tl = CongestionTimeline::new(8, vec!["l0".into()], vec!["s0".into()]);
        tl.push(0, vec![4], vec![2]);
        tl.push(8, vec![7], vec![0]);

        let mut fr = FlightRecorder::new(4, 2);
        let _ = fr.classify_transmit(0, 0);
        fr.record(ev(3, 1, TraceEventKind::Transmit));
        fr.record(ev(5, 1, TraceEventKind::CorruptArrival));
        fr.freeze(6);
        fr.record(ev(7, 2, TraceEventKind::Arrival));

        let mut w = SnapshotWriter::new();
        reg.save_state(&mut w);
        tl.save_state(&mut w);
        fr.save_state(&mut w);
        let bytes = w.finish();

        // Restore into freshly built (structurally identical) targets.
        let mut reg2 = MetricsRegistry::new();
        let sw2 = reg2.add_component("sw0");
        let flits2 = reg2.counter(sw2, "flits_forwarded");
        let depth2 = reg2.gauge(sw2, "queue_depth");
        let mut tl2 = CongestionTimeline::new(8, vec!["l0".into()], vec!["s0".into()]);
        let mut fr2 = FlightRecorder::new(4, 2);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        reg2.load_state(&mut r).unwrap();
        tl2.load_state(&mut r).unwrap();
        fr2.load_state(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(reg2.to_json().render(), reg.to_json().render());
        assert_eq!(reg2.value(flits2), 12);
        assert_eq!(reg2.peak(depth2), 5);
        assert_eq!(tl2.render(), tl.render());
        assert_eq!(fr2.snapshot(), fr.snapshot());
        assert_eq!(fr2.frozen().unwrap().cycle, 6);
        assert_eq!(
            fr2.events().copied().collect::<Vec<_>>(),
            fr.events().copied().collect::<Vec<_>>()
        );
        // The replay classifier resumed mid-stream: channel 0 expects
        // seq 1 next in both instances.
        assert_eq!(fr2.classify_transmit(0, 0), TraceEventKind::Retransmit);
        assert_eq!(fr2.classify_transmit(0, 1), TraceEventKind::Transmit);
    }

    #[test]
    fn summary_json_lists_hot_links() {
        let summary = TelemetrySummary {
            total_retransmissions: 9,
            link_retransmissions: vec![("sw0.p1->sw1.p0".into(), 9)],
            peak_queue_depth: 4,
            peak_queue_switch: "sw1".into(),
        };
        let text = summary.to_json().render();
        assert!(text.contains("\"total_retransmissions\": 9"));
        assert!(text.contains("\"peak_queue_switch\": \"sw1\""));
        assert!(text.contains("sw0.p1->sw1.p0"));
    }
}
