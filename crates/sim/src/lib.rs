//! # xpipes-sim — cycle-accurate simulation kernel
//!
//! This crate is the substrate on which the behavioural models of the
//! xpipes Lite NoC library (crate `xpipes`) execute. The original library
//! was written in SystemC; this kernel reproduces the subset of SystemC
//! semantics the library relies on:
//!
//! * a global cycle counter ([`Cycle`]),
//! * **two-phase clocked state**: every register computes its next value
//!   from the *previous* cycle's outputs, then all registers commit
//!   simultaneously ([`Register`], [`Clocked`]),
//! * deterministic random sources ([`rng::SimRng`]),
//! * event-driven scheduling primitives for the structure-of-arrays NoC
//!   kernel: two-level activity bitmaps ([`active::ActiveSet`]) and an
//!   exact-horizon timer wheel ([`wheel::EventWheel`]),
//! * versioned, integrity-hashed state snapshots for checkpoint/restore
//!   ([`snapshot`]),
//! * deterministic fan-out of independent seeded runs ([`parallel`]),
//! * statistics gathering ([`stats`]),
//! * value-change-dump tracing ([`trace::VcdWriter`]),
//! * low-overhead observability ([`telemetry`]): per-component metric
//!   registry, congestion timelines, flight-recorder event traces with
//!   Chrome/Perfetto export,
//! * per-packet latency attribution ([`attribution`]): causal span
//!   ledgers with an exact conservation invariant, per-flow latency
//!   histograms, and a run-diff regression explainer,
//! * fault-model specifications and campaign reports ([`faults`]) with a
//!   byte-stable JSON renderer ([`json`]),
//! * deterministic kernel-health introspection ([`health`]) and an
//!   opt-in wall-clock phase profiler ([`profile`]).
//!
//! # Examples
//!
//! ```
//! use xpipes_sim::{Cycle, Register, Clocked};
//!
//! /// A free-running counter: a register fed by itself plus one.
//! struct Counter { value: Register<u32> }
//!
//! impl Clocked for Counter {
//!     fn posedge(&mut self, _now: Cycle) {
//!         let next = self.value.get() + 1;
//!         self.value.set(next);
//!     }
//!     fn commit(&mut self) { self.value.commit(); }
//! }
//!
//! let mut c = Counter { value: Register::new(0) };
//! let mut now = Cycle::ZERO;
//! for _ in 0..5 {
//!     c.posedge(now);
//!     c.commit();
//!     now = now.next();
//! }
//! assert_eq!(c.value.get(), 5);
//! ```

pub mod active;
pub mod attribution;
pub mod faults;
pub mod health;
pub mod json;
pub mod kernel;
pub mod parallel;
pub mod profile;
pub mod rng;
pub mod snapshot;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod trace;
pub mod wheel;

pub use active::ActiveSet;
pub use attribution::{
    AttributionDiff, AttributionEngine, AttributionSummary, ChannelConsumer, ChannelInfo, Phase,
};
pub use faults::{CampaignReport, FaultKind, FaultPlan, FaultRun, RunSummary};
pub use health::{FallbackReason, HealthSample, KernelHealth};
pub use json::Json;
pub use kernel::{Clocked, Register, Simulation};
pub use profile::{KernelPhase, KernelProfile};
pub use rng::{RngState, SimRng};
pub use snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
pub use stats::{Counter, Histogram, RunningStats};
pub use telemetry::{
    CongestionTimeline, FlightRecorder, MetricsRegistry, TelemetrySummary, TraceEvent,
    TraceEventKind,
};
pub use time::Cycle;
pub use wheel::{EventId, EventWheel};
