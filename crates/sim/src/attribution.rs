//! Per-packet latency attribution: a causal span ledger that decomposes
//! every delivered packet's end-to-end latency into named phases, with an
//! exact conservation invariant.
//!
//! The engine is fed three kinds of events by the network assembly (it
//! knows nothing about the component types themselves, only channel
//! indices and cycle numbers):
//!
//! * **transmit** — a flit was driven onto a channel this cycle. The
//!   engine mirrors the link layer's sequence expectation to tell first
//!   transmissions from replays; only the former open spans.
//! * **grant** — a switch crossbar moved a tail flit into an output
//!   queue this cycle.
//! * **accept** — a consumer's link receiver accepted a tail flit
//!   in order this cycle. Accepts at NI consumers finalize the packet.
//!
//! From the resulting per-packet milestones the decomposition is a pure
//! telescoping sum, so the six phases add up to the measured end-to-end
//! latency *exactly* — not approximately — for every delivered packet:
//!
//! | phase | meaning |
//! |---|---|
//! | `source_queue` | injection until the head flit first hits the wire |
//! | `ni_packetization` | head first-send until the tail first-send (flit serialization) |
//! | `output_queue` | granted tail waiting in switch output queues |
//! | `arbitration_stall` | tail waiting in switch input stages beyond the pipeline minimum |
//! | `link_traversal` | nominal pipeline: link stages plus 2 (+extra) cycles per switch |
//! | `retx_penalty` | first send until in-order accept beyond the link depth (replays, nACK backpressure) |
//!
//! The invariant is `debug_assert!`ed on every finalization and pinned by
//! the conformance suite (`tests/attribution.rs` in crate `xpipes`); in
//! release builds a packet whose ledger cannot be decomposed (e.g. the
//! engine was attached mid-flight) is counted in
//! [`AttributionEngine::incomplete`] instead of panicking.

use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

use crate::json::Json;
use crate::snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use crate::stats::{Histogram, RunningStats};

/// Multiplicative hasher for packet ids. Packet ids are small sequential
/// integers handed out by the NIs, so SipHash (the `HashMap` default) is
/// pure overhead on the per-flit event path; a single Fibonacci-style
/// multiply spreads consecutive ids across buckets just as well.
#[derive(Debug, Default, Clone, Copy)]
struct PacketIdHasher(u64);

impl Hasher for PacketIdHasher {
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("packet ids hash via write_u64");
    }
    fn write_u64(&mut self, id: u64) {
        self.0 = id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

type PacketMap = HashMap<u64, PacketLedger, BuildHasherDefault<PacketIdHasher>>;

/// Sequence-number modulus of the link layer. Restated here (the link
/// layer lives upstream in crate `xpipes`, which depends on this crate);
/// the conformance test `flight_recorder_seq_space_matches_link_layer`
/// keeps the two constants equal.
const SEQ_MOD: u8 = 64;

/// Number of attribution phases.
pub const PHASE_COUNT: usize = 6;

/// One latency phase of the decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Injection (packetization cycle) until the head flit's first
    /// transmission: NI source-queue residency and window backpressure.
    SourceQueue,
    /// Head first-send until tail first-send on the source channel: the
    /// cost of serializing the packet into flits.
    NiPacketization,
    /// Cycles a granted tail flit sat in switch output queues beyond the
    /// single nominal queue cycle.
    OutputQueue,
    /// Cycles a tail flit waited at switch inputs beyond the pipeline
    /// minimum — lost arbitration rounds and full output queues.
    ArbitrationStall,
    /// Nominal forwarding pipeline: link stages on every hop plus the
    /// 2-cycle switch transit (+ extra input stages on legacy switches).
    LinkTraversal,
    /// First send until in-order accept beyond the link depth:
    /// retransmissions after corruption, nACK replays, input
    /// backpressure.
    RetxPenalty,
}

impl Phase {
    /// All phases in canonical (report) order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::SourceQueue,
        Phase::NiPacketization,
        Phase::OutputQueue,
        Phase::ArbitrationStall,
        Phase::LinkTraversal,
        Phase::RetxPenalty,
    ];

    /// Stable snake_case name used in every JSON export.
    pub fn name(self) -> &'static str {
        match self {
            Phase::SourceQueue => "source_queue",
            Phase::NiPacketization => "ni_packetization",
            Phase::OutputQueue => "output_queue",
            Phase::ArbitrationStall => "arbitration_stall",
            Phase::LinkTraversal => "link_traversal",
            Phase::RetxPenalty => "retx_penalty",
        }
    }

    /// Canonical index of this phase (position in [`Phase::ALL`]).
    pub fn index(self) -> usize {
        Phase::ALL.iter().position(|&p| p == self).expect("in ALL")
    }
}

/// What sits at the consuming end of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelConsumer {
    /// A switch input port with `extra` pipeline stages beyond the
    /// 2-stage xpipes Lite minimum (0 for the Lite switch).
    Switch {
        /// Extra input pipeline stages (5 models the legacy switch).
        extra: u64,
    },
    /// A network interface: an accept here finalizes the packet.
    Ni {
        /// Raw NI identifier (key into the engine's label map).
        id: usize,
    },
}

/// Static description of one channel, provided by the network assembly.
#[derive(Debug, Clone)]
pub struct ChannelInfo {
    /// Human-readable `producer->consumer` label.
    pub label: String,
    /// Link pipeline depth in cycles (a flit needs exactly this many
    /// cycles from transmit to earliest arrival).
    pub stages: u64,
    /// The consuming endpoint.
    pub consumer: ChannelConsumer,
    /// True when the producing endpoint is an NI (packets start here).
    pub producer_is_ni: bool,
}

/// Histogram range for per-flow latency distributions. Matches the NI
/// statistics range (`NiStats::HIST_RANGE` in crate `xpipes`) so flow
/// percentiles line up with NI-observed latency percentiles.
const HIST_RANGE: (u64, u64, usize) = (0, 4096, 128);

/// Milestones of one hop of one packet's tail flit.
#[derive(Debug, Clone, Copy)]
struct HopRecord {
    channel: u32,
    /// Crossbar grant cycle (`None` on the source-NI hop).
    grant: Option<u64>,
    /// First *new* transmission cycle on this channel.
    first_tx: Option<u64>,
    /// In-order accept cycle at the consumer.
    accepted: Option<u64>,
}

/// The span ledger of one in-flight packet.
#[derive(Debug, Clone)]
struct PacketLedger {
    injected_at: u64,
    src: usize,
    /// First new transmission of the head flit on the source channel.
    head_first_tx: Option<u64>,
    /// Tail-flit milestones, in path order.
    hops: Vec<HopRecord>,
}

/// A finalized hop trace entry of the worst packet of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExemplarHop {
    /// Channel index the tail flit traversed.
    pub channel: u32,
    /// Crossbar grant cycle (`None` on the source-NI hop).
    pub grant: Option<u64>,
    /// First new transmission cycle.
    pub first_tx: u64,
    /// In-order accept cycle.
    pub accepted: u64,
}

/// Flight-recorder-style record of a flow's worst (slowest) packet.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// Packet identifier.
    pub packet_id: u64,
    /// Injection cycle.
    pub injected_at: u64,
    /// Delivery (tail accept) cycle.
    pub delivered_at: u64,
    /// End-to-end latency in cycles.
    pub total: u64,
    /// Per-phase decomposition (canonical order).
    pub phases: [u64; PHASE_COUNT],
    /// Per-hop milestones along the path.
    pub hops: Vec<ExemplarHop>,
}

/// Aggregated attribution of one (source NI, destination NI) flow.
#[derive(Debug, Clone)]
struct FlowAgg {
    packets: u64,
    hist: Histogram,
    stats: RunningStats,
    max: u64,
    phases: [u64; PHASE_COUNT],
    worst: Exemplar,
}

/// Compact per-run digest for campaign reports (the attribution
/// counterpart of `TelemetrySummary`). A pure function of end-of-run
/// engine state, so it is byte-deterministic at any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionSummary {
    /// Packets finalized (delivered with a complete ledger).
    pub packets: u64,
    /// Packets whose ledger could not be decomposed.
    pub incomplete: u64,
    /// Packets still in flight at the end of the run.
    pub in_flight: u64,
    /// Network-wide per-phase cycle totals (canonical order).
    pub phase_totals: [u64; PHASE_COUNT],
    /// `(src, dst, latency)` of the slowest delivered packet, when any.
    pub worst_flow: Option<(String, String, u64)>,
}

impl AttributionSummary {
    /// Deterministic JSON form.
    pub fn to_json(&self) -> Json {
        let mut b = Json::object()
            .field("packets", Json::UInt(self.packets))
            .field("incomplete", Json::UInt(self.incomplete))
            .field("in_flight", Json::UInt(self.in_flight))
            .field("phase_totals", phase_object(&self.phase_totals));
        if let Some((src, dst, latency)) = &self.worst_flow {
            b = b.field(
                "worst_flow",
                Json::object()
                    .field("src", Json::str(src.clone()))
                    .field("dst", Json::str(dst.clone()))
                    .field("latency", Json::UInt(*latency))
                    .build(),
            );
        }
        b.build()
    }
}

/// The exact phase decomposition of one delivered packet.
#[derive(Debug, Clone)]
struct Decomposed {
    total: u64,
    phases: [u64; PHASE_COUNT],
    /// Per-channel contributions, in hop order.
    per_channel: Vec<(u32, [u64; PHASE_COUNT])>,
    hops: Vec<ExemplarHop>,
}

/// The per-packet span ledger and its aggregations.
///
/// Drive it with `note_transmit` / `note_grant` / `note_accept` from the
/// simulation loop; read the results with [`report`](Self::report),
/// [`summary`](Self::summary) and
/// [`perfetto_events`](Self::perfetto_events). Attach it before
/// injecting traffic — packets already in flight cannot be attributed
/// and are counted as incomplete on delivery.
#[derive(Debug, Clone)]
pub struct AttributionEngine {
    channels: Vec<ChannelInfo>,
    ni_labels: BTreeMap<usize, String>,
    /// `[switch][output port] -> channel index` (usize::MAX when the port
    /// drives no channel).
    grant_channel: Vec<Vec<usize>>,
    /// Mirror of the link layer's next-new-sequence expectation per
    /// channel, to classify transmissions as first sends or replays.
    expected_new_seq: Vec<u8>,
    inflight: PacketMap,
    flows: BTreeMap<(usize, usize), FlowAgg>,
    channel_phases: Vec<[u64; PHASE_COUNT]>,
    delivered: u64,
    incomplete: u64,
}

impl AttributionEngine {
    /// Creates an engine over `channels`, with NI id → label mapping and
    /// the `[switch][port] -> channel` grant routing table.
    pub fn new(
        channels: Vec<ChannelInfo>,
        ni_labels: BTreeMap<usize, String>,
        grant_channel: Vec<Vec<usize>>,
    ) -> Self {
        let n = channels.len();
        AttributionEngine {
            channels,
            ni_labels,
            grant_channel,
            expected_new_seq: vec![0; n],
            inflight: PacketMap::default(),
            flows: BTreeMap::new(),
            channel_phases: vec![[0; PHASE_COUNT]; n],
            delivered: 0,
            incomplete: 0,
        }
    }

    /// Packets finalized with an exact decomposition.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Packets whose ledger could not be decomposed (attached mid-run,
    /// or — caught by the debug assertion — an engine bug).
    pub fn incomplete(&self) -> u64 {
        self.incomplete
    }

    /// Packets with an open ledger (still in the network).
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Records a flit driven onto `channel` this cycle. Replays
    /// (retransmissions) are classified via the sequence mirror and open
    /// no new spans.
    #[allow(clippy::too_many_arguments)]
    pub fn note_transmit(
        &mut self,
        channel: usize,
        packet_id: u64,
        seq: u8,
        is_head: bool,
        is_tail: bool,
        injected_at: u64,
        src: usize,
        cycle: u64,
    ) {
        let expected = &mut self.expected_new_seq[channel];
        if seq != *expected {
            return; // replay of an earlier transmission
        }
        *expected = (*expected + 1) % SEQ_MOD;
        if !is_head && !is_tail {
            return; // body flits carry no milestones
        }
        let info = &self.channels[channel];
        let ledger = self.inflight.entry(packet_id).or_insert(PacketLedger {
            injected_at,
            src,
            head_first_tx: None,
            hops: Vec::new(),
        });
        if is_head && info.producer_is_ni && ledger.head_first_tx.is_none() {
            ledger.head_first_tx = Some(cycle);
        }
        if is_tail {
            let ch = channel as u32;
            match ledger
                .hops
                .iter_mut()
                .find(|h| h.channel == ch && h.first_tx.is_none())
            {
                Some(hop) => hop.first_tx = Some(cycle),
                // Source-NI hop: no grant event precedes the send.
                None => ledger.hops.push(HopRecord {
                    channel: ch,
                    grant: None,
                    first_tx: Some(cycle),
                    accepted: None,
                }),
            }
        }
    }

    /// Records a switch crossbar moving a tail flit into output `port`
    /// this cycle.
    pub fn note_grant(&mut self, switch: usize, port: usize, packet_id: u64, cycle: u64) {
        let channel = match self.grant_channel.get(switch).and_then(|p| p.get(port)) {
            Some(&c) if c != usize::MAX => c,
            _ => return,
        };
        // No ledger means the packet predates the engine: skip (it will
        // be counted incomplete if it finalizes here at all).
        let Some(ledger) = self.inflight.get_mut(&packet_id) else {
            return;
        };
        ledger.hops.push(HopRecord {
            channel: channel as u32,
            grant: Some(cycle),
            first_tx: None,
            accepted: None,
        });
    }

    /// Records an in-order accept of a tail flit at `channel`'s consumer
    /// this cycle. Accepts at NI consumers finalize the packet.
    pub fn note_accept(&mut self, channel: usize, packet_id: u64, cycle: u64) {
        let ch = channel as u32;
        let dst = match self.channels[channel].consumer {
            ChannelConsumer::Ni { id } => Some(id),
            ChannelConsumer::Switch { .. } => None,
        };
        let Some(ledger) = self.inflight.get_mut(&packet_id) else {
            return;
        };
        if let Some(hop) = ledger
            .hops
            .iter_mut()
            .find(|h| h.channel == ch && h.accepted.is_none())
        {
            hop.accepted = Some(cycle);
        }
        if let Some(dst) = dst {
            self.finalize(packet_id, dst, cycle);
        }
    }

    /// Removes the packet's ledger and folds its exact decomposition into
    /// the aggregates.
    fn finalize(&mut self, packet_id: u64, dst: usize, delivered_at: u64) {
        let Some(ledger) = self.inflight.remove(&packet_id) else {
            return;
        };
        let Some(d) = decompose(&self.channels, &ledger, delivered_at) else {
            // Conservation is exact by construction; a failed
            // decomposition means a milestone is missing (engine attached
            // mid-flight) or the event feed is wrong (a bug — trapped in
            // debug builds).
            debug_assert!(
                false,
                "attribution conservation failed for packet {packet_id}"
            );
            self.incomplete += 1;
            return;
        };
        self.delivered += 1;
        for (ch, phases) in &d.per_channel {
            let slot = &mut self.channel_phases[*ch as usize];
            for (acc, v) in slot.iter_mut().zip(phases) {
                *acc += v;
            }
        }
        let flow = self
            .flows
            .entry((ledger.src, dst))
            .or_insert_with(|| FlowAgg {
                packets: 0,
                hist: Histogram::new(HIST_RANGE.0, HIST_RANGE.1, HIST_RANGE.2),
                stats: RunningStats::new(),
                max: 0,
                phases: [0; PHASE_COUNT],
                worst: Exemplar {
                    packet_id,
                    injected_at: ledger.injected_at,
                    delivered_at,
                    total: d.total,
                    phases: d.phases,
                    hops: d.hops.clone(),
                },
            });
        flow.packets += 1;
        flow.hist.record(d.total);
        flow.stats.record(d.total as f64);
        flow.max = flow.max.max(d.total);
        for (acc, v) in flow.phases.iter_mut().zip(&d.phases) {
            *acc += v;
        }
        // Strict > keeps the earliest packet on ties — deterministic.
        if d.total > flow.worst.total {
            flow.worst = Exemplar {
                packet_id,
                injected_at: ledger.injected_at,
                delivered_at,
                total: d.total,
                phases: d.phases,
                hops: d.hops,
            };
        }
    }

    fn ni_label(&self, id: usize) -> String {
        self.ni_labels
            .get(&id)
            .cloned()
            .unwrap_or_else(|| format!("ni{id}"))
    }

    /// The full attribution report as a deterministic JSON document:
    /// network-wide phase totals, per-flow latency histograms with worst
    /// packet exemplars, and per-channel phase contributions.
    pub fn report(&self) -> Json {
        let mut totals = [0u64; PHASE_COUNT];
        for phases in &self.channel_phases {
            for (acc, v) in totals.iter_mut().zip(phases) {
                *acc += v;
            }
        }
        let flows = self
            .flows
            .iter()
            .map(|(&(src, dst), agg)| {
                let p = |q: f64| Json::UInt(agg.hist.percentile(q).unwrap_or(0));
                Json::object()
                    .field("src", Json::str(self.ni_label(src)))
                    .field("dst", Json::str(self.ni_label(dst)))
                    .field("packets", Json::UInt(agg.packets))
                    .field(
                        "latency",
                        Json::object()
                            .field("mean", Json::Fixed(agg.stats.mean(), 2))
                            .field("p50", p(50.0))
                            .field("p95", p(95.0))
                            .field("p99", p(99.0))
                            .field("max", Json::UInt(agg.max))
                            .build(),
                    )
                    .field("phases", phase_object(&agg.phases))
                    .field("worst", self.exemplar_json(&agg.worst))
                    .build()
            })
            .collect();
        let components = self
            .channel_phases
            .iter()
            .enumerate()
            .filter(|(_, phases)| phases.iter().any(|&v| v > 0))
            .map(|(i, phases)| {
                Json::object()
                    .field("channel", Json::str(self.channels[i].label.clone()))
                    .field("total", Json::UInt(phases.iter().sum()))
                    .field("phases", phase_object(phases))
                    .build()
            })
            .collect();
        Json::object()
            .field("schema", Json::str("xpipes-attribution-v1"))
            .field("packets", Json::UInt(self.delivered))
            .field("incomplete", Json::UInt(self.incomplete))
            .field("in_flight", Json::UInt(self.inflight.len() as u64))
            .field("phase_totals", phase_object(&totals))
            .field("flows", Json::Array(flows))
            .field("components", Json::Array(components))
            .build()
    }

    fn exemplar_json(&self, ex: &Exemplar) -> Json {
        let hops = ex
            .hops
            .iter()
            .map(|h| {
                let label = self
                    .channels
                    .get(h.channel as usize)
                    .map(|c| c.label.clone())
                    .unwrap_or_else(|| format!("ch{}", h.channel));
                Json::object()
                    .field("channel", Json::str(label))
                    .field(
                        "grant",
                        match h.grant {
                            Some(g) => Json::UInt(g),
                            None => Json::Null,
                        },
                    )
                    .field("first_tx", Json::UInt(h.first_tx))
                    .field("accepted", Json::UInt(h.accepted))
                    .build()
            })
            .collect();
        Json::object()
            .field("packet", Json::UInt(ex.packet_id))
            .field("injected_at", Json::UInt(ex.injected_at))
            .field("delivered_at", Json::UInt(ex.delivered_at))
            .field("total", Json::UInt(ex.total))
            .field("phases", phase_object(&ex.phases))
            .field("hops", Json::Array(hops))
            .build()
    }

    /// Compact digest for campaign reports.
    pub fn summary(&self) -> AttributionSummary {
        let mut totals = [0u64; PHASE_COUNT];
        for phases in &self.channel_phases {
            for (acc, v) in totals.iter_mut().zip(phases) {
                *acc += v;
            }
        }
        let worst_flow = self
            .flows
            .iter()
            .max_by_key(|(_, agg)| agg.worst.total)
            .map(|(&(src, dst), agg)| (self.ni_label(src), self.ni_label(dst), agg.worst.total));
        AttributionSummary {
            packets: self.delivered,
            incomplete: self.incomplete,
            in_flight: self.inflight.len() as u64,
            phase_totals: totals,
            worst_flow,
        }
    }

    /// Chrome/Perfetto `trace_event`s for the worst packet of every flow,
    /// to be appended to the flight recorder's trace. Spans live on
    /// pid 1 (the recorder uses pid 0) with one thread per flow.
    pub fn perfetto_events(&self) -> Vec<Json> {
        let span = |name: String, ts: u64, dur: u64, tid: u64| {
            Json::object()
                .field("name", Json::str(name))
                .field("cat", Json::str("attribution"))
                .field("ph", Json::str("X"))
                .field("ts", Json::UInt(ts))
                .field("dur", Json::UInt(dur))
                .field("pid", Json::UInt(1))
                .field("tid", Json::UInt(tid))
                .build()
        };
        let mut events = Vec::new();
        for (flow_idx, (&(src, dst), agg)) in self.flows.iter().enumerate() {
            let tid = flow_idx as u64 + 1;
            events.push(
                Json::object()
                    .field("name", Json::str("thread_name"))
                    .field("ph", Json::str("M"))
                    .field("pid", Json::UInt(1))
                    .field("tid", Json::UInt(tid))
                    .field(
                        "args",
                        Json::object()
                            .field(
                                "name",
                                Json::str(format!(
                                    "worst {}->{}",
                                    self.ni_label(src),
                                    self.ni_label(dst)
                                )),
                            )
                            .build(),
                    )
                    .build(),
            );
            let ex = &agg.worst;
            events.push(span(
                format!("pkt {} e2e", ex.packet_id),
                ex.injected_at,
                ex.total,
                tid,
            ));
            let sq = ex.phases[Phase::SourceQueue.index()];
            if sq > 0 {
                events.push(span("source_queue".into(), ex.injected_at, sq, tid));
            }
            let pack = ex.phases[Phase::NiPacketization.index()];
            if pack > 0 {
                events.push(span(
                    "ni_packetization".into(),
                    ex.injected_at + sq,
                    pack,
                    tid,
                ));
            }
            for h in &ex.hops {
                let label = self
                    .channels
                    .get(h.channel as usize)
                    .map(|c| c.label.clone())
                    .unwrap_or_else(|| format!("ch{}", h.channel));
                if let Some(g) = h.grant {
                    events.push(span(
                        format!("queue {label}"),
                        g,
                        h.first_tx.saturating_sub(g),
                        tid,
                    ));
                }
                events.push(span(
                    format!("hop {label}"),
                    h.first_tx,
                    h.accepted.saturating_sub(h.first_tx),
                    tid,
                ));
            }
        }
        events
    }
}

fn save_opt_u64(w: &mut SnapshotWriter, v: Option<u64>) {
    w.bool(v.is_some());
    w.u64(v.unwrap_or(0));
}

fn load_opt_u64(r: &mut SnapshotReader<'_>) -> Result<Option<u64>, SnapshotError> {
    let present = r.bool()?;
    let v = r.u64()?;
    Ok(present.then_some(v))
}

fn save_phases(w: &mut SnapshotWriter, phases: &[u64; PHASE_COUNT]) {
    for &p in phases {
        w.u64(p);
    }
}

fn load_phases(r: &mut SnapshotReader<'_>) -> Result<[u64; PHASE_COUNT], SnapshotError> {
    let mut phases = [0u64; PHASE_COUNT];
    for p in &mut phases {
        *p = r.u64()?;
    }
    Ok(phases)
}

fn save_exemplar(w: &mut SnapshotWriter, ex: &Exemplar) {
    w.u64(ex.packet_id);
    w.u64(ex.injected_at);
    w.u64(ex.delivered_at);
    w.u64(ex.total);
    save_phases(w, &ex.phases);
    w.len(ex.hops.len());
    for h in &ex.hops {
        w.u32(h.channel);
        save_opt_u64(w, h.grant);
        w.u64(h.first_tx);
        w.u64(h.accepted);
    }
}

fn load_exemplar(r: &mut SnapshotReader<'_>) -> Result<Exemplar, SnapshotError> {
    let packet_id = r.u64()?;
    let injected_at = r.u64()?;
    let delivered_at = r.u64()?;
    let total = r.u64()?;
    let phases = load_phases(r)?;
    let n = r.len()?;
    let mut hops = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        hops.push(ExemplarHop {
            channel: r.u32()?,
            grant: load_opt_u64(r)?,
            first_tx: r.u64()?,
            accepted: r.u64()?,
        });
    }
    Ok(Exemplar {
        packet_id,
        injected_at,
        delivered_at,
        total,
        phases,
        hops,
    })
}

impl Snapshot for AttributionEngine {
    /// Saves the mutable ledger state — channels, NI labels and the
    /// grant routing table are structural (rebuilt by
    /// `enable_attribution` on restore). In-flight ledgers are written
    /// in ascending packet-id order so the payload is deterministic
    /// despite the hash map.
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.len(self.expected_new_seq.len());
        for &s in &self.expected_new_seq {
            w.u8(s);
        }
        let mut ids: Vec<u64> = self.inflight.keys().copied().collect();
        ids.sort_unstable();
        w.len(ids.len());
        for id in ids {
            let ledger = &self.inflight[&id];
            w.u64(id);
            w.u64(ledger.injected_at);
            w.u64(ledger.src as u64);
            save_opt_u64(w, ledger.head_first_tx);
            w.len(ledger.hops.len());
            for h in &ledger.hops {
                w.u32(h.channel);
                save_opt_u64(w, h.grant);
                save_opt_u64(w, h.first_tx);
                save_opt_u64(w, h.accepted);
            }
        }
        w.len(self.flows.len());
        for (&(src, dst), agg) in &self.flows {
            w.u64(src as u64);
            w.u64(dst as u64);
            w.u64(agg.packets);
            agg.hist.save_state(w);
            agg.stats.save_state(w);
            w.u64(agg.max);
            save_phases(w, &agg.phases);
            save_exemplar(w, &agg.worst);
        }
        w.len(self.channel_phases.len());
        for phases in &self.channel_phases {
            save_phases(w, phases);
        }
        w.u64(self.delivered);
        w.u64(self.incomplete);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let n = r.len()?;
        if n != self.expected_new_seq.len() {
            return Err(SnapshotError::Malformed(format!(
                "attribution channel count mismatch: snapshot {n}, target {}",
                self.expected_new_seq.len()
            )));
        }
        for s in &mut self.expected_new_seq {
            *s = r.u8()?;
        }
        self.inflight.clear();
        let packets = r.len()?;
        for _ in 0..packets {
            let id = r.u64()?;
            let injected_at = r.u64()?;
            let src = r.u64()? as usize;
            let head_first_tx = load_opt_u64(r)?;
            let hop_count = r.len()?;
            let mut hops = Vec::with_capacity(hop_count.min(256));
            for _ in 0..hop_count {
                hops.push(HopRecord {
                    channel: r.u32()?,
                    grant: load_opt_u64(r)?,
                    first_tx: load_opt_u64(r)?,
                    accepted: load_opt_u64(r)?,
                });
            }
            self.inflight.insert(
                id,
                PacketLedger {
                    injected_at,
                    src,
                    head_first_tx,
                    hops,
                },
            );
        }
        self.flows.clear();
        let flow_count = r.len()?;
        for _ in 0..flow_count {
            let src = r.u64()? as usize;
            let dst = r.u64()? as usize;
            let packets = r.u64()?;
            let mut hist = Histogram::new(HIST_RANGE.0, HIST_RANGE.1, HIST_RANGE.2);
            hist.load_state(r)?;
            let mut stats = RunningStats::new();
            stats.load_state(r)?;
            let max = r.u64()?;
            let phases = load_phases(r)?;
            let worst = load_exemplar(r)?;
            self.flows.insert(
                (src, dst),
                FlowAgg {
                    packets,
                    hist,
                    stats,
                    max,
                    phases,
                    worst,
                },
            );
        }
        let chans = r.len()?;
        if chans != self.channel_phases.len() {
            return Err(SnapshotError::Malformed(format!(
                "attribution phase-table size mismatch: snapshot {chans}, target {}",
                self.channel_phases.len()
            )));
        }
        for phases in &mut self.channel_phases {
            *phases = load_phases(r)?;
        }
        self.delivered = r.u64()?;
        self.incomplete = r.u64()?;
        Ok(())
    }
}

/// Builds the canonical six-field phase object.
fn phase_object(phases: &[u64; PHASE_COUNT]) -> Json {
    let mut b = Json::object();
    for ph in Phase::ALL {
        b = b.field(ph.name(), Json::UInt(phases[ph.index()]));
    }
    b.build()
}

/// Computes the exact telescoping decomposition of one ledger, or `None`
/// when a milestone is missing or inconsistent.
fn decompose(
    channels: &[ChannelInfo],
    ledger: &PacketLedger,
    delivered_at: u64,
) -> Option<Decomposed> {
    let total = delivered_at.checked_sub(ledger.injected_at)?;
    let head_first_tx = ledger.head_first_tx?;
    let mut phases = [0u64; PHASE_COUNT];
    let mut per_channel: Vec<(u32, [u64; PHASE_COUNT])> = Vec::with_capacity(ledger.hops.len());
    let mut hops = Vec::with_capacity(ledger.hops.len());

    let first = ledger.hops.first()?;
    let first_tx0 = first.first_tx?;
    let source_queue = head_first_tx.checked_sub(ledger.injected_at)?;
    let ni_pack = first_tx0.checked_sub(head_first_tx)?;

    let mut prev_accept: Option<u64> = None;
    for (h, hop) in ledger.hops.iter().enumerate() {
        let info = channels.get(hop.channel as usize)?;
        let first_tx = hop.first_tx?;
        let accepted = hop.accepted?;
        let mut contrib = [0u64; PHASE_COUNT];
        // Retransmission penalty: time beyond the link's nominal depth.
        let retx = accepted.checked_sub(first_tx.checked_add(info.stages)?)?;
        contrib[Phase::RetxPenalty.index()] = retx;
        contrib[Phase::LinkTraversal.index()] = info.stages;
        if h == 0 {
            if !info.producer_is_ni || hop.grant.is_some() {
                return None; // the first hop must leave a source NI
            }
            contrib[Phase::SourceQueue.index()] = source_queue;
            contrib[Phase::NiPacketization.index()] = ni_pack;
        } else {
            // The switch producing this hop is the consumer of the
            // previous one; its input pipeline sets the nominal transit.
            let prev_info = channels.get(ledger.hops[h - 1].channel as usize)?;
            let extra = match prev_info.consumer {
                ChannelConsumer::Switch { extra } => extra,
                ChannelConsumer::Ni { .. } => return None,
            };
            let grant = hop.grant?;
            let prev = prev_accept?;
            let arb = grant.checked_sub(prev.checked_add(1 + extra)?)?;
            let outq = first_tx.checked_sub(grant.checked_add(1)?)?;
            contrib[Phase::ArbitrationStall.index()] = arb;
            contrib[Phase::OutputQueue.index()] = outq;
            contrib[Phase::LinkTraversal.index()] += 2 + extra;
        }
        for (acc, v) in phases.iter_mut().zip(&contrib) {
            *acc += v;
        }
        per_channel.push((hop.channel, contrib));
        hops.push(ExemplarHop {
            channel: hop.channel,
            grant: hop.grant,
            first_tx,
            accepted,
        });
        prev_accept = Some(accepted);
    }
    // The last hop's accept must be the delivery itself.
    if prev_accept != Some(delivered_at) {
        return None;
    }
    // Conservation: the telescoping construction guarantees equality;
    // anything else is an engine bug.
    if phases.iter().sum::<u64>() != total {
        return None;
    }
    Some(Decomposed {
        total,
        phases,
        per_channel,
        hops,
    })
}

/// One ranked `(channel, phase)` cell of a report diff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffEntry {
    /// Channel (component) label.
    pub channel: String,
    /// Phase name.
    pub phase: &'static str,
    /// Cycles attributed in the baseline report.
    pub baseline: u64,
    /// Cycles attributed in the current report.
    pub current: u64,
}

impl DiffEntry {
    /// Signed movement (`current - baseline`).
    pub fn delta(&self) -> i64 {
        self.current as i64 - self.baseline as i64
    }
}

/// The comparison of two attribution reports: which components and
/// phases moved, ranked by absolute contribution to the delta.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionDiff {
    /// Total attributed cycles in the baseline report.
    pub baseline_total: u64,
    /// Total attributed cycles in the current report.
    pub current_total: u64,
    /// Network-wide per-phase totals: `(phase, baseline, current)`.
    pub phase_totals: Vec<(&'static str, u64, u64)>,
    /// Moved `(channel, phase)` cells, largest |delta| first (ties break
    /// on channel label, then canonical phase order).
    pub entries: Vec<DiffEntry>,
}

impl AttributionDiff {
    /// Deterministic human-readable rendering; `limit` caps the number
    /// of ranked movers printed.
    pub fn render(&self, limit: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let delta = self.current_total as i64 - self.baseline_total as i64;
        let _ = writeln!(
            out,
            "attribution diff: total attributed cycles {} -> {} ({:+})",
            self.baseline_total, self.current_total, delta
        );
        let _ = writeln!(out, "  phase totals:");
        for (name, base, cur) in &self.phase_totals {
            let _ = writeln!(
                out,
                "    {name:<18} {base} -> {cur} ({:+})",
                *cur as i64 - *base as i64
            );
        }
        if self.entries.is_empty() {
            let _ = writeln!(out, "  no component moved");
            return out;
        }
        let _ = writeln!(out, "  top movers (channel x phase):");
        for (rank, e) in self.entries.iter().take(limit).enumerate() {
            let _ = writeln!(
                out,
                "    {:>2}. {:>+8}  {:<18} {}  ({} -> {})",
                rank + 1,
                e.delta(),
                e.phase,
                e.channel,
                e.baseline,
                e.current
            );
        }
        if self.entries.len() > limit {
            let _ = writeln!(out, "    ... {} more", self.entries.len() - limit);
        }
        out
    }

    /// Deterministic JSON form.
    pub fn to_json(&self) -> Json {
        let phases = self
            .phase_totals
            .iter()
            .map(|(name, base, cur)| {
                Json::object()
                    .field("phase", Json::str(*name))
                    .field("baseline", Json::UInt(*base))
                    .field("current", Json::UInt(*cur))
                    .field("delta", Json::Int(*cur as i64 - *base as i64))
                    .build()
            })
            .collect();
        let movers = self
            .entries
            .iter()
            .map(|e| {
                Json::object()
                    .field("channel", Json::str(e.channel.clone()))
                    .field("phase", Json::str(e.phase))
                    .field("baseline", Json::UInt(e.baseline))
                    .field("current", Json::UInt(e.current))
                    .field("delta", Json::Int(e.delta()))
                    .build()
            })
            .collect();
        Json::object()
            .field("baseline_total", Json::UInt(self.baseline_total))
            .field("current_total", Json::UInt(self.current_total))
            .field("phase_totals", Json::Array(phases))
            .field("movers", Json::Array(movers))
            .build()
    }
}

/// Reads the six-phase object at `key` of an attribution report.
fn phases_from(report: &Json, key: &str, ctx: &str) -> Result<[u64; PHASE_COUNT], String> {
    let obj = report
        .get(key)
        .ok_or_else(|| format!("malformed attribution report: {ctx} has no \"{key}\""))?;
    let mut out = [0u64; PHASE_COUNT];
    for ph in Phase::ALL {
        out[ph.index()] = obj.get(ph.name()).and_then(Json::as_u64).ok_or_else(|| {
            format!(
                "malformed attribution report: {ctx} \"{key}\" misses phase \"{}\"",
                ph.name()
            )
        })?;
    }
    Ok(out)
}

/// Extracts `channel -> phases` from a report's `components` array.
fn components_from(
    report: &Json,
    ctx: &str,
) -> Result<BTreeMap<String, [u64; PHASE_COUNT]>, String> {
    let comps = report
        .get("components")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("malformed attribution report: {ctx} has no \"components\""))?;
    let mut out = BTreeMap::new();
    for comp in comps {
        let channel = comp.get("channel").and_then(Json::as_str).ok_or_else(|| {
            format!("malformed attribution report: {ctx} component misses \"channel\"")
        })?;
        out.insert(channel.to_string(), phases_from(comp, "phases", ctx)?);
    }
    Ok(out)
}

/// Compares two attribution reports (as parsed JSON), ranking
/// `(channel, phase)` cells by their contribution to the latency delta.
/// The result — and its rendering — is byte-deterministic.
///
/// # Errors
///
/// A message naming the missing/ill-typed field when either document is
/// not an attribution report.
pub fn diff(baseline: &Json, current: &Json) -> Result<AttributionDiff, String> {
    let base_phases = phases_from(baseline, "phase_totals", "baseline")?;
    let cur_phases = phases_from(current, "phase_totals", "current")?;
    let base_comps = components_from(baseline, "baseline")?;
    let cur_comps = components_from(current, "current")?;

    let mut keys: Vec<&String> = base_comps.keys().collect();
    for k in cur_comps.keys() {
        if !base_comps.contains_key(k) {
            keys.push(k);
        }
    }
    keys.sort();

    let zero = [0u64; PHASE_COUNT];
    let mut entries = Vec::new();
    for channel in keys {
        let base = base_comps.get(channel).unwrap_or(&zero);
        let cur = cur_comps.get(channel).unwrap_or(&zero);
        for ph in Phase::ALL {
            let (b, c) = (base[ph.index()], cur[ph.index()]);
            if b != c {
                entries.push(DiffEntry {
                    channel: channel.clone(),
                    phase: ph.name(),
                    baseline: b,
                    current: c,
                });
            }
        }
    }
    entries.sort_by(|a, b| {
        b.delta()
            .abs()
            .cmp(&a.delta().abs())
            .then_with(|| a.channel.cmp(&b.channel))
            .then_with(|| a.phase.cmp(b.phase))
    });

    Ok(AttributionDiff {
        baseline_total: base_phases.iter().sum(),
        current_total: cur_phases.iter().sum(),
        phase_totals: Phase::ALL
            .iter()
            .map(|&ph| (ph.name(), base_phases[ph.index()], cur_phases[ph.index()]))
            .collect(),
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic 3-channel path: ini0 -> sw0.p0 -> tgt1, one-stage links,
    /// Lite switch (extra = 0).
    fn engine() -> AttributionEngine {
        let channels = vec![
            ChannelInfo {
                label: "ini0->sw0.p0".into(),
                stages: 1,
                consumer: ChannelConsumer::Switch { extra: 0 },
                producer_is_ni: true,
            },
            ChannelInfo {
                label: "sw0.p1->tgt1".into(),
                stages: 1,
                consumer: ChannelConsumer::Ni { id: 1 },
                producer_is_ni: false,
            },
        ];
        let mut labels = BTreeMap::new();
        labels.insert(0usize, "ini0".to_string());
        labels.insert(1usize, "tgt1".to_string());
        // sw0: port 1 drives channel 1.
        let grant_channel = vec![vec![usize::MAX, 1]];
        AttributionEngine::new(channels, labels, grant_channel)
    }

    /// Drives one single-flit packet along the minimal schedule:
    /// inject 0, tx 1, accept 2 (stage-1 link), grant 3, tx 4, accept 5.
    fn minimal_packet(e: &mut AttributionEngine, id: u64, seqs: (u8, u8)) {
        e.note_transmit(0, id, seqs.0, true, true, 0, 0, 1);
        e.note_accept(0, id, 2);
        e.note_grant(0, 1, id, 3);
        e.note_transmit(1, id, seqs.1, true, true, 0, 0, 4);
        e.note_accept(1, id, 5);
    }

    #[test]
    fn minimal_path_is_pure_pipeline() {
        let mut e = engine();
        minimal_packet(&mut e, 7, (0, 0));
        assert_eq!(e.delivered(), 1);
        assert_eq!(e.incomplete(), 0);
        assert_eq!(e.in_flight(), 0);
        let s = e.summary();
        // total = 5: 1 cycle source queue + link(1) + switch transit(2) + link(1).
        assert_eq!(s.phase_totals[Phase::SourceQueue.index()], 1);
        assert_eq!(s.phase_totals[Phase::NiPacketization.index()], 0);
        assert_eq!(s.phase_totals[Phase::OutputQueue.index()], 0);
        assert_eq!(s.phase_totals[Phase::ArbitrationStall.index()], 0);
        assert_eq!(s.phase_totals[Phase::LinkTraversal.index()], 4);
        assert_eq!(s.phase_totals[Phase::RetxPenalty.index()], 0);
        assert_eq!(s.phase_totals.iter().sum::<u64>(), 5);
        assert_eq!(s.worst_flow, Some(("ini0".into(), "tgt1".into(), 5)));
    }

    #[test]
    fn stalls_and_replays_land_in_their_phases() {
        let mut e = engine();
        // Head tx at 3 (source queue 3), tail tx at 5 (packetization 2).
        e.note_transmit(0, 9, 0, true, false, 0, 0, 3);
        e.note_transmit(0, 9, 1, false, true, 0, 0, 5);
        // Tail nACKed once: replay at 7 (same seq — no new span), accepted
        // at 8 → retx penalty 8 - 5 - 1 = 2.
        e.note_transmit(0, 9, 1, false, true, 0, 0, 7);
        e.note_accept(0, 9, 8);
        // Grant delayed to 11 → arbitration stall 11 - 8 - 1 = 2.
        e.note_grant(0, 1, 9, 11);
        // Out-queue wait: tx at 14 → output queue 14 - 11 - 1 = 2.
        e.note_transmit(1, 9, 0, false, true, 0, 0, 14);
        e.note_accept(1, 9, 15);
        let s = e.summary();
        assert_eq!(s.phase_totals[Phase::SourceQueue.index()], 3);
        assert_eq!(s.phase_totals[Phase::NiPacketization.index()], 2);
        assert_eq!(s.phase_totals[Phase::RetxPenalty.index()], 2);
        assert_eq!(s.phase_totals[Phase::ArbitrationStall.index()], 2);
        assert_eq!(s.phase_totals[Phase::OutputQueue.index()], 2);
        assert_eq!(s.phase_totals[Phase::LinkTraversal.index()], 4);
        assert_eq!(s.phase_totals.iter().sum::<u64>(), 15);
        assert_eq!(e.delivered(), 1);
    }

    #[test]
    fn report_is_deterministic_and_parseable() {
        let mk = || {
            let mut e = engine();
            minimal_packet(&mut e, 1, (0, 0));
            e.report().render()
        };
        let text = mk();
        assert_eq!(text, mk());
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("packets").unwrap().as_u64(), Some(1));
        assert_eq!(
            doc.get("schema").unwrap().as_str(),
            Some("xpipes-attribution-v1")
        );
        let flows = doc.get("flows").unwrap().as_array().unwrap();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].get("src").unwrap().as_str(), Some("ini0"));
        let worst = flows[0].get("worst").unwrap();
        assert_eq!(worst.get("total").unwrap().as_u64(), Some(5));
        assert_eq!(worst.get("hops").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn diff_ranks_biggest_mover_first() {
        let mut base = engine();
        minimal_packet(&mut base, 1, (0, 0));
        let baseline = base.report();

        // Current run: same packet shape, but the switch output stalls the
        // second hop for 40 cycles (output queue).
        let mut cur = engine();
        cur.note_transmit(0, 1, 0, true, true, 0, 0, 1);
        cur.note_accept(0, 1, 2);
        cur.note_grant(0, 1, 1, 3);
        cur.note_transmit(1, 1, 0, true, true, 0, 0, 44);
        cur.note_accept(1, 1, 45);
        let current = cur.report();

        let d = diff(&baseline, &current).unwrap();
        assert_eq!(d.entries[0].channel, "sw0.p1->tgt1");
        assert_eq!(d.entries[0].phase, "output_queue");
        assert_eq!(d.entries[0].delta(), 40);
        // Rendering is deterministic.
        assert_eq!(d.render(10), diff(&baseline, &current).unwrap().render(10));
        assert!(d.render(10).contains("output_queue"));
        let js = d.to_json();
        assert_eq!(
            js.get("movers").unwrap().as_array().unwrap()[0]
                .get("delta")
                .unwrap(),
            &Json::Int(40)
        );
    }

    #[test]
    fn diff_rejects_malformed_reports() {
        let good = {
            let mut e = engine();
            minimal_packet(&mut e, 1, (0, 0));
            e.report()
        };
        let bad = Json::parse("{\"phase_totals\": {}}").unwrap();
        assert!(diff(&bad, &good).unwrap_err().contains("phase"));
        let empty = Json::parse("{}").unwrap();
        assert!(diff(&good, &empty).unwrap_err().contains("current"));
    }

    #[test]
    fn mid_flight_attach_counts_incomplete_not_panic() {
        let mut e = engine();
        // Accept for a packet the engine never saw transmitted: ignored.
        e.note_accept(1, 99, 5);
        assert_eq!(e.incomplete(), 0);
        assert_eq!(e.delivered(), 0);
    }

    #[test]
    fn perfetto_events_cover_worst_packets() {
        let mut e = engine();
        minimal_packet(&mut e, 1, (0, 0));
        let events = e.perfetto_events();
        // thread_name + e2e + source_queue + 2 hops + 1 queue span.
        assert!(events.len() >= 4);
        let rendered: Vec<String> = events.iter().map(Json::render).collect();
        assert!(rendered.iter().any(|s| s.contains("thread_name")));
        assert!(rendered.iter().any(|s| s.contains("pkt 1 e2e")));
        assert!(rendered.iter().any(|s| s.contains("hop ini0->sw0.p0")));
    }
}
