//! Minimal value-change-dump (VCD) tracing.
//!
//! The original xpipes flow relied on SystemC waveform dumps for debugging
//! generated NoCs; [`VcdWriter`] provides the same capability for the Rust
//! behavioural models. Output is standard VCD, loadable in GTKWave.

use std::fmt::Write as _;
use std::io;

use crate::time::Cycle;

/// Handle to a signal declared in a [`VcdWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalId(usize);

#[derive(Debug, Clone)]
struct Signal {
    code: String,
    width: u32,
    last: Option<u64>,
}

/// An in-memory VCD builder.
///
/// Declare signals up front, then record value changes per cycle; the
/// writer deduplicates unchanged values. Call [`finish`](VcdWriter::finish)
/// to obtain the VCD text, or [`write_to`](VcdWriter::write_to) to stream it.
///
/// # Examples
///
/// ```
/// use xpipes_sim::trace::VcdWriter;
/// use xpipes_sim::Cycle;
///
/// let mut vcd = VcdWriter::new("noc");
/// let valid = vcd.declare("flit_valid", 1);
/// let data = vcd.declare("flit_data", 32);
/// vcd.change(Cycle::ZERO, valid, 1);
/// vcd.change(Cycle::ZERO, data, 0xDEAD);
/// vcd.change(Cycle::new(1), valid, 0);
/// let text = vcd.finish();
/// assert!(text.contains("$var wire 32"));
/// assert!(text.contains("#0"));
/// ```
#[derive(Debug, Clone)]
pub struct VcdWriter {
    module: String,
    signals: Vec<Signal>,
    names: Vec<String>,
    body: String,
    current_time: Option<u64>,
}

impl VcdWriter {
    /// Creates a writer for a single module scope named `module`.
    pub fn new(module: impl Into<String>) -> Self {
        VcdWriter {
            module: module.into(),
            signals: Vec::new(),
            names: Vec::new(),
            body: String::new(),
            current_time: None,
        }
    }

    /// Declares a `width`-bit wire and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn declare(&mut self, name: impl Into<String>, width: u32) -> SignalId {
        assert!((1..=64).contains(&width), "signal width must be 1..=64");
        let idx = self.signals.len();
        self.signals.push(Signal {
            code: Self::code_for(idx),
            width,
            last: None,
        });
        self.names.push(name.into());
        SignalId(idx)
    }

    /// Number of declared signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Records `value` on `signal` at time `now`; suppressed if unchanged.
    ///
    /// Times must be non-decreasing across calls.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes an already-recorded time.
    pub fn change(&mut self, now: Cycle, signal: SignalId, value: u64) {
        let t = now.as_u64();
        if let Some(cur) = self.current_time {
            assert!(t >= cur, "VCD times must be monotone: got {t} after {cur}");
        }
        let sig = &mut self.signals[signal.0];
        if sig.last == Some(value) {
            return;
        }
        sig.last = Some(value);
        if self.current_time != Some(t) {
            self.current_time = Some(t);
            let _ = writeln!(self.body, "#{t}");
        }
        let code = sig.code.clone();
        if sig.width == 1 {
            let _ = writeln!(self.body, "{}{}", value & 1, code);
        } else {
            let width = sig.width;
            let _ = writeln!(
                self.body,
                "b{:0width$b} {}",
                value,
                code,
                width = width as usize
            );
        }
    }

    /// Renders the complete VCD document.
    pub fn finish(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date xpipes-sim $end");
        let _ = writeln!(out, "$version xpipes-sim vcd 0.1 $end");
        let _ = writeln!(out, "$timescale 1 ns $end");
        let _ = writeln!(out, "$scope module {} $end", self.module);
        for (sig, name) in self.signals.iter().zip(&self.names) {
            let _ = writeln!(out, "$var wire {} {} {} $end", sig.width, sig.code, name);
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        out.push_str(&self.body);
        out
    }

    /// Streams the document to `writer`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from `writer`.
    pub fn write_to<W: io::Write>(&self, mut writer: W) -> io::Result<()> {
        writer.write_all(self.finish().as_bytes())
    }

    /// Short identifier codes per VCD convention: `!`, `"`, ... then pairs.
    fn code_for(mut idx: usize) -> String {
        const FIRST: u8 = b'!';
        const COUNT: usize = 94; // printable ASCII minus space
        let mut code = String::new();
        loop {
            code.push((FIRST + (idx % COUNT) as u8) as char);
            idx /= COUNT;
            if idx == 0 {
                break;
            }
            idx -= 1;
        }
        code
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_contains_declarations() {
        let mut vcd = VcdWriter::new("top");
        vcd.declare("a", 1);
        vcd.declare("bus", 8);
        let text = vcd.finish();
        assert!(text.contains("$scope module top $end"));
        assert!(text.contains("$var wire 1 ! a $end"));
        assert!(text.contains("$var wire 8 \" bus $end"));
        assert_eq!(vcd.signal_count(), 2);
    }

    #[test]
    fn scalar_and_vector_changes() {
        let mut vcd = VcdWriter::new("m");
        let a = vcd.declare("a", 1);
        let b = vcd.declare("b", 4);
        vcd.change(Cycle::ZERO, a, 1);
        vcd.change(Cycle::ZERO, b, 0b1010);
        let text = vcd.finish();
        assert!(text.contains("#0\n1!\nb1010 \""), "body was:\n{text}");
    }

    #[test]
    fn unchanged_values_suppressed() {
        let mut vcd = VcdWriter::new("m");
        let a = vcd.declare("a", 1);
        vcd.change(Cycle::ZERO, a, 1);
        vcd.change(Cycle::new(1), a, 1); // no-op
        vcd.change(Cycle::new(2), a, 0);
        let text = vcd.finish();
        assert!(
            !text.contains("#1\n"),
            "suppressed change emitted a timestamp"
        );
        assert!(text.contains("#2"));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn time_going_backwards_panics() {
        let mut vcd = VcdWriter::new("m");
        let a = vcd.declare("a", 1);
        vcd.change(Cycle::new(5), a, 1);
        vcd.change(Cycle::new(4), a, 0);
    }

    #[test]
    fn codes_are_unique_for_many_signals() {
        let mut vcd = VcdWriter::new("m");
        let mut codes = std::collections::HashSet::new();
        for i in 0..300 {
            vcd.declare(format!("s{i}"), 1);
        }
        for sig in &vcd.signals {
            assert!(
                codes.insert(sig.code.clone()),
                "duplicate code {}",
                sig.code
            );
        }
    }

    #[test]
    fn write_to_streams_same_bytes() {
        let mut vcd = VcdWriter::new("m");
        let a = vcd.declare("a", 2);
        vcd.change(Cycle::ZERO, a, 3);
        let mut buf = Vec::new();
        vcd.write_to(&mut buf).expect("write to Vec cannot fail");
        assert_eq!(buf, vcd.finish().into_bytes());
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        VcdWriter::new("m").declare("bad", 0);
    }
}
