//! Minimal value-change-dump (VCD) tracing.
//!
//! The original xpipes flow relied on SystemC waveform dumps for debugging
//! generated NoCs; [`VcdWriter`] provides the same capability for the Rust
//! behavioural models. Output is standard VCD, loadable in GTKWave.
//!
//! The writer streams: once recording begins, every change line goes
//! straight to the sink (an in-memory buffer by default, or any
//! [`io::Write`] via [`VcdWriter::stream`]), so long runs never hold the
//! whole document body in memory twice.

use std::io;
use std::io::Write as _;

use crate::snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use crate::time::Cycle;

/// Handle to a signal declared in a [`VcdWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalId(usize);

#[derive(Debug, Clone)]
struct Signal {
    code: String,
    width: u32,
    last: Option<u64>,
}

/// Where rendered VCD bytes go.
enum VcdSink {
    /// Accumulates in memory; [`VcdWriter::finish`] returns the text.
    Buffer(Vec<u8>),
    /// Streams incrementally to an external writer.
    Stream(Box<dyn io::Write + Send>),
}

/// An incremental VCD writer.
///
/// Declare signals up front, then record value changes per cycle; the
/// writer deduplicates unchanged values. The header is emitted at the
/// first change, so all declarations must precede recording. Call
/// [`finish`](VcdWriter::finish) on a buffered writer to obtain the VCD
/// text; a streaming writer ([`stream`](VcdWriter::stream)) has already
/// delivered every byte to its sink.
///
/// # Examples
///
/// ```
/// use xpipes_sim::trace::VcdWriter;
/// use xpipes_sim::Cycle;
///
/// let mut vcd = VcdWriter::new("noc");
/// let valid = vcd.declare("flit_valid", 1);
/// let data = vcd.declare("flit_data", 32);
/// vcd.change(Cycle::ZERO, valid, 1);
/// vcd.change(Cycle::ZERO, data, 0xDEAD);
/// vcd.change(Cycle::new(1), valid, 0);
/// let text = vcd.finish();
/// assert!(text.contains("$var wire 32"));
/// assert!(text.contains("#0"));
/// ```
pub struct VcdWriter {
    module: String,
    signals: Vec<Signal>,
    names: Vec<String>,
    sink: VcdSink,
    header_written: bool,
    current_time: Option<u64>,
    /// First I/O error from a streaming sink; output stops after it.
    error: Option<io::Error>,
}

impl VcdWriter {
    /// Creates a buffered writer for a single module scope named
    /// `module`.
    pub fn new(module: impl Into<String>) -> Self {
        Self::with_sink(module.into(), VcdSink::Buffer(Vec::new()))
    }

    /// Creates a writer that streams every byte to `writer` as it is
    /// produced, instead of accumulating the document in memory.
    pub fn stream(module: impl Into<String>, writer: Box<dyn io::Write + Send>) -> Self {
        Self::with_sink(module.into(), VcdSink::Stream(writer))
    }

    fn with_sink(module: String, sink: VcdSink) -> Self {
        VcdWriter {
            module,
            signals: Vec::new(),
            names: Vec::new(),
            sink,
            header_written: false,
            current_time: None,
            error: None,
        }
    }

    /// True when the writer streams to an external sink (no in-memory
    /// document exists).
    pub fn is_streaming(&self) -> bool {
        matches!(self.sink, VcdSink::Stream(_))
    }

    /// Declares a `width`-bit wire and returns its handle.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64, or if recording has
    /// already begun (the header left with the first change).
    pub fn declare(&mut self, name: impl Into<String>, width: u32) -> SignalId {
        assert!((1..=64).contains(&width), "signal width must be 1..=64");
        assert!(
            !self.header_written,
            "signals must be declared before the first change"
        );
        let idx = self.signals.len();
        self.signals.push(Signal {
            code: Self::code_for(idx),
            width,
            last: None,
        });
        self.names.push(name.into());
        SignalId(idx)
    }

    /// Number of declared signals.
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Records `value` on `signal` at time `now`; suppressed if unchanged.
    ///
    /// Times must be non-decreasing across calls. A streaming sink's
    /// first I/O error is latched ([`take_error`](Self::take_error)) and
    /// further output is dropped.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes an already-recorded time.
    pub fn change(&mut self, now: Cycle, signal: SignalId, value: u64) {
        let t = now.as_u64();
        if let Some(cur) = self.current_time {
            assert!(t >= cur, "VCD times must be monotone: got {t} after {cur}");
        }
        let sig = &mut self.signals[signal.0];
        if sig.last == Some(value) {
            return;
        }
        sig.last = Some(value);
        if !self.header_written {
            self.header_written = true;
            let header = self.header();
            self.emit(header.as_bytes());
        }
        let mut line = String::new();
        if self.current_time != Some(t) {
            self.current_time = Some(t);
            line.push_str(&format!("#{t}\n"));
        }
        let sig = &self.signals[signal.0];
        if sig.width == 1 {
            line.push_str(&format!("{}{}\n", value & 1, sig.code));
        } else {
            line.push_str(&format!(
                "b{:0width$b} {}\n",
                value,
                sig.code,
                width = sig.width as usize
            ));
        }
        self.emit(line.as_bytes());
    }

    /// The `$enddefinitions`-terminated document header.
    fn header(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "$date xpipes-sim $end");
        let _ = writeln!(out, "$version xpipes-sim vcd 0.1 $end");
        let _ = writeln!(out, "$timescale 1 ns $end");
        let _ = writeln!(out, "$scope module {} $end", self.module);
        for (sig, name) in self.signals.iter().zip(&self.names) {
            let _ = writeln!(out, "$var wire {} {} {} $end", sig.width, sig.code, name);
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        out
    }

    fn emit(&mut self, bytes: &[u8]) {
        match &mut self.sink {
            VcdSink::Buffer(buf) => buf.extend_from_slice(bytes),
            VcdSink::Stream(w) => {
                if self.error.is_none() {
                    if let Err(e) = w.write_all(bytes) {
                        self.error = Some(e);
                    }
                }
            }
        }
    }

    /// Renders the complete VCD document of a buffered writer.
    ///
    /// # Panics
    ///
    /// Panics on a streaming writer: its bytes have already gone to the
    /// sink and no in-memory copy exists.
    pub fn finish(&self) -> String {
        match &self.sink {
            VcdSink::Buffer(buf) => {
                if self.header_written {
                    String::from_utf8(buf.clone()).expect("VCD output is ASCII")
                } else {
                    // No change was ever recorded: header only.
                    self.header()
                }
            }
            VcdSink::Stream(_) => {
                panic!("finish() is unavailable on a streaming VcdWriter; the document went to its sink")
            }
        }
    }

    /// Streams the (buffered) document to `writer`.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from `writer`.
    ///
    /// # Panics
    ///
    /// Panics on a streaming writer, like [`finish`](Self::finish).
    pub fn write_to<W: io::Write>(&self, mut writer: W) -> io::Result<()> {
        writer.write_all(self.finish().as_bytes())
    }

    /// Flushes a streaming sink (no-op for buffers).
    ///
    /// # Errors
    ///
    /// Returns a latched write error from an earlier
    /// [`change`](Self::change), or the flush error itself.
    pub fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        match &mut self.sink {
            VcdSink::Buffer(_) => Ok(()),
            VcdSink::Stream(w) => w.flush(),
        }
    }

    /// Takes the first I/O error a streaming sink reported, if any.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Short identifier codes per VCD convention: `!`, `"`, ... then pairs.
    fn code_for(mut idx: usize) -> String {
        const FIRST: u8 = b'!';
        const COUNT: usize = 94; // printable ASCII minus space
        let mut code = String::new();
        loop {
            code.push((FIRST + (idx % COUNT) as u8) as char);
            idx /= COUNT;
            if idx == 0 {
                break;
            }
            idx -= 1;
        }
        code
    }
}

impl Snapshot for VcdWriter {
    /// Captures the incremental-emission state — per-signal last values,
    /// the current timestamp, and whether the header left — but **not**
    /// the already-emitted document: the caller keeps the pre-checkpoint
    /// text. Restoring into a freshly declared writer makes it continue
    /// the change stream byte-exactly, so `pre-checkpoint text +
    /// post-restore text` equals the uninterrupted document.
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.len(self.signals.len());
        for sig in &self.signals {
            w.bool(sig.last.is_some());
            w.u64(sig.last.unwrap_or(0));
        }
        w.bool(self.current_time.is_some());
        w.u64(self.current_time.unwrap_or(0));
        w.bool(self.header_written);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let n = r.len()?;
        if n != self.signals.len() {
            return Err(SnapshotError::Malformed(format!(
                "trace has {} signals, snapshot {n}",
                self.signals.len()
            )));
        }
        for sig in &mut self.signals {
            let present = r.bool()?;
            let value = r.u64()?;
            sig.last = present.then_some(value);
        }
        let present = r.bool()?;
        let value = r.u64()?;
        self.current_time = present.then_some(value);
        self.header_written = r.bool()?;
        Ok(())
    }
}

impl std::fmt::Debug for VcdWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VcdWriter")
            .field("module", &self.module)
            .field("signals", &self.signals.len())
            .field("streaming", &self.is_streaming())
            .field("header_written", &self.header_written)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn header_contains_declarations() {
        let mut vcd = VcdWriter::new("top");
        vcd.declare("a", 1);
        vcd.declare("bus", 8);
        let text = vcd.finish();
        assert!(text.contains("$scope module top $end"));
        assert!(text.contains("$var wire 1 ! a $end"));
        assert!(text.contains("$var wire 8 \" bus $end"));
        assert_eq!(vcd.signal_count(), 2);
    }

    #[test]
    fn scalar_and_vector_changes() {
        let mut vcd = VcdWriter::new("m");
        let a = vcd.declare("a", 1);
        let b = vcd.declare("b", 4);
        vcd.change(Cycle::ZERO, a, 1);
        vcd.change(Cycle::ZERO, b, 0b1010);
        let text = vcd.finish();
        assert!(text.contains("#0\n1!\nb1010 \""), "body was:\n{text}");
    }

    #[test]
    fn unchanged_values_suppressed() {
        let mut vcd = VcdWriter::new("m");
        let a = vcd.declare("a", 1);
        vcd.change(Cycle::ZERO, a, 1);
        vcd.change(Cycle::new(1), a, 1); // no-op
        vcd.change(Cycle::new(2), a, 0);
        let text = vcd.finish();
        assert!(
            !text.contains("#1\n"),
            "suppressed change emitted a timestamp"
        );
        assert!(text.contains("#2"));
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn time_going_backwards_panics() {
        let mut vcd = VcdWriter::new("m");
        let a = vcd.declare("a", 1);
        vcd.change(Cycle::new(5), a, 1);
        vcd.change(Cycle::new(4), a, 0);
    }

    #[test]
    #[should_panic(expected = "declared before")]
    fn declare_after_recording_panics() {
        let mut vcd = VcdWriter::new("m");
        let a = vcd.declare("a", 1);
        vcd.change(Cycle::ZERO, a, 1);
        vcd.declare("late", 1);
    }

    #[test]
    fn codes_are_unique_for_many_signals() {
        let mut vcd = VcdWriter::new("m");
        let mut codes = std::collections::HashSet::new();
        for i in 0..300 {
            vcd.declare(format!("s{i}"), 1);
        }
        for sig in &vcd.signals {
            assert!(
                codes.insert(sig.code.clone()),
                "duplicate code {}",
                sig.code
            );
        }
    }

    #[test]
    fn write_to_streams_same_bytes() {
        let mut vcd = VcdWriter::new("m");
        let a = vcd.declare("a", 2);
        vcd.change(Cycle::ZERO, a, 3);
        let mut buf = Vec::new();
        vcd.write_to(&mut buf).expect("write to Vec cannot fail");
        assert_eq!(buf, vcd.finish().into_bytes());
    }

    /// An `io::Write` handing bytes to a shared buffer, so the test can
    /// inspect what a streaming writer produced.
    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// The same change sequence applied to both modes.
    fn drive(vcd: &mut VcdWriter) {
        let a = vcd.declare("a", 1);
        let b = vcd.declare("b", 4);
        for t in 0..50u64 {
            vcd.change(Cycle::new(t), a, t & 1);
            vcd.change(Cycle::new(t), b, t % 11);
        }
    }

    #[test]
    fn streaming_matches_buffered_byte_for_byte() {
        let mut buffered = VcdWriter::new("m");
        drive(&mut buffered);

        let shared = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let mut streaming = VcdWriter::stream("m", Box::new(shared.clone()));
        assert!(streaming.is_streaming());
        assert!(!buffered.is_streaming());
        drive(&mut streaming);
        streaming.flush().expect("no sink error");

        let streamed = shared.0.lock().unwrap().clone();
        assert_eq!(streamed, buffered.finish().into_bytes());
    }

    #[test]
    #[should_panic(expected = "streaming VcdWriter")]
    fn finish_on_streaming_writer_panics() {
        let shared = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let mut vcd = VcdWriter::stream("m", Box::new(shared));
        let a = vcd.declare("a", 1);
        vcd.change(Cycle::ZERO, a, 1);
        let _ = vcd.finish();
    }

    #[test]
    fn stream_errors_are_latched_not_fatal() {
        struct FailingSink;
        impl io::Write for FailingSink {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut vcd = VcdWriter::stream("m", Box::new(FailingSink));
        let a = vcd.declare("a", 1);
        vcd.change(Cycle::ZERO, a, 1);
        vcd.change(Cycle::new(1), a, 0); // suppressed, sink already failed
        let err = vcd.take_error().expect("error latched");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(vcd.take_error().is_none());
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        VcdWriter::new("m").declare("bad", 0);
    }

    #[test]
    fn snapshot_split_matches_uninterrupted_document() {
        let mut whole = VcdWriter::new("m");
        drive(&mut whole);

        // Same sequence split at t=20: snapshot the first writer's
        // emission state, import into a freshly declared one, continue.
        let mut first = VcdWriter::new("m");
        let a = first.declare("a", 1);
        let b = first.declare("b", 4);
        for t in 0..20u64 {
            first.change(Cycle::new(t), a, t & 1);
            first.change(Cycle::new(t), b, t % 11);
        }
        let mut w = SnapshotWriter::new();
        first.save_state(&mut w);
        let bytes = w.finish();

        let mut second = VcdWriter::new("m");
        let a2 = second.declare("a", 1);
        let b2 = second.declare("b", 4);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        second.load_state(&mut r).unwrap();
        r.finish().unwrap();
        for t in 20..50u64 {
            second.change(Cycle::new(t), a2, t & 1);
            second.change(Cycle::new(t), b2, t % 11);
        }
        let stitched = format!("{}{}", first.finish(), second.finish());
        assert_eq!(stitched, whole.finish());
    }

    #[test]
    fn snapshot_signal_count_mismatch_rejected() {
        let mut vcd = VcdWriter::new("m");
        vcd.declare("a", 1);
        let mut w = SnapshotWriter::new();
        vcd.save_state(&mut w);
        let bytes = w.finish();

        let mut other = VcdWriter::new("m");
        other.declare("a", 1);
        other.declare("b", 1);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(
            other.load_state(&mut r),
            Err(SnapshotError::Malformed(_))
        ));
    }
}
