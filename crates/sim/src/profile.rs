//! In-tree kernel self-profiler: scoped wall-clock timers per phase.
//!
//! [`KernelProfile`] accumulates wall-clock time spent in the coarse
//! phases of the cycle kernel — scheduling, channel pass, switch pass,
//! wheel service, observer hooks — so a slow run can be attributed to a
//! kernel phase without an external profiler. It is opt-in
//! (`Noc::enable_profiling`): when disabled the kernel takes no
//! `Instant` timestamps at all, so the zero-cost contract of the fast
//! path holds.
//!
//! # Quarantine contract
//!
//! Profile data is wall-clock and therefore non-deterministic. It is
//! emitted **only** in report sections that are excluded from byte
//! comparison (like `elapsed_s`): the bench report's `kernel_profile`
//! section and the human-readable rendering. It never enters
//! checkpoints, work fingerprints, telemetry summaries, attribution
//! reports, or campaign reports.

use crate::json::Json;
use std::time::Duration;

/// A coarse kernel phase. Fine-grained sub-steps are folded into the
/// nearest phase: VCD tracing, monitors, telemetry epoch sampling, and
/// flight-recorder drains count as [`ObserverHooks`](KernelPhase::ObserverHooks);
/// NI housekeeping ticks count as [`WheelService`](KernelPhase::WheelService).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPhase {
    /// Rebuilding or re-deriving the SoA schedule and idle blockers.
    Scheduling,
    /// Link shift plus the transmit/receive channel endpoint passes.
    ChannelPass,
    /// Switch crossbar arbitration and granted-tail bookkeeping.
    SwitchPass,
    /// Event-wheel service and NI housekeeping ticks.
    WheelService,
    /// Tracing, monitors, telemetry sampling, and flight-recorder work.
    ObserverHooks,
}

impl KernelPhase {
    /// All phases, in report order.
    pub const ALL: [KernelPhase; 5] = [
        KernelPhase::Scheduling,
        KernelPhase::ChannelPass,
        KernelPhase::SwitchPass,
        KernelPhase::WheelService,
        KernelPhase::ObserverHooks,
    ];

    /// Stable snake_case label used in JSON reports and renderings.
    pub fn label(self) -> &'static str {
        match self {
            KernelPhase::Scheduling => "scheduling",
            KernelPhase::ChannelPass => "channel_pass",
            KernelPhase::SwitchPass => "switch_pass",
            KernelPhase::WheelService => "wheel_service",
            KernelPhase::ObserverHooks => "observer_hooks",
        }
    }

    fn index(self) -> usize {
        match self {
            KernelPhase::Scheduling => 0,
            KernelPhase::ChannelPass => 1,
            KernelPhase::SwitchPass => 2,
            KernelPhase::WheelService => 3,
            KernelPhase::ObserverHooks => 4,
        }
    }
}

/// Accumulated wall-clock time and timed-segment counts per kernel
/// phase. See the module docs for the quarantine contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelProfile {
    nanos: [u64; 5],
    segments: [u64; 5],
}

impl KernelProfile {
    /// A zeroed profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one timed segment to a phase.
    pub fn note(&mut self, phase: KernelPhase, elapsed: Duration) {
        let i = phase.index();
        self.nanos[i] += u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.segments[i] += 1;
    }

    /// Accumulated nanoseconds for a phase.
    pub fn nanos(&self, phase: KernelPhase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Timed segments recorded for a phase.
    pub fn segments(&self, phase: KernelPhase) -> u64 {
        self.segments[phase.index()]
    }

    /// Total accumulated nanoseconds across all phases.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// The profile as a JSON object. **Wall-clock data** — only for
    /// report sections excluded from byte comparison.
    pub fn to_json(&self) -> Json {
        let mut phases = Json::object();
        for phase in KernelPhase::ALL {
            phases = phases.field(
                phase.label(),
                Json::object()
                    .field("nanos", Json::UInt(self.nanos(phase)))
                    .field("segments", Json::UInt(self.segments(phase)))
                    .build(),
            );
        }
        Json::object()
            .field("total_nanos", Json::UInt(self.total_nanos()))
            .field("phases", phases.build())
            .build()
    }

    /// Human-readable phase breakdown.
    pub fn render(&self) -> String {
        let total = self.total_nanos().max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "kernel profile: {:.3} ms total\n",
            self.total_nanos() as f64 / 1e6
        ));
        for phase in KernelPhase::ALL {
            let ns = self.nanos(phase);
            out.push_str(&format!(
                "  {:<15} {:>10.3} ms  [{:>5.1}%]  ({} segments)\n",
                phase.label(),
                ns as f64 / 1e6,
                100.0 * ns as f64 / total as f64,
                self.segments(phase),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_independently() {
        let mut p = KernelProfile::new();
        p.note(KernelPhase::ChannelPass, Duration::from_nanos(100));
        p.note(KernelPhase::ChannelPass, Duration::from_nanos(50));
        p.note(KernelPhase::Scheduling, Duration::from_nanos(7));
        assert_eq!(p.nanos(KernelPhase::ChannelPass), 150);
        assert_eq!(p.segments(KernelPhase::ChannelPass), 2);
        assert_eq!(p.nanos(KernelPhase::Scheduling), 7);
        assert_eq!(p.total_nanos(), 157);
    }

    #[test]
    fn json_names_every_phase() {
        let mut p = KernelProfile::new();
        p.note(KernelPhase::WheelService, Duration::from_nanos(9));
        let rendered = p.to_json().render();
        for phase in KernelPhase::ALL {
            assert!(
                rendered.contains(phase.label()),
                "missing {}",
                phase.label()
            );
        }
        let parsed = Json::parse(&rendered).expect("profile JSON parses");
        assert_eq!(parsed.get("total_nanos").and_then(Json::as_u64), Some(9));
    }

    #[test]
    fn render_is_percent_stable_when_empty() {
        let p = KernelProfile::new();
        let text = p.render();
        assert!(text.contains("kernel profile"));
        for phase in KernelPhase::ALL {
            assert!(text.contains(phase.label()));
        }
    }
}
