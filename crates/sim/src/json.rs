//! Minimal deterministic JSON document builder.
//!
//! The fault-injection campaign (and any other machine-readable report)
//! needs byte-stable output: two runs with the same seed must serialize
//! to identical text so reports can be diffed and golden-tested. This
//! module renders JSON with insertion-ordered object keys, two-space
//! indentation, and fixed-precision floats (no shortest-round-trip or
//! locale-dependent formatting).

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order; floats carry an
/// explicit decimal precision so rendering is reproducible.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float rendered with a fixed number of decimals.
    Fixed(f64, usize),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// An empty object builder.
    pub fn object() -> ObjectBuilder {
        ObjectBuilder(Vec::new())
    }

    /// Renders the document with two-space indentation and a trailing
    /// newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Fixed(v, prec) => {
                // NaN/infinity are not representable in JSON: clamp to 0.
                let v = if v.is_finite() { *v } else { 0.0 };
                let _ = write!(out, "{v:.prec$}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

/// Incremental object construction preserving field order.
#[derive(Debug, Clone, Default)]
pub struct ObjectBuilder(Vec<(String, Json)>);

impl ObjectBuilder {
    /// Appends a field.
    #[must_use]
    pub fn field(mut self, key: &str, value: Json) -> Self {
        self.0.push((key.to_string(), value));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Json {
        Json::Object(self.0)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::Int(-3).render(), "-3\n");
        assert_eq!(Json::UInt(7).render(), "7\n");
        assert_eq!(Json::Fixed(1.5, 3).render(), "1.500\n");
        assert_eq!(Json::Fixed(f64::NAN, 2).render(), "0.00\n");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("a\"b\\c\n").render(), "\"a\\\"b\\\\c\\n\"\n");
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"\n");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let doc = Json::object()
            .field("zeta", Json::UInt(1))
            .field("alpha", Json::Array(vec![Json::Int(1), Json::Int(2)]))
            .build();
        let text = doc.render();
        assert!(text.find("zeta").unwrap() < text.find("alpha").unwrap());
        assert_eq!(
            text,
            "{\n  \"zeta\": 1,\n  \"alpha\": [\n    1,\n    2\n  ]\n}\n"
        );
    }

    #[test]
    fn rendering_is_reproducible() {
        let mk = || {
            Json::object()
                .field("rate", Json::Fixed(0.05, 4))
                .field("runs", Json::Array(vec![Json::object().build()]))
                .build()
                .render()
        };
        assert_eq!(mk(), mk());
    }
}
