//! Minimal deterministic JSON document builder.
//!
//! The fault-injection campaign (and any other machine-readable report)
//! needs byte-stable output: two runs with the same seed must serialize
//! to identical text so reports can be diffed and golden-tested. This
//! module renders JSON with insertion-ordered object keys, two-space
//! indentation, and fixed-precision floats (no shortest-round-trip or
//! locale-dependent formatting).

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order; floats carry an
/// explicit decimal precision so rendering is reproducible.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float rendered with a fixed number of decimals.
    Fixed(f64, usize),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// An empty object builder.
    pub fn object() -> ObjectBuilder {
        ObjectBuilder(Vec::new())
    }

    /// Parses a JSON document (accepts any JSON, not just this module's
    /// rendering). Integral numbers come back as [`Json::UInt`] /
    /// [`Json::Int`]; fractional ones as [`Json::Fixed`] with the decimal
    /// count they were written with.
    ///
    /// # Errors
    ///
    /// A message naming the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers widen), when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            Json::Fixed(v, _) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, when it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the document with two-space indentation and a trailing
    /// newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders the document on one line with no whitespace — the NDJSON
    /// form progress heartbeats stream (one object per line). Same
    /// deterministic number formatting as [`render`](Self::render).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Fixed(v, prec) => {
                // NaN/infinity are not representable in JSON: clamp to 0.
                let v = if v.is_finite() { *v } else { 0.0 };
                let _ = write!(out, "{v:.prec$}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

/// Incremental object construction preserving field order.
#[derive(Debug, Clone, Default)]
pub struct ObjectBuilder(Vec<(String, Json)>);

impl ObjectBuilder {
    /// Appends a field.
    #[must_use]
    pub fn field(mut self, key: &str, value: Json) -> Self {
        self.0.push((key.to_string(), value));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Json {
        Json::Object(self.0)
    }
}

/// Recursive-descent parser over the raw bytes. Errors carry the byte
/// offset so malformed baselines are diagnosable.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object_value(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object_value(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs join into one scalar; a lone
                            // surrogate degrades to the replacement char.
                            let c = if (0xD800..0xDC00).contains(&code)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let low = self.hex4()?;
                                char::from_u32(0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00))
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(&b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is &str, so the
                    // byte boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| (b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        let mut frac_digits = 0usize;
        let mut fractional = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            fractional = true;
            self.pos += 1;
            while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
                frac_digits += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) => Ok(Json::Fixed(v, frac_digits.clamp(1, 17))),
            Err(_) => Err(format!("invalid number at byte {start}")),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::Int(-3).render(), "-3\n");
        assert_eq!(Json::UInt(7).render(), "7\n");
        assert_eq!(Json::Fixed(1.5, 3).render(), "1.500\n");
        assert_eq!(Json::Fixed(f64::NAN, 2).render(), "0.00\n");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::str("a\"b\\c\n").render(), "\"a\\\"b\\\\c\\n\"\n");
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"\n");
    }

    #[test]
    fn object_preserves_insertion_order() {
        let doc = Json::object()
            .field("zeta", Json::UInt(1))
            .field("alpha", Json::Array(vec![Json::Int(1), Json::Int(2)]))
            .build();
        let text = doc.render();
        assert!(text.find("zeta").unwrap() < text.find("alpha").unwrap());
        assert_eq!(
            text,
            "{\n  \"zeta\": 1,\n  \"alpha\": [\n    1,\n    2\n  ]\n}\n"
        );
    }

    #[test]
    fn rendering_is_reproducible() {
        let mk = || {
            Json::object()
                .field("rate", Json::Fixed(0.05, 4))
                .field("runs", Json::Array(vec![Json::object().build()]))
                .build()
                .render()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::object()
            .field("name", Json::str("uniform_random_4x4"))
            .field("cycles", Json::UInt(50_000))
            .field("delta", Json::Int(-3))
            .field("rate", Json::Fixed(0.0500, 4))
            .field("flag", Json::Bool(true))
            .field("nothing", Json::Null)
            .field("items", Json::Array(vec![Json::UInt(1), Json::UInt(2)]))
            .field("escaped", Json::str("a\"b\\c\n\u{1}"))
            .build();
        let parsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc);
        // Parse→render→parse is a fixed point.
        assert_eq!(Json::parse(&parsed.render()).unwrap(), parsed);
    }

    #[test]
    fn parse_accepts_foreign_json() {
        let parsed =
            Json::parse("{\"a\":[1,2.50,-7,1e3],\"b\":\"\\u0041\\ud83d\\ude00\"}").unwrap();
        assert_eq!(parsed.get("a").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(
            parsed.get("a").unwrap().as_array().unwrap()[0].as_u64(),
            Some(1)
        );
        assert_eq!(
            parsed.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(parsed.get("b").unwrap().as_str(), Some("A\u{1F600}"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "nul",
            "\"unterminated",
            "{\"a\":1} trailing",
            "{\"a\":1,}",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.contains("byte"), "error for {bad:?} was {err:?}");
        }
    }

    #[test]
    fn compact_rendering_round_trips_on_one_line() {
        let doc = Json::object()
            .field("cycle", Json::UInt(5000))
            .field("rate", Json::Fixed(0.25, 3))
            .field("tags", Json::Array(vec![Json::str("a"), Json::Null]))
            .field("empty", Json::object().build())
            .build();
        let line = doc.render_compact();
        assert!(!line.contains('\n'));
        assert!(!line.contains(' '));
        assert_eq!(Json::parse(&line).unwrap(), doc);
        assert_eq!(
            line,
            "{\"cycle\":5000,\"rate\":0.250,\"tags\":[\"a\",null],\"empty\":{}}"
        );
    }

    #[test]
    fn accessors_return_none_for_wrong_kinds() {
        let doc = Json::parse("{\"n\": 3, \"s\": \"x\"}").unwrap();
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("n").unwrap().as_str(), None);
        assert_eq!(doc.get("s").unwrap().as_u64(), None);
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Null.get("n"), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
        assert_eq!(Json::Int(-1).as_f64(), Some(-1.0));
        assert_eq!(Json::Bool(true).as_array(), None);
    }
}
