//! Measurement utilities: counters, running statistics and histograms.
//!
//! Every evaluation number reported by the benches (latency, throughput,
//! retransmission counts) flows through these types, which keep exact
//! integer counts and numerically stable running moments.

use std::fmt;

use crate::snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};

/// A saturating event counter.
///
/// # Examples
///
/// ```
/// use xpipes_sim::Counter;
///
/// let mut flits = Counter::new("flits_sent");
/// flits.add(3);
/// flits.incr();
/// assert_eq!(flits.value(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// The counter's name, used in reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current count.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Resets to zero (used when discarding warm-up cycles).
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.value)
    }
}

/// Numerically stable running mean/variance/min/max (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use xpipes_sim::RunningStats;
///
/// let mut lat = RunningStats::new();
/// for v in [10.0, 20.0, 30.0] { lat.record(v); }
/// assert_eq!(lat.mean(), 20.0);
/// assert_eq!(lat.max(), Some(30.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance; 0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

impl Snapshot for RunningStats {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.u64(self.count);
        w.f64(self.mean);
        w.f64(self.m2);
        w.bool(self.min.is_some());
        w.f64(self.min.unwrap_or(0.0));
        w.bool(self.max.is_some());
        w.f64(self.max.unwrap_or(0.0));
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.count = r.u64()?;
        self.mean = r.f64()?;
        self.m2 = r.f64()?;
        let has_min = r.bool()?;
        let min = r.f64()?;
        self.min = has_min.then_some(min);
        let has_max = r.bool()?;
        let max = r.f64()?;
        self.max = has_max.then_some(max);
        Ok(())
    }
}

/// A fixed-bucket histogram over `u64` samples (e.g. latency in cycles).
///
/// Values at or above the upper bound land in the overflow bucket so no
/// sample is ever lost.
///
/// # Examples
///
/// ```
/// use xpipes_sim::Histogram;
///
/// let mut h = Histogram::new(0, 100, 10);
/// h.record(5);
/// h.record(95);
/// h.record(1_000); // overflow
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    lo: u64,
    hi: u64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or `buckets == 0`.
    pub fn new(lo: u64, hi: u64, buckets: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Records one sample. Counts saturate at `u64::MAX` like
    /// [`Counter`], so a merge of long campaign shards can never wrap.
    pub fn record(&mut self, value: u64) {
        self.total = self.total.saturating_add(1);
        if value < self.lo {
            self.underflow = self.underflow.saturating_add(1);
        } else if value >= self.hi {
            self.overflow = self.overflow.saturating_add(1);
        } else {
            let width = (self.hi - self.lo)
                .div_ceil(self.buckets.len() as u64)
                .max(1);
            let idx = ((value - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] = self.buckets[idx].saturating_add(1);
        }
    }

    /// Total samples recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples below the lower bound.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Merges another histogram with identical bounds and bucket count.
    ///
    /// # Panics
    ///
    /// Panics when the configurations differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.buckets.len() == other.buckets.len(),
            "histogram configurations must match to merge"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.underflow = self.underflow.saturating_add(other.underflow);
        self.overflow = self.overflow.saturating_add(other.overflow);
        self.total = self.total.saturating_add(other.total);
    }

    /// Bounds and bucket count, for checkpoint shape validation.
    pub fn shape(&self) -> (u64, u64, usize) {
        (self.lo, self.hi, self.buckets.len())
    }

    /// Approximate p-th percentile (0–100) assuming uniform density within
    /// a bucket; `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = (p.clamp(0.0, 100.0) / 100.0 * self.total as f64).ceil() as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo)
            .div_ceil(self.buckets.len() as u64)
            .max(1);
        for (i, &count) in self.buckets.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Some(self.lo + (i as u64 + 1) * width - 1);
            }
        }
        Some(self.hi)
    }
}

impl Snapshot for Histogram {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.u64(self.lo);
        w.u64(self.hi);
        w.len(self.buckets.len());
        for &b in &self.buckets {
            w.u64(b);
        }
        w.u64(self.underflow);
        w.u64(self.overflow);
        w.u64(self.total);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let lo = r.u64()?;
        let hi = r.u64()?;
        let n = r.len()?;
        if (lo, hi, n) != self.shape() {
            return Err(SnapshotError::Malformed(format!(
                "histogram shape mismatch: snapshot [{lo}, {hi}) x {n}, target {:?}",
                self.shape()
            )));
        }
        for b in &mut self.buckets {
            *b = r.u64()?;
        }
        self.underflow = r.u64()?;
        self.overflow = r.u64()?;
        self.total = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new("x");
        assert_eq!(c.value(), 0);
        c.incr();
        c.add(9);
        assert_eq!(c.value(), 10);
        c.reset();
        assert_eq!(c.value(), 0);
        assert_eq!(c.name(), "x");
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new("sat");
        c.add(u64::MAX);
        c.add(5);
        assert_eq!(c.value(), u64::MAX);
    }

    #[test]
    fn counter_display() {
        let mut c = Counter::new("flits");
        c.add(2);
        assert_eq!(c.to_string(), "flits: 2");
    }

    #[test]
    fn stats_mean_and_variance() {
        let mut s = RunningStats::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn stats_empty_is_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn stats_merge_matches_sequential() {
        let values = [1.0, 2.5, -3.0, 8.0, 0.25, 4.0, 4.0];
        let mut all = RunningStats::new();
        for v in values {
            all.record(v);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for v in &values[..3] {
            a.record(*v);
        }
        for v in &values[3..] {
            b.record(*v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn stats_merge_with_empty() {
        let mut a = RunningStats::new();
        a.record(5.0);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a, before);

        let mut empty = RunningStats::new();
        empty.merge(&a);
        assert_eq!(empty, a);
    }

    #[test]
    fn histogram_buckets_and_bounds() {
        let mut h = Histogram::new(10, 50, 4); // widths of 10
        h.record(9); // underflow
        h.record(10);
        h.record(19);
        h.record(20);
        h.record(49);
        h.record(50); // overflow
        assert_eq!(h.total(), 6);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.buckets(), &[2, 1, 0, 1]);
    }

    #[test]
    fn histogram_percentile() {
        let mut h = Histogram::new(0, 100, 100);
        for v in 0..100 {
            h.record(v);
        }
        let p50 = h.percentile(50.0).unwrap();
        assert!((45..=55).contains(&p50), "p50 = {p50}");
        let p99 = h.percentile(99.0).unwrap();
        assert!(p99 >= 95, "p99 = {p99}");
        assert_eq!(Histogram::new(0, 10, 2).percentile(50.0), None);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn histogram_empty_range_panics() {
        Histogram::new(5, 5, 1);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new(0, 100, 10);
        let mut b = Histogram::new(0, 100, 10);
        a.record(5);
        a.record(200);
        b.record(5);
        b.record(95);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.buckets()[0], 2);
        assert_eq!(a.buckets()[9], 1);
    }

    #[test]
    #[should_panic(expected = "configurations must match")]
    fn histogram_merge_rejects_mismatch() {
        let mut a = Histogram::new(0, 100, 10);
        let b = Histogram::new(0, 50, 10);
        a.merge(&b);
    }

    #[test]
    fn stats_merge_empty_into_empty() {
        let mut a = RunningStats::new();
        a.merge(&RunningStats::new());
        assert_eq!(a.count(), 0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.variance(), 0.0);
        assert_eq!(a.min(), None);
        assert_eq!(a.max(), None);
        // Still usable afterwards.
        a.record(3.0);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 3.0);
    }

    #[test]
    fn stats_merge_single_samples_tracks_extrema() {
        let mut a = RunningStats::new();
        a.record(-2.0);
        let mut b = RunningStats::new();
        b.record(7.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(-2.0));
        assert_eq!(a.max(), Some(7.0));
        assert!((a.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_empty_into_empty() {
        let mut a = Histogram::new(0, 100, 4);
        let b = Histogram::new(0, 100, 4);
        a.merge(&b);
        assert_eq!(a.total(), 0);
        assert_eq!(a.underflow(), 0);
        assert_eq!(a.overflow(), 0);
        assert!(a.buckets().iter().all(|&c| c == 0));
        assert_eq!(a.percentile(50.0), None);
    }

    #[test]
    fn histogram_counts_saturate() {
        let mut a = Histogram::new(0, 10, 1);
        // Backdoor the counters to the brink via merge doubling: start
        // from recorded samples and merge the histogram into itself
        // until the totals would overflow if the adds were unchecked.
        a.record(5);
        a.record(15); // overflow bucket
        a.record(5);
        let copy = a.clone();
        for _ in 0..64 {
            a.merge(&copy.clone());
            let doubled = a.clone();
            a.merge(&doubled);
        }
        assert_eq!(a.total(), u64::MAX, "total must saturate, not wrap");
        assert_eq!(a.buckets()[0], u64::MAX);
        assert_eq!(a.overflow(), u64::MAX);
        // A saturated histogram still accepts samples without panicking.
        a.record(5);
        assert_eq!(a.total(), u64::MAX);
        assert_eq!(a.buckets()[0], u64::MAX);
    }

    #[test]
    #[should_panic(expected = "configurations must match")]
    fn histogram_merge_rejects_disjoint_ranges() {
        // Same bucket count, completely disjoint value ranges: bucket
        // widths coincide but the bins mean different values, so the
        // merge must refuse rather than silently misfile counts.
        let mut a = Histogram::new(0, 100, 10);
        let b = Histogram::new(100, 200, 10);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "configurations must match")]
    fn histogram_merge_rejects_bucket_count_mismatch() {
        let mut a = Histogram::new(0, 100, 10);
        let b = Histogram::new(0, 100, 20);
        a.merge(&b);
    }

    #[test]
    fn stats_and_histogram_snapshot_roundtrip() {
        let mut s = RunningStats::new();
        for v in [3.25, -1.0, 42.0, 0.5] {
            s.record(v);
        }
        let mut h = Histogram::new(0, 100, 10);
        for v in [1, 5, 55, 250] {
            h.record(v);
        }
        let mut w = SnapshotWriter::new();
        s.save_state(&mut w);
        h.save_state(&mut w);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        let mut s2 = RunningStats::new();
        s2.load_state(&mut r).unwrap();
        let mut h2 = Histogram::new(0, 100, 10);
        h2.load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(s2, s);
        assert_eq!(h2, h);

        // A differently-shaped target refuses the payload.
        let mut w = SnapshotWriter::new();
        h.save_state(&mut w);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        let mut wrong = Histogram::new(0, 100, 20);
        assert!(matches!(
            wrong.load_state(&mut r),
            Err(SnapshotError::Malformed(_))
        ));
    }
}
