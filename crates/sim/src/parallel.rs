//! Deterministic fan-out of independent seeded jobs.
//!
//! Campaign grid points and sweep operating points are embarrassingly
//! parallel: each derives every random stream from its own seed and
//! shares no state with its siblings. This module provides the one
//! primitive they need — [`parallel_map_ordered`] — which runs a job per
//! input on a scoped thread pool and returns results **in submission
//! order**, so any report built from the output is byte-identical to the
//! serial rendering regardless of worker count or OS scheduling.
//!
//! The determinism contract:
//!
//! * jobs receive their submission index and must derive all randomness
//!   from inputs (never from wall clock, thread id, or shared state);
//! * results land in a slot array keyed by submission index, so
//!   completion order is irrelevant;
//! * `workers == 1` degenerates to a plain serial loop on the calling
//!   thread — no threads are spawned, which keeps single-core hosts and
//!   debugging runs cheap.
//!
//! # Examples
//!
//! ```
//! use xpipes_sim::parallel::{parallel_map_ordered, worker_count};
//!
//! let seeds = [7u64, 11, 13, 17];
//! let out = parallel_map_ordered(&seeds, worker_count(seeds.len()), |i, &s| {
//!     s.wrapping_mul(i as u64 + 1)
//! });
//! assert_eq!(out, vec![7, 22, 39, 68]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count for `jobs` independent jobs: the host's available
/// parallelism, capped at the job count and floored at one.
#[must_use]
pub fn worker_count(jobs: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(jobs).max(1)
}

/// Applies `f` to every item on up to `workers` scoped threads and
/// returns the results in submission order.
///
/// `f` receives `(submission_index, &item)`. Work is handed out through
/// an atomic cursor, so threads stay busy even when job durations vary;
/// each result is written to the slot matching its submission index, so
/// the output order never depends on scheduling.
///
/// # Panics
///
/// Propagates a panic from any job after all workers have stopped (the
/// scope joins every thread before unwinding).
pub fn parallel_map_ordered<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.min(items.len()).max(1);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(i, item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("scope joined all workers, so every slot is filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_submission_order() {
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map_ordered(&items, 8, |i, &x| {
            assert_eq!(i, x);
            // Stagger completion so late submissions finish first.
            if i % 3 == 0 {
                std::thread::yield_now();
            }
            x * 2
        });
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_serial_for_any_worker_count() {
        let items: Vec<u64> = (0..17).map(|i| i * 31 + 5).collect();
        let serial = parallel_map_ordered(&items, 1, |i, &x| x.wrapping_mul(i as u64 + 3));
        for workers in [2, 3, 8, 32] {
            let par = parallel_map_ordered(&items, workers, |i, &x| x.wrapping_mul(i as u64 + 3));
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: [u8; 0] = [];
        let out = parallel_map_ordered(&items, 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_runs_on_calling_thread() {
        let caller = std::thread::current().id();
        let items = [1, 2, 3];
        let out = parallel_map_ordered(&items, 1, |_, &x| {
            assert_eq!(std::thread::current().id(), caller);
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn worker_count_is_bounded() {
        assert_eq!(worker_count(0), 1);
        assert!(worker_count(1) == 1);
        assert!(worker_count(1000) >= 1);
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn job_panics_propagate() {
        let items: Vec<usize> = (0..8).collect();
        parallel_map_ordered(&items, 4, |i, _| {
            if i == 3 {
                panic!("job 3 exploded");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "job 0 exploded")]
    fn panic_on_the_serial_path_propagates_directly() {
        // workers == 1 runs on the calling thread, so the job's own panic
        // message (not the scope's) reaches the caller.
        let items = [0usize];
        parallel_map_ordered(&items, 1, |i, _| -> usize { panic!("job {i} exploded") });
    }

    #[test]
    fn zero_workers_clamps_to_serial() {
        // workers == 0 must not deadlock or spawn: it degenerates to the
        // serial path on the calling thread.
        let caller = std::thread::current().id();
        let items = [10, 20, 30];
        let out = parallel_map_ordered(&items, 0, |i, &x| {
            assert_eq!(std::thread::current().id(), caller);
            x + i
        });
        assert_eq!(out, vec![10, 21, 32]);
    }

    #[test]
    fn more_workers_than_jobs_is_safe_and_ordered() {
        // The pool caps at the job count; excess workers must not panic,
        // duplicate work, or perturb ordering.
        let items = [5u64, 7, 11];
        let out = parallel_map_ordered(&items, 64, |i, &x| (i as u64) * 100 + x);
        assert_eq!(out, vec![5, 107, 211]);
    }

    #[test]
    fn determinism_holds_with_staggered_completion() {
        // Jobs that finish out of submission order (earlier jobs sleep
        // longest) still land in submission order, for every worker count
        // including the degenerate ones.
        let items: Vec<u64> = (0..24).collect();
        let staggered = |i: usize, x: &u64| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x.wrapping_mul(0x9E37_79B9).rotate_left(i as u32)
        };
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| staggered(i, x))
            .collect();
        for workers in [0, 1, 2, 5, 24, 100] {
            assert_eq!(
                parallel_map_ordered(&items, workers, staggered),
                serial,
                "workers={workers}"
            );
        }
    }
}
