//! Deterministic fan-out of independent seeded jobs.
//!
//! Campaign grid points and sweep operating points are embarrassingly
//! parallel: each derives every random stream from its own seed and
//! shares no state with its siblings. This module provides the one
//! primitive they need — [`parallel_map_ordered`] — which runs a job per
//! input on a scoped thread pool and returns results **in submission
//! order**, so any report built from the output is byte-identical to the
//! serial rendering regardless of worker count or OS scheduling.
//!
//! The determinism contract:
//!
//! * jobs receive their submission index and must derive all randomness
//!   from inputs (never from wall clock, thread id, or shared state);
//! * results land in a slot array keyed by submission index, so
//!   completion order is irrelevant;
//! * `workers == 1` degenerates to a plain serial loop on the calling
//!   thread — no threads are spawned, which keeps single-core hosts and
//!   debugging runs cheap.
//!
//! # Examples
//!
//! ```
//! use xpipes_sim::parallel::{parallel_map_ordered, worker_count};
//!
//! let seeds = [7u64, 11, 13, 17];
//! let out = parallel_map_ordered(&seeds, worker_count(seeds.len()), |i, &s| {
//!     s.wrapping_mul(i as u64 + 1)
//! });
//! assert_eq!(out, vec![7, 22, 39, 68]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::Json;

/// Worker count for `jobs` independent jobs: the host's available
/// parallelism, capped at the job count and floored at one.
#[must_use]
pub fn worker_count(jobs: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(jobs).max(1)
}

/// Wall-clock utilization of one [`parallel_map_ordered_stats`] pool (or
/// several merged chunked pools).
///
/// Every field here is wall-clock derived and therefore
/// **nondeterministic**: pool stats belong in quarantined report
/// sections (alongside `KernelProfile`) and must never leak into
/// byte-compared artifacts. The mapped *results* stay deterministic; the
/// stats only describe how the wall time was spent producing them.
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    /// Peak worker count across the merged pool runs.
    pub workers: usize,
    /// Total items mapped.
    pub items: u64,
    /// Items completed by each worker slot (index = spawn order).
    pub items_per_worker: Vec<u64>,
    /// Seconds each worker slot spent inside the job closure.
    pub busy_per_worker: Vec<f64>,
    /// Wall-clock seconds spent inside the pool (summed across merges).
    pub wall_s: f64,
}

impl PoolStats {
    /// Fraction of the pool's total capacity (`workers * wall_s`) spent
    /// inside job closures. 1.0 means every worker was busy the whole
    /// time; low values mean workers idled at the tail or on the cursor.
    #[must_use]
    pub fn busy_fraction(&self) -> f64 {
        let capacity = self.workers as f64 * self.wall_s;
        if capacity > 0.0 {
            (self.busy_per_worker.iter().sum::<f64>() / capacity).min(1.0)
        } else {
            0.0
        }
    }

    /// Ratio of the busiest worker's item count to the ideal even share
    /// (`items / workers`). 1.0 is perfectly balanced; large values mean
    /// one worker drew most of the load.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let max = self.items_per_worker.iter().copied().max().unwrap_or(0) as f64;
        let ideal = self.items as f64 / self.items_per_worker.len().max(1) as f64;
        if ideal > 0.0 {
            max / ideal
        } else {
            1.0
        }
    }

    /// Folds another pool run (e.g. the next chunk of a chunked
    /// campaign) into this one: per-worker slots add element-wise, wall
    /// time accumulates (chunks run back to back, not concurrently).
    pub fn merge(&mut self, other: &PoolStats) {
        self.workers = self.workers.max(other.workers);
        self.items += other.items;
        if self.items_per_worker.len() < other.items_per_worker.len() {
            self.items_per_worker
                .resize(other.items_per_worker.len(), 0);
            self.busy_per_worker
                .resize(other.busy_per_worker.len(), 0.0);
        }
        for (slot, n) in other.items_per_worker.iter().enumerate() {
            self.items_per_worker[slot] += n;
        }
        for (slot, s) in other.busy_per_worker.iter().enumerate() {
            self.busy_per_worker[slot] += s;
        }
        self.wall_s += other.wall_s;
    }

    /// Wall-clock JSON form for quarantined report sections.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let items: Vec<Json> = self
            .items_per_worker
            .iter()
            .map(|&n| Json::UInt(n))
            .collect();
        let busy: Vec<Json> = self
            .busy_per_worker
            .iter()
            .map(|&s| Json::Fixed(s, 4))
            .collect();
        Json::object()
            .field("workers", Json::UInt(self.workers as u64))
            .field("items", Json::UInt(self.items))
            .field("items_per_worker", Json::Array(items))
            .field("busy_s_per_worker", Json::Array(busy))
            .field("busy_fraction", Json::Fixed(self.busy_fraction(), 3))
            .field("imbalance", Json::Fixed(self.imbalance(), 2))
            .field("wall_s", Json::Fixed(self.wall_s, 4))
            .build()
    }
}

/// Applies `f` to every item on up to `workers` scoped threads and
/// returns the results in submission order.
///
/// `f` receives `(submission_index, &item)`. Work is handed out through
/// an atomic cursor, so threads stay busy even when job durations vary;
/// each result is written to the slot matching its submission index, so
/// the output order never depends on scheduling.
///
/// # Panics
///
/// Propagates a panic from any job after all workers have stopped (the
/// scope joins every thread before unwinding).
pub fn parallel_map_ordered<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    parallel_map_ordered_stats(items, workers, f).0
}

/// [`parallel_map_ordered`] that also reports how the pool spent its
/// wall time, for utilization surfacing in progress streams and run
/// ledgers. The mapped results are byte-identical to the plain variant;
/// only the (quarantined, wall-clock) [`PoolStats`] differ run to run.
///
/// # Panics
///
/// Propagates a panic from any job after all workers have stopped.
pub fn parallel_map_ordered_stats<T, R, F>(items: &[T], workers: usize, f: F) -> (Vec<R>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.min(items.len()).max(1);
    let pool_start = Instant::now();
    if workers <= 1 {
        let busy_start = Instant::now();
        let out: Vec<R> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        let busy = busy_start.elapsed().as_secs_f64();
        let stats = PoolStats {
            workers: 1,
            items: items.len() as u64,
            items_per_worker: vec![items.len() as u64],
            busy_per_worker: vec![busy],
            wall_s: pool_start.elapsed().as_secs_f64(),
        };
        return (out, stats);
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let worker_loads: Vec<Mutex<(u64, f64)>> = (0..workers).map(|_| Mutex::new((0, 0.0))).collect();
    std::thread::scope(|scope| {
        for load in &worker_loads {
            let cursor = &cursor;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || {
                let mut count = 0u64;
                let mut busy = 0.0f64;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let job_start = Instant::now();
                    let result = f(i, item);
                    busy += job_start.elapsed().as_secs_f64();
                    count += 1;
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                }
                *load.lock().expect("worker load slot poisoned") = (count, busy);
            });
        }
    });
    let mut stats = PoolStats {
        workers,
        items: items.len() as u64,
        items_per_worker: Vec::with_capacity(workers),
        busy_per_worker: Vec::with_capacity(workers),
        wall_s: 0.0,
    };
    for load in worker_loads {
        let (count, busy) = load.into_inner().expect("worker load slot poisoned");
        stats.items_per_worker.push(count);
        stats.busy_per_worker.push(busy);
    }
    stats.wall_s = pool_start.elapsed().as_secs_f64();
    let out = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("scope joined all workers, so every slot is filled")
        })
        .collect();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_submission_order() {
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map_ordered(&items, 8, |i, &x| {
            assert_eq!(i, x);
            // Stagger completion so late submissions finish first.
            if i % 3 == 0 {
                std::thread::yield_now();
            }
            x * 2
        });
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_serial_for_any_worker_count() {
        let items: Vec<u64> = (0..17).map(|i| i * 31 + 5).collect();
        let serial = parallel_map_ordered(&items, 1, |i, &x| x.wrapping_mul(i as u64 + 3));
        for workers in [2, 3, 8, 32] {
            let par = parallel_map_ordered(&items, workers, |i, &x| x.wrapping_mul(i as u64 + 3));
            assert_eq!(par, serial, "workers={workers}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: [u8; 0] = [];
        let out = parallel_map_ordered(&items, 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_worker_runs_on_calling_thread() {
        let caller = std::thread::current().id();
        let items = [1, 2, 3];
        let out = parallel_map_ordered(&items, 1, |_, &x| {
            assert_eq!(std::thread::current().id(), caller);
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn worker_count_is_bounded() {
        assert_eq!(worker_count(0), 1);
        assert!(worker_count(1) == 1);
        assert!(worker_count(1000) >= 1);
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn job_panics_propagate() {
        let items: Vec<usize> = (0..8).collect();
        parallel_map_ordered(&items, 4, |i, _| {
            if i == 3 {
                panic!("job 3 exploded");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "job 0 exploded")]
    fn panic_on_the_serial_path_propagates_directly() {
        // workers == 1 runs on the calling thread, so the job's own panic
        // message (not the scope's) reaches the caller.
        let items = [0usize];
        parallel_map_ordered(&items, 1, |i, _| -> usize { panic!("job {i} exploded") });
    }

    #[test]
    fn zero_workers_clamps_to_serial() {
        // workers == 0 must not deadlock or spawn: it degenerates to the
        // serial path on the calling thread.
        let caller = std::thread::current().id();
        let items = [10, 20, 30];
        let out = parallel_map_ordered(&items, 0, |i, &x| {
            assert_eq!(std::thread::current().id(), caller);
            x + i
        });
        assert_eq!(out, vec![10, 21, 32]);
    }

    #[test]
    fn more_workers_than_jobs_is_safe_and_ordered() {
        // The pool caps at the job count; excess workers must not panic,
        // duplicate work, or perturb ordering.
        let items = [5u64, 7, 11];
        let out = parallel_map_ordered(&items, 64, |i, &x| (i as u64) * 100 + x);
        assert_eq!(out, vec![5, 107, 211]);
    }

    #[test]
    fn stats_account_for_every_item_exactly_once() {
        let items: Vec<u64> = (0..37).collect();
        for workers in [1, 2, 4, 9] {
            let (out, stats) = parallel_map_ordered_stats(&items, workers, |_, &x| x + 1);
            assert_eq!(out.len(), items.len());
            assert_eq!(stats.items, items.len() as u64, "workers={workers}");
            assert_eq!(
                stats.items_per_worker.iter().sum::<u64>(),
                items.len() as u64,
                "workers={workers}"
            );
            assert_eq!(stats.workers, workers.min(items.len()).max(1));
            assert_eq!(stats.items_per_worker.len(), stats.workers);
            assert!(stats.wall_s >= 0.0);
            assert!(stats.busy_fraction() >= 0.0 && stats.busy_fraction() <= 1.0);
            assert!(stats.imbalance() >= 1.0 - 1e-9, "workers={workers}");
        }
    }

    #[test]
    fn stats_results_match_plain_variant() {
        let items: Vec<u64> = (0..23).map(|i| i * 7 + 1).collect();
        let plain = parallel_map_ordered(&items, 4, |i, &x| x.wrapping_mul(i as u64 + 1));
        let (with_stats, _) =
            parallel_map_ordered_stats(&items, 4, |i, &x| x.wrapping_mul(i as u64 + 1));
        assert_eq!(plain, with_stats);
    }

    #[test]
    fn stats_merge_accumulates_chunks() {
        let chunk_a: Vec<u64> = (0..8).collect();
        let chunk_b: Vec<u64> = (0..5).collect();
        let (_, mut total) = parallel_map_ordered_stats(&chunk_a, 4, |_, &x| x);
        let (_, tail) = parallel_map_ordered_stats(&chunk_b, 2, |_, &x| x);
        let wall_before = total.wall_s;
        total.merge(&tail);
        assert_eq!(total.items, 13);
        assert_eq!(total.workers, 4);
        assert_eq!(total.items_per_worker.iter().sum::<u64>(), 13);
        assert!(total.wall_s >= wall_before);
    }

    #[test]
    fn stats_json_is_well_formed() {
        let items: Vec<u64> = (0..6).collect();
        let (_, stats) = parallel_map_ordered_stats(&items, 3, |_, &x| x);
        let json = stats.to_json();
        let parsed = Json::parse(&json.render_compact()).expect("pool stats render round-trips");
        assert_eq!(parsed.get("items").and_then(Json::as_u64), Some(6));
        assert_eq!(parsed.get("workers").and_then(Json::as_u64), Some(3));
        assert_eq!(
            parsed
                .get("items_per_worker")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn empty_input_stats_are_benign() {
        let items: [u8; 0] = [];
        let (out, stats) = parallel_map_ordered_stats(&items, 4, |_, &x| x);
        assert!(out.is_empty());
        assert_eq!(stats.items, 0);
        assert!(stats.busy_fraction() >= 0.0);
        assert!((stats.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn determinism_holds_with_staggered_completion() {
        // Jobs that finish out of submission order (earlier jobs sleep
        // longest) still land in submission order, for every worker count
        // including the degenerate ones.
        let items: Vec<u64> = (0..24).collect();
        let staggered = |i: usize, x: &u64| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            x.wrapping_mul(0x9E37_79B9).rotate_left(i as u32)
        };
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| staggered(i, x))
            .collect();
        for workers in [0, 1, 2, 5, 24, 100] {
            assert_eq!(
                parallel_map_ordered(&items, workers, staggered),
                serial,
                "workers={workers}"
            );
        }
    }
}
