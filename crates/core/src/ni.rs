//! Network interfaces: the OCP↔network protocol converters.
//!
//! The NI is "transaction centric" (paper): the front end speaks OCP to
//! the attached core, the back end speaks the xpipes network protocol.
//! Requests and responses travel on independent paths, bursts are handled
//! beat-efficiently, and the routing LUT — indexed by the decoded `MAddr`
//! — supplies the source route placed in the header register.
//!
//! [`InitiatorNi`] serves a master core (packetizes requests, reassembles
//! responses); [`TargetNi`] serves a slave core (reassembles requests,
//! executes them against the attached behavioural memory, packetizes
//! responses).

use std::collections::{HashMap, VecDeque};

use xpipes_ocp::{MCmd, Request, Response, SlaveMemory};
use xpipes_sim::{
    Cycle, Histogram, RunningStats, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter,
};
use xpipes_topology::route::SourceRoute;
use xpipes_topology::spec::AddressRange;
use xpipes_topology::NiId;

use crate::config::NiConfig;
use crate::error::XpipesError;
use crate::flit::{mask, Flit};
use crate::flow_control::{AckNack, LinkFlit, LinkRx, LinkTx};
use crate::header::{Header, MsgType};
use crate::packet::{depacketize, packetize, Packet};
use crate::snap;

/// Shared link-side machinery of both NI kinds: the flit output queue with
/// its ACK/nACK sender, and the receive guard with packet reassembly.
#[derive(Debug, Clone)]
struct NiPort {
    tx: LinkTx,
    rx: LinkRx,
    out_queue: VecDeque<Flit>,
    rx_buf: Vec<Flit>,
    /// Cycles a packetized flit sat queued while the retransmission
    /// window was full (telemetry: NI packetization stalls).
    stalls: u64,
}

impl NiPort {
    fn new(retransmit_depth: usize, ack_timeout: Option<u64>) -> Self {
        NiPort {
            tx: match ack_timeout {
                Some(t) => LinkTx::with_timeout(retransmit_depth, t),
                None => LinkTx::new(retransmit_depth),
            },
            rx: LinkRx::new(),
            out_queue: VecDeque::new(),
            rx_buf: Vec::new(),
            stalls: 0,
        }
    }

    fn transmit(&mut self, rev: Option<AckNack>) -> Option<LinkFlit> {
        self.tx.process(rev);
        let new = if self.tx.ready_for_new() {
            self.out_queue.pop_front()
        } else {
            if !self.out_queue.is_empty() {
                self.stalls += 1;
            }
            None
        };
        self.tx.transmit(new)
    }

    /// Feeds an arrival through the guard; returns the reply and, when a
    /// tail lands, the completed flit sequence.
    fn receive(&mut self, fwd: Option<LinkFlit>) -> (Option<AckNack>, Option<Vec<Flit>>) {
        let Some(arrival) = fwd else {
            return (None, None);
        };
        // NIs always sink their traffic: ejection is never back-pressured.
        let (delivered, reply) = self.rx.receive(arrival, true);
        let mut done = None;
        if let Some(flit) = delivered {
            let is_tail = flit.kind.is_tail();
            self.rx_buf.push(flit);
            if is_tail {
                done = Some(std::mem::take(&mut self.rx_buf));
            }
        }
        (Some(reply), done)
    }

    fn is_idle(&self) -> bool {
        self.out_queue.is_empty() && self.tx.in_flight() == 0 && self.rx_buf.is_empty()
    }

    /// True when the transmit side has work this cycle: queued flits or
    /// unacknowledged flits that may need resending / timeout ticking.
    fn tx_pending(&self) -> bool {
        !self.out_queue.is_empty() || self.tx.in_flight() > 0
    }
}

/// A transaction awaiting its response at the initiator.
#[derive(Debug, Clone)]
struct PendingTx {
    ocp_tag: u8,
    expects_response: bool,
    submitted: Cycle,
}

/// Cumulative NI statistics.
#[derive(Debug, Clone)]
pub struct NiStats {
    /// Packets injected into the network.
    pub packets_sent: u64,
    /// Packets fully reassembled from the network.
    pub packets_received: u64,
    /// Flits sent (including payload decomposition).
    pub flits_sent: u64,
    /// Round-trip transaction latency in cycles (initiators) or request
    /// one-way delivery latency (targets).
    pub latency: RunningStats,
    /// Latency distribution (cycles) for percentile reporting.
    pub latency_hist: Histogram,
}

impl NiStats {
    /// Histogram range in cycles. One shared configuration lets the NoC
    /// merge per-NI histograms.
    pub const HIST_RANGE: (u64, u64, usize) = (0, 4096, 128);
}

impl Default for NiStats {
    fn default() -> Self {
        let (lo, hi, buckets) = Self::HIST_RANGE;
        NiStats {
            packets_sent: 0,
            packets_received: 0,
            flits_sent: 0,
            latency: RunningStats::new(),
            latency_hist: Histogram::new(lo, hi, buckets),
        }
    }
}

/// The initiator (master-side) network interface.
///
/// # Examples
///
/// See the crate-level example: initiators are normally driven through
/// [`crate::noc::Noc::submit`].
#[derive(Debug, Clone)]
pub struct InitiatorNi {
    id: NiId,
    config: NiConfig,
    routes: HashMap<NiId, SourceRoute>,
    address_map: Vec<AddressRange>,
    port: NiPort,
    /// Network tag → pending transaction (4-bit tags: ≤16 outstanding).
    outstanding: HashMap<u8, PendingTx>,
    /// Requests waiting for a free tag.
    backlog: VecDeque<Request>,
    responses: VecDeque<Response>,
    /// Interrupts received via sideband packets, not yet taken.
    interrupts: u64,
    next_packet_id: u64,
    stats: NiStats,
}

impl InitiatorNi {
    /// Creates an initiator NI with its LUT (`routes`) and the system
    /// address map used to decode `MAddr` into a destination.
    pub fn new(
        id: NiId,
        config: NiConfig,
        routes: HashMap<NiId, SourceRoute>,
        address_map: Vec<AddressRange>,
    ) -> Self {
        InitiatorNi {
            id,
            config,
            routes,
            address_map,
            port: NiPort::new((2 * config.link_pipeline + 2) as usize, config.ack_timeout),
            outstanding: HashMap::new(),
            backlog: VecDeque::new(),
            responses: VecDeque::new(),
            interrupts: 0,
            next_packet_id: (id.0 as u64) << 32,
            stats: NiStats::default(),
        }
    }

    /// Number of sideband interrupts received and not yet taken.
    pub fn pending_interrupts(&self) -> u64 {
        self.interrupts
    }

    /// Consumes one pending interrupt; `false` when none is pending.
    pub fn take_interrupt(&mut self) -> bool {
        if self.interrupts > 0 {
            self.interrupts -= 1;
            true
        } else {
            false
        }
    }

    /// The NI's network identifier.
    pub fn id(&self) -> NiId {
        self.id
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &NiStats {
        &self.stats
    }

    /// True when nothing is queued, in flight or outstanding.
    pub fn is_idle(&self) -> bool {
        self.port.is_idle() && self.outstanding.is_empty() && self.backlog.is_empty()
    }

    /// True when the network port's transmit side has pending work
    /// (activity fast-path probe).
    pub fn link_busy(&self) -> bool {
        self.port.tx_pending()
    }

    /// True when submitted requests are waiting for a free transaction
    /// tag. While this holds, [`Self::tick`] may make progress; while it
    /// does not, `tick` is a no-op (event-kernel scheduling probe).
    pub fn has_backlog(&self) -> bool {
        !self.backlog.is_empty()
    }

    /// Cycles a packetized flit waited in the output queue because the
    /// link-layer retransmission window was full.
    pub fn packetization_stalls(&self) -> u64 {
        self.port.stalls
    }

    /// The ACK/nACK sender on the network port.
    pub fn link_tx(&self) -> &LinkTx {
        &self.port.tx
    }

    /// Mutable access to the sender (conformance hooks).
    pub fn link_tx_mut(&mut self) -> &mut LinkTx {
        &mut self.port.tx
    }

    /// The ACK/nACK receiver on the network port.
    pub fn link_rx(&self) -> &LinkRx {
        &self.port.rx
    }

    /// Responses delivered to the core but not yet collected.
    pub fn take_response(&mut self) -> Option<Response> {
        self.responses.pop_front()
    }

    /// Submits an OCP request transaction from the attached core.
    ///
    /// # Errors
    ///
    /// * [`XpipesError::UnmappedAddress`] when no target window contains
    ///   the address.
    /// * [`XpipesError::RouteTooLong`] / field overflows from header
    ///   construction.
    pub fn submit(&mut self, req: Request, now: Cycle) -> Result<(), XpipesError> {
        // Validate destination eagerly so errors surface at submit time.
        let dst = self
            .decode(req.addr())
            .ok_or(XpipesError::UnmappedAddress(req.addr()))?;
        if !self.routes.contains_key(&dst.ni) {
            return Err(XpipesError::UnknownNi(dst.ni));
        }
        self.backlog.push_back(req);
        self.drain_backlog(now)?;
        Ok(())
    }

    fn decode(&self, addr: u64) -> Option<AddressRange> {
        self.address_map.iter().find(|r| r.contains(addr)).copied()
    }

    fn free_tag(&self) -> Option<u8> {
        (0..16).find(|t| !self.outstanding.contains_key(t))
    }

    fn drain_backlog(&mut self, now: Cycle) -> Result<(), XpipesError> {
        while let Some(req) = self.backlog.front() {
            let Some(tag) = self.free_tag() else { break };
            let req = req.clone();
            self.backlog.pop_front();
            let window = self.decode(req.addr()).expect("validated at submit");
            let route = self.routes[&window.ni].clone();
            let header = Header::request(
                &route,
                self.id.0 as u8,
                req.cmd(),
                req.burst_len().min(255) as u8,
                req.thread(),
                tag,
                req.sideband(),
            )?
            .with_burst_seq(req.burst_seq());
            let offset = req.addr() - window.base;
            let payload: Vec<u64> = req
                .data()
                .iter()
                .map(|&d| (d as u128 & mask(self.config.data_width)) as u64)
                .collect();
            let id = self.next_packet_id;
            self.next_packet_id += 1;
            let packet = Packet::new(id, header, Some(offset), payload);
            let flits = packetize(&packet, self.config.flit_width, self.config.data_width, now)?;
            self.stats.packets_sent += 1;
            self.stats.flits_sent += flits.len() as u64;
            self.port.out_queue.extend(flits);
            self.outstanding.insert(
                tag,
                PendingTx {
                    ocp_tag: req.tag(),
                    expects_response: req.expects_response(),
                    submitted: now,
                },
            );
            // Posted writes complete immediately at the initiator.
            if !req.expects_response() {
                self.outstanding.remove(&tag);
            }
        }
        Ok(())
    }

    /// Output side: drive one flit onto the link this cycle.
    pub fn transmit(&mut self, rev: Option<AckNack>) -> Option<LinkFlit> {
        self.port.transmit(rev)
    }

    /// Input side: accept a flit from the link; reassembles response
    /// packets and completes transactions.
    pub fn receive(&mut self, fwd: Option<LinkFlit>, now: Cycle) -> Option<AckNack> {
        let (reply, done) = self.port.receive(fwd);
        if let Some(flits) = done {
            self.complete(flits, now);
        }
        reply
    }

    /// Makes forward progress on queued work (call once per cycle).
    pub fn tick(&mut self, now: Cycle) {
        // Tags may have freed; try to issue backlog.
        let _ = self.drain_backlog(now);
    }

    fn complete(&mut self, flits: Vec<Flit>, now: Cycle) {
        let Ok(packet) = depacketize(&flits, self.config.flit_width, self.config.data_width) else {
            return; // malformed packet: dropped, transaction times out
        };
        let MsgType::Response(resp) = packet.header.msg else {
            return; // initiators only sink responses
        };
        self.stats.packets_received += 1;
        // Sideband interrupts travel on dedicated (or piggybacked)
        // response packets.
        if packet.header.sideband.interrupt {
            self.interrupts += 1;
        }
        let tag = packet.header.tag;
        if let Some(pending) = self.outstanding.remove(&tag) {
            // Round-trip latency: submission to response completion.
            let cycles = now.since(pending.submitted);
            self.stats.latency.record(cycles as f64);
            self.stats.latency_hist.record(cycles);
            if pending.expects_response {
                self.responses.push_back(Response::from_parts(
                    resp,
                    packet.payload,
                    packet.header.thread,
                    pending.ocp_tag,
                ));
            }
        }
    }
}

/// A response scheduled after the slave's access latency.
#[derive(Debug, Clone)]
struct ScheduledResponse {
    ready_at: Cycle,
    src_ni: NiId,
    header_tag: u8,
    response: Response,
    /// Assert the sideband interrupt line on the emitted packet.
    interrupt: bool,
}

/// The target (slave-side) network interface with its attached
/// behavioural memory.
#[derive(Debug, Clone)]
pub struct TargetNi {
    id: NiId,
    config: NiConfig,
    /// Return routes: initiator NI id → source route.
    routes: HashMap<NiId, SourceRoute>,
    port: NiPort,
    memory: SlaveMemory,
    scheduled: VecDeque<ScheduledResponse>,
    next_packet_id: u64,
    stats: NiStats,
}

impl TargetNi {
    /// Creates a target NI with its return-route LUT and attached memory.
    pub fn new(
        id: NiId,
        config: NiConfig,
        routes: HashMap<NiId, SourceRoute>,
        memory: SlaveMemory,
    ) -> Self {
        TargetNi {
            id,
            config,
            routes,
            port: NiPort::new((2 * config.link_pipeline + 2) as usize, config.ack_timeout),
            memory,
            scheduled: VecDeque::new(),
            next_packet_id: ((id.0 as u64) << 32) | (1 << 31),
            stats: NiStats::default(),
        }
    }

    /// The NI's network identifier.
    pub fn id(&self) -> NiId {
        self.id
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &NiStats {
        &self.stats
    }

    /// The attached slave memory.
    pub fn memory(&self) -> &SlaveMemory {
        &self.memory
    }

    /// Mutable access to the attached slave memory (test backdoors).
    pub fn memory_mut(&mut self) -> &mut SlaveMemory {
        &mut self.memory
    }

    /// True when nothing is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.port.is_idle() && self.scheduled.is_empty()
    }

    /// The cycle at which [`Self::tick`] can next make progress: the
    /// ready cycle of the response at the head of the latency queue.
    /// The queue drains strictly head-of-line, so no later entry can
    /// fire before the head does (event-kernel scheduling probe).
    pub fn next_response_at(&self) -> Option<Cycle> {
        self.scheduled.front().map(|s| s.ready_at)
    }

    /// True when the network port's transmit side has pending work
    /// (activity fast-path probe).
    pub fn link_busy(&self) -> bool {
        self.port.tx_pending()
    }

    /// Cycles a packetized flit waited in the output queue because the
    /// link-layer retransmission window was full.
    pub fn packetization_stalls(&self) -> u64 {
        self.port.stalls
    }

    /// The ACK/nACK sender on the network port.
    pub fn link_tx(&self) -> &LinkTx {
        &self.port.tx
    }

    /// Mutable access to the sender (conformance hooks).
    pub fn link_tx_mut(&mut self) -> &mut LinkTx {
        &mut self.port.tx
    }

    /// The ACK/nACK receiver on the network port.
    pub fn link_rx(&self) -> &LinkRx {
        &self.port.rx
    }

    /// Output side: drive one flit onto the link this cycle.
    pub fn transmit(&mut self, rev: Option<AckNack>) -> Option<LinkFlit> {
        self.port.transmit(rev)
    }

    /// Input side: accept a flit from the link; reassembles request
    /// packets and executes them against the memory.
    pub fn receive(&mut self, fwd: Option<LinkFlit>, now: Cycle) -> Option<AckNack> {
        let (reply, done) = self.port.receive(fwd);
        if let Some(flits) = done {
            self.serve(flits, now);
        }
        reply
    }

    /// Makes forward progress: packetizes responses whose access latency
    /// has elapsed. Call once per cycle.
    pub fn tick(&mut self, now: Cycle) {
        while let Some(front) = self.scheduled.front() {
            if front.ready_at > now {
                break;
            }
            let sched = self.scheduled.pop_front().expect("nonempty");
            if self.emit_response(sched, now).is_err() {
                // Unroutable response: drop (counted implicitly by the
                // initiator's missing-response statistics).
            }
        }
    }

    fn serve(&mut self, flits: Vec<Flit>, now: Cycle) {
        let Ok(packet) = depacketize(&flits, self.config.flit_width, self.config.data_width) else {
            return;
        };
        let MsgType::Request(cmd) = packet.header.msg else {
            return; // targets only sink requests
        };
        self.stats.packets_received += 1;
        let cycles = now.since(flits[0].meta.injected_at);
        self.stats.latency.record(cycles as f64);
        self.stats.latency_hist.record(cycles);

        let Some(req) = Self::rebuild_request(cmd, &packet) else {
            return;
        };
        let response = self.memory.execute(&req);
        if let Some(response) = response {
            self.scheduled.push_back(ScheduledResponse {
                ready_at: now + self.memory.latency(),
                src_ni: NiId(packet.header.src_ni as usize),
                header_tag: packet.header.tag,
                response,
                interrupt: false,
            });
        }
    }

    /// Raises a sideband interrupt toward an initiator NI: the paper's
    /// NI forwards core interrupt lines through the network as dedicated
    /// sideband packets.
    ///
    /// # Errors
    ///
    /// [`XpipesError::UnknownNi`] when this target has no return route to
    /// `to`.
    pub fn raise_interrupt(&mut self, to: NiId, now: Cycle) -> Result<(), XpipesError> {
        if !self.routes.contains_key(&to) {
            return Err(XpipesError::UnknownNi(to));
        }
        self.scheduled.push_back(ScheduledResponse {
            ready_at: now,
            src_ni: to,
            header_tag: 15, // reserved tag: matches no outstanding entry
            response: Response::from_parts(
                xpipes_ocp::SResp::Dva,
                Vec::new(),
                xpipes_ocp::ThreadId(0),
                15,
            ),
            interrupt: true,
        });
        Ok(())
    }

    fn rebuild_request(cmd: MCmd, packet: &Packet) -> Option<Request> {
        let addr = packet.addr?;
        let builder = xpipes_ocp::transaction::RequestBuilder::new(cmd, addr)
            .thread(packet.header.thread)
            .tag(packet.header.tag)
            .sideband(packet.header.sideband)
            .burst_seq(packet.header.burst_seq);
        let builder = if cmd.carries_data() {
            builder.data(packet.payload.clone())
        } else {
            builder.burst_len(packet.header.burst_len as u32)
        };
        builder.build().ok()
    }

    fn emit_response(&mut self, sched: ScheduledResponse, now: Cycle) -> Result<(), XpipesError> {
        let route = self
            .routes
            .get(&sched.src_ni)
            .ok_or(XpipesError::UnknownNi(sched.src_ni))?
            .clone();
        let burst = sched.response.data().len().clamp(1, 255) as u8;
        let header = Header::response(
            &route,
            self.id.0 as u8,
            sched.response.resp(),
            burst,
            sched.response.thread(),
            sched.header_tag,
            xpipes_ocp::Sideband {
                interrupt: sched.interrupt,
                flags: 0,
            },
        )?;
        let payload: Vec<u64> = sched
            .response
            .data()
            .iter()
            .map(|&d| (d as u128 & mask(self.config.data_width)) as u64)
            .collect();
        let id = self.next_packet_id;
        self.next_packet_id += 1;
        let packet = Packet::new(id, header, None, payload);
        let flits = packetize(&packet, self.config.flit_width, self.config.data_width, now)?;
        self.stats.packets_sent += 1;
        self.stats.flits_sent += flits.len() as u64;
        self.port.out_queue.extend(flits);
        Ok(())
    }
}

impl Snapshot for NiPort {
    fn save_state(&self, w: &mut SnapshotWriter) {
        self.tx.save_state(w);
        self.rx.save_state(w);
        w.len(self.out_queue.len());
        for flit in &self.out_queue {
            snap::save_flit(w, flit);
        }
        w.len(self.rx_buf.len());
        for flit in &self.rx_buf {
            snap::save_flit(w, flit);
        }
        w.u64(self.stalls);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.tx.load_state(r)?;
        self.rx.load_state(r)?;
        let n = r.len()?;
        self.out_queue.clear();
        for _ in 0..n {
            self.out_queue.push_back(snap::load_flit(r)?);
        }
        let n = r.len()?;
        self.rx_buf.clear();
        for _ in 0..n {
            self.rx_buf.push(snap::load_flit(r)?);
        }
        self.stalls = r.u64()?;
        Ok(())
    }
}

impl Snapshot for NiStats {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.u64(self.packets_sent);
        w.u64(self.packets_received);
        w.u64(self.flits_sent);
        self.latency.save_state(w);
        self.latency_hist.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.packets_sent = r.u64()?;
        self.packets_received = r.u64()?;
        self.flits_sent = r.u64()?;
        self.latency.load_state(r)?;
        self.latency_hist.load_state(r)?;
        Ok(())
    }
}

impl Snapshot for InitiatorNi {
    /// Captures the network port, the tag table (in ascending tag order
    /// for determinism), backlog and undelivered responses, the interrupt
    /// counter, the packet-id allocator and statistics. Routes, address
    /// map and configuration are structural.
    fn save_state(&self, w: &mut SnapshotWriter) {
        self.port.save_state(w);
        let mut tags: Vec<u8> = self.outstanding.keys().copied().collect();
        tags.sort_unstable();
        w.len(tags.len());
        for tag in tags {
            let p = &self.outstanding[&tag];
            w.u8(tag);
            w.u8(p.ocp_tag);
            w.bool(p.expects_response);
            w.u64(p.submitted.as_u64());
        }
        w.len(self.backlog.len());
        for req in &self.backlog {
            snap::save_request(w, req);
        }
        w.len(self.responses.len());
        for resp in &self.responses {
            snap::save_response(w, resp);
        }
        w.u64(self.interrupts);
        w.u64(self.next_packet_id);
        self.stats.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.port.load_state(r)?;
        let n = r.len()?;
        if n > 16 {
            return Err(SnapshotError::Malformed(format!(
                "{n} outstanding transactions exceed the 16-tag table"
            )));
        }
        self.outstanding.clear();
        for _ in 0..n {
            let tag = r.u8()?;
            let ocp_tag = r.u8()?;
            let expects_response = r.bool()?;
            let submitted = Cycle::new(r.u64()?);
            self.outstanding.insert(
                tag,
                PendingTx {
                    ocp_tag,
                    expects_response,
                    submitted,
                },
            );
        }
        let n = r.len()?;
        self.backlog.clear();
        for _ in 0..n {
            self.backlog.push_back(snap::load_request(r)?);
        }
        let n = r.len()?;
        self.responses.clear();
        for _ in 0..n {
            self.responses.push_back(snap::load_response(r)?);
        }
        self.interrupts = r.u64()?;
        self.next_packet_id = r.u64()?;
        self.stats.load_state(r)?;
        Ok(())
    }
}

impl Snapshot for TargetNi {
    /// Captures the network port, the attached memory's contents and
    /// access counters, latency-scheduled responses, the packet-id
    /// allocator and statistics. Return routes, configuration and the
    /// memory's access latency are structural.
    fn save_state(&self, w: &mut SnapshotWriter) {
        self.port.save_state(w);
        let words = self.memory.export_words();
        w.len(words.len());
        for (addr, value) in words {
            w.u64(addr);
            w.u64(value);
        }
        w.u64(self.memory.reads());
        w.u64(self.memory.writes());
        w.len(self.scheduled.len());
        for sched in &self.scheduled {
            w.u64(sched.ready_at.as_u64());
            w.len(sched.src_ni.0);
            w.u8(sched.header_tag);
            snap::save_response(w, &sched.response);
            w.bool(sched.interrupt);
        }
        w.u64(self.next_packet_id);
        self.stats.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.port.load_state(r)?;
        let n = r.len()?;
        let mut words = Vec::with_capacity(n);
        for _ in 0..n {
            let addr = r.u64()?;
            let value = r.u64()?;
            words.push((addr, value));
        }
        let reads = r.u64()?;
        let writes = r.u64()?;
        self.memory.import_state(words, reads, writes);
        let n = r.len()?;
        self.scheduled.clear();
        for _ in 0..n {
            let ready_at = Cycle::new(r.u64()?);
            let src_ni = NiId(r.len()?);
            let header_tag = r.u8()?;
            let response = snap::load_response(r)?;
            let interrupt = r.bool()?;
            self.scheduled.push_back(ScheduledResponse {
                ready_at,
                src_ni,
                header_tag,
                response,
                interrupt,
            });
        }
        self.next_packet_id = r.u64()?;
        self.stats.load_state(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpipes_ocp::SResp;
    use xpipes_topology::PortId;

    fn route(hops: &[u8]) -> SourceRoute {
        SourceRoute::new(hops.iter().map(|&p| PortId(p)).collect()).unwrap()
    }

    fn initiator() -> InitiatorNi {
        let mut routes = HashMap::new();
        routes.insert(NiId(1), route(&[2, 4]));
        let map = vec![AddressRange {
            ni: NiId(1),
            base: 0x1000,
            size: 0x1000,
        }];
        InitiatorNi::new(NiId(0), NiConfig::new(32), routes, map)
    }

    fn target(latency: u64) -> TargetNi {
        let mut routes = HashMap::new();
        routes.insert(NiId(0), route(&[3]));
        TargetNi::new(
            NiId(1),
            NiConfig::new(32),
            routes,
            SlaveMemory::new(latency),
        )
    }

    /// Directly connects an initiator to a target (zero-length link) and
    /// runs until idle or the cycle budget runs out.
    fn run_pair(ini: &mut InitiatorNi, tgt: &mut TargetNi, cycles: u64) {
        let mut now = Cycle::ZERO;
        let mut i2t: Option<LinkFlit> = None;
        let mut t2i: Option<LinkFlit> = None;
        // Replies generated by each receiver, consumed by the peer sender.
        let mut reply_for_ini: Option<AckNack> = None;
        let mut reply_for_tgt: Option<AckNack> = None;
        for _ in 0..cycles {
            ini.tick(now);
            tgt.tick(now);
            let new_i2t = ini.transmit(reply_for_ini.take());
            let new_t2i = tgt.transmit(reply_for_tgt.take());
            if let Some(f) = i2t.take() {
                reply_for_ini = tgt.receive(Some(f), now);
            }
            if let Some(f) = t2i.take() {
                reply_for_tgt = ini.receive(Some(f), now);
            }
            i2t = new_i2t;
            t2i = new_t2i;
            now = now.next();
        }
    }

    #[test]
    fn write_reaches_target_memory() {
        let mut ini = initiator();
        let mut tgt = target(0);
        ini.submit(
            Request::write(0x1040, vec![0xAB, 0xCD]).unwrap(),
            Cycle::ZERO,
        )
        .unwrap();
        run_pair(&mut ini, &mut tgt, 50);
        // Window base 0x1000: the target sees local offsets.
        assert_eq!(tgt.memory().peek(0x40), 0xAB);
        assert_eq!(tgt.memory().peek(0x48), 0xCD);
        assert!(ini.is_idle(), "posted write completes immediately");
        assert_eq!(tgt.stats().packets_received, 1);
    }

    #[test]
    fn read_round_trip() {
        let mut ini = initiator();
        let mut tgt = target(2);
        tgt.memory_mut().poke(0x10, 77);
        ini.submit(Request::read(0x1010, 1).unwrap(), Cycle::ZERO)
            .unwrap();
        run_pair(&mut ini, &mut tgt, 100);
        let resp = ini.take_response().expect("response arrived");
        assert_eq!(resp.resp(), SResp::Dva);
        assert_eq!(resp.data(), &[77]);
        assert!(ini.is_idle());
        assert!(tgt.is_idle());
        assert_eq!(ini.stats().latency.count(), 1);
    }

    #[test]
    fn burst_read_returns_all_beats() {
        let mut ini = initiator();
        let mut tgt = target(1);
        for i in 0..4u64 {
            tgt.memory_mut().poke(0x20 + 8 * i, 100 + i);
        }
        ini.submit(Request::read(0x1020, 4).unwrap(), Cycle::ZERO)
            .unwrap();
        run_pair(&mut ini, &mut tgt, 200);
        let resp = ini.take_response().expect("response");
        assert_eq!(resp.data(), &[100, 101, 102, 103]);
    }

    #[test]
    fn nonposted_write_gets_ack() {
        let mut ini = initiator();
        let mut tgt = target(0);
        let req = xpipes_ocp::transaction::RequestBuilder::new(MCmd::WriteNonPost, 0x1000)
            .data(vec![5])
            .tag(7)
            .build()
            .unwrap();
        ini.submit(req, Cycle::ZERO).unwrap();
        run_pair(&mut ini, &mut tgt, 100);
        let resp = ini.take_response().expect("ack response");
        assert_eq!(resp.tag(), 7, "OCP tag restored from the NI tag table");
        assert!(resp.data().is_empty());
    }

    #[test]
    fn unmapped_address_rejected_at_submit() {
        let mut ini = initiator();
        let err = ini
            .submit(Request::read(0x9999_0000, 1).unwrap(), Cycle::ZERO)
            .unwrap_err();
        assert_eq!(err, XpipesError::UnmappedAddress(0x9999_0000));
    }

    #[test]
    fn many_outstanding_transactions_use_backlog() {
        let mut ini = initiator();
        let mut tgt = target(0);
        for i in 0..20u64 {
            ini.submit(Request::read(0x1000 + i * 8, 1).unwrap(), Cycle::ZERO)
                .unwrap();
        }
        // Only 16 tags exist: 4 requests sit in the backlog until
        // responses free tags; all 20 eventually complete.
        run_pair(&mut ini, &mut tgt, 2000);
        let mut got = 0;
        while ini.take_response().is_some() {
            got += 1;
        }
        assert_eq!(got, 20);
        assert!(ini.is_idle());
    }

    #[test]
    fn data_masked_to_data_width() {
        let mut ini = initiator();
        let mut tgt = target(0);
        ini.submit(
            Request::write(0x1000, vec![0x1_2345_6789]).unwrap(),
            Cycle::ZERO,
        )
        .unwrap();
        run_pair(&mut ini, &mut tgt, 50);
        assert_eq!(
            tgt.memory().peek(0x0),
            0x2345_6789,
            "upper bits truncated at 32-bit OCP"
        );
    }

    #[test]
    fn target_latency_delays_response() {
        let mut fast_ini = initiator();
        let mut fast_tgt = target(0);
        fast_ini
            .submit(Request::read(0x1000, 1).unwrap(), Cycle::ZERO)
            .unwrap();
        run_pair(&mut fast_ini, &mut fast_tgt, 200);
        let fast = fast_ini.stats().latency.mean();

        let mut slow_ini = initiator();
        let mut slow_tgt = target(20);
        slow_ini
            .submit(Request::read(0x1000, 1).unwrap(), Cycle::ZERO)
            .unwrap();
        run_pair(&mut slow_ini, &mut slow_tgt, 400);
        let slow = slow_ini.stats().latency.mean();
        assert!(slow >= fast + 19.0, "fast={fast} slow={slow}");
    }

    /// Checkpoint an initiator/target pair mid-transaction (tags held,
    /// responses scheduled, flits queued) and restore into fresh NIs: the
    /// remaining protocol must complete identically.
    #[test]
    fn ni_snapshot_mid_transaction_resumes_identically() {
        let mut ini = initiator();
        let mut tgt = target(3);
        tgt.memory_mut().poke(0x10, 77);
        for i in 0..6u64 {
            ini.submit(Request::read(0x1000 + i * 8, 1).unwrap(), Cycle::ZERO)
                .unwrap();
        }
        ini.submit(Request::write(0x1040, vec![0xAB]).unwrap(), Cycle::ZERO)
            .unwrap();
        // Run a few cycles: transactions are in flight everywhere.
        run_pair(&mut ini, &mut tgt, 12);
        assert!(!ini.is_idle() || !tgt.is_idle());

        let mut w = SnapshotWriter::new();
        ini.save_state(&mut w);
        tgt.save_state(&mut w);
        let bytes = w.finish();
        let mut ini2 = initiator();
        let mut tgt2 = target(3);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        ini2.load_state(&mut r).unwrap();
        tgt2.load_state(&mut r).unwrap();
        r.finish().unwrap();

        // NOTE: run_pair restarts its local cycle counter, but both pairs
        // see the same restart, so behaviour must stay identical.
        run_pair(&mut ini, &mut tgt, 400);
        run_pair(&mut ini2, &mut tgt2, 400);
        assert!(ini.is_idle() && tgt.is_idle());
        assert!(ini2.is_idle() && tgt2.is_idle());
        let mut got = Vec::new();
        while let Some(resp) = ini.take_response() {
            got.push(resp);
        }
        let mut got2 = Vec::new();
        while let Some(resp) = ini2.take_response() {
            got2.push(resp);
        }
        assert_eq!(got, got2);
        assert_eq!(got.len(), 6);
        assert_eq!(tgt.memory().peek(0x40), tgt2.memory().peek(0x40));
        assert_eq!(tgt.memory().export_words(), tgt2.memory().export_words());
        assert_eq!(ini.stats().packets_sent, ini2.stats().packets_sent);
        assert_eq!(
            ini.stats().latency_hist.total(),
            ini2.stats().latency_hist.total()
        );
    }

    #[test]
    fn stats_count_flits() {
        let mut ini = initiator();
        let mut tgt = target(0);
        ini.submit(Request::write(0x1000, vec![1, 2, 3]).unwrap(), Cycle::ZERO)
            .unwrap();
        run_pair(&mut ini, &mut tgt, 100);
        // W=32: header 2 flits + addr + 3 beats = 6.
        assert_eq!(ini.stats().flits_sent, 6);
        assert_eq!(ini.stats().packets_sent, 1);
    }
}
