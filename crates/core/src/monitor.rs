//! Online protocol invariant checkers for fault-injection campaigns.
//!
//! The ACK/nACK go-back-N protocol promises that every flit handed to a
//! [`LinkTx`] emerges from the paired [`LinkRx`] **exactly once, in
//! order**, regardless of forward corruption, reverse-channel loss, or
//! backpressure. The [`ProtocolMonitor`] watches every channel of a
//! network while faults are injected and checks four invariants each
//! cycle:
//!
//! * **In-order delivery** — the receiver accepts exactly the sequence of
//!   flits the sender first transmitted, with no reordering, duplication
//!   or invention.
//! * **No sequence aliasing** — the go-back-N window never holds two
//!   entries with the same sequence number, window numbering is
//!   contiguous, and a retransmission always re-sends the flit originally
//!   bound to that sequence number.
//! * **Bounded-retransmission liveness** — a channel with undelivered
//!   flits makes progress within a configurable cycle bound.
//! * **Conservation of flits** — flits are neither created nor destroyed:
//!   `accepted + in-transit == new flits sent`, checked online and again
//!   at drain.
//!
//! The monitor is pure observation: it never perturbs the simulation, so
//! a monitored run is cycle-identical to an unmonitored one.

use std::collections::VecDeque;

use xpipes_sim::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::flit::Flit;
use crate::flow_control::{seq_next, LinkRx, LinkTx};
use crate::snap;

/// Which invariant a violation report refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// Exactly-once in-order delivery per channel.
    InOrderDelivery,
    /// Sequence-number aliasing inside the go-back-N window.
    SeqAliasing,
    /// Bounded-retransmission liveness.
    Liveness,
    /// Conservation of flits (none created, none destroyed).
    Conservation,
}

impl InvariantKind {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            InvariantKind::InOrderDelivery => "in-order-delivery",
            InvariantKind::SeqAliasing => "seq-aliasing",
            InvariantKind::Liveness => "liveness",
            InvariantKind::Conservation => "conservation",
        }
    }
}

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Cycle at which the violation was detected.
    pub cycle: u64,
    /// Channel label (as registered with [`ProtocolMonitor::add_channel`]).
    pub channel: String,
    /// Violated invariant.
    pub kind: InvariantKind,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[cycle {}] {} on {}: {}",
            self.cycle,
            self.kind.name(),
            self.channel,
            self.detail
        )
    }
}

/// Monitor tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorConfig {
    /// Cycles a channel with undelivered flits may go without progress
    /// before the liveness invariant trips.
    pub liveness_bound: u64,
    /// Hard cap on recorded violations (a broken protocol would otherwise
    /// flood memory; the first few violations carry all the signal).
    pub max_violations: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            liveness_bound: 2000,
            max_violations: 64,
        }
    }
}

/// Per-channel observer state.
#[derive(Debug, Clone)]
struct ChanState {
    label: String,
    /// Sequence number the next *new* (first-transmission) flit must carry.
    expected_new_seq: u8,
    /// New flits transmitted but not yet accepted: (seq, fingerprint).
    pending: VecDeque<(u8, Flit)>,
    /// Recently delivered flits: when an ACK is lost, go-back-N
    /// legitimately retransmits flits the receiver already accepted (and
    /// re-ACKs as duplicates), so these sequence numbers stay valid for
    /// the receiver's duplicate-detection span.
    delivered: VecDeque<(u8, Flit)>,
    /// New-transmission events observed.
    noted_new: u64,
    /// Accept events observed.
    noted_accepted: u64,
    /// Cycle of the last new transmission or accept on this channel.
    last_progress: u64,
    /// Liveness already reported for the current stall (reset on progress).
    live_reported: bool,
}

/// Observes every channel of a network and checks protocol invariants.
///
/// Wire-up: call [`note_transmit`](Self::note_transmit) whenever a sender
/// drives a flit onto a link, [`note_accept`](Self::note_accept) whenever
/// the paired receiver accepts one, [`check_endpoints`](Self::check_endpoints)
/// once per channel per cycle, and [`finish`](Self::finish) after drain.
#[derive(Debug, Clone, Default)]
pub struct ProtocolMonitor {
    config: MonitorConfig,
    chans: Vec<ChanState>,
    violations: Vec<InvariantViolation>,
}

impl ProtocolMonitor {
    /// Creates a monitor with the given configuration.
    pub fn new(config: MonitorConfig) -> Self {
        ProtocolMonitor {
            config,
            chans: Vec::new(),
            violations: Vec::new(),
        }
    }

    /// Registers a channel; returns its index for the `note_*` calls.
    pub fn add_channel(&mut self, label: impl Into<String>) -> usize {
        self.chans.push(ChanState {
            label: label.into(),
            expected_new_seq: 0,
            pending: VecDeque::new(),
            delivered: VecDeque::new(),
            noted_new: 0,
            noted_accepted: 0,
            last_progress: 0,
            live_reported: false,
        });
        self.chans.len() - 1
    }

    /// Number of registered channels.
    pub fn channels(&self) -> usize {
        self.chans.len()
    }

    /// All recorded violations, in detection order.
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// True when no invariant has tripped.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    fn record(&mut self, cycle: u64, ch: usize, kind: InvariantKind, detail: String) {
        if self.violations.len() >= self.config.max_violations {
            return;
        }
        self.violations.push(InvariantViolation {
            cycle,
            channel: self.chans[ch].label.clone(),
            kind,
            detail,
        });
    }

    /// A sender drove `lf`'s flit onto channel `ch` this cycle. Classifies
    /// the transmission as new or retransmission by sequence number and
    /// checks the aliasing invariant on retransmissions.
    pub fn note_transmit(&mut self, ch: usize, seq: u8, flit: &Flit, cycle: u64) {
        let chan = &mut self.chans[ch];
        if seq == chan.expected_new_seq {
            chan.pending.push_back((seq, *flit));
            chan.expected_new_seq = seq_next(seq);
            chan.noted_new += 1;
            chan.last_progress = cycle;
            chan.live_reported = false;
            return;
        }
        // Retransmission: it must replay a sequence number still live at
        // the receiver — either in flight (pending) or recently delivered
        // (its ACK may have been lost) — with the exact flit originally
        // bound to it.
        match chan.pending.iter().find(|(s, _)| *s == seq) {
            Some((_, original)) if original == flit => {}
            Some(_) => {
                let detail = format!("seq {seq} reused for a different flit");
                self.record(cycle, ch, InvariantKind::SeqAliasing, detail);
            }
            None => match chan.delivered.iter().rev().find(|(s, _)| *s == seq) {
                Some((_, original)) if original == flit => {} // duplicate, re-ACKed downstream
                Some(_) => {
                    let detail = format!("seq {seq} reused for a different flit after delivery");
                    self.record(cycle, ch, InvariantKind::SeqAliasing, detail);
                }
                None => {
                    let detail = format!("retransmission of unknown seq {seq}");
                    self.record(cycle, ch, InvariantKind::SeqAliasing, detail);
                }
            },
        }
    }

    /// The receiver on channel `ch` accepted `flit` this cycle. Checks the
    /// exactly-once in-order invariant against the pending queue.
    pub fn note_accept(&mut self, ch: usize, flit: &Flit, cycle: u64) {
        let chan = &mut self.chans[ch];
        chan.noted_accepted += 1;
        chan.last_progress = cycle;
        chan.live_reported = false;
        match chan.pending.pop_front() {
            Some((seq, expected)) => {
                // Remember the delivery for the receiver's 32-sequence
                // duplicate-detection span (SEQ_MOD / 2).
                chan.delivered.push_back((seq, *flit));
                while chan.delivered.len() > 32 {
                    chan.delivered.pop_front();
                }
                if expected != *flit {
                    let detail = format!(
                        "accepted flit differs from the one sent as seq {seq} \
                         (packet {} vs {})",
                        flit.meta.packet_id, expected.meta.packet_id
                    );
                    self.record(cycle, ch, InvariantKind::InOrderDelivery, detail);
                }
            }
            None => {
                let detail = format!(
                    "accepted a flit never sent (packet {})",
                    flit.meta.packet_id
                );
                self.record(cycle, ch, InvariantKind::InOrderDelivery, detail);
            }
        }
    }

    /// Once-per-cycle structural checks against the channel's endpoint
    /// state: window well-formedness (aliasing), conservation, liveness.
    pub fn check_endpoints(&mut self, ch: usize, tx: &LinkTx, rx: &LinkRx, cycle: u64) {
        // Window well-formedness: distinct, contiguous sequence numbers,
        // occupancy within capacity.
        let seqs: Vec<u8> = tx.window_seqs().collect();
        if seqs.len() > tx.capacity() {
            let detail = format!(
                "window holds {} flits, capacity {}",
                seqs.len(),
                tx.capacity()
            );
            self.record(cycle, ch, InvariantKind::SeqAliasing, detail);
        }
        let mut mask = 0u64;
        let mut aliased = false;
        for &s in &seqs {
            if mask & (1u64 << s) != 0 {
                aliased = true;
            }
            mask |= 1u64 << s;
        }
        if aliased {
            let detail = format!("window holds duplicate sequence numbers: {seqs:?}");
            self.record(cycle, ch, InvariantKind::SeqAliasing, detail);
        } else {
            for pair in seqs.windows(2) {
                if pair[1] != seq_next(pair[0]) {
                    let detail = format!("window numbering not contiguous: {seqs:?}");
                    self.record(cycle, ch, InvariantKind::SeqAliasing, detail);
                    break;
                }
            }
        }

        // Conservation: every new flit is either accepted or still in
        // transit — never both, never neither.
        let new_sent = tx.sent().saturating_sub(tx.retransmissions());
        let accepted = rx.accepted();
        let chan = &self.chans[ch];
        let pending = chan.pending.len() as u64;
        if accepted > new_sent {
            let detail =
                format!("receiver accepted {accepted} flits but only {new_sent} were sent");
            self.record(cycle, ch, InvariantKind::Conservation, detail);
        } else if chan.noted_new == new_sent
            && chan.noted_accepted == accepted
            && accepted + pending != new_sent
        {
            let detail = format!(
                "flits lost or duplicated: sent {new_sent}, accepted {accepted}, \
                 in transit {pending}"
            );
            self.record(cycle, ch, InvariantKind::Conservation, detail);
        }

        // Liveness: undelivered flits must make progress within the bound.
        let chan = &mut self.chans[ch];
        if !chan.pending.is_empty()
            && !chan.live_reported
            && cycle.saturating_sub(chan.last_progress) > self.config.liveness_bound
        {
            chan.live_reported = true;
            let stalled = cycle - chan.last_progress;
            let detail = format!(
                "no progress for {stalled} cycles with {} undelivered flits",
                chan.pending.len()
            );
            self.record(cycle, ch, InvariantKind::Liveness, detail);
        }
    }

    /// Final conservation check after the network drained: every
    /// transmitted flit must have been delivered.
    pub fn finish(&mut self, cycle: u64) {
        for ch in 0..self.chans.len() {
            let n = self.chans[ch].pending.len();
            if n > 0 {
                let detail = format!("{n} flits transmitted but never delivered");
                self.record(cycle, ch, InvariantKind::Conservation, detail);
            }
        }
    }
}

fn save_seq_flit_queue(w: &mut SnapshotWriter, q: &VecDeque<(u8, Flit)>) {
    w.len(q.len());
    for (seq, flit) in q {
        w.u8(*seq);
        snap::save_flit(w, flit);
    }
}

fn load_seq_flit_queue(r: &mut SnapshotReader<'_>) -> Result<VecDeque<(u8, Flit)>, SnapshotError> {
    let n = r.len()?;
    let mut q = VecDeque::with_capacity(n);
    for _ in 0..n {
        let seq = r.u8()?;
        let flit = snap::load_flit(r)?;
        q.push_back((seq, flit));
    }
    Ok(q)
}

impl Snapshot for ProtocolMonitor {
    /// Captures every channel's observer state and the recorded
    /// violations. Channel labels and the configuration are structural:
    /// a restored monitor must already have the same channels registered.
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.len(self.chans.len());
        for chan in &self.chans {
            w.u8(chan.expected_new_seq);
            save_seq_flit_queue(w, &chan.pending);
            save_seq_flit_queue(w, &chan.delivered);
            w.u64(chan.noted_new);
            w.u64(chan.noted_accepted);
            w.u64(chan.last_progress);
            w.bool(chan.live_reported);
        }
        w.len(self.violations.len());
        for v in &self.violations {
            w.u64(v.cycle);
            w.str(&v.channel);
            w.u8(match v.kind {
                InvariantKind::InOrderDelivery => 0,
                InvariantKind::SeqAliasing => 1,
                InvariantKind::Liveness => 2,
                InvariantKind::Conservation => 3,
            });
            w.str(&v.detail);
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let n = r.len()?;
        if n != self.chans.len() {
            return Err(SnapshotError::Malformed(format!(
                "monitor watches {} channels, snapshot has {n}",
                self.chans.len()
            )));
        }
        for chan in self.chans.iter_mut() {
            chan.expected_new_seq = r.u8()?;
            chan.pending = load_seq_flit_queue(r)?;
            chan.delivered = load_seq_flit_queue(r)?;
            chan.noted_new = r.u64()?;
            chan.noted_accepted = r.u64()?;
            chan.last_progress = r.u64()?;
            chan.live_reported = r.bool()?;
        }
        let n = r.len()?;
        self.violations.clear();
        for _ in 0..n {
            let cycle = r.u64()?;
            let channel = r.str()?;
            let kind = match r.u8()? {
                0 => InvariantKind::InOrderDelivery,
                1 => InvariantKind::SeqAliasing,
                2 => InvariantKind::Liveness,
                3 => InvariantKind::Conservation,
                other => {
                    return Err(SnapshotError::Malformed(format!(
                        "bad invariant kind tag {other}"
                    )))
                }
            };
            let detail = r.str()?;
            self.violations.push(InvariantViolation {
                cycle,
                channel,
                kind,
                detail,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, FlitMeta};
    use xpipes_sim::Cycle;

    fn flit(n: u64) -> Flit {
        Flit::new(
            FlitKind::Single,
            n as u128,
            FlitMeta::new(n, Cycle::ZERO, 0),
        )
    }

    #[test]
    fn clean_exchange_stays_clean() {
        let mut m = ProtocolMonitor::new(MonitorConfig::default());
        let ch = m.add_channel("test");
        for i in 0..10u64 {
            m.note_transmit(ch, (i % 64) as u8, &flit(i), i);
            m.note_accept(ch, &flit(i), i + 1);
        }
        m.finish(20);
        assert!(m.is_clean(), "{:?}", m.violations());
    }

    #[test]
    fn retransmission_of_same_flit_is_clean() {
        let mut m = ProtocolMonitor::new(MonitorConfig::default());
        let ch = m.add_channel("test");
        m.note_transmit(ch, 0, &flit(1), 0);
        m.note_transmit(ch, 0, &flit(1), 5); // go-back-N replay
        m.note_accept(ch, &flit(1), 6);
        m.finish(10);
        assert!(m.is_clean());
    }

    #[test]
    fn seq_reuse_with_different_flit_detected() {
        let mut m = ProtocolMonitor::new(MonitorConfig::default());
        let ch = m.add_channel("test");
        m.note_transmit(ch, 0, &flit(1), 0);
        m.note_transmit(ch, 0, &flit(2), 1); // same seq, different flit
        assert_eq!(m.violations().len(), 1);
        assert_eq!(m.violations()[0].kind, InvariantKind::SeqAliasing);
    }

    #[test]
    fn out_of_order_accept_detected() {
        let mut m = ProtocolMonitor::new(MonitorConfig::default());
        let ch = m.add_channel("test");
        m.note_transmit(ch, 0, &flit(1), 0);
        m.note_transmit(ch, 1, &flit(2), 1);
        m.note_accept(ch, &flit(2), 2); // skipped flit 1
        assert_eq!(m.violations()[0].kind, InvariantKind::InOrderDelivery);
    }

    #[test]
    fn invented_flit_detected() {
        let mut m = ProtocolMonitor::new(MonitorConfig::default());
        let ch = m.add_channel("test");
        m.note_accept(ch, &flit(9), 0);
        assert_eq!(m.violations()[0].kind, InvariantKind::InOrderDelivery);
    }

    #[test]
    fn liveness_trips_once_per_stall() {
        let cfg = MonitorConfig {
            liveness_bound: 10,
            max_violations: 64,
        };
        let mut m = ProtocolMonitor::new(cfg);
        let ch = m.add_channel("test");
        m.note_transmit(ch, 0, &flit(1), 0);
        let tx = LinkTx::new(4);
        let rx = LinkRx::new();
        for cycle in 1..40 {
            m.check_endpoints(ch, &tx, &rx, cycle);
        }
        let live: Vec<_> = m
            .violations()
            .iter()
            .filter(|v| v.kind == InvariantKind::Liveness)
            .collect();
        assert_eq!(live.len(), 1, "reported once, not every cycle");
    }

    #[test]
    fn undelivered_flits_flagged_at_finish() {
        let mut m = ProtocolMonitor::new(MonitorConfig::default());
        let ch = m.add_channel("test");
        m.note_transmit(ch, 0, &flit(1), 0);
        m.finish(100);
        assert_eq!(m.violations()[0].kind, InvariantKind::Conservation);
    }

    #[test]
    fn monitor_snapshot_preserves_observer_state() {
        let mut m = ProtocolMonitor::new(MonitorConfig::default());
        let ch = m.add_channel("sw0->sw1");
        m.note_transmit(ch, 0, &flit(1), 0);
        m.note_transmit(ch, 1, &flit(2), 1);
        m.note_accept(ch, &flit(1), 2);
        m.note_transmit(ch, 0, &flit(9), 3); // aliasing violation
        assert_eq!(m.violations().len(), 1);

        let mut w = SnapshotWriter::new();
        m.save_state(&mut w);
        let bytes = w.finish();
        let mut restored = ProtocolMonitor::new(MonitorConfig::default());
        restored.add_channel("sw0->sw1");
        let mut r = SnapshotReader::open(&bytes).unwrap();
        restored.load_state(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(restored.violations(), m.violations());
        // Both monitors must flag the still-undelivered flit identically.
        m.finish(50);
        restored.finish(50);
        assert_eq!(restored.violations(), m.violations());

        // Channel-count mismatch is rejected.
        let mut other = ProtocolMonitor::new(MonitorConfig::default());
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(
            other.load_state(&mut r),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn violation_cap_is_enforced() {
        let cfg = MonitorConfig {
            liveness_bound: 2000,
            max_violations: 3,
        };
        let mut m = ProtocolMonitor::new(cfg);
        let ch = m.add_channel("test");
        for i in 0..10u64 {
            m.note_accept(ch, &flit(i), i); // every accept is "never sent"
        }
        assert_eq!(m.violations().len(), 3);
    }
}
