//! Snapshot codecs for the wire-level value types shared by the
//! component [`Snapshot`](xpipes_sim::Snapshot) implementations: flits,
//! link flits, ACK/nACK messages and OCP transactions. Each codec writes
//! exactly the bytes its loader consumes, so component payloads compose
//! without framing.

use xpipes_sim::{Cycle, SnapshotError, SnapshotReader, SnapshotWriter};

use xpipes_ocp::transaction::RequestBuilder;
use xpipes_ocp::{BurstSeq, MCmd, Request, Response, SResp, Sideband, ThreadId};

use crate::flit::{Flit, FlitKind, FlitMeta};
use crate::flow_control::{AckNack, LinkFlit};
use crate::header::Header;

const fn kind_tag(kind: FlitKind) -> u8 {
    match kind {
        FlitKind::Header => 0,
        FlitKind::Body => 1,
        FlitKind::Tail => 2,
        FlitKind::Single => 3,
    }
}

fn kind_from_tag(tag: u8) -> Result<FlitKind, SnapshotError> {
    match tag {
        0 => Ok(FlitKind::Header),
        1 => Ok(FlitKind::Body),
        2 => Ok(FlitKind::Tail),
        3 => Ok(FlitKind::Single),
        other => Err(SnapshotError::Malformed(format!(
            "bad flit kind tag {other}"
        ))),
    }
}

pub(crate) fn save_flit(w: &mut SnapshotWriter, flit: &Flit) {
    w.u8(kind_tag(flit.kind));
    w.u128(flit.bits);
    match flit.header {
        Some(h) => {
            w.bool(true);
            w.u64(h.bits());
        }
        None => w.bool(false),
    }
    w.u64(flit.meta.packet_id);
    w.u64(flit.meta.injected_at.as_u64());
    w.u8(flit.meta.src_ni);
}

pub(crate) fn load_flit(r: &mut SnapshotReader<'_>) -> Result<Flit, SnapshotError> {
    let kind = kind_from_tag(r.u8()?)?;
    let bits = r.u128()?;
    let header = if r.bool()? {
        let image = r.u64()?;
        let h = Header::decode(image)
            .map_err(|e| SnapshotError::Malformed(format!("flit header: {e}")))?;
        Some(h.packed())
    } else {
        None
    };
    let packet_id = r.u64()?;
    let injected_at = Cycle::new(r.u64()?);
    let src_ni = r.u8()?;
    Ok(Flit {
        kind,
        bits,
        header,
        meta: FlitMeta::new(packet_id, injected_at, src_ni),
    })
}

pub(crate) fn save_link_flit(w: &mut SnapshotWriter, lf: &LinkFlit) {
    save_flit(w, &lf.flit);
    w.u8(lf.seq);
    w.bool(lf.corrupted);
}

pub(crate) fn load_link_flit(r: &mut SnapshotReader<'_>) -> Result<LinkFlit, SnapshotError> {
    let flit = load_flit(r)?;
    let seq = r.u8()?;
    let corrupted = r.bool()?;
    Ok(LinkFlit {
        flit,
        seq,
        corrupted,
    })
}

pub(crate) fn save_acknack(w: &mut SnapshotWriter, an: &AckNack) {
    w.u8(an.seq);
    w.bool(an.ack);
}

pub(crate) fn load_acknack(r: &mut SnapshotReader<'_>) -> Result<AckNack, SnapshotError> {
    let seq = r.u8()?;
    let ack = r.bool()?;
    Ok(AckNack { seq, ack })
}

pub(crate) fn save_opt_flit(w: &mut SnapshotWriter, slot: &Option<Flit>) {
    match slot {
        Some(f) => {
            w.bool(true);
            save_flit(w, f);
        }
        None => w.bool(false),
    }
}

pub(crate) fn load_opt_flit(r: &mut SnapshotReader<'_>) -> Result<Option<Flit>, SnapshotError> {
    Ok(if r.bool()? { Some(load_flit(r)?) } else { None })
}

pub(crate) fn save_opt_link_flit(w: &mut SnapshotWriter, slot: &Option<LinkFlit>) {
    match slot {
        Some(lf) => {
            w.bool(true);
            save_link_flit(w, lf);
        }
        None => w.bool(false),
    }
}

pub(crate) fn load_opt_link_flit(
    r: &mut SnapshotReader<'_>,
) -> Result<Option<LinkFlit>, SnapshotError> {
    Ok(if r.bool()? {
        Some(load_link_flit(r)?)
    } else {
        None
    })
}

pub(crate) fn save_opt_acknack(w: &mut SnapshotWriter, slot: &Option<AckNack>) {
    match slot {
        Some(an) => {
            w.bool(true);
            save_acknack(w, an);
        }
        None => w.bool(false),
    }
}

pub(crate) fn load_opt_acknack(
    r: &mut SnapshotReader<'_>,
) -> Result<Option<AckNack>, SnapshotError> {
    Ok(if r.bool()? {
        Some(load_acknack(r)?)
    } else {
        None
    })
}

pub(crate) fn save_request(w: &mut SnapshotWriter, req: &Request) {
    w.u8(req.cmd().encode());
    w.u64(req.addr());
    w.u32(req.burst_len());
    w.u8(req.burst_seq().encode());
    w.len(req.data().len());
    for &word in req.data() {
        w.u64(word);
    }
    w.u8(req.byte_en());
    w.u8(req.thread().0);
    w.u8(req.tag());
    w.u8(req.sideband().encode());
}

pub(crate) fn load_request(r: &mut SnapshotReader<'_>) -> Result<Request, SnapshotError> {
    let cmd = MCmd::decode(r.u8()?)
        .ok_or_else(|| SnapshotError::Malformed("bad OCP command tag".into()))?;
    let addr = r.u64()?;
    let burst_len = r.u32()?;
    let burst_seq = BurstSeq::decode(r.u8()?)
        .ok_or_else(|| SnapshotError::Malformed("bad OCP burst sequence tag".into()))?;
    let n = r.len()?;
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(r.u64()?);
    }
    let byte_en = r.u8()?;
    let thread = ThreadId(r.u8()?);
    let tag = r.u8()?;
    let sideband = Sideband::decode(r.u8()?);
    let mut b = RequestBuilder::new(cmd, addr)
        .burst_seq(burst_seq)
        .byte_en(byte_en)
        .thread(thread)
        .tag(tag)
        .sideband(sideband);
    b = if cmd.carries_data() {
        b.data(data)
    } else {
        b.burst_len(burst_len)
    };
    b.build()
        .map_err(|e| SnapshotError::Malformed(format!("OCP request: {e}")))
}

pub(crate) fn save_response(w: &mut SnapshotWriter, resp: &Response) {
    w.u8(resp.resp().encode());
    w.len(resp.data().len());
    for &word in resp.data() {
        w.u64(word);
    }
    w.u8(resp.thread().0);
    w.u8(resp.tag());
}

pub(crate) fn load_response(r: &mut SnapshotReader<'_>) -> Result<Response, SnapshotError> {
    let resp = SResp::decode(r.u8()?);
    let n = r.len()?;
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(r.u64()?);
    }
    let thread = ThreadId(r.u8()?);
    let tag = r.u8()?;
    Ok(Response::from_parts(resp, data, thread, tag))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpipes_topology::route::SourceRoute;
    use xpipes_topology::PortId;

    #[test]
    fn flit_codec_roundtrips_head_and_plain() {
        let route = SourceRoute::new(vec![PortId(2), PortId(0)]).unwrap();
        let header =
            Header::request(&route, 0x2B, MCmd::Read, 4, ThreadId(1), 3, Sideband::NONE).unwrap();
        let head = Flit::head(
            FlitKind::Header,
            0x1234,
            header,
            FlitMeta::new(9, Cycle::new(41), 2),
        );
        let body = Flit::new(
            FlitKind::Body,
            u128::MAX - 5,
            FlitMeta::new(9, Cycle::new(41), 2),
        );
        let mut w = SnapshotWriter::new();
        save_flit(&mut w, &head);
        save_flit(&mut w, &body);
        save_opt_flit(&mut w, &None);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert_eq!(load_flit(&mut r).unwrap(), head);
        assert_eq!(load_flit(&mut r).unwrap(), body);
        assert_eq!(load_opt_flit(&mut r).unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn link_layer_codecs_roundtrip() {
        let lf = LinkFlit {
            flit: Flit::new(FlitKind::Tail, 77, FlitMeta::new(3, Cycle::new(5), 1)),
            seq: 63,
            corrupted: true,
        };
        let an = AckNack {
            seq: 12,
            ack: false,
        };
        let mut w = SnapshotWriter::new();
        save_link_flit(&mut w, &lf);
        save_acknack(&mut w, &an);
        save_opt_link_flit(&mut w, &Some(lf));
        save_opt_acknack(&mut w, &None);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert_eq!(load_link_flit(&mut r).unwrap(), lf);
        assert_eq!(load_acknack(&mut r).unwrap(), an);
        assert_eq!(load_opt_link_flit(&mut r).unwrap(), Some(lf));
        assert_eq!(load_opt_acknack(&mut r).unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn ocp_transaction_codecs_roundtrip() {
        let read = RequestBuilder::new(MCmd::Read, 0x1F0)
            .burst_len(4)
            .burst_seq(BurstSeq::Wrap)
            .thread(ThreadId(2))
            .tag(7)
            .build()
            .unwrap();
        let write = RequestBuilder::new(MCmd::WriteNonPost, 0x88)
            .data(vec![1, 2, 3])
            .byte_en(0x0F)
            .sideband(Sideband {
                interrupt: true,
                flags: 0b101,
            })
            .build()
            .unwrap();
        let resp = Response::for_request(&read, vec![10, 11, 12, 13]).unwrap();
        let mut w = SnapshotWriter::new();
        save_request(&mut w, &read);
        save_request(&mut w, &write);
        save_response(&mut w, &resp);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert_eq!(load_request(&mut r).unwrap(), read);
        assert_eq!(load_request(&mut r).unwrap(), write);
        assert_eq!(load_response(&mut r).unwrap(), resp);
        r.finish().unwrap();
    }

    #[test]
    fn bad_tags_are_rejected() {
        let mut w = SnapshotWriter::new();
        w.u8(9); // no such flit kind
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(
            load_flit(&mut r),
            Err(SnapshotError::Malformed(_))
        ));
    }
}
