//! The packet header register.
//!
//! The paper's packetization builds **one header register (about 50 bits)
//! for every transaction**, with the route obtained "from MAddr after
//! LUT". This module is the bit-accurate codec for that register.
//!
//! Layout (63 bits total — "about 50" in the paper's words, the extra
//! breathing room carries the threading and sideband extensions):
//!
//! | bits    | field       | meaning                                   |
//! |---------|-------------|-------------------------------------------|
//! | 0..28   | `route`     | source route, 7 hops × 4-bit port index   |
//! | 28..31  | `hop_len`   | hops in the route (1..=7)                 |
//! | 31..37  | `src_ni`    | source NI id (response return key)        |
//! | 37..40  | `msg`       | message type (command / response code)    |
//! | 40..48  | `burst_len` | burst beats (1..=255)                     |
//! | 48..52  | `thread`    | OCP thread id                             |
//! | 52..56  | `tag`       | transaction tag                           |
//! | 56..61  | `sideband`  | interrupt + user flags                    |
//! | 61..63  | `burst_seq` | burst address sequence (incr/wrap/stream) |
//!
//! The transaction address offset is **not** in the header: it travels as
//! the first payload beat (the "address beat"), keeping the header
//! register small as in the original RTL.

use std::fmt;
use std::num::NonZeroU64;

use xpipes_ocp::{BurstSeq, MCmd, SResp, Sideband, ThreadId};
use xpipes_topology::route::{SourceRoute, MAX_HOPS};

use crate::error::XpipesError;

/// Message type carried in the header's 3-bit `msg` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgType {
    /// A request packet carrying an OCP command.
    Request(MCmd),
    /// A response packet carrying an OCP response code.
    Response(SResp),
}

impl MsgType {
    /// Encodes into the 3-bit field.
    ///
    /// # Panics
    ///
    /// Panics on `Request(Idle)` or `Response(Null)`; these cannot appear
    /// in a constructed [`Header`].
    pub fn encode(self) -> u8 {
        match self {
            MsgType::Request(MCmd::Write) => 1,
            MsgType::Request(MCmd::Read) => 2,
            MsgType::Request(MCmd::ReadEx) => 3,
            MsgType::Request(MCmd::WriteNonPost) => 4,
            MsgType::Response(SResp::Dva) => 5,
            MsgType::Response(SResp::Fail) => 6,
            MsgType::Response(SResp::Err) => 7,
            MsgType::Request(MCmd::Idle) | MsgType::Response(SResp::Null) => {
                panic!("idle/null message types are unencodable")
            }
        }
    }

    /// Decodes the 3-bit field; `None` for the reserved code 0.
    pub fn decode(bits: u8) -> Option<Self> {
        match bits & 0b111 {
            1 => Some(MsgType::Request(MCmd::Write)),
            2 => Some(MsgType::Request(MCmd::Read)),
            3 => Some(MsgType::Request(MCmd::ReadEx)),
            4 => Some(MsgType::Request(MCmd::WriteNonPost)),
            5 => Some(MsgType::Response(SResp::Dva)),
            6 => Some(MsgType::Response(SResp::Fail)),
            7 => Some(MsgType::Response(SResp::Err)),
            _ => None,
        }
    }

    /// True for request packets.
    pub fn is_request(self) -> bool {
        matches!(self, MsgType::Request(_))
    }
}

impl fmt::Display for MsgType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsgType::Request(cmd) => write!(f, "req:{cmd}"),
            MsgType::Response(resp) => write!(f, "resp:{resp}"),
        }
    }
}

/// The decoded packet header register.
///
/// Construct via [`Header::request`] or [`Header::response`], which
/// validate every field against its bit width.
///
/// # Examples
///
/// ```
/// use xpipes::header::Header;
/// use xpipes_ocp::{MCmd, ThreadId, Sideband};
/// use xpipes_topology::route::SourceRoute;
/// use xpipes_topology::PortId;
///
/// # fn main() -> Result<(), xpipes::XpipesError> {
/// let route = SourceRoute::new(vec![PortId(1), PortId(4)]).expect("valid");
/// let h = Header::request(&route, 3, MCmd::Write, 4, ThreadId(0), 9, Sideband::NONE)?;
/// let bits = h.encode();
/// assert_eq!(Header::decode(bits)?, h);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Header {
    /// Remaining source-route field (consumed by switches).
    pub route: u32,
    /// Number of hops encoded in `route`.
    pub hop_len: u8,
    /// Source NI id, the return key for responses.
    pub src_ni: u8,
    /// Message type.
    pub msg: MsgType,
    /// Burst length in beats.
    pub burst_len: u8,
    /// OCP thread.
    pub thread: ThreadId,
    /// Transaction tag.
    pub tag: u8,
    /// Sideband signals.
    pub sideband: Sideband,
    /// Burst address sequence (meaningful on requests; `Incr` otherwise).
    pub burst_seq: BurstSeq,
}

impl Header {
    /// Total header register width in bits.
    pub const TOTAL_BITS: u32 = 63;

    /// Builds a request header.
    ///
    /// # Errors
    ///
    /// * [`XpipesError::RouteTooLong`] for routes above 7 hops.
    /// * [`XpipesError::FieldOverflow`] for out-of-range fields.
    /// * [`XpipesError::Ocp`]-free by construction: `cmd` must not be
    ///   `Idle` (checked as a field overflow).
    pub fn request(
        route: &SourceRoute,
        src_ni: u8,
        cmd: MCmd,
        burst_len: u8,
        thread: ThreadId,
        tag: u8,
        sideband: Sideband,
    ) -> Result<Self, XpipesError> {
        if cmd == MCmd::Idle {
            return Err(XpipesError::FieldOverflow {
                field: "msg",
                value: 0,
                bits: 3,
            });
        }
        Self::build(
            route,
            src_ni,
            MsgType::Request(cmd),
            burst_len,
            thread,
            tag,
            sideband,
        )
    }

    /// Builds a response header.
    ///
    /// # Errors
    ///
    /// Same as [`Header::request`]; `resp` must not be `Null`.
    pub fn response(
        route: &SourceRoute,
        src_ni: u8,
        resp: SResp,
        burst_len: u8,
        thread: ThreadId,
        tag: u8,
        sideband: Sideband,
    ) -> Result<Self, XpipesError> {
        if resp == SResp::Null {
            return Err(XpipesError::FieldOverflow {
                field: "msg",
                value: 0,
                bits: 3,
            });
        }
        Self::build(
            route,
            src_ni,
            MsgType::Response(resp),
            burst_len,
            thread,
            tag,
            sideband,
        )
    }

    fn build(
        route: &SourceRoute,
        src_ni: u8,
        msg: MsgType,
        burst_len: u8,
        thread: ThreadId,
        tag: u8,
        sideband: Sideband,
    ) -> Result<Self, XpipesError> {
        if route.len() > MAX_HOPS {
            return Err(XpipesError::RouteTooLong {
                hops: route.len(),
                max: MAX_HOPS,
            });
        }
        if src_ni > 63 {
            return Err(XpipesError::FieldOverflow {
                field: "src_ni",
                value: src_ni as u64,
                bits: 6,
            });
        }
        if burst_len == 0 {
            return Err(XpipesError::FieldOverflow {
                field: "burst_len",
                value: 0,
                bits: 8,
            });
        }
        if thread.0 > 15 {
            return Err(XpipesError::FieldOverflow {
                field: "thread",
                value: thread.0 as u64,
                bits: 4,
            });
        }
        if tag > 15 {
            return Err(XpipesError::FieldOverflow {
                field: "tag",
                value: tag as u64,
                bits: 4,
            });
        }
        Ok(Header {
            route: route.encode(),
            hop_len: route.len() as u8,
            src_ni,
            msg,
            burst_len,
            thread,
            tag,
            sideband,
            burst_seq: BurstSeq::Incr,
        })
    }

    /// Sets the burst address sequence (wrap / stream bursts).
    #[must_use]
    pub fn with_burst_seq(mut self, seq: BurstSeq) -> Self {
        self.burst_seq = seq;
        self
    }

    /// Packs the header into its 63-bit register image.
    pub fn encode(&self) -> u64 {
        (self.route as u64 & 0xFFF_FFFF)
            | ((self.hop_len as u64 & 0x7) << 28)
            | ((self.src_ni as u64 & 0x3F) << 31)
            | ((self.msg.encode() as u64) << 37)
            | ((self.burst_len as u64) << 40)
            | ((self.thread.0 as u64 & 0xF) << 48)
            | ((self.tag as u64 & 0xF) << 52)
            | ((self.sideband.encode() as u64 & 0x1F) << 56)
            | ((self.burst_seq.encode() as u64 & 0x3) << 61)
    }

    /// Unpacks a 63-bit register image.
    ///
    /// # Errors
    ///
    /// [`XpipesError::ReassemblyError`] when the `msg` field holds the
    /// reserved code (a corrupted or garbage header).
    pub fn decode(bits: u64) -> Result<Self, XpipesError> {
        let msg = MsgType::decode(((bits >> 37) & 0x7) as u8)
            .ok_or(XpipesError::ReassemblyError("reserved msg code in header"))?;
        let burst_seq = BurstSeq::decode(((bits >> 61) & 0x3) as u8).ok_or(
            XpipesError::ReassemblyError("reserved burst sequence in header"),
        )?;
        Ok(Header {
            route: (bits & 0xFFF_FFFF) as u32,
            hop_len: ((bits >> 28) & 0x7) as u8,
            src_ni: ((bits >> 31) & 0x3F) as u8,
            msg,
            burst_len: ((bits >> 40) & 0xFF) as u8,
            thread: ThreadId(((bits >> 48) & 0xF) as u8),
            tag: ((bits >> 52) & 0xF) as u8,
            sideband: Sideband::decode(((bits >> 56) & 0x1F) as u8),
            burst_seq,
        })
    }

    /// Switch-side route consumption: returns the next output port and the
    /// header with the route shifted down one hop.
    #[must_use]
    pub fn consume_route(mut self) -> (u8, Header) {
        let port = (self.route & 0xF) as u8;
        self.route >>= 4;
        self.hop_len = self.hop_len.saturating_sub(1);
        (port, self)
    }

    /// Packs into the compact register image carried on head flits.
    pub fn packed(&self) -> PackedHeader {
        PackedHeader::pack(*self)
    }
}

/// The 63-bit header register image in its packed wire form.
///
/// Head flits carry this instead of the decoded [`Header`] mirror: it is
/// one word, `Copy`, and — because the `msg` field encodes to 1..=7 —
/// never zero, so `Option<PackedHeader>` costs no extra space (niche
/// optimisation). Switches route and consume hops directly on the packed
/// bits; [`PackedHeader::unpack`] recovers the decoded view when a field
/// beyond the route is needed.
///
/// # Examples
///
/// ```
/// use xpipes::header::Header;
/// use xpipes_ocp::{MCmd, ThreadId, Sideband};
/// use xpipes_topology::route::SourceRoute;
/// use xpipes_topology::PortId;
///
/// # fn main() -> Result<(), xpipes::XpipesError> {
/// let route = SourceRoute::new(vec![PortId(3), PortId(1)]).expect("valid");
/// let h = Header::request(&route, 0, MCmd::Read, 1, ThreadId(0), 0, Sideband::NONE)?;
/// let p = h.packed();
/// assert_eq!(p.next_hop(), 3);
/// assert_eq!(p.consume_route().next_hop(), 1);
/// assert_eq!(p.unpack(), h);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PackedHeader(NonZeroU64);

impl PackedHeader {
    /// Packs a decoded header. Infallible: a constructed [`Header`] always
    /// encodes to a nonzero image (its `msg` field is 1..=7).
    pub fn pack(header: Header) -> Self {
        PackedHeader(NonZeroU64::new(header.encode()).expect("msg field keeps the image nonzero"))
    }

    /// The raw 63-bit register image.
    pub fn bits(self) -> u64 {
        self.0.get()
    }

    /// Recovers the decoded header view.
    pub fn unpack(self) -> Header {
        Header::decode(self.0.get()).expect("packed header is valid by construction")
    }

    /// The output port the route's current hop selects.
    pub fn next_hop(self) -> u8 {
        (self.0.get() & 0xF) as u8
    }

    /// Remaining hops in the route.
    pub fn hop_len(self) -> u8 {
        ((self.0.get() >> 28) & 0x7) as u8
    }

    /// Route consumption on the packed bits: shifts the route down one hop
    /// and decrements `hop_len`, without a decode/re-encode round trip.
    #[must_use]
    pub fn consume_route(self) -> PackedHeader {
        let bits = self.0.get();
        let route = bits & 0xFFF_FFFF;
        let hop_len = (bits >> 28) & 0x7;
        let rest = bits & !0x7FFF_FFFF;
        let next = rest | (route >> 4) | (hop_len.saturating_sub(1) << 28);
        PackedHeader(NonZeroU64::new(next).expect("msg field keeps the image nonzero"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpipes_topology::PortId;

    fn route(hops: &[u8]) -> SourceRoute {
        SourceRoute::new(hops.iter().map(|&p| PortId(p)).collect()).unwrap()
    }

    fn sample_header() -> Header {
        Header::request(
            &route(&[3, 1, 4]),
            17,
            MCmd::Read,
            8,
            ThreadId(2),
            11,
            Sideband {
                interrupt: true,
                flags: 0b0101,
            },
        )
        .unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let h = sample_header();
        assert_eq!(Header::decode(h.encode()).unwrap(), h);
    }

    #[test]
    fn encode_fits_total_bits() {
        let h = sample_header();
        assert!(h.encode() < (1u64 << Header::TOTAL_BITS));
    }

    #[test]
    fn response_header_roundtrip() {
        let h = Header::response(
            &route(&[0, 2]),
            4,
            SResp::Dva,
            16,
            ThreadId(0),
            3,
            Sideband::NONE,
        )
        .unwrap();
        let d = Header::decode(h.encode()).unwrap();
        assert_eq!(d.msg, MsgType::Response(SResp::Dva));
        assert_eq!(d.burst_len, 16);
    }

    #[test]
    fn route_too_long_rejected() {
        let long = route(&[0; 8]);
        let err =
            Header::request(&long, 0, MCmd::Read, 1, ThreadId(0), 0, Sideband::NONE).unwrap_err();
        assert_eq!(err, XpipesError::RouteTooLong { hops: 8, max: 7 });
    }

    #[test]
    fn field_overflows_rejected() {
        let r = route(&[1]);
        assert!(Header::request(&r, 64, MCmd::Read, 1, ThreadId(0), 0, Sideband::NONE).is_err());
        assert!(Header::request(&r, 0, MCmd::Read, 0, ThreadId(0), 0, Sideband::NONE).is_err());
        assert!(Header::request(&r, 0, MCmd::Read, 1, ThreadId(16), 0, Sideband::NONE).is_err());
        assert!(Header::request(&r, 0, MCmd::Read, 1, ThreadId(0), 16, Sideband::NONE).is_err());
    }

    #[test]
    fn idle_and_null_rejected() {
        let r = route(&[1]);
        assert!(Header::request(&r, 0, MCmd::Idle, 1, ThreadId(0), 0, Sideband::NONE).is_err());
        assert!(Header::response(&r, 0, SResp::Null, 1, ThreadId(0), 0, Sideband::NONE).is_err());
    }

    #[test]
    fn consume_route_shifts() {
        let h = Header::request(
            &route(&[5, 2, 7]),
            0,
            MCmd::Write,
            1,
            ThreadId(0),
            0,
            Sideband::NONE,
        )
        .unwrap();
        let (p0, h1) = h.consume_route();
        assert_eq!(p0, 5);
        assert_eq!(h1.hop_len, 2);
        let (p1, h2) = h1.consume_route();
        assert_eq!(p1, 2);
        let (p2, h3) = h2.consume_route();
        assert_eq!(p2, 7);
        assert_eq!(h3.hop_len, 0);
        assert_eq!(h3.route, 0);
    }

    #[test]
    fn msg_type_codec() {
        for bits in 1..=7u8 {
            let m = MsgType::decode(bits).unwrap();
            assert_eq!(m.encode(), bits);
        }
        assert_eq!(MsgType::decode(0), None);
        assert!(MsgType::Request(MCmd::Read).is_request());
        assert!(!MsgType::Response(SResp::Dva).is_request());
    }

    #[test]
    #[should_panic(expected = "unencodable")]
    fn idle_msg_encode_panics() {
        MsgType::Request(MCmd::Idle).encode();
    }

    #[test]
    fn decode_rejects_reserved_msg() {
        // bits with msg field = 0
        let err = Header::decode(0).unwrap_err();
        assert!(matches!(err, XpipesError::ReassemblyError(_)));
    }

    #[test]
    fn sideband_travels() {
        let h = sample_header();
        let d = Header::decode(h.encode()).unwrap();
        assert!(d.sideband.interrupt);
        assert_eq!(d.sideband.flags, 0b0101);
    }

    #[test]
    fn packed_roundtrip_and_route_consumption() {
        let h = Header::request(
            &route(&[5, 2, 7]),
            9,
            MCmd::Write,
            4,
            ThreadId(1),
            6,
            Sideband::NONE,
        )
        .unwrap();
        let p = h.packed();
        assert_eq!(p.bits(), h.encode());
        assert_eq!(p.unpack(), h);
        assert_eq!(p.next_hop(), 5);
        assert_eq!(p.hop_len(), 3);

        // Packed consumption must match the decoded path hop by hop.
        let mut packed = p;
        let mut decoded = h;
        for _ in 0..3 {
            let (port, next) = decoded.consume_route();
            assert_eq!(packed.next_hop(), port);
            packed = packed.consume_route();
            decoded = next;
            assert_eq!(packed.unpack(), decoded);
        }
        assert_eq!(packed.hop_len(), 0);
        // Saturates at zero like the decoded path.
        assert_eq!(packed.consume_route().unpack(), decoded.consume_route().1);
    }

    #[test]
    fn display_msg() {
        assert_eq!(MsgType::Request(MCmd::Read).to_string(), "req:RD");
        assert_eq!(MsgType::Response(SResp::Err).to_string(), "resp:ERR");
    }
}
