//! Component parameterization: the knobs the paper's class templates
//! expose ("Component Optimizations: I/O Ports, Buffer Sizes").
//!
//! These configs are shared between the behavioural models (this crate)
//! and the synthesis-estimation netlist generators (`xpipes-synth`), so a
//! simulated component and its area/power/timing report always describe
//! the same hardware.

use xpipes_topology::spec::Arbitration;

use crate::error::XpipesError;

/// Validates a flit width against the supported range.
///
/// # Errors
///
/// [`XpipesError::BadFlitWidth`] outside `8..=128`.
pub fn check_flit_width(bits: u32) -> Result<u32, XpipesError> {
    if (8..=128).contains(&bits) {
        Ok(bits)
    } else {
        Err(XpipesError::BadFlitWidth(bits))
    }
}

/// Parameters of one switch instance.
///
/// # Examples
///
/// ```
/// use xpipes::SwitchConfig;
///
/// let cfg = SwitchConfig::new(4, 4, 32); // the paper's 1 GHz 4x4 switch
/// assert_eq!(cfg.inputs, 4);
/// assert_eq!(cfg.output_queue_depth, 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchConfig {
    /// Number of input ports.
    pub inputs: usize,
    /// Number of output ports.
    pub outputs: usize,
    /// Flit width in bits.
    pub flit_width: u32,
    /// Output queue depth in flits.
    pub output_queue_depth: usize,
    /// Arbitration policy.
    pub arbitration: Arbitration,
    /// Depth of the attached links' pipelines, which sizes the ACK/nACK
    /// retransmission buffers (2·depth + 2).
    pub link_pipeline: u32,
    /// ACK timeout in transmit cycles: with a non-empty window and a
    /// silent reverse channel for this long, the sender rewinds and
    /// resends the whole window. `None` disables the timeout (a lossless
    /// reverse channel never needs it).
    pub ack_timeout: Option<u64>,
}

impl SwitchConfig {
    /// Creates a switch config with paper-default buffering (6-flit output
    /// queues, round-robin arbitration, single-stage links).
    pub fn new(inputs: usize, outputs: usize, flit_width: u32) -> Self {
        SwitchConfig {
            inputs,
            outputs,
            flit_width,
            output_queue_depth: 6,
            arbitration: Arbitration::RoundRobin,
            link_pipeline: 1,
            ack_timeout: None,
        }
    }

    /// Retransmission buffer depth required by the ACK/nACK protocol to
    /// keep the link busy: one flit per in-flight slot on the forward and
    /// reverse pipes, plus two for the endpoint registers.
    pub fn retransmit_depth(&self) -> usize {
        (2 * self.link_pipeline + 2) as usize
    }
}

/// Parameters of one network interface instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NiConfig {
    /// Flit width in bits.
    pub flit_width: u32,
    /// OCP data width in bits (the payload register size).
    pub data_width: u32,
    /// Number of LUT entries (reachable destinations).
    pub lut_entries: usize,
    /// Maximum supported burst length in beats.
    pub max_burst: u32,
    /// Depth of the attached link's pipeline.
    pub link_pipeline: u32,
    /// ACK timeout in transmit cycles (see [`SwitchConfig::ack_timeout`]).
    pub ack_timeout: Option<u64>,
}

impl NiConfig {
    /// Creates an NI config with the paper's defaults: 32-bit OCP data,
    /// 8 LUT entries, bursts up to 255 beats.
    pub fn new(flit_width: u32) -> Self {
        NiConfig {
            flit_width,
            data_width: 32,
            lut_entries: 8,
            max_burst: 255,
            link_pipeline: 1,
            ack_timeout: None,
        }
    }

    /// Flits needed to carry one packet header.
    pub fn header_flits(&self) -> u32 {
        crate::header::Header::TOTAL_BITS.div_ceil(self.flit_width)
    }

    /// Flits needed to carry one payload beat.
    pub fn payload_flits_per_beat(&self) -> u32 {
        self.data_width.div_ceil(self.flit_width)
    }
}

/// Parameters of one link instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Pipeline depth in cycles (paper: links are pipelined for speed).
    pub stages: u32,
    /// Per-traversal flit corruption probability (exercises ACK/nACK).
    pub error_rate: f64,
}

impl LinkConfig {
    /// A single-stage, error-free link.
    pub fn new(stages: u32) -> Self {
        LinkConfig {
            stages: stages.max(1),
            error_rate: 0.0,
        }
    }

    /// Same link with an error rate.
    #[must_use]
    pub fn with_error_rate(mut self, rate: f64) -> Self {
        self.error_rate = rate.clamp(0.0, 1.0);
        self
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_width_bounds() {
        assert!(check_flit_width(8).is_ok());
        assert!(check_flit_width(128).is_ok());
        assert_eq!(check_flit_width(7), Err(XpipesError::BadFlitWidth(7)));
        assert_eq!(check_flit_width(129), Err(XpipesError::BadFlitWidth(129)));
    }

    #[test]
    fn switch_defaults() {
        let cfg = SwitchConfig::new(6, 4, 64);
        assert_eq!(cfg.output_queue_depth, 6);
        assert_eq!(cfg.arbitration, Arbitration::RoundRobin);
        assert_eq!(cfg.retransmit_depth(), 4); // 2*1+2
    }

    #[test]
    fn retransmit_depth_scales_with_pipeline() {
        let mut cfg = SwitchConfig::new(4, 4, 32);
        cfg.link_pipeline = 3;
        assert_eq!(cfg.retransmit_depth(), 8);
    }

    #[test]
    fn ni_flit_decomposition() {
        let ni16 = NiConfig::new(16);
        let ni32 = NiConfig::new(32);
        let ni128 = NiConfig::new(128);
        // 63-bit header (see header module): 4 / 2 / 1 flits.
        assert_eq!(ni16.header_flits(), 4);
        assert_eq!(ni32.header_flits(), 2);
        assert_eq!(ni128.header_flits(), 1);
        // 32-bit payload register: 2 / 1 / 1 flits per beat.
        assert_eq!(ni16.payload_flits_per_beat(), 2);
        assert_eq!(ni32.payload_flits_per_beat(), 1);
        assert_eq!(ni128.payload_flits_per_beat(), 1);
    }

    #[test]
    fn link_clamps() {
        assert_eq!(LinkConfig::new(0).stages, 1);
        assert_eq!(LinkConfig::new(2).with_error_rate(2.0).error_rate, 1.0);
        assert_eq!(LinkConfig::default().stages, 1);
    }
}
