//! Error type of the xpipes component library.

use std::error::Error;
use std::fmt;

use xpipes_ocp::OcpError;
use xpipes_topology::spec::SpecError;
use xpipes_topology::{NiId, TopologyError};

/// Errors raised by xpipes component construction and operation.
#[derive(Debug, Clone, PartialEq)]
pub enum XpipesError {
    /// A route does not fit the header's 7-hop route field.
    RouteTooLong { hops: usize, max: usize },
    /// A header field exceeded its bit width.
    FieldOverflow {
        field: &'static str,
        value: u64,
        bits: u32,
    },
    /// Flit width outside the supported 8..=128 range.
    BadFlitWidth(u32),
    /// Operation referenced an NI the network does not contain.
    UnknownNi(NiId),
    /// Operation addressed an NI of the wrong kind (e.g. submitting a
    /// request to a target NI).
    WrongNiKind(NiId),
    /// A transaction address decoded to no target window.
    UnmappedAddress(u64),
    /// Packet reassembly saw flits out of order.
    ReassemblyError(&'static str),
    /// Underlying OCP protocol error.
    Ocp(OcpError),
    /// Underlying topology error.
    Topology(TopologyError),
    /// Underlying specification error.
    Spec(SpecError),
    /// A checkpoint could not be decoded or restored.
    Snapshot(xpipes_sim::SnapshotError),
}

impl fmt::Display for XpipesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XpipesError::RouteTooLong { hops, max } => {
                write!(f, "route of {hops} hops exceeds the {max}-hop header field")
            }
            XpipesError::FieldOverflow { field, value, bits } => {
                write!(f, "header field {field} value {value} exceeds {bits} bits")
            }
            XpipesError::BadFlitWidth(w) => write!(f, "flit width {w} outside 8..=128"),
            XpipesError::UnknownNi(ni) => write!(f, "unknown NI {ni}"),
            XpipesError::WrongNiKind(ni) => write!(f, "NI {ni} has the wrong kind"),
            XpipesError::UnmappedAddress(a) => write!(f, "address {a:#x} maps to no target"),
            XpipesError::ReassemblyError(why) => write!(f, "packet reassembly failed: {why}"),
            XpipesError::Ocp(e) => write!(f, "ocp error: {e}"),
            XpipesError::Topology(e) => write!(f, "topology error: {e}"),
            XpipesError::Spec(e) => write!(f, "spec error: {e}"),
            XpipesError::Snapshot(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl Error for XpipesError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            XpipesError::Ocp(e) => Some(e),
            XpipesError::Topology(e) => Some(e),
            XpipesError::Spec(e) => Some(e),
            XpipesError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OcpError> for XpipesError {
    fn from(e: OcpError) -> Self {
        XpipesError::Ocp(e)
    }
}

impl From<TopologyError> for XpipesError {
    fn from(e: TopologyError) -> Self {
        XpipesError::Topology(e)
    }
}

impl From<SpecError> for XpipesError {
    fn from(e: SpecError) -> Self {
        XpipesError::Spec(e)
    }
}

impl From<xpipes_sim::SnapshotError> for XpipesError {
    fn from(e: xpipes_sim::SnapshotError) -> Self {
        XpipesError::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(XpipesError::RouteTooLong { hops: 9, max: 7 }
            .to_string()
            .contains("9 hops"));
        assert!(XpipesError::UnmappedAddress(0x40)
            .to_string()
            .contains("0x40"));
        assert!(XpipesError::BadFlitWidth(4).to_string().contains('4'));
    }

    #[test]
    fn from_ocp_sets_source() {
        let e: XpipesError = OcpError::BadBurstLength(0).into();
        assert!(e.source().is_some());
        assert!(matches!(e, XpipesError::Ocp(_)));
    }

    #[test]
    fn from_topology() {
        let e: XpipesError = TopologyError::EmptyDimension.into();
        assert!(matches!(e, XpipesError::Topology(_)));
    }
}
