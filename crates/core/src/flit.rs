//! Flits: the atomic units that traverse links and switches.
//!
//! Packet registers (header, payload beats) are decomposed into flits of
//! the configured link width — the paper's "flit decomposition". A flit
//! carries its raw bits plus, on head flits, a behavioural mirror of the
//! decoded header so switches can route without re-assembling multi-flit
//! headers (the RTL equivalent is the header register travelling alongside
//! the first flit through the switch pipeline).

use std::fmt;

use xpipes_sim::Cycle;

use crate::header::{Header, PackedHeader};

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit of a multi-flit packet; carries the routing header.
    Header,
    /// Interior flit.
    Body,
    /// Final flit; releases wormhole locks.
    Tail,
    /// Sole flit of a single-flit packet (header and tail at once).
    Single,
}

impl FlitKind {
    /// True for flits that open a packet (carry routing information).
    pub const fn is_head(self) -> bool {
        matches!(self, FlitKind::Header | FlitKind::Single)
    }

    /// True for flits that close a packet (release wormhole locks).
    pub const fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::Single)
    }
}

impl fmt::Display for FlitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FlitKind::Header => "H",
            FlitKind::Body => "B",
            FlitKind::Tail => "T",
            FlitKind::Single => "S",
        })
    }
}

/// Simulation-only bookkeeping carried with every flit (the SystemC model
/// kept an equivalent transaction pointer; none of this is synthesized).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlitMeta {
    /// Unique packet identifier for reassembly checks and statistics.
    pub packet_id: u64,
    /// Cycle at which the packet entered the source NI.
    pub injected_at: Cycle,
    /// Source NI id.
    pub src_ni: u8,
}

impl FlitMeta {
    /// Creates metadata for a packet injected now.
    pub fn new(packet_id: u64, injected_at: Cycle, src_ni: u8) -> Self {
        FlitMeta {
            packet_id,
            injected_at,
            src_ni,
        }
    }
}

/// One flit: `width` bits of raw data plus kind and bookkeeping.
///
/// # Examples
///
/// ```
/// use xpipes::{Flit, FlitKind, FlitMeta};
/// use xpipes_sim::Cycle;
///
/// let flit = Flit::new(FlitKind::Single, 0xAB, FlitMeta::new(1, Cycle::ZERO, 0));
/// assert!(flit.kind.is_head() && flit.kind.is_tail());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Position within the packet.
    pub kind: FlitKind,
    /// Raw flit bits (up to 128).
    pub bits: u128,
    /// Packed header mirror; present on head flits only. The packed form
    /// keeps `Flit` a compact `Copy` value; see [`PackedHeader`].
    pub header: Option<PackedHeader>,
    /// Simulation bookkeeping.
    pub meta: FlitMeta,
}

impl Flit {
    /// Creates a flit without a header mirror.
    pub fn new(kind: FlitKind, bits: u128, meta: FlitMeta) -> Self {
        Flit {
            kind,
            bits,
            header: None,
            meta,
        }
    }

    /// Creates a head flit carrying the header mirror (packed on board).
    pub fn head(kind: FlitKind, bits: u128, header: Header, meta: FlitMeta) -> Self {
        debug_assert!(kind.is_head(), "header mirror belongs on head flits");
        Flit {
            kind,
            bits,
            header: Some(header.packed()),
            meta,
        }
    }

    /// Decoded view of the header mirror, when present.
    pub fn decoded_header(&self) -> Option<Header> {
        self.header.map(PackedHeader::unpack)
    }

    /// Masks `bits` to `width` bits (models the physical wire width).
    #[must_use]
    pub fn masked(mut self, width: u32) -> Self {
        self.bits &= mask(width);
        self
    }
}

/// All-ones mask of `width` bits (width ≤ 128).
pub fn mask(width: u32) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(FlitKind::Header.is_head());
        assert!(!FlitKind::Header.is_tail());
        assert!(FlitKind::Tail.is_tail());
        assert!(!FlitKind::Tail.is_head());
        assert!(!FlitKind::Body.is_head() && !FlitKind::Body.is_tail());
        assert!(FlitKind::Single.is_head() && FlitKind::Single.is_tail());
    }

    #[test]
    fn kind_display() {
        assert_eq!(FlitKind::Header.to_string(), "H");
        assert_eq!(FlitKind::Single.to_string(), "S");
    }

    #[test]
    fn mask_widths() {
        assert_eq!(mask(1), 1);
        assert_eq!(mask(8), 0xFF);
        assert_eq!(mask(64), u64::MAX as u128);
        assert_eq!(mask(128), u128::MAX);
    }

    #[test]
    fn masked_truncates() {
        let meta = FlitMeta::new(0, Cycle::ZERO, 0);
        let f = Flit::new(FlitKind::Body, 0x1FF, meta).masked(8);
        assert_eq!(f.bits, 0xFF);
    }

    #[test]
    fn meta_construction() {
        let m = FlitMeta::new(7, Cycle::new(3), 2);
        assert_eq!(m.packet_id, 7);
        assert_eq!(m.injected_at, Cycle::new(3));
        assert_eq!(m.src_ni, 2);
    }
}
