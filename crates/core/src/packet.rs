//! Packets and their flit decomposition.
//!
//! A packet is one transaction's worth of registers: the header register,
//! an address beat for requests, and one payload register per burst beat.
//! [`packetize`] decomposes these registers into flits of the configured
//! width; [`depacketize`] is the exact inverse, used by the receiving NI.

use xpipes_sim::Cycle;

use crate::error::XpipesError;
use crate::flit::{mask, Flit, FlitKind, FlitMeta};
use crate::header::Header;

/// A whole packet: header + optional address beat + payload beats.
///
/// # Examples
///
/// ```
/// use xpipes::packet::{Packet, packetize, depacketize};
/// use xpipes::header::Header;
/// use xpipes_ocp::{MCmd, ThreadId, Sideband};
/// use xpipes_topology::route::SourceRoute;
/// use xpipes_topology::PortId;
/// use xpipes_sim::Cycle;
///
/// # fn main() -> Result<(), xpipes::XpipesError> {
/// let route = SourceRoute::new(vec![PortId(0)]).expect("valid");
/// let header = Header::request(&route, 0, MCmd::Write, 2, ThreadId(0), 0, Sideband::NONE)?;
/// let packet = Packet::new(1, header, Some(0x40), vec![0xAAAA, 0x5555]);
/// let flits = packetize(&packet, 32, 32, Cycle::ZERO)?;
/// let back = depacketize(&flits, 32, 32)?;
/// assert_eq!(back, packet);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Unique packet id (simulation bookkeeping).
    pub id: u64,
    /// The header register.
    pub header: Header,
    /// Address beat: present on request packets, absent on responses.
    pub addr: Option<u64>,
    /// Payload beats (write data or read-response data).
    pub payload: Vec<u64>,
}

impl Packet {
    /// Creates a packet.
    pub fn new(id: u64, header: Header, addr: Option<u64>, payload: Vec<u64>) -> Self {
        Packet {
            id,
            header,
            addr,
            payload,
        }
    }

    /// Number of beats the packet carries (address + payload).
    pub fn beat_count(&self) -> usize {
        self.addr.is_some() as usize + self.payload.len()
    }

    /// Number of flits the packet occupies at the given widths.
    pub fn flit_count(&self, flit_width: u32, data_width: u32) -> usize {
        let header_flits = Header::TOTAL_BITS.div_ceil(flit_width) as usize;
        let beat_flits = data_width.div_ceil(flit_width) as usize;
        header_flits + self.beat_count() * beat_flits
    }
}

/// Decomposes a packet into flits of `flit_width` bits with `data_width`-
/// bit beat registers.
///
/// # Errors
///
/// * [`XpipesError::BadFlitWidth`] for unsupported widths.
/// * [`XpipesError::FieldOverflow`] when a beat value (or the address)
///   does not fit `data_width` bits.
pub fn packetize(
    packet: &Packet,
    flit_width: u32,
    data_width: u32,
    now: Cycle,
) -> Result<Vec<Flit>, XpipesError> {
    crate::config::check_flit_width(flit_width)?;
    if !(8..=64).contains(&data_width) {
        return Err(XpipesError::BadFlitWidth(data_width));
    }
    let meta = FlitMeta::new(packet.id, now, packet.header.src_ni);
    let total = packet.flit_count(flit_width, data_width);
    let mut flits = Vec::with_capacity(total);

    // Header register decomposition, least-significant chunk first.
    let hbits = packet.header.encode();
    let header_flits = Header::TOTAL_BITS.div_ceil(flit_width);
    for i in 0..header_flits {
        let chunk = ((hbits as u128) >> (i * flit_width)) & mask(flit_width);
        flits.push(Flit::new(FlitKind::Body, chunk, meta));
    }

    // Beat registers: address beat (requests) then payload beats.
    let beats: Vec<u64> = packet
        .addr
        .into_iter()
        .chain(packet.payload.iter().copied())
        .collect();
    let beat_flits = data_width.div_ceil(flit_width);
    for &beat in &beats {
        if data_width < 64 && beat >= (1u64 << data_width) {
            return Err(XpipesError::FieldOverflow {
                field: "beat",
                value: beat,
                bits: data_width,
            });
        }
        for i in 0..beat_flits {
            let chunk = ((beat as u128) >> (i * flit_width)) & mask(flit_width);
            flits.push(Flit::new(FlitKind::Body, chunk, meta));
        }
    }

    // Assign kinds now that the total is known, and mirror the header on
    // the head flit.
    let last = flits.len() - 1;
    if flits.len() == 1 {
        flits[0].kind = FlitKind::Single;
    } else {
        flits[0].kind = FlitKind::Header;
        flits[last].kind = FlitKind::Tail;
    }
    flits[0].header = Some(packet.header.packed());
    Ok(flits)
}

/// Reassembles a packet from its flits. Inverse of [`packetize`].
///
/// # Errors
///
/// * [`XpipesError::ReassemblyError`] for malformed flit sequences
///   (wrong kinds, wrong count, corrupt header bits).
/// * [`XpipesError::BadFlitWidth`] for unsupported widths.
pub fn depacketize(
    flits: &[Flit],
    flit_width: u32,
    data_width: u32,
) -> Result<Packet, XpipesError> {
    crate::config::check_flit_width(flit_width)?;
    let first = flits
        .first()
        .ok_or(XpipesError::ReassemblyError("empty flit sequence"))?;
    if !first.kind.is_head() {
        return Err(XpipesError::ReassemblyError(
            "sequence does not start with a head flit",
        ));
    }
    let last = flits.last().expect("nonempty");
    if !last.kind.is_tail() {
        return Err(XpipesError::ReassemblyError(
            "sequence does not end with a tail flit",
        ));
    }
    if flits.len() == 1 && first.kind != FlitKind::Single {
        return Err(XpipesError::ReassemblyError(
            "single flit must be kind Single",
        ));
    }
    if flits.len() >= 2 {
        for f in &flits[1..flits.len() - 1] {
            if f.kind != FlitKind::Body {
                return Err(XpipesError::ReassemblyError("interior flit not Body"));
            }
        }
    }

    // Header register.
    let header_flits = Header::TOTAL_BITS.div_ceil(flit_width) as usize;
    if flits.len() < header_flits {
        return Err(XpipesError::ReassemblyError(
            "fewer flits than the header needs",
        ));
    }
    let mut hbits: u128 = 0;
    for (i, f) in flits[..header_flits].iter().enumerate() {
        hbits |= (f.bits & mask(flit_width)) << (i as u32 * flit_width);
    }
    let header = Header::decode((hbits as u64) & ((1u64 << Header::TOTAL_BITS) - 1))?;

    // Beat registers.
    let beat_flits = data_width.div_ceil(flit_width) as usize;
    let rest = &flits[header_flits..];
    if !rest.len().is_multiple_of(beat_flits) {
        return Err(XpipesError::ReassemblyError(
            "payload flit count not beat-aligned",
        ));
    }
    let mut beats = Vec::with_capacity(rest.len() / beat_flits);
    for chunk in rest.chunks(beat_flits) {
        let mut beat: u128 = 0;
        for (i, f) in chunk.iter().enumerate() {
            beat |= (f.bits & mask(flit_width)) << (i as u32 * flit_width);
        }
        beats.push((beat & mask(data_width)) as u64);
    }

    let (addr, payload) = if header.msg.is_request() {
        if beats.is_empty() {
            return Err(XpipesError::ReassemblyError(
                "request packet missing address beat",
            ));
        }
        (Some(beats[0]), beats[1..].to_vec())
    } else {
        (None, beats)
    };
    Ok(Packet {
        id: first.meta.packet_id,
        header,
        addr,
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpipes_ocp::{MCmd, SResp, Sideband, ThreadId};
    use xpipes_topology::route::SourceRoute;
    use xpipes_topology::PortId;

    fn req_header(burst: u8, cmd: MCmd) -> Header {
        let route = SourceRoute::new(vec![PortId(1), PortId(2)]).unwrap();
        Header::request(&route, 5, cmd, burst, ThreadId(1), 3, Sideband::NONE).unwrap()
    }

    fn resp_header(burst: u8) -> Header {
        let route = SourceRoute::new(vec![PortId(0)]).unwrap();
        Header::response(&route, 5, SResp::Dva, burst, ThreadId(1), 3, Sideband::NONE).unwrap()
    }

    #[test]
    fn write_packet_roundtrip_all_widths() {
        for flit_width in [16, 32, 64, 128] {
            let p = Packet::new(
                9,
                req_header(3, MCmd::Write),
                Some(0x1234),
                vec![0xDEAD_BEEF, 0x0BAD_F00D, 0x1234_5678],
            );
            let flits = packetize(&p, flit_width, 32, Cycle::ZERO).unwrap();
            assert_eq!(flits.len(), p.flit_count(flit_width, 32));
            let back = depacketize(&flits, flit_width, 32).unwrap();
            assert_eq!(back, p, "width {flit_width}");
        }
    }

    #[test]
    fn read_request_is_header_plus_address() {
        let p = Packet::new(1, req_header(8, MCmd::Read), Some(0x80), vec![]);
        let flits = packetize(&p, 32, 32, Cycle::ZERO).unwrap();
        // 63-bit header → 2 flits at W=32, + 1 address flit.
        assert_eq!(flits.len(), 3);
        let back = depacketize(&flits, 32, 32).unwrap();
        assert_eq!(back.addr, Some(0x80));
        assert!(back.payload.is_empty());
        assert_eq!(back.header.burst_len, 8);
    }

    #[test]
    fn response_packet_has_no_address_beat() {
        let p = Packet::new(2, resp_header(2), None, vec![7, 8]);
        let flits = packetize(&p, 64, 32, Cycle::ZERO).unwrap();
        // 1 header flit + 2 beats.
        assert_eq!(flits.len(), 3);
        let back = depacketize(&flits, 64, 32).unwrap();
        assert_eq!(back.addr, None);
        assert_eq!(back.payload, vec![7, 8]);
    }

    #[test]
    fn single_flit_packet_at_wide_width() {
        // 128-bit flit holds the whole 63-bit header of a data-less
        // response in one Single flit.
        let p = Packet::new(3, resp_header(1), None, vec![]);
        let flits = packetize(&p, 128, 32, Cycle::ZERO).unwrap();
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::Single);
        let back = depacketize(&flits, 128, 32).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn kinds_are_well_formed() {
        let p = Packet::new(4, req_header(2, MCmd::Write), Some(0), vec![1, 2]);
        let flits = packetize(&p, 16, 32, Cycle::ZERO).unwrap();
        assert_eq!(flits[0].kind, FlitKind::Header);
        assert_eq!(*flits.last().map(|f| &f.kind).unwrap(), FlitKind::Tail);
        assert!(flits[1..flits.len() - 1]
            .iter()
            .all(|f| f.kind == FlitKind::Body));
        assert!(flits[0].header.is_some());
        assert!(flits[1..].iter().all(|f| f.header.is_none()));
    }

    #[test]
    fn beat_overflow_rejected() {
        let p = Packet::new(5, req_header(1, MCmd::Write), Some(0), vec![1u64 << 33]);
        let err = packetize(&p, 32, 32, Cycle::ZERO).unwrap_err();
        assert!(matches!(
            err,
            XpipesError::FieldOverflow { field: "beat", .. }
        ));
    }

    #[test]
    fn bad_widths_rejected() {
        let p = Packet::new(6, resp_header(1), None, vec![]);
        assert!(packetize(&p, 4, 32, Cycle::ZERO).is_err());
        assert!(packetize(&p, 32, 4, Cycle::ZERO).is_err());
        assert!(depacketize(&[], 4, 32).is_err());
    }

    #[test]
    fn empty_sequence_rejected() {
        let err = depacketize(&[], 32, 32).unwrap_err();
        assert!(matches!(err, XpipesError::ReassemblyError(_)));
    }

    #[test]
    fn malformed_sequences_rejected() {
        let p = Packet::new(7, req_header(1, MCmd::Write), Some(0), vec![1]);
        let flits = packetize(&p, 32, 32, Cycle::ZERO).unwrap();

        // Truncated (no tail).
        let cut = &flits[..flits.len() - 1];
        assert!(depacketize(cut, 32, 32).is_err());

        // Starts mid-packet.
        assert!(depacketize(&flits[1..], 32, 32).is_err());

        // Interior flit with a head kind.
        let mut bad = flits.clone();
        bad[1].kind = FlitKind::Header;
        assert!(depacketize(&bad, 32, 32).is_err());
    }

    #[test]
    fn misaligned_payload_rejected() {
        let p = Packet::new(8, req_header(1, MCmd::Write), Some(0), vec![1]);
        let mut flits = packetize(&p, 16, 32, Cycle::ZERO).unwrap();
        // Remove one interior flit: payload is no longer beat-aligned.
        let fixed_last = flits.len() - 1;
        flits.remove(fixed_last - 1);
        let err = depacketize(&flits, 16, 32).unwrap_err();
        assert!(matches!(err, XpipesError::ReassemblyError(_)));
    }

    #[test]
    fn meta_propagates() {
        let p = Packet::new(42, req_header(1, MCmd::Write), Some(0), vec![1]);
        let flits = packetize(&p, 32, 32, Cycle::new(17)).unwrap();
        for f in &flits {
            assert_eq!(f.meta.packet_id, 42);
            assert_eq!(f.meta.injected_at, Cycle::new(17));
            assert_eq!(f.meta.src_ni, 5);
        }
    }

    #[test]
    fn flit_count_matches_formula() {
        let p = Packet::new(1, req_header(4, MCmd::Write), Some(0), vec![0; 4]);
        // W=16: header 4 flits + 5 beats x 2 = 14.
        assert_eq!(p.flit_count(16, 32), 14);
        // W=32: 2 + 5 = 7.
        assert_eq!(p.flit_count(32, 32), 7);
        // W=128: 1 + 5 = 6.
        assert_eq!(p.flit_count(128, 32), 6);
        assert_eq!(p.beat_count(), 5);
    }
}
