//! # xpipes — the xpipes Lite NoC design library
//!
//! A Rust reproduction of **"xpipes Lite: A Synthesis Oriented Design
//! Library for Networks on Chips"** (Stergiou et al., DATE 2005): a
//! high-performance, highly parameterizable library of NoC components —
//! network interfaces, switches and pipelined links — plus the glue to
//! assemble and simulate complete application-specific networks.
//!
//! ## Components (one module per paper component)
//!
//! * [`flit`] / [`header`] / [`packet`] — the network protocol: a ~50-bit
//!   header register per transaction and one payload register per burst
//!   beat, decomposed into flits of the configured width.
//! * [`arbiter`] — fixed-priority and round-robin switch arbitration.
//! * [`flow_control`] — **ACK/nACK go-back-N** retransmission designed for
//!   pipelined, unreliable links.
//! * [`link`] — configurable-depth pipelined links with error injection.
//! * [`switch`] — the **2-stage pipelined, output-queued wormhole switch**
//!   with source-based routing.
//! * [`ni`] — OCP-fronted initiator and target network interfaces with
//!   routing LUTs and burst-efficient packetization.
//! * [`noc`] — whole-network assembly from a
//!   [`NocSpec`](xpipes_topology::NocSpec) and cycle-accurate simulation.
//! * [`monitor`] — online protocol invariant checkers (exactly-once
//!   in-order delivery, sequence aliasing, liveness, flit conservation)
//!   for fault-injection campaigns.
//!
//! ## Quick start
//!
//! ```
//! use xpipes_topology::builders::mesh;
//! use xpipes_topology::NocSpec;
//! use xpipes::noc::Noc;
//! use xpipes_ocp::Request;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Describe a 2x2 mesh with one CPU and one memory.
//! let mut b = mesh(2, 2)?;
//! let cpu = b.attach_initiator("cpu", (0, 0))?;
//! let mem = b.attach_target("mem", (1, 1))?;
//! let mut spec = NocSpec::new("demo", b.into_topology());
//! spec.map_address(mem, 0x0, 0x10000)?;
//!
//! // Instantiate and run.
//! let mut noc = Noc::new(&spec)?;
//! noc.submit(cpu, Request::write(0x100, vec![42])?)?;
//! noc.run(200);
//! assert_eq!(noc.stats().packets_delivered, 1);
//! # Ok(())
//! # }
//! ```

pub mod arbiter;
pub mod config;
pub mod error;
pub mod flit;
pub mod flow_control;
pub mod header;
pub mod link;
pub mod monitor;
pub mod ni;
pub mod noc;
pub mod packet;
pub(crate) mod snap;
pub mod switch;

pub use arbiter::Arbiter;
pub use config::{LinkConfig, NiConfig, SwitchConfig};
pub use error::XpipesError;
pub use flit::{Flit, FlitKind, FlitMeta};
pub use header::Header;
pub use monitor::{InvariantKind, InvariantViolation, MonitorConfig, ProtocolMonitor};
pub use noc::{Noc, NocStats};
pub use packet::Packet;
