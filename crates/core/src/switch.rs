//! The xpipes Lite switch: 2-stage pipelined, output-queued, wormhole,
//! source-routed, with ACK/nACK flow & error control on every port.
//!
//! Pipeline structure (the paper's "2-stage pipelined" redesign, down from
//! 7 stages in the first-generation xpipes switch):
//!
//! * **Stage 1** — input register + route decode: the head flit's source
//!   route is consumed (low 4 bits select the output port, the rest shifts
//!   down) and the input requests that output from the allocator.
//! * **Stage 2** — arbitration + crossbar traversal into the output queue,
//!   whose head feeds the link through the ACK/nACK sender.
//!
//! Wormhole switching: a granted head flit locks its input→output pairing
//! until the tail flit passes, so packets never interleave on a link.
//!
//! The per-cycle protocol is split into three phases the network assembly
//! drives in order: [`transmit`](Switch::transmit) (stage 2 output side),
//! [`crossbar`](Switch::crossbar) (stage 2 allocation), and
//! [`receive`](Switch::receive) (stage 1 input side). Phase ordering makes
//! the model cycle-faithful: a flit needs one cycle in the input register
//! and one in the output queue — two pipeline stages.

use std::collections::VecDeque;

use xpipes_sim::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::arbiter::Arbiter;
use crate::config::SwitchConfig;
use crate::flit::Flit;
use crate::flow_control::{AckNack, LinkFlit, LinkRx, LinkTx};
use crate::snap;

#[derive(Debug, Clone)]
struct InputPort {
    rx: LinkRx,
    /// Extra pipeline shift register (empty for xpipes Lite; 5 slots model
    /// the legacy 7-stage first-generation switch for comparison benches).
    /// Flits enter at the back and advance one slot per cycle.
    delay: VecDeque<Option<Flit>>,
    /// Stage-1 input register.
    reg: Option<Flit>,
    /// Output port the current packet is locked to (wormhole state).
    route_port: Option<usize>,
}

impl InputPort {
    /// True when a newly arriving flit can be stored this cycle.
    fn can_accept(&self) -> bool {
        if self.delay.is_empty() {
            self.reg.is_none()
        } else {
            matches!(self.delay.back(), Some(None))
        }
    }

    /// Stores a delivered flit (entry stage of the input pipeline).
    fn store(&mut self, flit: Flit) {
        if self.delay.is_empty() {
            debug_assert!(self.reg.is_none());
            self.reg = Some(flit);
        } else {
            let back = self.delay.back_mut().expect("nonempty delay line");
            debug_assert!(back.is_none());
            *back = Some(flit);
        }
    }

    /// Advances the extra pipeline one cycle (stalling when the register
    /// is occupied and a flit is waiting at the front).
    fn advance_delay(&mut self) {
        if self.delay.is_empty() {
            return;
        }
        if self.reg.is_none() {
            if let Some(front) = self.delay.pop_front() {
                self.reg = front;
                self.delay.push_back(None);
            }
        } else if matches!(self.delay.front(), Some(None)) {
            self.delay.pop_front();
            self.delay.push_back(None);
        }
    }
}

#[derive(Debug, Clone)]
struct OutputPort {
    queue: VecDeque<Flit>,
    tx: LinkTx,
    /// Remaining forced-stall cycles (transient backpressure fault model).
    stall: u64,
}

/// Cumulative switch statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwitchStats {
    /// Flits moved through the crossbar.
    pub flits_routed: u64,
    /// Packets (head flits) routed.
    pub packets_routed: u64,
    /// Cycles in which an input requested an output but lost arbitration
    /// or found the queue full.
    pub contention_stalls: u64,
    /// Flits retransmitted by this switch's output ports.
    pub retransmissions: u64,
    /// ACK timeouts fired by this switch's output ports.
    pub ack_timeouts: u64,
    /// Cycles an output port spent in an injected transient stall.
    pub stalled_cycles: u64,
    /// Highest output-queue occupancy observed (flits), for buffer-sizing
    /// studies.
    pub max_queue_depth: usize,
}

/// One switch instance.
///
/// # Examples
///
/// Standalone routing of a single-flit packet from input 0 to output 1:
///
/// ```
/// use xpipes::switch::Switch;
/// use xpipes::config::SwitchConfig;
/// use xpipes::header::Header;
/// use xpipes::{Flit, FlitKind, FlitMeta};
/// use xpipes::flow_control::LinkFlit;
/// use xpipes_ocp::{MCmd, ThreadId, Sideband};
/// use xpipes_topology::route::SourceRoute;
/// use xpipes_topology::PortId;
/// use xpipes_sim::Cycle;
///
/// # fn main() -> Result<(), xpipes::XpipesError> {
/// let mut sw = Switch::new(SwitchConfig::new(2, 2, 32));
/// let route = SourceRoute::new(vec![PortId(1)]).expect("valid");
/// let header = Header::request(&route, 0, MCmd::Read, 1, ThreadId(0), 0, Sideband::NONE)?;
/// let flit = Flit::head(FlitKind::Single, 0, header, FlitMeta::new(0, Cycle::ZERO, 0));
///
/// sw.receive(0, Some(LinkFlit { flit, seq: 0, corrupted: false }));
/// sw.crossbar();                       // stage 2: into output queue 1
/// let out = sw.transmit(1, None);      // stage 2: onto the link
/// assert!(out.is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Switch {
    config: SwitchConfig,
    inputs: Vec<InputPort>,
    outputs: Vec<OutputPort>,
    arbiters: Vec<Arbiter>,
    /// Per output: input holding the wormhole lock.
    locks: Vec<Option<usize>>,
    /// Crossbar scratch (length = inputs): requested output per input.
    /// Reused every cycle so allocation stays off the hot path.
    requested: Vec<Option<usize>>,
    /// Crossbar scratch (length = inputs): request lines of one output.
    requests: Vec<bool>,
    stats: SwitchStats,
    /// When set, `(output port, packet id)` of every tail flit the
    /// crossbar grants is collected for the attribution engine.
    record_grants: bool,
    granted_tails: Vec<(usize, u64)>,
}

impl Switch {
    /// Instantiates a switch from its configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration has zero inputs or outputs.
    pub fn new(config: SwitchConfig) -> Self {
        Self::with_extra_stages(config, 0)
    }

    /// Instantiates a switch with `extra` additional input pipeline stages
    /// (models the first-generation 7-stage switch when `extra = 5`).
    ///
    /// # Panics
    ///
    /// Panics when the configuration has zero inputs or outputs.
    pub fn with_extra_stages(config: SwitchConfig, extra: usize) -> Self {
        assert!(
            config.inputs > 0 && config.outputs > 0,
            "switch needs ports"
        );
        let inputs = (0..config.inputs)
            .map(|_| InputPort {
                rx: LinkRx::new(),
                delay: VecDeque::from(vec![None; extra]),
                reg: None,
                route_port: None,
            })
            .collect();
        let outputs = (0..config.outputs)
            .map(|_| OutputPort {
                queue: VecDeque::with_capacity(config.output_queue_depth),
                tx: match config.ack_timeout {
                    Some(t) => LinkTx::with_timeout(config.retransmit_depth(), t),
                    None => LinkTx::new(config.retransmit_depth()),
                },
                stall: 0,
            })
            .collect();
        let arbiters = (0..config.outputs)
            .map(|_| Arbiter::new(config.arbitration, config.inputs))
            .collect();
        Switch {
            locks: vec![None; config.outputs],
            requested: vec![None; config.inputs],
            requests: vec![false; config.inputs],
            config,
            inputs,
            outputs,
            arbiters,
            stats: SwitchStats::default(),
            record_grants: false,
            granted_tails: Vec::new(),
        }
    }

    /// Enables (or disables) collection of crossbar tail grants for the
    /// attribution engine.
    pub fn set_record_grants(&mut self, on: bool) {
        self.record_grants = on;
        if !on {
            self.granted_tails.clear();
        }
    }

    /// Tail flits granted by the crossbar since the last
    /// [`clear_granted_tails`](Self::clear_granted_tails), as
    /// `(output port, packet id)`.
    pub fn granted_tails(&self) -> &[(usize, u64)] {
        &self.granted_tails
    }

    /// Clears the collected tail grants.
    pub fn clear_granted_tails(&mut self) {
        self.granted_tails.clear();
    }

    /// Input pipeline stages beyond the 2-stage minimum (0 for the Lite
    /// switch, 5 for the legacy one).
    pub fn extra_stages(&self) -> usize {
        self.inputs.first().map_or(0, |i| i.delay.len())
    }

    /// The switch configuration.
    pub fn config(&self) -> &SwitchConfig {
        &self.config
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SwitchStats {
        let mut s = self.stats;
        s.retransmissions = self.outputs.iter().map(|o| o.tx.retransmissions()).sum();
        s.ack_timeouts = self.outputs.iter().map(|o| o.tx.timeouts()).sum();
        s
    }

    /// Forces output `port` to stall (transmit nothing new) for `cycles`
    /// cycles, modelling transient backpressure at the output buffer.
    /// An already-stalled port keeps the longer of the two stalls.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range port.
    pub fn stall_output(&mut self, port: usize, cycles: u64) {
        let out = &mut self.outputs[port];
        out.stall = out.stall.max(cycles);
    }

    /// The ACK/nACK sender guarding output `port`.
    pub fn link_tx(&self, port: usize) -> &LinkTx {
        &self.outputs[port].tx
    }

    /// Mutable access to the sender on output `port` (conformance hooks).
    pub fn link_tx_mut(&mut self, port: usize) -> &mut LinkTx {
        &mut self.outputs[port].tx
    }

    /// The ACK/nACK receiver guarding input `port`.
    pub fn link_rx(&self, port: usize) -> &LinkRx {
        &self.inputs[port].rx
    }

    /// True when no flit is buffered anywhere in the switch.
    pub fn is_idle(&self) -> bool {
        self.inputs
            .iter()
            .all(|i| i.reg.is_none() && i.delay.iter().all(Option::is_none))
            && self
                .outputs
                .iter()
                .all(|o| o.queue.is_empty() && o.tx.in_flight() == 0)
    }

    /// Number of flits in the output queue of `port`.
    pub fn queue_len(&self, port: usize) -> usize {
        self.outputs[port].queue.len()
    }

    /// `(total, max)` output-queue occupancy across all ports right now
    /// — a single-pass congestion probe for telemetry sampling.
    pub fn queue_occupancy(&self) -> (usize, usize) {
        let mut total = 0;
        let mut max = 0;
        for o in &self.outputs {
            let len = o.queue.len();
            total += len;
            max = max.max(len);
        }
        (total, max)
    }

    /// True when output `port` has pending transmit-side work: queued
    /// flits, unacknowledged flits in the retransmission window (which may
    /// need resending or must tick the ACK timeout), or a forced stall
    /// still counting down. Used by the network's activity fast path.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range port.
    pub fn output_pending(&self, port: usize) -> bool {
        let out = &self.outputs[port];
        !out.queue.is_empty() || out.tx.in_flight() > 0 || out.stall > 0
    }

    /// True when any input register, delay slot, or wormhole lock holds
    /// packet state, i.e. [`crossbar`](Self::crossbar) may act this cycle.
    pub fn has_input_activity(&self) -> bool {
        self.inputs
            .iter()
            .any(|i| i.reg.is_some() || i.delay.iter().any(Option::is_some))
    }

    /// One-pass combined activity probe for the network fast path:
    /// `(input_activity, idle)` where `input_activity` matches
    /// [`has_input_activity`](Self::has_input_activity) and `idle` matches
    /// [`is_idle`](Self::is_idle), without scanning the ports twice.
    pub fn activity(&self) -> (bool, bool) {
        let input_act = self.has_input_activity();
        let output_act = self
            .outputs
            .iter()
            .any(|o| !o.queue.is_empty() || o.tx.in_flight() > 0);
        (input_act, !input_act && !output_act)
    }

    /// Stage-2 output side for one port: processes the reverse-channel
    /// arrival and returns the flit to drive onto the link this cycle.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range port.
    pub fn transmit(&mut self, port: usize, rev: Option<AckNack>) -> Option<LinkFlit> {
        let out = &mut self.outputs[port];
        out.tx.process(rev);
        if out.stall > 0 {
            // Injected backpressure: the port drives nothing this cycle.
            out.stall -= 1;
            self.stats.stalled_cycles += 1;
            return None;
        }
        let new = if out.tx.ready_for_new() {
            out.queue.pop_front()
        } else {
            None
        };
        out.tx.transmit(new)
    }

    /// Stage-2 allocation: arbitrates inputs per output and moves granted
    /// flits through the crossbar into the output queues. Call once per
    /// cycle, after [`transmit`](Self::transmit) for all ports.
    pub fn crossbar(&mut self) {
        // Resolve the requested output of every input holding a flit
        // (into per-instance scratch: the crossbar allocates nothing).
        // `req_mask` collects the requested outputs so the allocation
        // loop below visits only those instead of every output.
        let mut req_mask: u64 = 0;
        for (req, input) in self.requested.iter_mut().zip(&self.inputs) {
            *req = match &input.reg {
                Some(flit) if flit.kind.is_head() => flit.header.map(|h| h.next_hop() as usize),
                Some(_) => input.route_port,
                None => None,
            };
            if let Some(o) = *req {
                if o < 64 {
                    req_mask |= 1 << o;
                }
            }
        }

        while req_mask != 0 {
            let o = req_mask.trailing_zeros() as usize;
            req_mask &= req_mask - 1;
            if o >= self.config.outputs {
                // A corrupted route can request a nonexistent port; such
                // requests never win (matches the dense scan, which only
                // visited real outputs).
                continue;
            }
            let space = self.outputs[o].queue.len() < self.config.output_queue_depth;
            for i in 0..self.config.inputs {
                self.requests[i] = false;
                if self.requested[i] == Some(o) {
                    // Wormhole: locked outputs only accept the locking input.
                    let lock_ok = match self.locks[o] {
                        None => self.inputs[i].reg.as_ref().map(|f| f.kind.is_head()) == Some(true),
                        Some(owner) => owner == i,
                    };
                    if lock_ok {
                        self.requests[i] = true;
                    }
                }
            }
            if !space {
                self.stats.contention_stalls += 1;
                continue;
            }
            let Some(winner) = self.arbiters[o].grant(&self.requests) else {
                self.stats.contention_stalls += 1;
                continue;
            };
            if self.requests.iter().filter(|&&r| r).count() > 1 {
                self.stats.contention_stalls += 1;
            }
            // Move the winning flit through the crossbar.
            let input = &mut self.inputs[winner];
            let mut flit = input.reg.take().expect("winner holds a flit");
            if flit.kind.is_head() {
                // Consume one hop of the source route on the packed bits.
                if let Some(h) = flit.header {
                    flit.header = Some(h.consume_route());
                }
                self.locks[o] = Some(winner);
                input.route_port = Some(o);
                self.stats.packets_routed += 1;
            }
            if flit.kind.is_tail() {
                self.locks[o] = None;
                input.route_port = None;
            }
            if self.record_grants && flit.kind.is_tail() {
                self.granted_tails.push((o, flit.meta.packet_id));
            }
            self.outputs[o].queue.push_back(flit);
            self.stats.max_queue_depth =
                self.stats.max_queue_depth.max(self.outputs[o].queue.len());
            self.stats.flits_routed += 1;
        }

        // Advance the extra input pipeline (legacy switch model only).
        for input in &mut self.inputs {
            input.advance_delay();
        }
    }

    /// Stage-1 input side for one port: feeds the forward-channel arrival
    /// through the ACK/nACK guard into the input register. Returns the
    /// reverse-channel reply to send (next cycle) on the link.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range port.
    pub fn receive(&mut self, port: usize, fwd: Option<LinkFlit>) -> Option<AckNack> {
        let arrival = fwd?;
        let input = &mut self.inputs[port];
        let can_accept = input.can_accept();
        let (delivered, reply) = input.rx.receive(arrival, can_accept);
        if let Some(flit) = delivered {
            input.store(flit);
        }
        Some(reply)
    }
}

impl Snapshot for Switch {
    /// Captures every input register and delay slot, wormhole locks and
    /// route pinnings, output queues, per-port ACK/nACK engines, stall
    /// countdowns, arbiter pointers, statistics and pending tail grants.
    /// The configuration (port counts, queue depth, timeout, extra
    /// stages) is structural and not stored; the crossbar scratch vectors
    /// are per-cycle values that are dead between steps.
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.len(self.inputs.len());
        for input in &self.inputs {
            input.rx.save_state(w);
            w.len(input.delay.len());
            for slot in &input.delay {
                snap::save_opt_flit(w, slot);
            }
            snap::save_opt_flit(w, &input.reg);
            match input.route_port {
                Some(p) => {
                    w.bool(true);
                    w.len(p);
                }
                None => w.bool(false),
            }
        }
        w.len(self.outputs.len());
        for out in &self.outputs {
            w.len(out.queue.len());
            for flit in &out.queue {
                snap::save_flit(w, flit);
            }
            out.tx.save_state(w);
            w.u64(out.stall);
        }
        for arb in &self.arbiters {
            arb.save_state(w);
        }
        for lock in &self.locks {
            match lock {
                Some(i) => {
                    w.bool(true);
                    w.len(*i);
                }
                None => w.bool(false),
            }
        }
        w.u64(self.stats.flits_routed);
        w.u64(self.stats.packets_routed);
        w.u64(self.stats.contention_stalls);
        w.u64(self.stats.stalled_cycles);
        w.len(self.stats.max_queue_depth);
        w.len(self.granted_tails.len());
        for (port, id) in &self.granted_tails {
            w.len(*port);
            w.u64(*id);
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let n_in = r.len()?;
        if n_in != self.inputs.len() {
            return Err(SnapshotError::Malformed(format!(
                "switch has {} inputs, snapshot has {n_in}",
                self.inputs.len()
            )));
        }
        for input in self.inputs.iter_mut() {
            input.rx.load_state(r)?;
            let depth = r.len()?;
            if depth != input.delay.len() {
                return Err(SnapshotError::Malformed(format!(
                    "input delay line holds {} slots, snapshot has {depth}",
                    input.delay.len()
                )));
            }
            for slot in input.delay.iter_mut() {
                *slot = snap::load_opt_flit(r)?;
            }
            input.reg = snap::load_opt_flit(r)?;
            input.route_port = if r.bool()? { Some(r.len()?) } else { None };
        }
        let n_out = r.len()?;
        if n_out != self.outputs.len() {
            return Err(SnapshotError::Malformed(format!(
                "switch has {} outputs, snapshot has {n_out}",
                self.outputs.len()
            )));
        }
        for out in self.outputs.iter_mut() {
            let q = r.len()?;
            if q > self.config.output_queue_depth {
                return Err(SnapshotError::Malformed(format!(
                    "output queue holds {q} flits but depth is {}",
                    self.config.output_queue_depth
                )));
            }
            out.queue.clear();
            for _ in 0..q {
                out.queue.push_back(snap::load_flit(r)?);
            }
            out.tx.load_state(r)?;
            out.stall = r.u64()?;
        }
        for arb in self.arbiters.iter_mut() {
            arb.load_state(r)?;
        }
        for lock in self.locks.iter_mut() {
            *lock = if r.bool()? { Some(r.len()?) } else { None };
        }
        self.stats.flits_routed = r.u64()?;
        self.stats.packets_routed = r.u64()?;
        self.stats.contention_stalls = r.u64()?;
        self.stats.stalled_cycles = r.u64()?;
        self.stats.max_queue_depth = r.len()?;
        let n_grants = r.len()?;
        self.granted_tails.clear();
        for _ in 0..n_grants {
            let port = r.len()?;
            let id = r.u64()?;
            self.granted_tails.push((port, id));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, FlitMeta};
    use crate::header::Header;
    use xpipes_ocp::{MCmd, Sideband, ThreadId};
    use xpipes_sim::Cycle;
    use xpipes_topology::route::SourceRoute;
    use xpipes_topology::spec::Arbitration;
    use xpipes_topology::PortId;

    fn header_to(ports: &[u8], burst: u8) -> Header {
        let route = SourceRoute::new(ports.iter().map(|&p| PortId(p)).collect()).unwrap();
        Header::request(
            &route,
            0,
            MCmd::Write,
            burst,
            ThreadId(0),
            0,
            Sideband::NONE,
        )
        .unwrap()
    }

    fn packet_flits(id: u64, ports: &[u8], body: usize) -> Vec<Flit> {
        let meta = FlitMeta::new(id, Cycle::ZERO, 0);
        let header = header_to(ports, 1);
        if body == 0 {
            return vec![Flit::head(FlitKind::Single, id as u128, header, meta)];
        }
        let mut flits = vec![Flit::head(FlitKind::Header, id as u128, header, meta)];
        for i in 0..body {
            let kind = if i + 1 == body {
                FlitKind::Tail
            } else {
                FlitKind::Body
            };
            flits.push(Flit::new(kind, i as u128, meta));
        }
        flits
    }

    /// Drives a single switch directly (no links), injecting flit lists
    /// into inputs and collecting what each output transmits.
    fn run_switch(
        sw: &mut Switch,
        mut feeds: Vec<VecDeque<Flit>>,
        cycles: usize,
    ) -> Vec<Vec<Flit>> {
        let n_out = sw.config.outputs;
        let mut seqs = vec![0u8; feeds.len()];
        let mut collected = vec![Vec::new(); n_out];
        for _ in 0..cycles {
            #[allow(clippy::needless_range_loop)]
            for o in 0..n_out {
                if let Some(lf) = sw.transmit(o, None) {
                    collected[o].push(lf.flit);
                    // Immediately ACK so the window never fills.
                    sw.outputs[o].tx.process(Some(AckNack {
                        seq: lf.seq,
                        ack: true,
                    }));
                }
            }
            sw.crossbar();
            for (i, feed) in feeds.iter_mut().enumerate() {
                if let Some(front) = feed.front() {
                    let lf = LinkFlit {
                        flit: *front,
                        seq: seqs[i],
                        corrupted: false,
                    };
                    if let Some(reply) = sw.receive(i, Some(lf)) {
                        if reply.ack {
                            feed.pop_front();
                            seqs[i] = (seqs[i] + 1) % 64;
                        }
                    }
                }
            }
        }
        collected
    }

    #[test]
    fn routes_single_flit_to_requested_output() {
        let mut sw = Switch::new(SwitchConfig::new(2, 2, 32));
        let feeds = vec![packet_flits(1, &[1], 0).into(), VecDeque::new()];
        let out = run_switch(&mut sw, feeds, 10);
        assert_eq!(out[0].len(), 0);
        assert_eq!(out[1].len(), 1);
        assert_eq!(out[1][0].meta.packet_id, 1);
        assert_eq!(sw.stats().packets_routed, 1);
    }

    #[test]
    fn consumes_one_route_hop() {
        let mut sw = Switch::new(SwitchConfig::new(2, 2, 32));
        let feeds = vec![packet_flits(1, &[1, 3], 0).into(), VecDeque::new()];
        let out = run_switch(&mut sw, feeds, 10);
        let h = out[1][0].header.expect("head keeps header").unpack();
        assert_eq!(h.route & 0xF, 3, "next hop should now be first");
        assert_eq!(h.hop_len, 1);
    }

    #[test]
    fn two_stage_latency() {
        // Inject at cycle 0; the flit must appear at the output on cycle 2
        // (one cycle in the input register, one in the output queue).
        let mut sw = Switch::new(SwitchConfig::new(1, 1, 32));
        let flit = packet_flits(9, &[0], 0).remove(0);
        let mut appeared_at = None;
        for cycle in 0..6 {
            if let Some(lf) = sw.transmit(0, None) {
                assert_eq!(lf.flit.meta.packet_id, 9);
                appeared_at = Some(cycle);
                break;
            }
            sw.crossbar();
            if cycle == 0 {
                sw.receive(
                    0,
                    Some(LinkFlit {
                        flit,
                        seq: 0,
                        corrupted: false,
                    }),
                );
            }
        }
        assert_eq!(appeared_at, Some(2), "xpipes Lite switch is 2-stage");
    }

    #[test]
    fn legacy_switch_has_longer_latency() {
        let mut sw = Switch::with_extra_stages(SwitchConfig::new(1, 1, 32), 5);
        let flit = packet_flits(9, &[0], 0).remove(0);
        let mut appeared_at = None;
        for cycle in 0..20 {
            if let Some(lf) = sw.transmit(0, None) {
                assert_eq!(lf.flit.meta.packet_id, 9);
                appeared_at = Some(cycle);
                break;
            }
            sw.crossbar();
            if cycle == 0 {
                sw.receive(
                    0,
                    Some(LinkFlit {
                        flit,
                        seq: 0,
                        corrupted: false,
                    }),
                );
            }
        }
        assert_eq!(appeared_at, Some(7), "legacy switch models 7 stages");
    }

    #[test]
    fn wormhole_does_not_interleave_packets() {
        // Two 4-flit packets from different inputs to the same output:
        // their flits must come out contiguously per packet.
        let mut sw = Switch::new(SwitchConfig::new(2, 2, 32));
        let feeds = vec![
            packet_flits(1, &[0], 3).into(),
            packet_flits(2, &[0], 3).into(),
        ];
        let out = run_switch(&mut sw, feeds, 40);
        assert_eq!(out[0].len(), 8);
        let ids: Vec<u64> = out[0].iter().map(|f| f.meta.packet_id).collect();
        // Find the boundary: first id holds for 4 flits, then the other.
        assert_eq!(
            ids[0..4]
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            1
        );
        assert_eq!(
            ids[4..8]
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len(),
            1
        );
        assert_ne!(ids[0], ids[4]);
    }

    #[test]
    fn round_robin_alternates_single_flit_packets() {
        let mut sw = Switch::new(SwitchConfig::new(2, 1, 32));
        let mut f0 = VecDeque::new();
        let mut f1 = VecDeque::new();
        for k in 0..4 {
            f0.push_back(packet_flits(10 + k, &[0], 0).remove(0));
            f1.push_back(packet_flits(20 + k, &[0], 0).remove(0));
        }
        let out = run_switch(&mut sw, vec![f0, f1], 40);
        let ids: Vec<u64> = out[0].iter().map(|f| f.meta.packet_id).collect();
        assert_eq!(ids.len(), 8);
        // Round robin ⇒ strict alternation between the two tens-groups.
        for pair in ids.windows(2) {
            assert_ne!(pair[0] / 10, pair[1] / 10, "sequence {ids:?}");
        }
    }

    #[test]
    fn fixed_priority_prefers_input_zero() {
        let mut cfg = SwitchConfig::new(2, 1, 32);
        cfg.arbitration = Arbitration::Fixed;
        let mut sw = Switch::new(cfg);
        let mut f0 = VecDeque::new();
        let mut f1 = VecDeque::new();
        for k in 0..3 {
            f0.push_back(packet_flits(10 + k, &[0], 0).remove(0));
            f1.push_back(packet_flits(20 + k, &[0], 0).remove(0));
        }
        let out = run_switch(&mut sw, vec![f0, f1], 40);
        let ids: Vec<u64> = out[0].iter().map(|f| f.meta.packet_id).collect();
        // All of input 0's packets must precede any steady-state win by
        // input 1 beyond pipeline effects: input 0 packets appear in order
        // and the first two outputs are both input-0 packets.
        assert_eq!(ids.iter().filter(|&&id| id < 20).count(), 3);
        assert!(ids[0] < 20);
    }

    #[test]
    fn output_queue_backpressure_counts_stalls() {
        // Output 0 is never drained (transmit not called): queue fills,
        // crossbar stalls.
        let mut sw = Switch::new(SwitchConfig::new(1, 1, 32));
        let mut seq = 0u8;
        let mut feed: VecDeque<Flit> = (0..12_u64)
            .map(|k| packet_flits(k, &[0], 0).remove(0))
            .collect();
        for _ in 0..40 {
            sw.crossbar();
            if let Some(front) = feed.front() {
                let lf = LinkFlit {
                    flit: *front,
                    seq,
                    corrupted: false,
                };
                if let Some(reply) = sw.receive(0, Some(lf)) {
                    if reply.ack {
                        feed.pop_front();
                        seq = (seq + 1) % 64;
                    }
                }
            }
        }
        // Queue capacity is 6: exactly 6 flits inside, rest stalled.
        assert_eq!(sw.queue_len(0), 6);
        assert!(sw.stats().contention_stalls > 0);
    }

    #[test]
    fn queue_high_water_mark_tracked() {
        let mut sw = Switch::new(SwitchConfig::new(1, 1, 32));
        let feed: VecDeque<Flit> = (0..4u64)
            .map(|k| packet_flits(k, &[0], 0).remove(0))
            .collect();
        // Never drain output 0: occupancy climbs to the feed size.
        let mut seq = 0u8;
        let mut feed = feed;
        for _ in 0..30 {
            sw.crossbar();
            if let Some(front) = feed.front() {
                let lf = LinkFlit {
                    flit: *front,
                    seq,
                    corrupted: false,
                };
                if let Some(reply) = sw.receive(0, Some(lf)) {
                    if reply.ack {
                        feed.pop_front();
                        seq = (seq + 1) % 64;
                    }
                }
            }
        }
        assert_eq!(sw.stats().max_queue_depth, 4);
    }

    #[test]
    fn is_idle_reflects_buffers() {
        let mut sw = Switch::new(SwitchConfig::new(1, 1, 32));
        assert!(sw.is_idle());
        let flit = packet_flits(1, &[0], 0).remove(0);
        sw.receive(
            0,
            Some(LinkFlit {
                flit,
                seq: 0,
                corrupted: false,
            }),
        );
        assert!(!sw.is_idle());
    }

    #[test]
    fn corrupted_arrival_nacked_and_not_stored() {
        let mut sw = Switch::new(SwitchConfig::new(1, 1, 32));
        let flit = packet_flits(1, &[0], 0).remove(0);
        let reply = sw
            .receive(
                0,
                Some(LinkFlit {
                    flit,
                    seq: 0,
                    corrupted: true,
                }),
            )
            .unwrap();
        assert!(!reply.ack);
        assert!(sw.is_idle());
    }

    #[test]
    fn stalled_output_transmits_nothing_until_stall_expires() {
        let mut sw = Switch::new(SwitchConfig::new(1, 1, 32));
        // Preload the output queue with one flit via the normal pipeline.
        let flit = packet_flits(3, &[0], 0).remove(0);
        sw.receive(
            0,
            Some(LinkFlit {
                flit,
                seq: 0,
                corrupted: false,
            }),
        );
        sw.crossbar();
        sw.stall_output(0, 3);
        for _ in 0..3 {
            assert!(sw.transmit(0, None).is_none());
        }
        assert!(sw.transmit(0, None).is_some());
        assert_eq!(sw.stats().stalled_cycles, 3);
    }

    #[test]
    fn stall_output_keeps_longer_stall() {
        let mut sw = Switch::new(SwitchConfig::new(1, 1, 32));
        sw.stall_output(0, 5);
        sw.stall_output(0, 2);
        for _ in 0..5 {
            sw.transmit(0, None);
        }
        assert_eq!(sw.stats().stalled_cycles, 5);
    }

    #[test]
    #[should_panic]
    fn bad_output_port_panics() {
        let mut sw = Switch::new(SwitchConfig::new(1, 1, 32));
        sw.transmit(5, None);
    }

    /// Checkpoint a switch mid-wormhole (header granted, tail not yet
    /// through) and restore into a fresh instance: the remaining flits
    /// must come out identically, locks intact.
    #[test]
    fn switch_snapshot_mid_wormhole_resumes_identically() {
        let mut sw = Switch::new(SwitchConfig::new(2, 2, 32));
        let mut feeds: Vec<VecDeque<Flit>> = vec![
            packet_flits(1, &[0], 3).into(),
            packet_flits(2, &[0], 3).into(),
        ];
        let mut seqs = vec![0u8; feeds.len()];
        // Run a few cycles without draining the outputs so packet state is
        // parked in registers, queues and locks.
        for _ in 0..3 {
            sw.crossbar();
            for (i, feed) in feeds.iter_mut().enumerate() {
                if let Some(front) = feed.front() {
                    let lf = LinkFlit {
                        flit: *front,
                        seq: seqs[i],
                        corrupted: false,
                    };
                    if let Some(reply) = sw.receive(i, Some(lf)) {
                        if reply.ack {
                            feed.pop_front();
                            seqs[i] = (seqs[i] + 1) % 64;
                        }
                    }
                }
            }
        }
        assert!(!sw.is_idle());

        let mut w = SnapshotWriter::new();
        sw.save_state(&mut w);
        let bytes = w.finish();
        let mut restored = Switch::new(SwitchConfig::new(2, 2, 32));
        let mut r = SnapshotReader::open(&bytes).unwrap();
        restored.load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.stats(), sw.stats());
        assert_eq!(restored.queue_occupancy(), sw.queue_occupancy());

        // Drive both switches identically to completion and compare every
        // emitted flit.
        let run = |sw: &mut Switch, feeds: &mut [VecDeque<Flit>], seqs: &mut [u8]| {
            let mut out = Vec::new();
            for _ in 0..40 {
                for o in 0..2 {
                    if let Some(lf) = sw.transmit(o, None) {
                        out.push((o, lf));
                        sw.outputs[o].tx.process(Some(AckNack {
                            seq: lf.seq,
                            ack: true,
                        }));
                    }
                }
                sw.crossbar();
                for (i, feed) in feeds.iter_mut().enumerate() {
                    if let Some(front) = feed.front() {
                        let lf = LinkFlit {
                            flit: *front,
                            seq: seqs[i],
                            corrupted: false,
                        };
                        if let Some(reply) = sw.receive(i, Some(lf)) {
                            if reply.ack {
                                feed.pop_front();
                                seqs[i] = (seqs[i] + 1) % 64;
                            }
                        }
                    }
                }
            }
            out
        };
        let mut feeds2 = feeds.clone();
        let mut seqs2 = seqs.clone();
        let a = run(&mut sw, &mut feeds, &mut seqs);
        let b = run(&mut restored, &mut feeds2, &mut seqs2);
        assert!(!a.is_empty());
        assert_eq!(a, b);
        assert_eq!(sw.stats(), restored.stats());
    }

    #[test]
    fn switch_snapshot_port_mismatch_rejected() {
        let sw = Switch::new(SwitchConfig::new(2, 2, 32));
        let mut w = SnapshotWriter::new();
        sw.save_state(&mut w);
        let bytes = w.finish();
        let mut other = Switch::new(SwitchConfig::new(3, 3, 32));
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(
            other.load_state(&mut r),
            Err(SnapshotError::Malformed(_))
        ));
    }
}
