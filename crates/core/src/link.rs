//! Pipelined, possibly unreliable links.
//!
//! A link is two shift registers: a forward pipe carrying
//! [`LinkFlit`]s and a reverse pipe carrying [`AckNack`]s, each `stages`
//! cycles deep.
//! A fault injector driven by a [`FaultPlan`] corrupts forward flits
//! (singly or in bursts) and drops or corrupts reverse-channel ACK/nACK
//! messages, exercising the ACK/nACK protocol end to end. Reverse-channel
//! corruption is modelled as a detected drop: control messages are
//! CRC-protected, so the receiving sender discards a corrupted one.

use std::collections::VecDeque;

use xpipes_sim::{FaultPlan, SimRng, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::config::LinkConfig;
use crate::flow_control::{AckNack, LinkFlit};
use crate::snap;

/// A pipelined link instance.
///
/// Call [`shift`](Link::shift) exactly once per cycle with this cycle's
/// channel inputs; it returns what emerges at the far ends.
///
/// # Examples
///
/// ```
/// use xpipes::link::Link;
/// use xpipes::config::LinkConfig;
/// use xpipes::flow_control::LinkFlit;
/// use xpipes::{Flit, FlitKind, FlitMeta};
/// use xpipes_sim::{Cycle, SimRng};
///
/// let mut link = Link::new(LinkConfig::new(2), SimRng::seed(0));
/// let lf = LinkFlit {
///     flit: Flit::new(FlitKind::Single, 1, FlitMeta::new(0, Cycle::ZERO, 0)),
///     seq: 0,
///     corrupted: false,
/// };
/// // Two pipeline stages: the flit pops out on the second shift.
/// let (out1, _) = link.shift(Some(lf), None);
/// assert!(out1.is_none());
/// let (out2, _) = link.shift(None, None);
/// assert!(out2.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    fwd: VecDeque<Option<LinkFlit>>,
    rev: VecDeque<Option<AckNack>>,
    faults: FaultPlan,
    rng: SimRng,
    traversals: u64,
    corrupted: u64,
    rev_dropped: u64,
    rev_corrupted: u64,
    burst_remaining: u32,
    /// Occupied slots across both pipes, maintained incrementally so the
    /// network's activity fast path can test emptiness in O(1).
    occupied: usize,
}

impl Link {
    /// Creates a link from its configuration and a deterministic RNG for
    /// error injection. The config's `error_rate` maps to single-flit
    /// forward corruption.
    pub fn new(config: LinkConfig, rng: SimRng) -> Self {
        let plan = FaultPlan {
            flit_corruption_rate: config.error_rate,
            corruption_burst_len: 1,
            ..FaultPlan::none()
        };
        Link::with_faults(config, rng, plan)
    }

    /// Creates a link whose injector follows an explicit [`FaultPlan`].
    pub fn with_faults(config: LinkConfig, rng: SimRng, faults: FaultPlan) -> Self {
        // An N-stage pipe delays by N shifts: the entering item passes
        // through N-1 interior slots plus the push/pop of the shift itself.
        let interior = (config.stages.max(1) - 1) as usize;
        Link {
            fwd: VecDeque::from(vec![None; interior]),
            rev: VecDeque::from(vec![None; interior]),
            faults: faults.clamped(),
            rng,
            traversals: 0,
            corrupted: 0,
            rev_dropped: 0,
            rev_corrupted: 0,
            burst_remaining: 0,
            occupied: 0,
        }
    }

    /// True when neither pipe holds a flit or ACK/nACK message. O(1).
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Pipeline depth in cycles.
    pub fn stages(&self) -> u32 {
        self.fwd.len() as u32 + 1
    }

    /// Forward flits that completed a traversal.
    pub fn traversals(&self) -> u64 {
        self.traversals
    }

    /// Flits the error injector corrupted.
    pub fn corrupted(&self) -> u64 {
        self.corrupted
    }

    /// Reverse-channel ACK/nACK messages the injector dropped outright.
    pub fn rev_dropped(&self) -> u64 {
        self.rev_dropped
    }

    /// Reverse-channel ACK/nACK messages the injector corrupted (the
    /// sender's control CRC detects these, so they behave as drops).
    pub fn rev_corrupted(&self) -> u64 {
        self.rev_corrupted
    }

    /// Advances both pipes one cycle: pushes the inputs in, pops the
    /// outputs out. The fault injector may flag the entering forward flit
    /// as corrupted (singly or as part of a burst) and may drop or
    /// corrupt the entering reverse message.
    pub fn shift(
        &mut self,
        fwd_in: Option<LinkFlit>,
        rev_in: Option<AckNack>,
    ) -> (Option<LinkFlit>, Option<AckNack>) {
        let fwd_in = fwd_in.map(|mut lf| {
            if self.burst_remaining > 0 {
                self.burst_remaining -= 1;
                lf.corrupted = true;
                self.corrupted += 1;
            } else if self.faults.flit_corruption_rate > 0.0
                && self.rng.chance(self.faults.flit_corruption_rate)
            {
                lf.corrupted = true;
                self.corrupted += 1;
                self.burst_remaining = self.faults.corruption_burst_len.saturating_sub(1);
            }
            lf
        });
        let rev_in = rev_in.and_then(|an| {
            if self.faults.ack_loss_rate > 0.0 && self.rng.chance(self.faults.ack_loss_rate) {
                self.rev_dropped += 1;
                return None;
            }
            if self.faults.ack_corruption_rate > 0.0
                && self.rng.chance(self.faults.ack_corruption_rate)
            {
                self.rev_corrupted += 1;
                return None;
            }
            Some(an)
        });
        if self.fwd.is_empty() {
            // Single-stage link: zero interior slots, the pipes are pure
            // pass-throughs. Skip the queue traffic (the common case on
            // mesh links, which default to one pipeline stage).
            if fwd_in.is_some() {
                self.traversals += 1;
            }
            return (fwd_in, rev_in);
        }
        self.occupied += fwd_in.is_some() as usize + rev_in.is_some() as usize;
        self.fwd.push_back(fwd_in);
        self.rev.push_back(rev_in);
        let fwd_out = self.fwd.pop_front().expect("pipe never empty");
        let rev_out = self.rev.pop_front().expect("pipe never empty");
        self.occupied -= fwd_out.is_some() as usize + rev_out.is_some() as usize;
        if fwd_out.is_some() {
            self.traversals += 1;
        }
        (fwd_out, rev_out)
    }
}

impl Snapshot for Link {
    /// Captures both pipes, the error-injector RNG position, the burst
    /// countdown and the statistics counters. The fault plan and pipe
    /// depth are structural and not stored; `occupied` is recomputed on
    /// load.
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.len(self.fwd.len());
        for slot in &self.fwd {
            snap::save_opt_link_flit(w, slot);
        }
        for slot in &self.rev {
            snap::save_opt_acknack(w, slot);
        }
        w.rng(&self.rng);
        w.u64(self.traversals);
        w.u64(self.corrupted);
        w.u64(self.rev_dropped);
        w.u64(self.rev_corrupted);
        w.u32(self.burst_remaining);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let interior = r.len()?;
        if interior != self.fwd.len() {
            return Err(SnapshotError::Malformed(format!(
                "link has {} interior stages, snapshot has {interior}",
                self.fwd.len()
            )));
        }
        for slot in self.fwd.iter_mut() {
            *slot = snap::load_opt_link_flit(r)?;
        }
        for slot in self.rev.iter_mut() {
            *slot = snap::load_opt_acknack(r)?;
        }
        self.rng = r.rng()?;
        self.traversals = r.u64()?;
        self.corrupted = r.u64()?;
        self.rev_dropped = r.u64()?;
        self.rev_corrupted = r.u64()?;
        self.burst_remaining = r.u32()?;
        self.occupied = self.fwd.iter().filter(|s| s.is_some()).count()
            + self.rev.iter().filter(|s| s.is_some()).count();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{Flit, FlitKind, FlitMeta};
    use crate::flow_control::{LinkRx, LinkTx};
    use xpipes_sim::Cycle;

    fn lf(n: u64) -> LinkFlit {
        LinkFlit {
            flit: Flit::new(
                FlitKind::Single,
                n as u128,
                FlitMeta::new(n, Cycle::ZERO, 0),
            ),
            seq: (n % 64) as u8,
            corrupted: false,
        }
    }

    #[test]
    fn latency_equals_stages() {
        for stages in [1u32, 2, 4] {
            let mut link = Link::new(LinkConfig::new(stages), SimRng::seed(1));
            let (out, _) = link.shift(Some(lf(7)), None);
            let mut arrived_after = if out.is_some() { 1 } else { 0 };
            let mut t = 1;
            while arrived_after == 0 {
                t += 1;
                let (o, _) = link.shift(None, None);
                if o.is_some() {
                    arrived_after = t;
                }
            }
            assert_eq!(arrived_after, stages, "stages={stages}");
        }
    }

    #[test]
    fn reverse_channel_same_depth() {
        let mut link = Link::new(LinkConfig::new(3), SimRng::seed(1));
        link.shift(None, Some(AckNack { seq: 5, ack: true }));
        link.shift(None, None);
        let (_, rev) = link.shift(None, None);
        assert_eq!(rev, Some(AckNack { seq: 5, ack: true }));
    }

    #[test]
    fn pipelining_sustains_full_rate() {
        let mut link = Link::new(LinkConfig::new(2), SimRng::seed(1));
        let mut arrived = 0;
        for i in 0..10 {
            let (out, _) = link.shift(Some(lf(i)), None);
            if out.is_some() {
                arrived += 1;
            }
        }
        // After the 2-cycle fill, every cycle delivers: 9 of 10.
        assert_eq!(arrived, 9);
        assert_eq!(link.traversals(), 9);
    }

    #[test]
    fn error_injection_rate() {
        let mut link = Link::new(LinkConfig::new(1).with_error_rate(0.25), SimRng::seed(7));
        let mut corrupt = 0;
        for i in 0..4000 {
            let (out, _) = link.shift(Some(lf(i)), None);
            if out.map(|f| f.corrupted).unwrap_or(false) {
                corrupt += 1;
            }
        }
        assert!((800..1200).contains(&corrupt), "corrupt={corrupt}");
        assert_eq!(link.corrupted(), corrupt);
    }

    #[test]
    fn burst_corruption_corrupts_consecutive_flits() {
        let plan = FaultPlan {
            flit_corruption_rate: 0.05,
            corruption_burst_len: 4,
            ..FaultPlan::none()
        };
        let mut link = Link::with_faults(LinkConfig::new(1), SimRng::seed(21), plan);
        let mut flags = Vec::new();
        for i in 0..4000 {
            let (out, _) = link.shift(Some(lf(i)), None);
            flags.push(out.map(|f| f.corrupted).unwrap_or(false));
        }
        // Every corruption event must extend into a run of 4 (bursts may
        // chain if a fresh draw fires inside one, so runs are >= 4).
        let mut runs = Vec::new();
        let mut cur = 0usize;
        for &f in &flags {
            if f {
                cur += 1;
            } else if cur > 0 {
                runs.push(cur);
                cur = 0;
            }
        }
        if cur > 0 {
            runs.push(cur);
        }
        assert!(!runs.is_empty());
        assert!(runs.iter().all(|&r| r >= 4), "runs={runs:?}");
        assert_eq!(
            link.corrupted(),
            flags.iter().filter(|&&f| f).count() as u64
        );
    }

    #[test]
    fn reverse_channel_loss_and_corruption_drop_messages() {
        let plan = FaultPlan {
            ack_loss_rate: 0.3,
            ack_corruption_rate: 0.3,
            ..FaultPlan::none()
        };
        let mut link = Link::with_faults(LinkConfig::new(1), SimRng::seed(23), plan);
        let mut arrived = 0u64;
        for i in 0..2000u64 {
            let (_, rev) = link.shift(
                None,
                Some(AckNack {
                    seq: (i % 64) as u8,
                    ack: true,
                }),
            );
            if rev.is_some() {
                arrived += 1;
            }
        }
        assert!(link.rev_dropped() > 0);
        assert!(link.rev_corrupted() > 0);
        assert_eq!(arrived + link.rev_dropped() + link.rev_corrupted(), 2000);
    }

    #[test]
    fn benign_plan_never_touches_reverse_channel() {
        let mut link = Link::new(LinkConfig::new(1).with_error_rate(0.5), SimRng::seed(5));
        for i in 0..500u64 {
            let (_, rev) = link.shift(
                None,
                Some(AckNack {
                    seq: (i % 64) as u8,
                    ack: false,
                }),
            );
            assert!(rev.is_some());
        }
        assert_eq!(link.rev_dropped(), 0);
        assert_eq!(link.rev_corrupted(), 0);
    }

    #[test]
    fn zero_error_rate_never_corrupts() {
        let mut link = Link::new(LinkConfig::new(1), SimRng::seed(3));
        for i in 0..100 {
            let (out, _) = link.shift(Some(lf(i)), None);
            if let Some(f) = out {
                assert!(!f.corrupted);
            }
        }
    }

    /// Full protocol harness: LinkTx → noisy pipelined link → LinkRx, with
    /// the reverse channel closing the loop. Every flit must arrive
    /// exactly once, in order, despite corruption and receiver stalls.
    fn run_protocol(
        error_rate: f64,
        stall_rate: f64,
        stages: u32,
        count: u64,
        seed: u64,
        max_cycles: u64,
    ) -> Vec<u64> {
        let mut tx = LinkTx::new((2 * stages + 2) as usize);
        let mut rx = LinkRx::new();
        let mut link = Link::new(
            LinkConfig::new(stages).with_error_rate(error_rate),
            SimRng::seed(seed),
        );
        let mut stall_rng = SimRng::seed(seed ^ 0xABCD);
        let mut delivered = Vec::new();
        let mut next = 0u64;
        let mut rev_latch: Option<AckNack> = None;
        for _ in 0..max_cycles {
            let new = if tx.ready_for_new() && next < count {
                let f = lf(next).flit;
                next += 1;
                Some(f)
            } else {
                None
            };
            let fwd_in = tx.transmit(new);
            let (fwd_out, rev_out) = link.shift(fwd_in, rev_latch.take());
            tx.process(rev_out);
            if let Some(arrival) = fwd_out {
                let can_accept = !stall_rng.chance(stall_rate);
                let (d, reply) = rx.receive(arrival, can_accept);
                rev_latch = Some(reply);
                if let Some(f) = d {
                    delivered.push(f.meta.packet_id);
                }
            }
            if delivered.len() as u64 == count {
                break;
            }
        }
        delivered
    }

    /// Checkpointing a noisy link mid-flight and restoring into a fresh
    /// instance must continue the exact corruption/drop sequence.
    #[test]
    fn link_snapshot_resumes_error_stream_bit_exactly() {
        let plan = FaultPlan {
            flit_corruption_rate: 0.1,
            corruption_burst_len: 3,
            ack_loss_rate: 0.1,
            ..FaultPlan::none()
        };
        let mut link = Link::with_faults(LinkConfig::new(3), SimRng::seed(99), plan);
        for i in 0..37u64 {
            link.shift(
                Some(lf(i)),
                Some(AckNack {
                    seq: (i % 64) as u8,
                    ack: true,
                }),
            );
        }
        let mut w = SnapshotWriter::new();
        link.save_state(&mut w);
        let bytes = w.finish();
        let mut restored = Link::with_faults(LinkConfig::new(3), SimRng::seed(0), plan);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        restored.load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(restored.is_empty(), link.is_empty());
        for i in 37..400u64 {
            let a = link.shift(Some(lf(i)), Some(AckNack { seq: 0, ack: true }));
            let b = restored.shift(Some(lf(i)), Some(AckNack { seq: 0, ack: true }));
            assert_eq!(a, b, "cycle {i}");
        }
        assert_eq!(link.corrupted(), restored.corrupted());
        assert_eq!(link.rev_dropped(), restored.rev_dropped());
        assert_eq!(link.traversals(), restored.traversals());
    }

    #[test]
    fn link_snapshot_depth_mismatch_rejected() {
        let link = Link::new(LinkConfig::new(4), SimRng::seed(1));
        let mut w = SnapshotWriter::new();
        link.save_state(&mut w);
        let bytes = w.finish();
        let mut other = Link::new(LinkConfig::new(2), SimRng::seed(1));
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(
            other.load_state(&mut r),
            Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn protocol_delivers_in_order_lossless() {
        let got = run_protocol(0.0, 0.0, 2, 50, 11, 10_000);
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn protocol_survives_errors() {
        let got = run_protocol(0.2, 0.0, 2, 50, 13, 100_000);
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn protocol_survives_stalls() {
        let got = run_protocol(0.0, 0.4, 3, 50, 17, 100_000);
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn protocol_survives_errors_and_stalls() {
        let got = run_protocol(0.15, 0.3, 2, 40, 19, 200_000);
        assert_eq!(got, (0..40).collect::<Vec<_>>());
    }
}
