//! ACK/nACK go-back-N flow and error control.
//!
//! xpipes Lite switches are "designed for pipelined, unreliable links":
//! every flit carries a small sequence number, the sender keeps transmitted
//! flits in a retransmission buffer until acknowledged, and the receiver
//! ACKs in-order clean flits and nACKs corrupted / unacceptable ones,
//! causing a go-back-N rewind. The same mechanism provides flow control —
//! a full input register simply nACKs.
//!
//! [`LinkTx`] is the sender half (lives in every switch/NI output port),
//! [`LinkRx`] the receiver half (every input port).

use std::collections::VecDeque;

use xpipes_sim::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::flit::Flit;
use crate::snap;

/// Sequence numbers are modulo 64: far larger than any retransmission
/// window (≤ 2·pipeline+2), so ambiguity is impossible.
pub const SEQ_MOD: u8 = 64;

/// Default sender ACK-timeout for a retransmission window of `capacity`
/// flits: comfortably above any fault-free round trip (the reverse path
/// is at most `capacity` cycles), so it only fires when the back-channel
/// actually lost the acknowledgement.
pub fn default_ack_timeout(capacity: usize) -> u64 {
    (8 * capacity + 16) as u64
}

/// Forward modular distance from `from` to `to`.
pub fn seq_dist(from: u8, to: u8) -> u8 {
    to.wrapping_sub(from) % SEQ_MOD
}

/// Modular increment.
pub fn seq_next(seq: u8) -> u8 {
    (seq + 1) % SEQ_MOD
}

/// A flit in flight on a link: payload + sequence number + the corruption
/// flag the link's error injector may set (models a failed CRC check).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFlit {
    /// The flit payload.
    pub flit: Flit,
    /// Link-level sequence number.
    pub seq: u8,
    /// Set by the error injector; the receiver treats it as a CRC failure.
    pub corrupted: bool,
}

/// An ACK or nACK travelling on the reverse channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckNack {
    /// Acknowledged (cumulative) or requested (rewind point) sequence.
    pub seq: u8,
    /// True = ACK, false = nACK.
    pub ack: bool,
}

/// Deliberate protocol defects for conformance-testing the invariant
/// checkers (`xpipes::monitor`): a correct checker must flag a sender
/// sabotaged with any of these modes. Never enabled in normal operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowSabotage {
    /// Rewind requests are silently discarded: nACKed (or timed-out)
    /// flits are never retransmitted.
    SkipRetransmission,
    /// The sequence counter stops advancing: every new flit reuses the
    /// same sequence number.
    ReuseSequence,
    /// A nACK prunes the window front instead of rewinding, losing the
    /// rejected flit permanently.
    DropOnNack,
}

/// Sender-side ACK/nACK engine with retransmission buffer.
///
/// Per cycle, call [`process`](LinkTx::process) with the arrived reverse-
/// channel message (if any), then [`transmit`](LinkTx::transmit) once to
/// obtain the flit to drive onto the link.
///
/// # Examples
///
/// ```
/// use xpipes::flow_control::{LinkTx, AckNack};
/// use xpipes::{Flit, FlitKind, FlitMeta};
/// use xpipes_sim::Cycle;
///
/// let mut tx = LinkTx::new(4);
/// let flit = Flit::new(FlitKind::Single, 7, FlitMeta::new(0, Cycle::ZERO, 0));
/// assert!(tx.ready_for_new());
/// let sent = tx.transmit(Some(flit)).expect("window has room");
/// assert_eq!(sent.seq, 0);
/// tx.process(Some(AckNack { seq: 0, ack: true }));
/// assert_eq!(tx.in_flight(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct LinkTx {
    window: VecDeque<(u8, Flit)>,
    capacity: usize,
    next_seq: u8,
    resend: Option<usize>,
    retransmissions: u64,
    sent: u64,
    /// ACK timeout: with unacknowledged flits outstanding and no
    /// reverse-channel arrival for this many transmit cycles, rewind the
    /// whole window. `None` disables the timeout (reliable back-channel).
    timeout: Option<u64>,
    /// Transmit cycles since the last reverse-channel arrival while the
    /// window was non-empty.
    idle_reverse_cycles: u64,
    timeouts: u64,
    sabotage: Option<FlowSabotage>,
}

impl LinkTx {
    /// Creates a sender with a retransmission buffer of `capacity` flits
    /// (sized `2·link_pipeline + 2` by the switch config).
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero or not smaller than half the
    /// sequence space.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "retransmission buffer cannot be empty");
        assert!(
            capacity < (SEQ_MOD / 2) as usize,
            "window must be smaller than half the sequence space"
        );
        LinkTx {
            window: VecDeque::with_capacity(capacity),
            capacity,
            next_seq: 0,
            resend: None,
            retransmissions: 0,
            sent: 0,
            timeout: None,
            idle_reverse_cycles: 0,
            timeouts: 0,
            sabotage: None,
        }
    }

    /// Creates a sender with an ACK timeout: after `timeout` transmit
    /// cycles with unacknowledged flits and a silent reverse channel, the
    /// whole window is rewound. Required for liveness when the
    /// back-channel itself can lose ACK/nACK messages — without it a
    /// full window whose ACKs were all dropped deadlocks.
    ///
    /// # Panics
    ///
    /// As [`new`](Self::new); additionally when `timeout` is zero.
    pub fn with_timeout(capacity: usize, timeout: u64) -> Self {
        assert!(timeout > 0, "ack timeout must be positive");
        let mut tx = Self::new(capacity);
        tx.timeout = Some(timeout);
        tx
    }

    /// Flits sent but not yet acknowledged.
    pub fn in_flight(&self) -> usize {
        self.window.len()
    }

    /// Total retransmitted flits (statistics).
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Total flit transmissions including retransmissions.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Window rewinds triggered by the ACK timeout (statistics).
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Retransmission buffer capacity in flits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sequence numbers currently held in the retransmission window,
    /// oldest first (for the protocol monitor's aliasing checker).
    pub fn window_seqs(&self) -> impl Iterator<Item = u8> + '_ {
        self.window.iter().map(|(s, _)| *s)
    }

    /// Enables a deliberate protocol defect. Conformance-testing hook
    /// for the invariant checkers only — see [`FlowSabotage`].
    pub fn sabotage(&mut self, mode: FlowSabotage) {
        self.sabotage = Some(mode);
    }

    /// True when a *new* flit could be accepted this cycle: the window has
    /// room and no rewind is in progress.
    pub fn ready_for_new(&self) -> bool {
        self.resend.is_none() && self.window.len() < self.capacity
    }

    /// Handles the reverse-channel arrival of this cycle.
    pub fn process(&mut self, arrival: Option<AckNack>) {
        let Some(an) = arrival else { return };
        self.idle_reverse_cycles = 0;
        if an.ack {
            // Cumulative ACK: everything up to and including `seq` is
            // delivered.
            while let Some((front_seq, _)) = self.window.front() {
                let d = seq_dist(*front_seq, an.seq);
                if (d as usize) < self.window.len() {
                    self.window.pop_front();
                    if let Some(r) = self.resend {
                        self.resend = if r == 0 { None } else { Some(r - 1) };
                    }
                } else {
                    break;
                }
            }
        } else {
            // nACK: rewind to the requested sequence if it is still ours.
            if let Some(idx) = self.window.iter().position(|(s, _)| *s == an.seq) {
                if self.sabotage == Some(FlowSabotage::DropOnNack) {
                    self.window.pop_front();
                } else {
                    self.resend = Some(idx);
                }
            }
        }
    }

    /// Emits at most one flit onto the link this cycle. Pass the new flit
    /// to send when [`ready_for_new`](Self::ready_for_new); during a
    /// rewind, retransmission takes priority and `new` must be `None`.
    ///
    /// # Panics
    ///
    /// Panics if `new` is provided while the sender is not ready for it.
    pub fn transmit(&mut self, new: Option<Flit>) -> Option<LinkFlit> {
        if self.window.is_empty() {
            self.idle_reverse_cycles = 0;
        } else {
            self.idle_reverse_cycles += 1;
            if let Some(t) = self.timeout {
                // Fire only on an injection-free cycle: a rewind cannot
                // start while the caller is handing over a new flit.
                if new.is_none() && self.resend.is_none() && self.idle_reverse_cycles >= t {
                    // Reverse channel silent for a full timeout with flits
                    // outstanding: assume the ACKs were lost, rewind the
                    // whole window. Duplicates are re-ACKed downstream.
                    self.resend = Some(0);
                    self.timeouts += 1;
                    self.idle_reverse_cycles = 0;
                }
            }
        }
        if self.sabotage == Some(FlowSabotage::SkipRetransmission) {
            self.resend = None;
        }
        if let Some(idx) = self.resend {
            assert!(new.is_none(), "cannot inject a new flit during a rewind");
            let (seq, flit) = self.window[idx];
            self.resend = if idx + 1 < self.window.len() {
                Some(idx + 1)
            } else {
                None
            };
            self.retransmissions += 1;
            self.sent += 1;
            return Some(LinkFlit {
                flit,
                seq,
                corrupted: false,
            });
        }
        let flit = new?;
        assert!(self.window.len() < self.capacity, "window overflow");
        let seq = self.next_seq;
        if self.sabotage != Some(FlowSabotage::ReuseSequence) {
            self.next_seq = seq_next(seq);
        }
        self.window.push_back((seq, flit));
        self.sent += 1;
        Some(LinkFlit {
            flit,
            seq,
            corrupted: false,
        })
    }
}

/// Receiver-side ACK/nACK guard.
///
/// Per cycle, call [`receive`](LinkRx::receive) with the forward-channel
/// arrival and whether the downstream register can accept a flit; it
/// returns the delivered flit (if accepted) and the reverse-channel
/// message to send back.
#[derive(Debug, Clone, Default)]
pub struct LinkRx {
    expected: u8,
    accepted: u64,
    rejected: u64,
}

impl LinkRx {
    /// Creates a receiver expecting sequence 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Next expected sequence number.
    pub fn expected(&self) -> u8 {
        self.expected
    }

    /// Flits accepted and delivered downstream.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Flits rejected (corrupt, out of order, or back-pressured).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Processes a forward-channel arrival.
    ///
    /// Returns `(delivered, reply)`: the flit to hand to the input
    /// register (only when clean, in order and `can_accept`), and the
    /// ACK/nACK to send on the reverse channel.
    pub fn receive(&mut self, arrival: LinkFlit, can_accept: bool) -> (Option<Flit>, AckNack) {
        if arrival.corrupted {
            self.rejected += 1;
            return (
                None,
                AckNack {
                    seq: self.expected,
                    ack: false,
                },
            );
        }
        if arrival.seq == self.expected {
            if can_accept {
                self.accepted += 1;
                let acked = self.expected;
                self.expected = seq_next(self.expected);
                (
                    Some(arrival.flit),
                    AckNack {
                        seq: acked,
                        ack: true,
                    },
                )
            } else {
                // Flow control: full register nACKs, forcing a resend.
                self.rejected += 1;
                (
                    None,
                    AckNack {
                        seq: self.expected,
                        ack: false,
                    },
                )
            }
        } else if seq_dist(arrival.seq, self.expected) <= SEQ_MOD / 2 {
            // Duplicate of an already-delivered flit (stale retransmission):
            // re-ACK it so the sender prunes its window, deliver nothing.
            (
                None,
                AckNack {
                    seq: arrival.seq,
                    ack: true,
                },
            )
        } else {
            // A future flit implies earlier ones were lost: rewind.
            self.rejected += 1;
            (
                None,
                AckNack {
                    seq: self.expected,
                    ack: false,
                },
            )
        }
    }
}

impl Snapshot for LinkTx {
    /// Captures the retransmission window, sequence counter, rewind
    /// pointer, timeout silence counter and statistics. `capacity`,
    /// `timeout` and `sabotage` are structural (set at assembly time)
    /// and are not stored.
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.len(self.window.len());
        for (seq, flit) in &self.window {
            w.u8(*seq);
            snap::save_flit(w, flit);
        }
        w.u8(self.next_seq);
        match self.resend {
            Some(idx) => {
                w.bool(true);
                w.len(idx);
            }
            None => w.bool(false),
        }
        w.u64(self.retransmissions);
        w.u64(self.sent);
        w.u64(self.idle_reverse_cycles);
        w.u64(self.timeouts);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let n = r.len()?;
        if n > self.capacity {
            return Err(SnapshotError::Malformed(format!(
                "retransmission window holds {n} flits but capacity is {}",
                self.capacity
            )));
        }
        self.window.clear();
        for _ in 0..n {
            let seq = r.u8()?;
            let flit = snap::load_flit(r)?;
            self.window.push_back((seq, flit));
        }
        self.next_seq = r.u8()?;
        self.resend = if r.bool()? {
            let idx = r.len()?;
            if idx >= n {
                return Err(SnapshotError::Malformed(format!(
                    "rewind pointer {idx} outside window of {n}"
                )));
            }
            Some(idx)
        } else {
            None
        };
        self.retransmissions = r.u64()?;
        self.sent = r.u64()?;
        self.idle_reverse_cycles = r.u64()?;
        self.timeouts = r.u64()?;
        Ok(())
    }
}

impl Snapshot for LinkRx {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.u8(self.expected);
        w.u64(self.accepted);
        w.u64(self.rejected);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.expected = r.u8()?;
        self.accepted = r.u64()?;
        self.rejected = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, FlitMeta};
    use xpipes_sim::Cycle;

    fn flit(n: u64) -> Flit {
        Flit::new(
            FlitKind::Single,
            n as u128,
            FlitMeta::new(n, Cycle::ZERO, 0),
        )
    }

    #[test]
    fn seq_arithmetic() {
        assert_eq!(seq_next(0), 1);
        assert_eq!(seq_next(63), 0);
        assert_eq!(seq_dist(5, 9), 4);
        assert_eq!(seq_dist(60, 2), 6);
        assert_eq!(seq_dist(2, 2), 0);
        assert_eq!(seq_dist(9, 5), 60);
    }

    #[test]
    fn tx_assigns_sequences() {
        let mut tx = LinkTx::new(4);
        for i in 0..3 {
            let sent = tx.transmit(Some(flit(i))).unwrap();
            assert_eq!(sent.seq, i as u8);
        }
        assert_eq!(tx.in_flight(), 3);
        assert_eq!(tx.sent(), 3);
    }

    #[test]
    fn tx_window_fills() {
        let mut tx = LinkTx::new(2);
        tx.transmit(Some(flit(0)));
        tx.transmit(Some(flit(1)));
        assert!(!tx.ready_for_new());
        tx.process(Some(AckNack { seq: 0, ack: true }));
        assert!(tx.ready_for_new());
        assert_eq!(tx.in_flight(), 1);
    }

    #[test]
    fn cumulative_ack_prunes_multiple() {
        let mut tx = LinkTx::new(4);
        for i in 0..4 {
            tx.transmit(Some(flit(i)));
        }
        tx.process(Some(AckNack { seq: 2, ack: true }));
        assert_eq!(tx.in_flight(), 1); // only seq 3 left
    }

    #[test]
    fn stale_ack_ignored() {
        let mut tx = LinkTx::new(4);
        tx.transmit(Some(flit(0)));
        tx.process(Some(AckNack { seq: 0, ack: true }));
        tx.transmit(Some(flit(1)));
        // Duplicate ACK for 0 must not prune seq 1.
        tx.process(Some(AckNack { seq: 0, ack: true }));
        assert_eq!(tx.in_flight(), 1);
    }

    #[test]
    fn nack_triggers_rewind() {
        let mut tx = LinkTx::new(4);
        for i in 0..3 {
            tx.transmit(Some(flit(i)));
        }
        tx.process(Some(AckNack { seq: 1, ack: false }));
        assert!(!tx.ready_for_new());
        let r1 = tx.transmit(None).unwrap();
        assert_eq!(r1.seq, 1);
        let r2 = tx.transmit(None).unwrap();
        assert_eq!(r2.seq, 2);
        assert!(tx.ready_for_new());
        assert_eq!(tx.retransmissions(), 2);
    }

    #[test]
    fn nack_for_unknown_seq_ignored() {
        let mut tx = LinkTx::new(4);
        tx.transmit(Some(flit(0)));
        tx.process(Some(AckNack { seq: 9, ack: false }));
        assert!(tx.ready_for_new());
    }

    #[test]
    fn ack_during_rewind_adjusts_pointer() {
        let mut tx = LinkTx::new(4);
        for i in 0..4 {
            tx.transmit(Some(flit(i)));
        }
        tx.process(Some(AckNack { seq: 2, ack: false })); // rewind to idx 2
        tx.process(Some(AckNack { seq: 1, ack: true })); // prune 0 and 1
        let r = tx.transmit(None).unwrap();
        assert_eq!(r.seq, 2); // pointer followed the pruned window
    }

    #[test]
    #[should_panic(expected = "rewind")]
    fn new_flit_during_rewind_panics() {
        let mut tx = LinkTx::new(4);
        tx.transmit(Some(flit(0)));
        tx.transmit(Some(flit(1)));
        tx.process(Some(AckNack { seq: 0, ack: false }));
        tx.transmit(Some(flit(2)));
    }

    #[test]
    fn rx_accepts_in_order() {
        let mut rx = LinkRx::new();
        let (d, a) = rx.receive(
            LinkFlit {
                flit: flit(0),
                seq: 0,
                corrupted: false,
            },
            true,
        );
        assert!(d.is_some());
        assert_eq!(a, AckNack { seq: 0, ack: true });
        assert_eq!(rx.expected(), 1);
        assert_eq!(rx.accepted(), 1);
    }

    #[test]
    fn rx_nacks_corrupt() {
        let mut rx = LinkRx::new();
        let (d, a) = rx.receive(
            LinkFlit {
                flit: flit(0),
                seq: 0,
                corrupted: true,
            },
            true,
        );
        assert!(d.is_none());
        assert_eq!(a, AckNack { seq: 0, ack: false });
        assert_eq!(rx.rejected(), 1);
        assert_eq!(rx.expected(), 0); // unchanged
    }

    #[test]
    fn rx_nacks_when_backpressured() {
        let mut rx = LinkRx::new();
        let (d, a) = rx.receive(
            LinkFlit {
                flit: flit(0),
                seq: 0,
                corrupted: false,
            },
            false,
        );
        assert!(d.is_none());
        assert!(!a.ack);
    }

    #[test]
    fn rx_reacks_duplicates() {
        let mut rx = LinkRx::new();
        rx.receive(
            LinkFlit {
                flit: flit(0),
                seq: 0,
                corrupted: false,
            },
            true,
        );
        // Stale retransmission of seq 0 arrives again.
        let (d, a) = rx.receive(
            LinkFlit {
                flit: flit(0),
                seq: 0,
                corrupted: false,
            },
            true,
        );
        assert!(d.is_none());
        assert_eq!(a, AckNack { seq: 0, ack: true });
        assert_eq!(rx.expected(), 1);
    }

    #[test]
    fn rx_nacks_future_flit() {
        let mut rx = LinkRx::new();
        let (d, a) = rx.receive(
            LinkFlit {
                flit: flit(5),
                seq: 5,
                corrupted: false,
            },
            true,
        );
        assert!(d.is_none());
        assert_eq!(a, AckNack { seq: 0, ack: false });
    }

    #[test]
    #[should_panic(expected = "half the sequence space")]
    fn oversized_window_rejected() {
        LinkTx::new(32);
    }

    #[test]
    fn seq_dist_wraparound_grid() {
        // Exhaustive modular-distance identities across the wrap point.
        for from in 0..SEQ_MOD {
            assert_eq!(seq_dist(from, from), 0);
            assert_eq!(seq_dist(from, seq_next(from)), 1);
            assert!(seq_next(from) < SEQ_MOD);
            for d in 0..SEQ_MOD {
                let to = (from + d) % SEQ_MOD;
                assert_eq!(seq_dist(from, to), d, "from={from} d={d}");
            }
        }
    }

    #[test]
    fn tx_sequence_numbers_wrap_modulo_64() {
        let mut tx = LinkTx::new(4);
        // Send and immediately ACK 130 flits: sequences must wrap twice.
        for i in 0..130u64 {
            let sent = tx.transmit(Some(flit(i))).unwrap();
            assert_eq!(sent.seq, (i % SEQ_MOD as u64) as u8, "flit {i}");
            tx.process(Some(AckNack {
                seq: sent.seq,
                ack: true,
            }));
        }
        assert_eq!(tx.in_flight(), 0);
        assert_eq!(tx.sent(), 130);
    }

    #[test]
    fn cumulative_ack_prunes_across_wraparound() {
        let mut tx = LinkTx::new(4);
        // Advance next_seq to 62 (send + ack 62 flits).
        for i in 0..62u64 {
            let s = tx.transmit(Some(flit(i))).unwrap();
            tx.process(Some(AckNack {
                seq: s.seq,
                ack: true,
            }));
        }
        // Fill the window across the 63 -> 0 boundary: seqs 62, 63, 0, 1.
        for i in 62..66u64 {
            let s = tx.transmit(Some(flit(i))).unwrap();
            assert_eq!(s.seq, (i % 64) as u8);
        }
        assert_eq!(tx.in_flight(), 4);
        assert!(!tx.ready_for_new());
        // Cumulative ACK for wrapped seq 0 prunes 62, 63 and 0.
        tx.process(Some(AckNack { seq: 0, ack: true }));
        assert_eq!(tx.in_flight(), 1);
        assert_eq!(tx.window_seqs().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn nack_rewind_across_wraparound() {
        let mut tx = LinkTx::new(4);
        for i in 0..63u64 {
            let s = tx.transmit(Some(flit(i))).unwrap();
            tx.process(Some(AckNack {
                seq: s.seq,
                ack: true,
            }));
        }
        // Window holds seqs 63, 0, 1.
        for i in 63..66u64 {
            tx.transmit(Some(flit(i)));
        }
        tx.process(Some(AckNack { seq: 0, ack: false }));
        let r = tx.transmit(None).unwrap();
        assert_eq!(r.seq, 0, "rewind targets the wrapped sequence");
        assert_eq!(tx.transmit(None).unwrap().seq, 1);
        assert!(tx.ready_for_new());
    }

    #[test]
    fn full_window_refuses_new_flits() {
        let mut tx = LinkTx::new(4);
        for i in 0..4u64 {
            tx.transmit(Some(flit(i)));
        }
        assert_eq!(tx.in_flight(), tx.capacity());
        assert!(!tx.ready_for_new());
        // With nothing to resend and nothing new, the line stays silent.
        assert!(tx.transmit(None).is_none());
        assert_eq!(tx.sent(), 4);
        // Acknowledging the whole window reopens it.
        tx.process(Some(AckNack { seq: 3, ack: true }));
        assert_eq!(tx.in_flight(), 0);
        assert!(tx.ready_for_new());
    }

    #[test]
    #[should_panic(expected = "window overflow")]
    fn full_window_overflow_panics() {
        let mut tx = LinkTx::new(2);
        tx.transmit(Some(flit(0)));
        tx.transmit(Some(flit(1)));
        tx.transmit(Some(flit(2)));
    }

    #[test]
    fn receiver_duplicate_detection_survives_wraparound() {
        let mut rx = LinkRx::new();
        // Deliver 70 in-order flits (expected wraps past 63).
        for i in 0..70u64 {
            let (d, a) = rx.receive(
                LinkFlit {
                    flit: flit(i),
                    seq: (i % 64) as u8,
                    corrupted: false,
                },
                true,
            );
            assert!(d.is_some(), "flit {i}");
            assert!(a.ack);
        }
        assert_eq!(rx.expected(), 6);
        // A stale retransmission of wrapped seq 4 is re-ACKed, not
        // delivered again.
        let (d, a) = rx.receive(
            LinkFlit {
                flit: flit(68),
                seq: 4,
                corrupted: false,
            },
            true,
        );
        assert!(d.is_none());
        assert_eq!(a, AckNack { seq: 4, ack: true });
        assert_eq!(rx.accepted(), 70);
    }

    #[test]
    fn ack_timeout_rewinds_full_window() {
        let mut tx = LinkTx::with_timeout(2, 5);
        tx.transmit(Some(flit(0)));
        tx.transmit(Some(flit(1)));
        // Reverse channel dead. The silence counter ticks on every
        // transmit cycle with flits outstanding: it reaches 4 after three
        // silent cycles, and the next transmit hits the timeout of 5.
        for _ in 0..3 {
            assert!(tx.transmit(None).is_none());
        }
        let r0 = tx.transmit(None).expect("timeout rewind fires");
        assert_eq!(r0.seq, 0);
        let r1 = tx.transmit(None).expect("rewind continues");
        assert_eq!(r1.seq, 1);
        assert_eq!(tx.timeouts(), 1);
        assert_eq!(tx.retransmissions(), 2);
        // The receiver re-ACKs duplicates; a cumulative ACK then drains.
        tx.process(Some(AckNack { seq: 1, ack: true }));
        assert_eq!(tx.in_flight(), 0);
    }

    #[test]
    fn ack_timeout_quiet_when_acks_flow() {
        let mut tx = LinkTx::with_timeout(4, 3);
        for i in 0..50u64 {
            let s = tx.transmit(Some(flit(i))).unwrap();
            // An ACK arrives every cycle: the timeout must never fire.
            tx.process(Some(AckNack {
                seq: s.seq,
                ack: true,
            }));
        }
        assert_eq!(tx.timeouts(), 0);
        assert_eq!(tx.retransmissions(), 0);
    }

    #[test]
    fn sabotage_reuse_sequence_duplicates_window_seqs() {
        let mut tx = LinkTx::new(4);
        tx.sabotage(FlowSabotage::ReuseSequence);
        tx.transmit(Some(flit(0)));
        tx.transmit(Some(flit(1)));
        let seqs: Vec<u8> = tx.window_seqs().collect();
        assert_eq!(seqs, vec![0, 0], "broken sender reuses sequence 0");
    }

    #[test]
    fn sabotage_skip_retransmission_ignores_nacks() {
        let mut tx = LinkTx::new(4);
        tx.sabotage(FlowSabotage::SkipRetransmission);
        tx.transmit(Some(flit(0)));
        tx.process(Some(AckNack { seq: 0, ack: false }));
        assert!(tx.transmit(None).is_none(), "rewind silently discarded");
        assert_eq!(tx.retransmissions(), 0);
        assert_eq!(tx.in_flight(), 1, "flit is stuck forever");
    }

    /// A restored sender/receiver pair must continue the protocol
    /// bit-identically: same sequences, same rewinds, same statistics.
    #[test]
    fn flow_control_snapshot_resumes_mid_rewind() {
        let mut tx = LinkTx::with_timeout(4, 9);
        let mut rx = LinkRx::new();
        let mut sent = Vec::new();
        for i in 0..3 {
            sent.push(tx.transmit(Some(flit(i))).unwrap());
        }
        // Deliver flit 0, then nACK flit 1: a rewind is now in progress.
        let (_, reply) = rx.receive(sent[0], true);
        tx.process(Some(reply));
        tx.process(Some(AckNack { seq: 1, ack: false }));
        assert!(!tx.ready_for_new(), "rewind must be in progress");

        let mut w = SnapshotWriter::new();
        tx.save_state(&mut w);
        rx.save_state(&mut w);
        let bytes = w.finish();
        let mut restored_tx = LinkTx::with_timeout(4, 9);
        let mut restored_rx = LinkRx::new();
        let mut r = SnapshotReader::open(&bytes).unwrap();
        restored_tx.load_state(&mut r).unwrap();
        restored_rx.load_state(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(restored_rx.expected(), rx.expected());
        assert_eq!(restored_rx.accepted(), rx.accepted());
        for _ in 0..20 {
            let a = tx.transmit(None);
            let b = restored_tx.transmit(None);
            assert_eq!(a, b);
            if let (Some(la), Some(lb)) = (a, b) {
                let (da, ra) = rx.receive(la, true);
                let (db, rb) = restored_rx.receive(lb, true);
                assert_eq!(da, db);
                assert_eq!(ra, rb);
                tx.process(Some(ra));
                restored_tx.process(Some(rb));
            }
        }
        assert_eq!(tx.retransmissions(), restored_tx.retransmissions());
        assert_eq!(tx.sent(), restored_tx.sent());
    }

    #[test]
    fn oversized_window_snapshot_rejected() {
        let mut tx = LinkTx::new(4);
        for i in 0..4 {
            tx.transmit(Some(flit(i)));
        }
        let mut w = SnapshotWriter::new();
        tx.save_state(&mut w);
        let bytes = w.finish();
        let mut small = LinkTx::new(2);
        let mut r = SnapshotReader::open(&bytes).unwrap();
        assert!(matches!(
            small.load_state(&mut r),
            Err(SnapshotError::Malformed(_))
        ));
    }

    /// Lossless direct connection: everything sent arrives in order.
    #[test]
    fn end_to_end_lossless() {
        let mut tx = LinkTx::new(4);
        let mut rx = LinkRx::new();
        let mut delivered = Vec::new();
        let mut next = 0u64;
        for _ in 0..100 {
            let new = if tx.ready_for_new() && next < 20 {
                let f = flit(next);
                next += 1;
                Some(f)
            } else {
                None
            };
            if let Some(lf) = tx.transmit(new) {
                let (d, reply) = rx.receive(lf, true);
                if let Some(f) = d {
                    delivered.push(f.meta.packet_id);
                }
                tx.process(Some(reply));
            }
        }
        assert_eq!(delivered, (0..20).collect::<Vec<_>>());
        assert_eq!(tx.retransmissions(), 0);
    }

    /// The telemetry flight recorder restates the link layer's modulo-64
    /// sequence space (its crate cannot depend on this one); walking
    /// `seq_next` through several wraps pins the two moduli together —
    /// a divergence would misclassify new sends as retransmissions.
    #[test]
    fn flight_recorder_seq_space_matches_link_layer() {
        use xpipes_sim::telemetry::{FlightRecorder, TraceEventKind};
        let mut fr = FlightRecorder::new(1, 1);
        let mut seq = 0u8;
        for i in 0..(3 * SEQ_MOD as u32) {
            assert_eq!(
                fr.classify_transmit(0, seq),
                TraceEventKind::Transmit,
                "in-order send {i} misread as a replay"
            );
            seq = seq_next(seq);
        }
    }

    /// The attribution engine restates the same modulo-64 sequence space
    /// (same crate-dependency constraint as the flight recorder); every
    /// in-order send must open a new span across several wraps.
    #[test]
    fn attribution_seq_space_matches_link_layer() {
        use std::collections::BTreeMap;
        use xpipes_sim::attribution::{AttributionEngine, ChannelConsumer, ChannelInfo};
        let channels = vec![ChannelInfo {
            label: "ini0->sw0.p0".into(),
            stages: 1,
            consumer: ChannelConsumer::Switch { extra: 0 },
            producer_is_ni: true,
        }];
        let mut e = AttributionEngine::new(channels, BTreeMap::new(), Vec::new());
        let mut seq = 0u8;
        for i in 0..(3 * SEQ_MOD as u64) {
            e.note_transmit(0, i, seq, true, true, 0, 0, i + 1);
            assert_eq!(
                e.in_flight() as u64,
                i + 1,
                "in-order send {i} misread as a replay"
            );
            seq = seq_next(seq);
        }
    }
}
